//! Tracker census: the §4 story in isolation.
//!
//! Builds a world, compiles the corpus, runs the Spanish OpenWPM-style
//! crawl over both corpora, and walks through the third-party pipeline by
//! hand: party classification, ATS labeling (full-URL vs relaxed), parent
//! -company attribution, and the blocklist coverage gap for fingerprinting
//! scripts.
//!
//! ```sh
//! cargo run --release --example tracker_census
//! ```

use redlight::analysis::{ats, fingerprint, orgs, thirdparty};
use redlight::crawler::corpus::CorpusCompiler;
use redlight::crawler::db::CorpusLabel;
use redlight::crawler::openwpm::{CrawlConfig, OpenWpmCrawler};
use redlight::net::geoip::Country;
use redlight::report::table::{fmt_count, fmt_pct, Table};
use redlight::{World, WorldConfig};

fn main() {
    let world = World::build(WorldConfig::small(7));
    let corpus = CorpusCompiler::new(&world).compile();
    println!(
        "corpus: {} porn sites ({} candidates, {} false positives removed), {} regular reference sites",
        fmt_count(corpus.sanitized.len()),
        fmt_count(corpus.candidates.len()),
        fmt_count(corpus.false_positives.len()),
        fmt_count(corpus.reference_regular.len()),
    );

    // One browser session per corpus, landing pages only (§3.1).
    let porn = OpenWpmCrawler::new(
        &world,
        CrawlConfig {
            country: Country::Spain,
            corpus: CorpusLabel::Porn,
            store_dom: false,
        },
    )
    .crawl(&corpus.sanitized);
    let regular = OpenWpmCrawler::new(
        &world,
        CrawlConfig {
            country: Country::Spain,
            corpus: CorpusLabel::Regular,
            store_dom: false,
        },
    )
    .crawl(&corpus.reference_regular);

    // Third-party extraction (§4.2(1)): FQDN + certificate + Levenshtein.
    let porn_parties = thirdparty::extract(&porn, true);
    let regular_parties = thirdparty::extract(&regular, true);
    println!(
        "\nporn crawl contacted {} distinct FQDNs: {} third-party, {} first-party",
        fmt_count(porn_parties.contacted_fqdns.len()),
        fmt_count(porn_parties.third_party_fqdns.len()),
        fmt_count(porn_parties.first_party_fqdns.len()),
    );

    // ATS classification (§4.2(2)).
    let classifier = ats::AtsClassifier::from_lists(&world.easylist, &world.easyprivacy);
    let table2 = ats::table2(
        &porn,
        &porn_parties,
        &regular,
        &regular_parties,
        ats::AtsVerdicts::new(&classifier),
    );
    println!(
        "ATS domains: porn {} ({:.1}% of third parties), regular {}, intersection {} — the \
         semi-decoupled ecosystem",
        table2.porn_ats,
        100.0 * table2.porn_ats as f64 / table2.porn_third_party.max(1) as f64,
        table2.regular_ats,
        table2.ats_intersection,
    );

    // Parent-company attribution (§4.2(3)), with the out-of-band TLS probe.
    let probe = |host: &str| -> Option<redlight::net::tls::CertSummary> {
        world.resolve_host(host)?;
        Some((&world.cert_for_host(host)).into())
    };
    let attributor = orgs::OrgAttributor::new(&world.disconnect, &[&porn, &regular], Some(&probe));
    let stats = attributor.coverage(&porn_parties);
    println!(
        "\nattribution: {}/{} FQDNs resolved to {} companies (Disconnect alone: {})",
        fmt_count(stats.resolved_fqdns),
        fmt_count(stats.total_fqdns),
        stats.companies,
        stats.resolved_by_disconnect,
    );

    let mut t = Table::new(
        "Top organizations in the porn ecosystem",
        &["organization", "sites", "prevalence"],
    );
    for org in attributor
        .prevalence(&porn_parties, porn.success_count())
        .iter()
        .take(12)
    {
        t.row(&[
            org.organization.clone(),
            org.sites.to_string(),
            fmt_pct(org.fraction * 100.0),
        ]);
    }
    println!("\n{}", t.render());

    // The §5.1.3 coverage gap: fingerprinting scripts vs the blocklists.
    let fp = fingerprint::detect(&porn, ats::AtsVerdicts::new(&classifier));
    println!(
        "canvas fingerprinting: {} scripts on {} sites; {:.1}% of the scripts are NOT \
         indexed by EasyList/EasyPrivacy — blocklist users remain trackable",
        fp.canvas_scripts.len(),
        fp.canvas_sites.len(),
        fp.unindexed_pct,
    );
}
