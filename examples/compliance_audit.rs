//! Compliance audit: the §7 story — cookie-consent banners, age
//! verification across countries, and privacy-policy transparency.
//!
//! ```sh
//! cargo run --release --example compliance_audit
//! ```

use redlight::analysis::{agegate, consent, monetization, policies};
use redlight::crawler::corpus::CorpusCompiler;
use redlight::crawler::db::CorpusLabel;
use redlight::crawler::openwpm::{CrawlConfig, OpenWpmCrawler};
use redlight::crawler::selenium::SeleniumCrawler;
use redlight::net::geoip::Country;
use redlight::report::table::{fmt_count, fmt_pct, Table};
use redlight::websim::oracle::InspectionOracle;
use redlight::{World, WorldConfig};

fn main() {
    let world = World::build(WorldConfig::small(11));
    let corpus = CorpusCompiler::new(&world).compile();
    let oracle = InspectionOracle::new(&world.sites);

    // ---- Consent banners from inside and outside the GDPR (§7.1). ----
    let mut breakdowns = Vec::new();
    for country in [Country::Spain, Country::Usa] {
        let crawl = OpenWpmCrawler::new(
            &world,
            CrawlConfig {
                country,
                corpus: CorpusLabel::Porn,
                store_dom: true, // banner detection reads the DOM
            },
        )
        .crawl(&corpus.sanitized);
        let verify = |domain: &str| oracle.confirm_banner(domain);
        let (breakdown, observations) = consent::breakdown(&crawl, &verify);
        println!(
            "{}: {:.2}% of sites show a cookie banner ({} manually rejected candidates)",
            country.name(),
            breakdown.total_pct,
            breakdown.rejected,
        );
        if let Some(example) = observations.first() {
            println!(
                "  e.g. {} ({}): \"{}\"",
                example.site,
                consent::label(example.kind),
                example.text.chars().take(60).collect::<String>()
            );
        }
        breakdowns.push(breakdown);
    }

    // ---- Age verification on the most popular sites, four countries. ----
    let histories = world.rank_histories();
    let mut ranked: Vec<String> = corpus.sanitized.clone();
    ranked.sort_by_key(|d| histories.get(d).and_then(|h| h.best()).unwrap_or(u32::MAX));
    let top: Vec<String> = ranked.into_iter().take(12).collect();
    let per_country: Vec<_> = [Country::Usa, Country::Uk, Country::Spain, Country::Russia]
        .into_iter()
        .map(|c| SeleniumCrawler::new(&world, c).crawl(&top))
        .collect();
    let cmp = agegate::compare(&per_country);
    let mut t = Table::new(
        "Age verification, top sites (§7.2)",
        &["country", "with gate", "bypassed", "social login"],
    );
    for c in &cmp.per_country {
        t.row(&[
            c.country.name().to_string(),
            format!("{} ({})", c.with_gate, fmt_pct(c.with_gate_pct)),
            c.bypassed.to_string(),
            c.social_login.to_string(),
        ]);
    }
    println!("\n{}", t.render());
    println!(
        "verifiability: the crawler bypassed {:.0}% of non-social-login gates — \
         \"if our automatic crawler manages to bypass the mechanism, a child could do it as well\"",
        cmp.bypass_rate_pct
    );

    // ---- Privacy policies (§7.3) + monetization (§4.1). ----
    let interactions = SeleniumCrawler::new(&world, Country::Spain).crawl(&corpus.sanitized);
    let (docs, sanitized_out) = policies::collect(&interactions);
    let report = policies::report(&docs, sanitized_out, corpus.sanitized.len(), 50_000);
    println!(
        "\npolicies: {} of {} sites ({:.1}%); {} GDPR mentions; mean length {:.0} letters; \
         {:.1}% of pairs similar (TF-IDF ≥ 0.5)",
        fmt_count(report.with_policy),
        fmt_count(corpus.sanitized.len()),
        report.with_policy_pct,
        report.gdpr_mentions,
        report.mean_letters,
        report.similar_pairs_pct,
    );

    let label = |domain: &str| {
        oracle.label_subscription(domain).map(|l| match l {
            redlight::websim::oracle::SubscriptionLabel::Free => monetization::Subscription::Free,
            redlight::websim::oracle::SubscriptionLabel::Paid => monetization::Subscription::Paid,
        })
    };
    let money = monetization::report(&interactions, Some(&label));
    println!(
        "monetization: {:.1}% of sites offer subscriptions; {:.1}% of those sit behind a paywall",
        money.with_subscription_pct, money.paid_pct,
    );
    println!(
        "\nmanual inspections consumed by this audit: {}",
        oracle.manual_inspections()
    );
}
