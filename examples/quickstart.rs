//! Quickstart: run the full study end-to-end at a reduced scale and print
//! every table and figure, plus a paper-vs-measured comparison for the
//! headline results.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use redlight::report::paper;
use redlight::{Study, StudyConfig};

fn main() {
    let t0 = std::time::Instant::now();
    // A ~20×-scaled-down world: ~340 porn sites, ~480 regular sites,
    // six-country crawl. The full paper-scale study is
    // `StudyConfig::paper_scale(seed)` (see the `reproduce` binary).
    let results = Study::run(StudyConfig::small(42));
    eprintln!("study completed in {:?}", t0.elapsed());

    println!("{}", results.render_summary());

    // Headline shape checks against the paper's published values. At this
    // reduced scale the percentages should already line up; absolute counts
    // scale with the world size.
    let rows = vec![
        paper::compare("fig3.exoclick_pct", exo_pct(&results)),
        paper::compare(
            "cookies.sites_pct",
            results.cookie_stats.sites_with_cookies_pct,
        ),
        paper::compare(
            "cookies.third_party_sites_pct",
            results.cookie_stats.sites_with_third_party_pct,
        ),
        paper::compare("policies.with_policy_pct", results.policies.with_policy_pct),
        paper::compare(
            "policies.similar_pairs_pct",
            results.policies.similar_pairs_pct,
        ),
        paper::compare("table8.eu_total_pct", results.banners_eu.total_pct),
    ];
    println!(
        "{}",
        paper::render_comparisons("Headline shape checks", &rows)
    );
}

fn exo_pct(results: &redlight::StudyResults) -> f64 {
    results
        .fig3_porn
        .iter()
        .find(|o| o.organization == "ExoClick")
        .map(|o| o.fraction * 100.0)
        .unwrap_or(0.0)
}
