//! Cookie synchronization (§5.1.2 / Fig. 4) under the microscope.
//!
//! Shows why the crawl keeps ONE browser session alive: the sync detector
//! sees nothing when the browser restarts between visits, because trackers
//! only leak a stored cookie on a *repeat* sighting.
//!
//! ```sh
//! cargo run --release --example sync_graph
//! ```

use redlight::analysis::sync;
use redlight::browser::Browser;
use redlight::crawler::corpus::CorpusCompiler;
use redlight::crawler::db::{CorpusLabel, CrawlRecord};
use redlight::crawler::openwpm::{CrawlConfig, OpenWpmCrawler};
use redlight::net::geoip::Country;
use redlight::net::url::Url;
use redlight::websim::server::BrowserKind;
use redlight::{World, WorldConfig};

fn main() {
    let world = World::build(WorldConfig::small(23));
    let corpus = CorpusCompiler::new(&world).compile();

    // --- The paper's way: one long-lived session. ---
    let session_crawl = OpenWpmCrawler::new(
        &world,
        CrawlConfig {
            country: Country::Spain,
            corpus: CorpusLabel::Porn,
            store_dom: false,
        },
    )
    .crawl(&corpus.sanitized);
    let report = sync::detect(&session_crawl, &corpus.sanitized, 100);
    println!(
        "single session: syncing on {} sites, {} (origin → destination) pairs, \
         {} origins, {} destinations",
        report.sites_with_sync,
        report.pairs.len(),
        report.origins,
        report.destinations,
    );
    println!("\nheaviest Fig. 4 edges:");
    for (pair, count) in report.heavy_pairs(5).into_iter().take(12) {
        println!(
            "  {:<22} → {:<22} {count} cookies",
            pair.origin, pair.destination
        );
    }

    // --- Control: restart the browser for every visit. ---
    let client_ip = Browser::context_for(&world, Country::Spain, BrowserKind::OpenWpm).client_ip;
    let mut cold_crawl = CrawlRecord::new(Country::Spain, CorpusLabel::Porn, client_ip);
    for domain in &corpus.sanitized {
        let ctx = Browser::context_for(&world, Country::Spain, BrowserKind::OpenWpm);
        let mut fresh = Browser::new(&world, ctx); // empty jar every time
        let url = Url::parse(&format!("https://{domain}/")).expect("valid url");
        cold_crawl.push_visit(domain, fresh.visit(&url));
    }
    let cold = sync::detect(&cold_crawl, &corpus.sanitized, 100);
    println!(
        "\nrestarting the browser per visit: syncing on {} sites, {} pairs — \
         the phenomenon disappears without the shared session (§3.1)",
        cold.sites_with_sync,
        cold.pairs.len(),
    );
}
