//! Anti-tracking effectiveness — the paper's §10 future work, quantified.
//!
//! Crawls the porn corpus twice: once as a regular user, once with an
//! AdBlock-Plus-style blocker loaded with the EasyList + EasyPrivacy
//! snapshots. The punchline matches the paper's conclusion: blocklists cut
//! most ad/tracking traffic, but since ~91 % of canvas-fingerprinting
//! scripts are not indexed, fingerprinting largely survives.
//!
//! ```sh
//! cargo run --release --example adblock_effectiveness
//! ```

use redlight::analysis::{ats, cookies, crossborder, fingerprint, sync, thirdparty};
use redlight::blocklist::FilterSet;
use redlight::browser::Browser;
use redlight::crawler::corpus::CorpusCompiler;
use redlight::crawler::db::{CorpusLabel, CrawlRecord};
use redlight::net::geoip::Country;
use redlight::net::url::Url;
use redlight::websim::server::BrowserKind;
use redlight::{World, WorldConfig};

fn crawl(world: &World, domains: &[String], with_blocker: bool) -> CrawlRecord {
    let ctx = Browser::context_for(world, Country::Spain, BrowserKind::OpenWpm);
    let client_ip = ctx.client_ip;
    let mut browser = Browser::new(world, ctx);
    if with_blocker {
        let mut filters = FilterSet::new();
        filters.add_list(&world.easylist);
        filters.add_list(&world.easyprivacy);
        browser.set_blocker(filters);
    }
    let mut record = CrawlRecord::new(Country::Spain, CorpusLabel::Porn, client_ip);
    for domain in domains {
        let Ok(url) = Url::parse(&format!("https://{domain}/")) else {
            continue;
        };
        record.push_visit(domain, browser.visit(&url));
    }
    record
}

fn main() {
    let world = World::build(WorldConfig::small(31));
    let corpus = CorpusCompiler::new(&world).compile();
    let classifier = ats::AtsClassifier::from_lists(&world.easylist, &world.easyprivacy);

    let plain = crawl(&world, &corpus.sanitized, false);
    let blocked = crawl(&world, &corpus.sanitized, true);

    let metrics = |crawl: &CrawlRecord, label: &str| {
        let extract = thirdparty::extract(crawl, true);
        let rows = cookies::collect(crawl);
        let third_cookies = rows
            .iter()
            .filter(|r| r.third_party && cookies::is_id_cookie(r))
            .count();
        let fp = fingerprint::detect(crawl, ats::AtsVerdicts::new(&classifier));
        let sync_report = sync::detect(crawl, &corpus.sanitized, 100);
        println!(
            "{label:<14} third-party FQDNs {:>4}   3rd-party ID cookies {:>5}   \
             canvas-FP sites {:>3}   sync pairs {:>4}",
            extract.third_party_fqdns.len(),
            third_cookies,
            fp.canvas_sites.len(),
            sync_report.pairs.len(),
        );
        (
            extract.third_party_fqdns.len(),
            third_cookies,
            fp.canvas_sites.len(),
        )
    };

    println!(
        "crawling {} porn sites with and without EasyList+EasyPrivacy:\n",
        corpus.sanitized.len()
    );
    let (tp0, ck0, fp0) = metrics(&plain, "no blocker");
    let (tp1, ck1, fp1) = metrics(&blocked, "with blocker");

    let drop = |a: usize, b: usize| 100.0 * (a.saturating_sub(b)) as f64 / a.max(1) as f64;
    println!(
        "\nreduction: third parties −{:.0}%, tracking cookies −{:.0}%, \
         fingerprinting sites −{:.0}%",
        drop(tp0, tp1),
        drop(ck0, ck1),
        drop(fp0, fp1),
    );
    println!(
        "the fingerprinting residue is the paper's point: porn-specific FP scripts are \
         largely unindexed, so blocklist users stay identifiable."
    );

    // Bonus: the cross-border view of what still leaves the EU with a
    // blocker installed (§10 future work after Iordanou et al.).
    let hosting = |host: &str| world.hosting_country(host);
    for (label, crawl) in [("no blocker", &plain), ("with blocker", &blocked)] {
        let xb = crossborder::report(crawl, &hosting);
        println!(
            "{label:<14} identifier-bearing third-party requests: {:>6}; leaving the GDPR \
             zone: {:>6} ({:.0}%)",
            xb.identifier_bearing, xb.leaving_jurisdiction, xb.leaving_pct,
        );
    }
}
