#!/usr/bin/env bash
# Tier-1 gate: formatting, lints, and the full test suite.
# Run from anywhere; operates on the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (workspace, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test (workspace)"
cargo test --workspace -q

echo "==> matcher equivalence (tokenized vs linear reference)"
cargo test -q -p redlight-blocklist --test matcher_equivalence

echo "==> transport fault matrix (determinism, passthrough, retry budget)"
cargo test -q --test transport_faults

echo "==> shard map/reduce equivalence (per-shard merge == monolithic)"
# The workspace run above already covers the full 256-case sweep; this
# named step re-confirms with a smaller draw so the gate stays fast.
PROPTEST_CASES=32 cargo test -q --test shard_equivalence

echo "==> batch classification equivalence (batched == per-request verdicts)"
PROPTEST_CASES=64 cargo test -q --test batch_equivalence

echo "==> sim kernel properties (total order, cancellation, monotone drain)"
PROPTEST_CASES=64 cargo test -q -p redlight-sim --test kernel_props

echo "==> traffic determinism (seed-pinned report, journal, logical walls)"
cargo test -q --test traffic_determinism

echo "==> sim-vs-sync equivalence (sim-hosted study byte-identical)"
cargo test -q --test sim_equivalence

echo "==> ats_match bench smoke (--test mode, 1 iteration per bench)"
cargo bench -p redlight-bench --bench ats_match -- --test

echo "==> transport bench smoke (--test mode, 1 iteration per bench)"
cargo bench -p redlight-bench --bench transport -- --test

echo "==> scale bench smoke (--test mode, 1x sweep only)"
cargo bench -p redlight-bench --bench scale -- --test

echo "==> hotpath bench smoke (--test mode, 1x sweep, JSON keys validated)"
cargo bench -p redlight-bench --bench hotpath -- --test
python3 - <<'PYEOF'
import json
doc = json.load(open("BENCH_hotpath.json"))
assert doc["bench"] == "hotpath", doc
rows = doc["rows"]
assert rows, "hotpath sweep produced no rows"
keys = {
    "scale", "requests", "visits", "per_request_rps", "batch_rps", "speedup",
    "per_request_allocs_per_visit", "batch_allocs_per_visit",
    "interned_bytes_per_visit", "prefilter_hit_rate",
}
for row in rows:
    missing = keys - row.keys()
    assert not missing, f"hotpath row lacks {sorted(missing)}"
    assert row["requests"] > 0 and row["batch_rps"] > 0, row
    assert 0.0 <= row["prefilter_hit_rate"] <= 1.0, row
print(f"hotpath OK: {len(rows)} row(s), {rows[0]['requests']} requests at 1x")
PYEOF

echo "==> traffic bench smoke (--test mode, small sweep, JSON keys validated)"
cargo bench -p redlight-bench --bench traffic -- --test
python3 - <<'PYEOF'
import json
doc = json.load(open("BENCH_traffic.json"))
assert doc["bench"] == "traffic", doc
rows = doc["rows"]
assert rows, "traffic sweep produced no rows"
keys = {
    "sessions", "events", "requests", "events_per_wall_sec",
    "sessions_per_wall_sec", "logical_sessions_per_sec",
    "logical_requests_per_sec", "makespan_s", "request_p50_us",
    "request_p95_us", "request_p99_us", "page_p50_us", "page_p99_us",
    "peak_in_flight", "peak_queue", "kernel_wall_s", "total_wall_s",
}
for row in rows:
    missing = keys - row.keys()
    assert not missing, f"traffic row lacks {sorted(missing)}"
    assert row["sessions"] > 0 and row["events"] > 0, row
    assert row["request_p99_us"] >= row["request_p50_us"], row
print(f"traffic OK: {len(rows)} row(s), {rows[0]['sessions']} sessions")
PYEOF

echo "==> observability exporter smoke (collection-only, all three formats)"
OBS_DIR="$(mktemp -d)"
trap 'rm -rf "$OBS_DIR"' EXIT
cargo run --release -q -p redlight-bench --bin reproduce -- \
  --collect-only --seed 11 \
  --trace "$OBS_DIR/trace.json" \
  --trace-events "$OBS_DIR/trace.jsonl" \
  --metrics "$OBS_DIR/metrics.prom"
python3 - "$OBS_DIR" <<'PYEOF'
import json, sys
d = sys.argv[1]
trace = json.load(open(f"{d}/trace.json"))
events = trace["traceEvents"] if isinstance(trace, dict) else trace
begins = sum(1 for e in events if e.get("ph") == "B")
ends = sum(1 for e in events if e.get("ph") == "E")
assert begins > 0, "Chrome trace has no begin events"
assert begins == ends, f"unbalanced trace: {begins} B vs {ends} E"
lines = [json.loads(l) for l in open(f"{d}/trace.jsonl") if l.strip()]
assert len(lines) == begins, f"{len(lines)} journal lines vs {begins} spans"
prom = open(f"{d}/metrics.prom").read()
assert "transport_requests" in prom, "metrics exposition lacks transport counters"
print(f"exporters OK: {begins} spans, {len(prom.splitlines())} metric lines")
PYEOF

echo "==> timeline bench smoke (--test mode, JSON keys validated)"
cargo bench -p redlight-bench --bench timeline -- --test
python3 - <<'PYEOF'
import json
doc = json.load(open("BENCH_timeline.json"))
assert doc["bench"] == "timeline", doc
rows = doc["rows"]
assert rows, "timeline bench produced no rows"
keys = {
    "sessions", "events", "windows", "slo_events", "flight_freezes",
    "base_events_per_sec", "timeline_events_per_sec", "overhead_pct",
}
for row in rows:
    missing = keys - row.keys()
    assert not missing, f"timeline row lacks {sorted(missing)}"
    assert row["sessions"] > 0 and row["windows"] > 0, row
    assert row["base_events_per_sec"] > 0 and row["timeline_events_per_sec"] > 0, row
print(f"timeline OK: {len(rows)} row(s), {rows[0]['windows']} windows")
PYEOF

echo "==> timeline export smoke (traffic run, JSON-lines + CSV validated)"
cargo run --release -q -p redlight-bench --bin reproduce -- \
  --traffic 2000 --seed 11 --timeline "$OBS_DIR/timeline.jsonl"
python3 - "$OBS_DIR" <<'PYEOF'
import csv, json, sys
d = sys.argv[1]
lines = [json.loads(l) for l in open(f"{d}/timeline.jsonl") if l.strip()]
assert lines and lines[0]["type"] == "meta", "first line must be the meta row"
meta = lines[0]
for key in ("window_ns", "windows", "counters", "gauges", "histograms",
            "histogram_minmax"):
    assert key in meta, f"meta row lacks {key}"
windows = [l for l in lines if l["type"] == "window"]
assert len(windows) == meta["windows"], "meta window count must match rows"
for w in windows:
    assert set(w["counters"]) == set(meta["counters"]), w
    assert set(w["gauges"]) == set(meta["gauges"]), w
    assert set(w["histograms"]) == set(meta["histograms"]), w
total = sum(w["counters"]["traffic.requests"] for w in windows)
assert total > 0, "windowed request deltas must be non-trivial"
tail_types = {l["type"] for l in lines} - {"meta", "window"}
assert "flight" in tail_types, "flight summary line missing"
rows = list(csv.DictReader(open(f"{d}/timeline.csv")))
assert len(rows) == len(windows), "CSV rows must mirror the JSON windows"
assert sum(int(r["traffic.requests"]) for r in rows) == total, "CSV != JSONL"
print(f"timeline export OK: {len(windows)} windows, {total} requests")
PYEOF

echo "OK"
