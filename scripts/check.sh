#!/usr/bin/env bash
# Tier-1 gate: formatting, lints, and the full test suite.
# Run from anywhere; operates on the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (workspace, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test (workspace)"
cargo test --workspace -q

echo "==> matcher equivalence (tokenized vs linear reference)"
cargo test -q -p redlight-blocklist --test matcher_equivalence

echo "==> transport fault matrix (determinism, passthrough, retry budget)"
cargo test -q --test transport_faults

echo "==> ats_match bench smoke (--test mode, 1 iteration per bench)"
cargo bench -p redlight-bench --bench ats_match -- --test

echo "==> transport bench smoke (--test mode, 1 iteration per bench)"
cargo bench -p redlight-bench --bench transport -- --test

echo "OK"
