//! # redlight
//!
//! A web-privacy measurement platform for sensitive web ecosystems — a
//! from-scratch Rust reproduction of *"Tales from the Porn: A Comprehensive
//! Privacy Analysis of the Web Porn Ecosystem"* (IMC 2019).
//!
//! The platform builds a deterministic synthetic web (calibrated from the
//! paper's published aggregates), crawls it with an instrumented browser
//! (the OpenWPM analog) and an interaction crawler (the Selenium analog),
//! and reproduces every table and figure of the paper's evaluation.
//!
//! ## Quick start
//!
//! ```no_run
//! use redlight::{Study, StudyConfig};
//!
//! // A ~20×-scaled-down study: full pipeline, every table and figure.
//! let results = Study::run(StudyConfig::small(42));
//! println!("{}", results.render_summary());
//! ```
//!
//! ## Crate map
//!
//! * [`core`] — the [`Study`] pipeline façade;
//! * [`websim`] — the synthetic internet (world model, server, catalog);
//! * [`browser`] — the instrumented browser;
//! * [`crawler`] — corpus compilation, OpenWPM/Selenium crawlers, the DB;
//! * [`analysis`] — every §3–§7 analysis;
//! * [`blocklist`] — the Adblock-Plus filter engine + entity lists;
//! * [`net`] / [`html`] / [`script`] / [`text`] / [`rankings`] — substrates;
//! * [`sim`] — the discrete-event kernel, simulated transport and the
//!   million-visitor traffic workload;
//! * [`report`] — table/figure rendering and paper-value comparisons.

#![warn(missing_docs)]

pub use redlight_analysis as analysis;
pub use redlight_blocklist as blocklist;
pub use redlight_browser as browser;
pub use redlight_core as core;
pub use redlight_crawler as crawler;
pub use redlight_html as html;
pub use redlight_net as net;
pub use redlight_obs as obs;
pub use redlight_rankings as rankings;
pub use redlight_report as report;
pub use redlight_script as script;
pub use redlight_sim as sim;
pub use redlight_text as text;
pub use redlight_websim as websim;

pub use redlight_core::{Study, StudyConfig, StudyResults};
pub use redlight_websim::{World, WorldConfig};
