//! Offline stand-in for `serde_derive`.
//!
//! The repository derives `Serialize`/`Deserialize` purely as a forward-compat
//! marker — nothing serializes at runtime (there is no `serde_json` in the
//! tree). This derive therefore emits an *empty* trait impl; the vendored
//! `serde` traits supply default method bodies that return an error. The
//! `serde` helper attribute is declared so `#[serde(...)]` annotations remain
//! inert, exactly as with the real derive. See `vendor/README.md`.

use proc_macro::{TokenStream, TokenTree};

/// Finds the type name: the identifier following `struct`/`enum`/`union`.
///
/// Generic types are intentionally unsupported — every derive in this
/// repository is on a concrete type, and a loud failure here beats silently
/// emitting an impl that does not compile.
fn type_name(input: TokenStream) -> String {
    let mut tokens = input.into_iter();
    while let Some(tt) = tokens.next() {
        if let TokenTree::Ident(word) = &tt {
            let word = word.to_string();
            if word == "struct" || word == "enum" || word == "union" {
                match tokens.next() {
                    Some(TokenTree::Ident(name)) => {
                        let name = name.to_string();
                        if let Some(TokenTree::Punct(p)) = tokens.next() {
                            assert!(
                                p.as_char() != '<',
                                "vendored serde_derive does not support generic type `{name}`"
                            );
                        }
                        return name;
                    }
                    other => panic!("expected type name after `{word}`, found {other:?}"),
                }
            }
        }
    }
    panic!("vendored serde_derive: no struct/enum/union found in derive input")
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("generated Deserialize impl parses")
}
