//! Offline stand-in for `criterion`.
//!
//! Implements the configuration builder, `bench_function`/`Bencher::iter`,
//! and the `criterion_group!`/`criterion_main!` macros as a minimal
//! wall-clock harness: warm up, pick an iteration count that fits the
//! measurement budget, take `sample_size` samples, and report the mean and
//! best per-iteration time on stdout. No statistics, plots, or baselines.
//! See `vendor/README.md` for why external dependencies are vendored.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark harness configuration and entry point.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
        }
    }
}

impl Criterion {
    /// Sets how many samples to take per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Sets the target measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up budget per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Criterion {
        self.warm_up_time = d;
        self
    }

    /// Runs one named benchmark.
    ///
    /// When the process was invoked with a `--test` argument (as in
    /// `cargo bench -- --test`), the routine runs exactly once as a smoke
    /// check and no timing is reported — mirroring real criterion's test
    /// mode so CI can exercise bench targets cheaply.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let test_mode = std::env::args().any(|a| a == "--test");
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            test_mode,
            report: None,
        };
        f(&mut bencher);
        if test_mode {
            println!("{id}: test mode, 1 iteration, ok");
            return self;
        }
        match bencher.report {
            Some(r) => println!(
                "{id}: mean {} / best {} per iter ({} iters x {} samples)",
                fmt_ns(r.mean_ns),
                fmt_ns(r.best_ns),
                r.iters_per_sample,
                self.sample_size,
            ),
            None => println!("{id}: no measurement (Bencher::iter never called)"),
        }
        self
    }
}

struct Report {
    mean_ns: f64,
    best_ns: f64,
    iters_per_sample: u64,
}

/// Passed to the benchmark closure; `iter` measures the routine.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    test_mode: bool,
    report: Option<Report>,
}

impl Bencher {
    /// Measures `routine`, running it enough times to fill the configured
    /// measurement budget. In `--test` mode it runs exactly once, unmeasured.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.test_mode {
            black_box(routine());
            return;
        }
        // Warm-up, which also estimates the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        loop {
            black_box(routine());
            warm_iters += 1;
            if warm_start.elapsed() >= self.warm_up_time {
                break;
            }
        }
        let per_iter_ns = (warm_start.elapsed().as_nanos() as f64 / warm_iters as f64).max(1.0);

        let per_sample_ns = self.measurement_time.as_nanos() as f64 / self.sample_size as f64;
        let iters = ((per_sample_ns / per_iter_ns) as u64).clamp(1, 10_000_000);

        let mut best_ns = f64::INFINITY;
        let mut total_ns = 0.0;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let sample_ns = start.elapsed().as_nanos() as f64 / iters as f64;
            best_ns = best_ns.min(sample_ns);
            total_ns += sample_ns;
        }
        self.report = Some(Report {
            mean_ns: total_ns / self.sample_size as f64,
            best_ns,
            iters_per_sample: iters,
        });
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Bundles benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emits `main` running each group (for `harness = false` bench targets).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(c: &mut Criterion) {
        c.bench_function("stub/sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
    }

    criterion_group! {
        name = benches;
        config = Criterion::default()
            .sample_size(5)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(2));
        targets = target
    }

    #[test]
    fn group_runs_and_reports() {
        benches();
    }

    #[test]
    fn formatting_scales_units() {
        assert_eq!(fmt_ns(12.0), "12.0 ns");
        assert_eq!(fmt_ns(1_500.0), "1.50 µs");
        assert_eq!(fmt_ns(2_500_000.0), "2.50 ms");
    }
}
