//! Offline stand-in for the `parking_lot` crate: `Mutex` / `RwLock` with
//! parking_lot's panic-free (non-poisoning) API, backed by `std::sync`.
//! See `vendor/README.md` for why external dependencies are vendored.

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutex whose `lock` never returns a poison error (parking_lot API).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning (parking_lot semantics).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock with parking_lot's non-poisoning API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(String::from("a"));
        l.write().push('b');
        assert_eq!(&*l.read(), "ab");
    }
}
