//! A tiny regex-directed string generator.
//!
//! Real proptest interprets a string-literal strategy as a regular
//! expression and generates matching strings. This module implements the
//! regex subset the repository's property tests use: literals, escapes,
//! `.`, `\PC`, `\d`, `\w`, character classes (ranges, negation, literal
//! `-`/`^`), groups with alternation, and the `{m,n}` / `{n}` / `?` / `*` /
//! `+` quantifiers. Unbounded quantifiers are capped at 8 repetitions.

use rand::prelude::*;

const UNBOUNDED_CAP: u32 = 8;

/// Characters beyond printable ASCII that `.` / `\PC` occasionally emit, so
/// parsers see multi-byte UTF-8 without breaking "non-control" guarantees.
const UNICODE_POOL: &[char] = ['é', 'ß', 'ñ', 'Ω', '→', '漢', '字', '🦀', '☃'].as_slice();

/// Tricky-but-legal characters for `.` (anything except `\n`).
const TRICKY_POOL: &[char] = ['\t', '\r', '\u{0}', '\u{7f}', '\u{1b}'].as_slice();

#[derive(Debug)]
enum Node {
    Lit(char),
    /// `.` — any character except `\n`.
    AnyChar,
    /// `\PC` — any non-control character.
    NotControl,
    Class {
        negated: bool,
        ranges: Vec<(char, char)>,
    },
    /// `( alt | alt | ... )`.
    Group(Vec<Vec<Node>>),
    Repeat {
        node: Box<Node>,
        min: u32,
        max: u32,
    },
}

struct Parser<'a> {
    pattern: &'a str,
    chars: std::iter::Peekable<std::str::Chars<'a>>,
}

impl<'a> Parser<'a> {
    fn new(pattern: &'a str) -> Parser<'a> {
        Parser {
            pattern,
            chars: pattern.chars().peekable(),
        }
    }

    fn fail(&self, what: &str) -> ! {
        panic!("vendored proptest: {what} in pattern {:?}", self.pattern)
    }

    fn parse_alternatives(&mut self, in_group: bool) -> Vec<Vec<Node>> {
        let mut alternatives = vec![Vec::new()];
        loop {
            match self.chars.peek() {
                None => {
                    if in_group {
                        self.fail("unclosed group");
                    }
                    break;
                }
                Some(')') if in_group => break,
                Some('|') => {
                    self.chars.next();
                    alternatives.push(Vec::new());
                }
                Some(_) => {
                    let atom = self.parse_atom();
                    let atom = self.maybe_quantify(atom);
                    alternatives.last_mut().unwrap().push(atom);
                }
            }
        }
        alternatives
    }

    fn parse_atom(&mut self) -> Node {
        match self.chars.next().unwrap() {
            '(' => {
                let alternatives = self.parse_alternatives(true);
                if self.chars.next() != Some(')') {
                    self.fail("unclosed group");
                }
                Node::Group(alternatives)
            }
            '[' => self.parse_class(),
            '.' => Node::AnyChar,
            '\\' => self.parse_escape(),
            other => Node::Lit(other),
        }
    }

    fn parse_escape(&mut self) -> Node {
        match self
            .chars
            .next()
            .unwrap_or_else(|| self.fail("dangling \\"))
        {
            'P' => match self.chars.next() {
                Some('C') => Node::NotControl,
                _ => self.fail("only \\PC is supported"),
            },
            'd' => Node::Class {
                negated: false,
                ranges: vec![('0', '9')],
            },
            'w' => Node::Class {
                negated: false,
                ranges: vec![('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')],
            },
            'n' => Node::Lit('\n'),
            't' => Node::Lit('\t'),
            'r' => Node::Lit('\r'),
            other => Node::Lit(other),
        }
    }

    fn parse_class(&mut self) -> Node {
        let negated = self.chars.peek() == Some(&'^');
        if negated {
            self.chars.next();
        }
        let mut ranges: Vec<(char, char)> = Vec::new();
        let mut pending: Option<char> = None;
        loop {
            match self
                .chars
                .next()
                .unwrap_or_else(|| self.fail("unclosed class"))
            {
                ']' => {
                    if let Some(p) = pending {
                        ranges.push((p, p));
                    }
                    break;
                }
                '\\' => {
                    let escaped = self
                        .chars
                        .next()
                        .unwrap_or_else(|| self.fail("dangling \\ in class"));
                    if let Some(p) = pending {
                        ranges.push((p, p));
                    }
                    pending = Some(escaped);
                }
                '-' => match (pending, self.chars.peek()) {
                    (Some(lo), Some(&hi)) if hi != ']' => {
                        self.chars.next();
                        if lo > hi {
                            self.fail("inverted class range");
                        }
                        ranges.push((lo, hi));
                        pending = None;
                    }
                    _ => {
                        // Leading or trailing '-' is a literal.
                        if let Some(p) = pending {
                            ranges.push((p, p));
                        }
                        pending = Some('-');
                    }
                },
                other => {
                    if let Some(p) = pending {
                        ranges.push((p, p));
                    }
                    pending = Some(other);
                }
            }
        }
        if ranges.is_empty() {
            self.fail("empty class");
        }
        Node::Class { negated, ranges }
    }

    fn maybe_quantify(&mut self, node: Node) -> Node {
        let (min, max) = match self.chars.peek() {
            Some('?') => (0, 1),
            Some('*') => (0, UNBOUNDED_CAP),
            Some('+') => (1, UNBOUNDED_CAP),
            Some('{') => {
                self.chars.next();
                let mut min_digits = String::new();
                let mut max_digits = String::new();
                let mut saw_comma = false;
                loop {
                    match self.chars.next().unwrap_or_else(|| self.fail("unclosed {")) {
                        '}' => break,
                        ',' => saw_comma = true,
                        d if d.is_ascii_digit() => {
                            if saw_comma {
                                max_digits.push(d);
                            } else {
                                min_digits.push(d);
                            }
                        }
                        _ => self.fail("bad quantifier"),
                    }
                }
                let min: u32 = min_digits
                    .parse()
                    .unwrap_or_else(|_| self.fail("bad quantifier"));
                let max = if !saw_comma {
                    min
                } else if max_digits.is_empty() {
                    min + UNBOUNDED_CAP
                } else {
                    max_digits
                        .parse()
                        .unwrap_or_else(|_| self.fail("bad quantifier"))
                };
                if min > max {
                    self.fail("inverted quantifier");
                }
                return Node::Repeat {
                    node: Box::new(node),
                    min,
                    max,
                };
            }
            _ => return node,
        };
        self.chars.next();
        Node::Repeat {
            node: Box::new(node),
            min,
            max,
        }
    }
}

fn any_char(rng: &mut StdRng) -> char {
    match rng.random_range(0..24u32) {
        0 => TRICKY_POOL[rng.random_range(0..TRICKY_POOL.len())],
        1 | 2 => UNICODE_POOL[rng.random_range(0..UNICODE_POOL.len())],
        _ => char::from(rng.random_range(0x20..0x7fu8)),
    }
}

fn non_control_char(rng: &mut StdRng) -> char {
    if rng.random_range(0..12u32) == 0 {
        UNICODE_POOL[rng.random_range(0..UNICODE_POOL.len())]
    } else {
        char::from(rng.random_range(0x20..0x7fu8))
    }
}

fn in_ranges(c: char, ranges: &[(char, char)]) -> bool {
    ranges.iter().any(|&(lo, hi)| (lo..=hi).contains(&c))
}

fn class_char(ranges: &[(char, char)], rng: &mut StdRng) -> char {
    let total: u32 = ranges
        .iter()
        .map(|&(lo, hi)| hi as u32 - lo as u32 + 1)
        .sum();
    let mut pick = rng.random_range(0..total);
    for &(lo, hi) in ranges {
        let width = hi as u32 - lo as u32 + 1;
        if pick < width {
            return char::from_u32(lo as u32 + pick)
                .expect("class range spans invalid scalar values");
        }
        pick -= width;
    }
    unreachable!()
}

fn generate_node(node: &Node, rng: &mut StdRng, out: &mut String) {
    match node {
        Node::Lit(c) => out.push(*c),
        Node::AnyChar => out.push(any_char(rng)),
        Node::NotControl => out.push(non_control_char(rng)),
        Node::Class {
            negated: false,
            ranges,
        } => out.push(class_char(ranges, rng)),
        Node::Class {
            negated: true,
            ranges,
        } => loop {
            let c = any_char(rng);
            if !in_ranges(c, ranges) {
                out.push(c);
                break;
            }
        },
        Node::Group(alternatives) => {
            let picked = &alternatives[rng.random_range(0..alternatives.len())];
            for n in picked {
                generate_node(n, rng, out);
            }
        }
        Node::Repeat { node, min, max } => {
            let count = rng.random_range(*min..=*max);
            for _ in 0..count {
                generate_node(node, rng, out);
            }
        }
    }
}

/// Generates one string matching `pattern`.
pub fn generate_matching(pattern: &str, rng: &mut StdRng) -> String {
    let mut parser = Parser::new(pattern);
    let alternatives = parser.parse_alternatives(false);
    let mut out = String::new();
    let picked = &alternatives[rng.random_range(0..alternatives.len())];
    for node in picked {
        generate_node(node, rng, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xfeed)
    }

    #[test]
    fn class_and_repeat_bounds_hold() {
        let mut rng = rng();
        for _ in 0..200 {
            let s = generate_matching("[a-z][a-z0-9]{0,10}", &mut rng);
            let n = s.chars().count();
            assert!((1..=11).contains(&n), "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
        }
    }

    #[test]
    fn grouped_domains_look_like_domains() {
        let mut rng = rng();
        for _ in 0..100 {
            let s = generate_matching("[a-z]{1,8}(\\.[a-z]{1,8}){0,4}", &mut rng);
            assert!(!s.is_empty());
            for label in s.split('.') {
                assert!((1..=8).contains(&label.len()), "{s:?}");
                assert!(label.bytes().all(|b| b.is_ascii_lowercase()));
            }
        }
    }

    #[test]
    fn optional_group_and_symbol_class() {
        let mut rng = rng();
        let mut saw_prefix = false;
        for _ in 0..200 {
            let s = generate_matching("(\\|\\|)?[a-z0-9.*^/$,=~-]{1,60}", &mut rng);
            let rest = s
                .strip_prefix("||")
                .inspect(|_| saw_prefix = true)
                .unwrap_or(&s);
            assert!((1..=60).contains(&rest.len()), "{s:?}");
            assert!(rest
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || ".*^/$,=~-".contains(c)));
        }
        assert!(saw_prefix);
    }

    #[test]
    fn dot_never_emits_newline_and_pc_never_emits_controls() {
        let mut rng = rng();
        for _ in 0..100 {
            assert!(!generate_matching(".{0,200}", &mut rng).contains('\n'));
            assert!(generate_matching("\\PC{0,200}", &mut rng)
                .chars()
                .all(|c| !c.is_control()));
        }
    }

    #[test]
    fn trailing_dash_is_literal() {
        let mut rng = rng();
        let mut saw_dash = false;
        for _ in 0..300 {
            let s = generate_matching("[a-zA-Z0-9%=.|-]{0,64}", &mut rng);
            saw_dash |= s.contains('-');
            assert!(s
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || "%=.|-".contains(c)));
        }
        assert!(saw_dash);
    }

    #[test]
    fn negated_class_excludes_members() {
        let mut rng = rng();
        for _ in 0..100 {
            let s = generate_matching("[^a-z]{1,20}", &mut rng);
            assert!(s.chars().all(|c| !c.is_ascii_lowercase()), "{s:?}");
        }
    }
}
