//! Deterministic case loop: every property test runs `PROPTEST_CASES`
//! (default 256) generated cases from an RNG seeded by the test's name, so
//! a failing case reproduces on every run.

use rand::prelude::*;

const DEFAULT_CASES: u32 = 256;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_CASES)
}

/// Runs `case` repeatedly with a name-seeded deterministic RNG.
pub fn run(name: &str, mut case: impl FnMut(&mut StdRng)) {
    let mut rng = StdRng::seed_from_u64(fnv1a(name.as_bytes()));
    for _ in 0..cases() {
        case(&mut rng);
    }
}
