//! Collection strategies: `vec(element_strategy, size_range)`.

use std::ops::{Range, RangeInclusive};

use rand::prelude::*;

use crate::strategy::Strategy;

/// An inclusive size bound for generated collections.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// Strategy for a `Vec` whose length is drawn from a [`SizeRange`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.random_range(self.size.min..=self.size.max);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Generates a `Vec` of values from `element`, sized within `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
