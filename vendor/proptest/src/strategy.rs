//! The `Strategy` trait plus impls for numeric ranges and regex string
//! literals.

use std::ops::{Range, RangeInclusive};

use rand::prelude::*;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// Generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

/// A string literal is interpreted as a regular expression describing the
/// strings to generate, as in real proptest.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut StdRng) -> String {
        crate::string::generate_matching(self, rng)
    }
}

impl Strategy for String {
    type Value = String;

    fn generate(&self, rng: &mut StdRng) -> String {
        crate::string::generate_matching(self, rng)
    }
}
