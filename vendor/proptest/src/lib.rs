//! Offline stand-in for `proptest`.
//!
//! Provides the `proptest!` macro, `prop_assert*`, `any::<T>()`, range and
//! regex-string strategies, and `collection::vec` — enough to run this
//! repository's property suite. Cases are generated from a deterministic
//! per-test RNG (seeded by FNV-1a of the test name), so failures reproduce
//! exactly; there is no shrinking. Case count defaults to 256 and can be
//! overridden with the `PROPTEST_CASES` environment variable. See
//! `vendor/README.md` for why external dependencies are vendored.

pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

use std::marker::PhantomData;

use rand::prelude::*;

use crate::strategy::Strategy;

/// Types with a canonical "any value" strategy.
pub trait Arbitrary {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! arbitrary_via_random {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rng.random()
            }
        }
    )*};
}

arbitrary_via_random!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f64);

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy producing any value of type `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over generated cases.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:ident in $strategy:expr ),+ $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::run(stringify!($name), |__proptest_rng| {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(
                            &($strategy),
                            __proptest_rng,
                        );
                    )+
                    $body
                });
            }
        )*
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// The usual one-stop import, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn generated_values_obey_strategies(
            byte in any::<u8>(),
            flag in any::<bool>(),
            small in 1u32..10,
            word in "[a-z]{2,5}",
            items in crate::collection::vec(any::<u8>(), 0..4),
        ) {
            let _ = (byte, flag);
            prop_assert!((1..10).contains(&small));
            prop_assert!(word.len() >= 2 && word.len() <= 5);
            prop_assert!(word.chars().all(|c| c.is_ascii_lowercase()));
            prop_assert!(items.len() < 4);
        }
    }

    #[test]
    fn same_test_name_generates_same_cases() {
        let collect = || {
            let mut out = Vec::new();
            crate::test_runner::run("stability_probe", |rng| {
                out.push(crate::strategy::Strategy::generate(&"[a-z0-9]{0,16}", rng));
            });
            out
        };
        assert_eq!(collect(), collect());
    }
}
