//! Offline stand-in for `serde`.
//!
//! Only the trait *surface* this repository compiles against is provided:
//! `Serialize`/`Serializer` and `Deserialize`/`Deserializer` with the handful
//! of methods used by `net::http::serde_bytes_b64`. The traits carry default
//! method bodies that return an error, which lets the vendored `serde_derive`
//! emit empty marker impls. No data format ships with this stub — nothing in
//! the tree serializes at runtime. See `vendor/README.md`.

pub mod ser {
    use std::fmt::Display;

    /// Error constructor surface used by serializer implementations.
    pub trait Error: Sized {
        /// Builds a custom error from a message.
        fn custom<T: Display>(msg: T) -> Self;
    }

    /// The subset of serde's `Serializer` this repository calls.
    pub trait Serializer: Sized {
        /// Output on success.
        type Ok;
        /// Error type.
        type Error: Error;

        /// Serializes a string slice.
        fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
    }

    /// A serializable type. The default body errors: the stub ships no data
    /// format, and derived impls are markers only.
    pub trait Serialize {
        /// Serializes `self` (stub: always an error).
        fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
            let _ = serializer;
            Err(S::Error::custom(
                "vendored serde stub: serialization is not implemented",
            ))
        }
    }
}

pub mod de {
    use std::fmt::Display;

    /// Error constructor surface used by deserializer implementations.
    pub trait Error: Sized {
        /// Builds a custom error from a message.
        fn custom<T: Display>(msg: T) -> Self;
    }

    /// The subset of serde's `Deserializer` this repository names in bounds.
    pub trait Deserializer<'de>: Sized {
        /// Error type.
        type Error: Error;
    }

    /// A deserializable type. The default body errors, matching the
    /// serialize side.
    pub trait Deserialize<'de>: Sized {
        /// Deserializes a value (stub: always an error).
        fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
            let _ = deserializer;
            Err(D::Error::custom(
                "vendored serde stub: deserialization is not implemented",
            ))
        }
    }

    macro_rules! marker_deserialize {
        ($($t:ty),* $(,)?) => {
            $( impl<'de> Deserialize<'de> for $t {} )*
        };
    }

    marker_deserialize!(
        String, bool, char, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64
    );
}

macro_rules! marker_serialize {
    ($($t:ty),* $(,)?) => {
        $( impl ser::Serialize for $t {} )*
    };
}

marker_serialize!(
    String, str, bool, char, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64
);

pub use de::{Deserialize, Deserializer};
pub use ser::{Serialize, Serializer};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

#[cfg(test)]
mod tests {
    use super::*;
    use std::fmt::Display;

    struct StringSerializer;

    impl ser::Error for String {
        fn custom<T: Display>(msg: T) -> Self {
            msg.to_string()
        }
    }

    impl Serializer for StringSerializer {
        type Ok = String;
        type Error = String;

        fn serialize_str(self, v: &str) -> Result<String, String> {
            Ok(v.to_string())
        }
    }

    #[test]
    fn serializer_surface_works() {
        assert_eq!(StringSerializer.serialize_str("x"), Ok("x".to_string()));
    }

    #[test]
    fn default_serialize_errors() {
        let r = Serialize::serialize(&1u32, StringSerializer);
        assert!(r.is_err());
    }
}
