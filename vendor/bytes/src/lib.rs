//! Offline stand-in for the `bytes` crate: an immutable, cheaply clonable
//! byte buffer. Only the surface this repository uses is provided; clones
//! share one allocation via `Arc`, like the real crate. See
//! `vendor/README.md` for why external dependencies are vendored.

use std::borrow::Borrow;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes(Arc::from(&[][..]))
    }

    /// Wraps a static byte slice.
    pub fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes(Arc::from(bytes))
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes(Arc::from(data))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.0
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.0.iter() {
            if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes(Arc::from(v.into_boxed_slice()))
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from(s.into_bytes())
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Bytes {
        Bytes(Arc::from(s))
    }
}

impl From<&str> for Bytes {
    fn from(s: &str) -> Bytes {
        Bytes(Arc::from(s.as_bytes()))
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &*self.0 == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        &*self.0 == *other
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_deref() {
        let a = Bytes::from("hello");
        assert_eq!(a.len(), 5);
        assert_eq!(&a[..2], b"he");
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(Bytes::new().len(), 0);
        assert!(Bytes::default().is_empty());
        assert_eq!(Bytes::from_static(b"x"), Bytes::from(vec![b'x']));
    }

    #[test]
    fn debug_escapes_binary() {
        let d = format!("{:?}", Bytes::from_static(b"\xff\xd8ok"));
        assert_eq!(d, "b\"\\xff\\xd8ok\"");
    }
}
