//! Offline stand-in for the `rand` crate.
//!
//! Implements the slice of the rand API this workspace uses on top of a
//! ChaCha12 block cipher core — the same generator family as the real
//! `StdRng` — with rand_core's PCG32-based `seed_from_u64` expansion and
//! Lemire's unbiased widening-multiply method for integer ranges. The goal
//! is fully deterministic, well-distributed sampling with the identical API,
//! not bit-for-bit parity with any particular rand release. See
//! `vendor/README.md` for why external dependencies are vendored.

pub mod rngs;
pub mod seq;

mod chacha;
mod distr;
mod uniform;

pub use distr::{Distribution, StandardUniform};
pub use uniform::SampleRange;

/// The core generator interface: a source of uniformly random bits.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be deterministically constructed from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed material (`[u8; 32]` for [`rngs::StdRng`]).
    type Seed: Default + AsRef<[u8]> + AsMut<[u8]>;

    /// Constructs the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed with a PCG32 stream (the rand_core
    /// expansion), then constructs the generator.
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let word = xorshifted.rotate_right(rot);
            chunk.copy_from_slice(&word.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// User-facing sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the standard (full-range / unit-interval)
    /// distribution for `T`.
    fn random<T>(&mut self) -> T
    where
        StandardUniform: Distribution<T>,
    {
        StandardUniform.sample(self)
    }

    /// Samples uniformly from a range; `..` and `..=` are both accepted.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// Panics if `p` is outside `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        if p >= 1.0 {
            return true;
        }
        // Compare against p in 0.64 fixed point; exact for p = 0.
        self.next_u64() < (p * 18_446_744_073_709_551_616.0) as u64
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The usual one-stop import, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::{IndexedRandom, SliceRandom};
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn mixed_width_calls_stay_deterministic() {
        // Interleave u32/u64 reads across the 64-word block boundary
        // (including the straddle at index 63) and replay them.
        let trace = |mut rng: StdRng| -> Vec<u64> {
            let mut out = Vec::new();
            for i in 0..200 {
                if i % 3 == 0 {
                    out.push(u64::from(rng.next_u32()));
                } else {
                    out.push(rng.next_u64());
                }
            }
            out
        };
        assert_eq!(
            trace(StdRng::seed_from_u64(42)),
            trace(StdRng::seed_from_u64(42))
        );
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..2000 {
            let a: i32 = rng.random_range(500..40_000);
            assert!((500..40_000).contains(&a));
            let b: u8 = rng.random_range(0..12u8);
            assert!(b < 12);
            let c: usize = rng.random_range(1..=2usize);
            assert!((1..=2).contains(&c));
            let d: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
            assert!((f64::MIN_POSITIVE..1.0).contains(&d));
            let e: i64 = rng.random_range(-5i64..5);
            assert!((-5..5).contains(&e));
        }
    }

    #[test]
    fn small_ranges_hit_every_value() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 12];
        for _ in 0..1000 {
            seen[rng.random_range(0..12u8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn unit_f64_mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| rng.random::<f64>()).sum();
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(6);
        let hits = (0..20_000).filter(|_| rng.random_bool(0.3)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
        assert!(rng.random_bool(1.0));
        assert!(!rng.random_bool(0.0));
    }

    #[test]
    fn shuffle_is_a_permutation_and_choose_is_in_slice() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some_and(|x| *x < 50));
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn fill_bytes_is_deterministic() {
        let mut a = [0u8; 37];
        let mut b = [0u8; 37];
        StdRng::seed_from_u64(11).fill_bytes(&mut a);
        StdRng::seed_from_u64(11).fill_bytes(&mut b);
        assert_eq!(a, b);
        assert!(a.iter().any(|&x| x != 0));
    }
}
