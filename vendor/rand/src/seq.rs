//! Sequence helpers: in-place shuffling and uniform element choice.

use crate::{Rng, RngCore};

/// Mutating sequence operations (`rand::seq::SliceRandom`).
pub trait SliceRandom {
    /// Uniformly permutes the slice in place (Fisher–Yates).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.random_range(0..=i);
            self.swap(i, j);
        }
    }
}

/// Read-only indexed operations (`rand::seq::IndexedRandom`).
pub trait IndexedRandom {
    /// Element type.
    type Item;

    /// Uniformly picks a reference to one element, or `None` when empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> IndexedRandom for [T] {
    type Item = T;

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.random_range(0..self.len())])
        }
    }
}
