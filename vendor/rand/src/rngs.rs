//! Named generators. Only `StdRng` is provided: the deterministic,
//! seedable generator the whole simulation runs on.

use crate::chacha::ChaCha12;
use crate::{RngCore, SeedableRng};

/// The standard generator: ChaCha12, as in current upstream rand.
#[derive(Clone, Debug)]
pub struct StdRng(ChaCha12);

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.0.fill_bytes(dest)
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> StdRng {
        StdRng(ChaCha12::from_seed(seed))
    }
}
