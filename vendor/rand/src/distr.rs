//! The standard distribution: full-range integers, the unit interval for
//! floats, and a fair coin for `bool`.

use crate::RngCore;

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The distribution used by `Rng::random`: uniform over the whole type
/// (integers, `bool`) or over `[0, 1)` (floats).
#[derive(Clone, Copy, Debug, Default)]
pub struct StandardUniform;

macro_rules! standard_via_u32 {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for StandardUniform {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u32() as $t
            }
        }
    )*};
}

macro_rules! standard_via_u64 {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for StandardUniform {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

standard_via_u32!(u8, u16, u32, i8, i16, i32);
standard_via_u64!(u64, i64, usize, isize);

impl Distribution<bool> for StandardUniform {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        // Sign bit of a uniform word.
        (rng.next_u32() as i32) < 0
    }
}

impl Distribution<f64> for StandardUniform {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 uniform bits into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for StandardUniform {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        // 24 uniform bits into [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}
