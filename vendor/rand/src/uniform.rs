//! Uniform sampling from `a..b` / `a..=b` ranges.
//!
//! Integers use Lemire's widening-multiply method (unbiased, at most one
//! extra draw in the rejection loop's cold path); floats scale 53 uniform
//! bits across the span.

use crate::RngCore;
use std::ops::{Range, RangeInclusive};

/// A range that can be sampled directly, as accepted by `Rng::random_range`.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform draw from `[0, span)` for `span >= 1` via Lemire's method.
fn u64_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span >= 1);
    let mut product = u128::from(rng.next_u64()) * u128::from(span);
    let mut low = product as u64;
    if low < span {
        let threshold = span.wrapping_neg() % span;
        while low < threshold {
            product = u128::from(rng.next_u64()) * u128::from(span);
            low = product as u64;
        }
    }
    (product >> 64) as u64
}

macro_rules! uniform_int {
    ($($t:ty as $u:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = self.end.wrapping_sub(self.start) as $u as u64;
                self.start.wrapping_add(u64_below(rng, span) as $t)
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = self.into_inner();
                assert!(start <= end, "empty range in random_range");
                let span = (end.wrapping_sub(start) as $u as u64).wrapping_add(1);
                if span == 0 {
                    // Full 64-bit domain.
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(u64_below(rng, span) as $t)
            }
        }
    )*};
}

uniform_int!(
    u8 as u8,
    u16 as u16,
    u32 as u32,
    u64 as u64,
    usize as usize,
    i8 as u8,
    i16 as u16,
    i32 as u32,
    i64 as u64,
    isize as usize,
);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(
            self.start < self.end && self.start.is_finite() && self.end.is_finite(),
            "invalid f64 range in random_range"
        );
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let value = self.start + (self.end - self.start) * unit;
        // Guard against the half-open bound being hit through rounding.
        if value < self.end {
            value
        } else {
            self.start
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = self.into_inner();
        assert!(
            start <= end && start.is_finite() && end.is_finite(),
            "invalid f64 range in random_range"
        );
        let unit = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        start + (end - start) * unit
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn signed_ranges_cover_negative_spans() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen_neg = false;
        for _ in 0..200 {
            let v: i32 = rng.random_range(-3..3);
            assert!((-3..3).contains(&v));
            seen_neg |= v < 0;
        }
        assert!(seen_neg);
    }

    #[test]
    fn inclusive_hits_both_endpoints() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..500 {
            match rng.random_range(1..=2usize) {
                1 => lo = true,
                2 => hi = true,
                other => panic!("out of range: {other}"),
            }
        }
        assert!(lo && hi);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let _: u32 = rng.random_range(5..5u32);
    }
}
