//! ChaCha12 block core with a 4-block (64-word) output buffer, mirroring the
//! rand_chacha / rand_core `BlockRng` structure: `next_u32` consumes one
//! buffered word, `next_u64` consumes two (with the documented straddle
//! behaviour at the last word of the buffer).

const BUF_WORDS: usize = 64;
const BLOCK_WORDS: usize = 16;
const ROUNDS: usize = 12;

/// ChaCha12 keystream generator over a 256-bit key, zero nonce.
#[derive(Clone)]
pub struct ChaCha12 {
    key: [u32; 8],
    counter: u64,
    buf: [u32; BUF_WORDS],
    index: usize,
}

impl std::fmt::Debug for ChaCha12 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        f.debug_struct("ChaCha12")
            .field("counter", &self.counter)
            .field("index", &self.index)
            .finish_non_exhaustive()
    }
}

#[inline(always)]
fn quarter_round(state: &mut [u32; BLOCK_WORDS], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

fn block(key: &[u32; 8], counter: u64) -> [u32; BLOCK_WORDS] {
    // "expand 32-byte k" || key || 64-bit block counter || 64-bit zero nonce.
    let initial: [u32; BLOCK_WORDS] = [
        0x6170_7865,
        0x3320_646e,
        0x7962_2d32,
        0x6b20_6574,
        key[0],
        key[1],
        key[2],
        key[3],
        key[4],
        key[5],
        key[6],
        key[7],
        counter as u32,
        (counter >> 32) as u32,
        0,
        0,
    ];
    let mut working = initial;
    for _ in 0..ROUNDS / 2 {
        quarter_round(&mut working, 0, 4, 8, 12);
        quarter_round(&mut working, 1, 5, 9, 13);
        quarter_round(&mut working, 2, 6, 10, 14);
        quarter_round(&mut working, 3, 7, 11, 15);
        quarter_round(&mut working, 0, 5, 10, 15);
        quarter_round(&mut working, 1, 6, 11, 12);
        quarter_round(&mut working, 2, 7, 8, 13);
        quarter_round(&mut working, 3, 4, 9, 14);
    }
    for (w, i) in working.iter_mut().zip(initial) {
        *w = w.wrapping_add(i);
    }
    working
}

impl ChaCha12 {
    pub fn from_seed(seed: [u8; 32]) -> ChaCha12 {
        let mut key = [0u32; 8];
        for (word, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *word = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        ChaCha12 {
            key,
            counter: 0,
            buf: [0; BUF_WORDS],
            // Start exhausted so the first read generates the first buffer.
            index: BUF_WORDS,
        }
    }

    /// Refills the buffer with the next four blocks and resets the cursor.
    fn generate(&mut self) {
        for (slot, chunk) in self.buf.chunks_exact_mut(BLOCK_WORDS).enumerate() {
            chunk.copy_from_slice(&block(&self.key, self.counter + slot as u64));
        }
        self.counter += (BUF_WORDS / BLOCK_WORDS) as u64;
        self.index = 0;
    }

    pub fn next_u32(&mut self) -> u32 {
        if self.index >= BUF_WORDS {
            self.generate();
        }
        let word = self.buf[self.index];
        self.index += 1;
        word
    }

    pub fn next_u64(&mut self) -> u64 {
        let read_pair =
            |buf: &[u32; BUF_WORDS], at: usize| (u64::from(buf[at + 1]) << 32) | u64::from(buf[at]);
        if self.index < BUF_WORDS - 1 {
            let value = read_pair(&self.buf, self.index);
            self.index += 2;
            value
        } else if self.index >= BUF_WORDS {
            self.generate();
            self.index = 2;
            read_pair(&self.buf, 0)
        } else {
            // Straddle: last word of this buffer is the low half, first word
            // of the next buffer is the high half (BlockRng semantics).
            let lo = u64::from(self.buf[BUF_WORDS - 1]);
            self.generate();
            self.index = 1;
            (u64::from(self.buf[0]) << 32) | lo
        }
    }

    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let word = self.next_u32().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keystream_is_stable_across_refills() {
        let mut a = ChaCha12::from_seed([7; 32]);
        let mut b = ChaCha12::from_seed([7; 32]);
        // Push `a` to the straddle point with u32 reads, then compare a u64
        // assembled by hand against the straddle path.
        let mut head = Vec::new();
        for _ in 0..BUF_WORDS - 1 {
            head.push(a.next_u32());
        }
        let straddled = a.next_u64();
        for w in &head {
            assert_eq!(b.next_u32(), *w);
        }
        let lo = u64::from(b.next_u32());
        let hi = u64::from(b.next_u32());
        assert_eq!(straddled, (hi << 32) | lo);
    }

    #[test]
    fn different_counters_give_different_blocks() {
        let key = [1u32; 8];
        assert_ne!(block(&key, 0), block(&key, 1));
    }

    #[test]
    fn zero_key_block_is_nontrivial() {
        let b = block(&[0; 8], 0);
        assert!(b.iter().any(|&w| w != 0));
        // Not just the initial state echoed back.
        assert_ne!(b[0], 0x6170_7865);
    }
}
