//! Offline stand-in for the `crossbeam` crate.
//!
//! This repository vendors the tiny slice of crossbeam it actually uses —
//! `crossbeam::thread::scope` — implemented on top of `std::thread::scope`
//! (stable since Rust 1.63). The build environment has no access to
//! crates.io, so external dependencies are vendored as minimal
//! API-compatible shims; see `vendor/README.md`.

/// Scoped threads, mirroring `crossbeam::thread`.
pub mod thread {
    /// Result of joining a scoped thread (or the whole scope): `Err` carries
    /// the panic payload, as with `std::thread::Result`.
    pub type Result<T> = std::thread::Result<T>;

    /// A scope handle passed to the closure given to [`scope`]; lets the
    /// closure (and spawned threads) spawn further scoped threads.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a thread spawned inside a [`scope`].
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish, returning its result or the
        /// panic payload.
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope so it can
        /// spawn siblings, exactly like crossbeam's API.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || {
                    let scope = Scope { inner };
                    f(&scope)
                }),
            }
        }
    }

    /// Creates a scope for spawning threads that may borrow from the
    /// enclosing stack frame. Returns `Err` with the panic payload if the
    /// closure or any un-joined spawned thread panicked.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| {
                let scope = Scope { inner: s };
                f(&scope)
            })
        }))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_returns() {
        let data = [1u32, 2, 3];
        let sum = super::thread::scope(|s| {
            let h1 = s.spawn(|_| data.iter().sum::<u32>());
            let h2 = s.spawn(|_| data.len() as u32);
            h1.join().unwrap() + h2.join().unwrap()
        })
        .unwrap();
        assert_eq!(sum, 9);
    }

    #[test]
    fn nested_spawn_via_scope_arg() {
        let n = super::thread::scope(|s| {
            s.spawn(|inner| inner.spawn(|_| 7u32).join().unwrap())
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(n, 7);
    }

    #[test]
    fn panics_surface_as_err() {
        let r = super::thread::scope(|s| {
            let h = s.spawn(|_| panic!("boom"));
            h.join()
        })
        .unwrap();
        assert!(r.is_err());
    }
}
