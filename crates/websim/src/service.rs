//! Third-party services: the cast of trackers, ad networks, CDNs and
//! widgets, with behavior calibrated from the paper's published aggregates.
//!
//! Each service declares *where* it is embedded (per-corpus, per-popularity-
//! tier adoption probabilities), *what it does* (cookies and their encoded
//! payloads, cookie syncing, canvas/font/WebRTC fingerprinting, mining,
//! malware), *how lists see it* (EasyList coverage — domain-wide vs
//! path-only, which is how a domain can be "known ATS" while its
//! fingerprinting script URLs stay unindexed, §5.1.3 — and Disconnect
//! membership) and *how it is attributable* (X.509 subject organization).

use redlight_net::geoip::Country;
use serde::{Deserialize, Serialize};

use crate::org::OrgId;

/// Index into the service table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ServiceId(pub u32);

/// What the service sells.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ServiceCategory {
    /// Advertising network / exchange.
    AdNetwork,
    /// Audience analytics.
    Analytics,
    /// Content delivery / static hosting.
    Cdn,
    /// Social-network widgets.
    Social,
    /// Data broker / marketplace.
    DataBroker,
    /// Browser cryptomining.
    Cryptominer,
    /// Anti-fraud / security widgets (e.g. the adsco.re analog).
    Security,
    /// Content widgets (sharing buttons, players, live-cam embeds).
    Widget,
}

/// HTTP-cookie behavior of a service's pixel endpoint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CookieBehavior {
    /// Cookies set per visit (distinct names).
    pub cookies_per_visit: u8,
    /// Length (chars) of the opaque identifier part.
    pub id_len: u8,
    /// Fraction of this service's cookies that embed the client IP
    /// (base64-encoded payload), as ExoClick's do (§5.1.1).
    pub embed_ip_ratio: f64,
    /// Stores approximate geolocation (lat/lon) in a cookie.
    pub embed_geo: bool,
    /// Geo cookie additionally names the access network provider.
    pub geo_includes_isp: bool,
    /// Fraction of deployments that receive persistent ID cookies; the rest
    /// get session cookies only (filtered out by the §5.1.1 ID-cookie
    /// heuristic). This is how a service can be *present* on 31 % of sites
    /// while *delivering ID cookies* on 21 % (ExoSrv).
    pub id_ratio: f64,
    /// Sets a >1,000-character cookie (JuicyAds/TrafficStars style).
    pub long_value: bool,
}

impl CookieBehavior {
    /// A plain persistent uid cookie on every deployment.
    pub fn uid(id_len: u8) -> Self {
        CookieBehavior {
            cookies_per_visit: 1,
            id_len,
            embed_ip_ratio: 0.0,
            embed_geo: false,
            geo_includes_isp: false,
            id_ratio: 1.0,
            long_value: false,
        }
    }
}

/// Fingerprinting behavior.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct FpBehavior {
    /// Serves canvas-fingerprinting scripts that satisfy the Englehardt
    /// criteria.
    pub canvas: bool,
    /// Fraction of this service's deployments that actually carry the canvas
    /// script (a CDN can be on 950 sites yet fingerprint on 31).
    pub canvas_site_fraction: f64,
    /// Scripts per canvas deployment: `(min, max)` inclusive. Distinct
    /// variants per site explain the paper's 41 scripts on 26 sites.
    pub canvas_scripts: (u8, u8),
    /// Size of the script-variant pool; `0` = a unique variant per site.
    /// A pool of 1 means every site gets the identical script.
    pub canvas_pool: u8,
    /// Fraction of canvas variants served from the `/fpx/` path family that
    /// the synthetic EasyList indexes (the 9 % of scripts that ARE indexed,
    /// §5.1.3 finds 91 % unindexed).
    pub indexed_frac: f64,
    /// Serves the (single) font-fingerprinting script (≥50× `measureText`).
    pub font: bool,
    /// Uses WebRTC APIs.
    pub webrtc: bool,
    /// Serves canvas-using scripts that do NOT meet the criteria (UI decoys:
    /// small canvases, `save`/`restore` usage) — false-positive pressure for
    /// the detector.
    pub decoy_canvas: bool,
}

impl FpBehavior {
    /// Canvas fingerprinting on every deployment, one variant per site.
    pub fn canvas_everywhere(scripts: (u8, u8)) -> Self {
        FpBehavior {
            canvas: true,
            canvas_site_fraction: 1.0,
            canvas_scripts: scripts,
            canvas_pool: 0,
            indexed_frac: 0.0,
            font: false,
            webrtc: false,
            decoy_canvas: false,
        }
    }
}

/// How the synthetic EasyList/EasyPrivacy cover the service.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ListCoverage {
    /// Not indexed at all.
    None,
    /// `||domain^` rule: every URL on the domain matches.
    DomainWide,
    /// Only ad-serving paths are indexed (`||domain/ads/`): the domain is
    /// ATS under relaxed FQDN matching, but its `/fp/…` script URLs are not.
    PathOnly,
}

/// Per-corpus, per-tier adoption probabilities, ordered
/// `[Top1k, To10k, To100k, Beyond100k]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Adoption {
    /// Porn.
    pub porn: [f64; 4],
    /// Regular.
    pub regular: [f64; 4],
}

impl Adoption {
    /// Uniform adoption across tiers.
    pub fn flat(porn: f64, regular: f64) -> Self {
        Adoption {
            porn: [porn; 4],
            regular: [regular; 4],
        }
    }

    /// Not deployed anywhere by probability (long-tail services are placed
    /// explicitly instead).
    pub fn none() -> Self {
        Self::flat(0.0, 0.0)
    }
}

/// A third-party service.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThirdPartyService {
    /// Id.
    pub id: ServiceId,
    /// Org.
    pub org: OrgId,
    /// Human label ("ExoClick").
    pub label: String,
    /// Primary FQDN the service serves from.
    pub fqdn: String,
    /// Additional FQDNs (e.g. `doublepimpssl.com`).
    pub extra_fqdns: Vec<String>,
    /// Category.
    pub category: ServiceCategory,
    /// Whether the service supports HTTPS.
    pub https: bool,
    /// Adoption.
    pub adoption: Adoption,
    /// Countries the service serves; `None` = worldwide.
    pub countries: Option<Vec<Country>>,
    /// Cookies.
    pub cookies: Option<CookieBehavior>,
    /// Cookie-sync partners (service ids), filled during registry wiring.
    pub sync_to: Vec<ServiceId>,
    /// Percentage of placements on which a repeat-sighting fires the sync
    /// redirect. High-reach networks match selectively (partners pay per
    /// matched user); small trackers sync everywhere they can.
    pub sync_gate_pct: u8,
    /// Real-time-bidding demand partners reached through iframe chains.
    pub rtb_partners: Vec<ServiceId>,
    /// Fp.
    pub fp: FpBehavior,
    /// Runs a cryptominer on the page.
    pub miner: bool,
    /// Flagged by the threat-intel ensemble.
    pub malicious: bool,
    /// List coverage.
    pub list_coverage: ListCoverage,
    /// Present in the Disconnect entity list.
    pub in_disconnect: bool,
    /// X.509 subject organization, when the cert is attributable.
    pub cert_org: Option<String>,
}

impl ThirdPartyService {
    /// All FQDNs the service serves from.
    pub fn all_fqdns(&self) -> impl Iterator<Item = &str> {
        std::iter::once(self.fqdn.as_str()).chain(self.extra_fqdns.iter().map(String::as_str))
    }

    /// `true` when the service operates in `country`.
    pub fn serves(&self, country: Country) -> bool {
        match &self.countries {
            None => true,
            Some(list) => list.contains(&country),
        }
    }
}

/// A registry of services with id-based lookup.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ServiceRegistry {
    services: Vec<ThirdPartyService>,
}

impl ServiceRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a service (its `id` field is overwritten with the slot index).
    pub fn add(&mut self, mut service: ThirdPartyService) -> ServiceId {
        let id = ServiceId(self.services.len() as u32);
        service.id = id;
        self.services.push(service);
        id
    }

    /// Borrows a service.
    pub fn get(&self, id: ServiceId) -> &ThirdPartyService {
        &self.services[id.0 as usize]
    }

    /// Mutable borrow (used when wiring sync/RTB partners).
    pub fn get_mut(&mut self, id: ServiceId) -> &mut ThirdPartyService {
        &mut self.services[id.0 as usize]
    }

    /// Finds a service by its primary FQDN.
    pub fn by_fqdn(&self, fqdn: &str) -> Option<&ThirdPartyService> {
        self.services
            .iter()
            .find(|s| s.all_fqdns().any(|f| f == fqdn))
    }

    /// Finds a service by label.
    pub fn by_label(&self, label: &str) -> Option<&ThirdPartyService> {
        self.services.iter().find(|s| s.label == label)
    }

    /// All services.
    pub fn iter(&self) -> impl Iterator<Item = &ThirdPartyService> {
        self.services.iter()
    }

    /// Number of services.
    pub fn len(&self) -> usize {
        self.services.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.services.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy(label: &str, fqdn: &str) -> ThirdPartyService {
        ThirdPartyService {
            id: ServiceId(0),
            org: OrgId(0),
            label: label.into(),
            fqdn: fqdn.into(),
            extra_fqdns: vec![],
            category: ServiceCategory::AdNetwork,
            https: true,
            adoption: Adoption::flat(0.1, 0.0),
            countries: None,
            cookies: Some(CookieBehavior::uid(16)),
            sync_to: vec![],
            sync_gate_pct: 100,
            rtb_partners: vec![],
            fp: FpBehavior::default(),
            miner: false,
            malicious: false,
            list_coverage: ListCoverage::DomainWide,
            in_disconnect: false,
            cert_org: None,
        }
    }

    #[test]
    fn registry_assigns_ids_and_looks_up() {
        let mut reg = ServiceRegistry::new();
        let mut exo = dummy("ExoClick", "exoclick.com");
        exo.extra_fqdns.push("exosrv.com".into());
        let a = reg.add(exo);
        let b = reg.add(dummy("JuicyAds", "juicyads.com"));
        assert_eq!(a, ServiceId(0));
        assert_eq!(b, ServiceId(1));
        assert_eq!(reg.by_fqdn("exosrv.com").unwrap().label, "ExoClick");
        assert_eq!(reg.by_label("JuicyAds").unwrap().id, b);
        assert!(reg.by_fqdn("missing.com").is_none());
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn country_gating() {
        let mut s = dummy("RuAds", "ruads.ru");
        assert!(s.serves(Country::Spain));
        s.countries = Some(vec![Country::Russia]);
        assert!(s.serves(Country::Russia));
        assert!(!s.serves(Country::Spain));
    }

    #[test]
    fn adoption_helpers() {
        let a = Adoption::flat(0.4, 0.01);
        assert_eq!(a.porn, [0.4; 4]);
        assert_eq!(Adoption::none().regular, [0.0; 4]);
    }
}
