//! # redlight-websim
//!
//! A deterministic synthetic web ecosystem, calibrated from the aggregates
//! published in the IMC'19 study. It stands in for the live web the paper
//! crawled (see DESIGN.md, substitution table): organizations, publishers,
//! third-party services, websites with rank trajectories, landing pages,
//! tracker scripts, certificates, DNS/WHOIS records, per-country serving
//! behavior, and a VirusTotal-style threat-intel ensemble.
//!
//! The measurement pipeline (browser, crawlers, analyses) consumes **only**
//! the HTTP surface exposed by [`server::WebServer`]; ground truth inside
//! [`world::World`] is reserved for validation tests and the
//! manual-inspection [`oracle`].
//!
//! Everything is generated from a single seed: two worlds built with the
//! same [`config::WorldConfig`] are identical.

#![warn(missing_docs)]

pub mod catalog;
pub mod config;
pub mod content;
pub mod lists;
pub mod oracle;
pub mod org;
pub mod policygen;
pub mod scriptgen;
pub mod server;
pub mod service;
pub mod sitegen;
pub mod threat;
pub mod world;

pub use config::WorldConfig;
pub use org::{OrgId, OrgKind, Organization};
pub use server::{ClientContext, DirectTransport, FetchOutcome, WebServer};
pub use service::{ServiceCategory, ServiceId, ThirdPartyService};
pub use sitegen::{Site, SiteId, SiteKind};
pub use world::World;
