//! Privacy-policy generation.
//!
//! Calibrated against §7.3: 16 % of porn sites link a policy; 20 % of
//! policies mention the GDPR explicitly; lengths span 1,088 – 243,649
//! letters (mean ≈ 17,159); 76 % of policy pairs have TF-IDF similarity
//! ≥ 0.5 — the product of heavy legal boilerplate and template reuse —
//! while same-company sites share a near-identical template (similarity ≈ 1,
//! which is exactly the signal §4.1's owner discovery exploits).
//!
//! The ≥ 0.5 ceiling breaks across languages: a Russian policy shares no
//! vocabulary with an English one, so the sub-0.5 quartile is mostly
//! cross-language pairs (and broken/short policies).

use redlight_text::lang::Language;
use serde::{Deserialize, Serialize};

/// Which text skeleton a policy uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PolicyTemplate {
    /// The owning company's shared template (index into
    /// [`crate::org::PUBLISHERS`]).
    Company(u32),
    /// One of the dozen generic CMS templates circulating the ecosystem.
    Generic(u8),
    /// A bespoke policy.
    Unique(u32),
}

/// What the policy discloses (the Polisis-style §7.3 check).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PolicyDisclosures {
    /// Cookies.
    pub cookies: bool,
    /// Data types.
    pub data_types: bool,
    /// Third parties.
    pub third_parties: bool,
    /// Disclosures include the complete list of embedded third parties
    /// (exactly one site in the paper).
    pub full_third_party_list: bool,
}

/// A site's privacy policy, as ground truth.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicySpec {
    /// Template.
    pub template: PolicyTemplate,
    /// Language.
    pub language: Language,
    /// Mentions GDPR.
    pub mentions_gdpr: bool,
    /// Target length in letters.
    pub target_letters: u32,
    /// Disclosures.
    pub disclosures: PolicyDisclosures,
    /// Link path on the site (language-dependent).
    pub path: String,
    /// The link exists but the server answers with an HTTP error — the §7.3
    /// sanitization found 44 such false positives.
    pub broken: bool,
}

/// The policy link path for a language.
pub fn policy_path(language: Language) -> &'static str {
    match language {
        Language::English => "/privacy-policy",
        Language::Spanish => "/politica-de-privacidad",
        Language::French => "/politique-de-confidentialite",
        Language::Portuguese => "/politica-de-privacidade",
        Language::Russian => "/policy-konfidencialnosti",
        Language::Italian => "/informativa-privacy",
        Language::German => "/datenschutz-richtlinie",
        Language::Romanian => "/politica-de-confidentialitate",
    }
}

/// The anchor text used for the policy link.
pub fn policy_link_text(language: Language) -> &'static str {
    match language {
        Language::English => "Privacy Policy",
        Language::Spanish => "Política de privacidad",
        Language::French => "Politique de confidentialité",
        Language::Portuguese => "Política de privacidade",
        Language::Russian => "Политика конфиденциальности",
        Language::Italian => "Informativa sulla privacy",
        Language::German => "Datenschutz-Richtlinie",
        Language::Romanian => "Politica de confidențialitate",
    }
}

/// Shared legal boilerplate per language (the TF-IDF mass that keeps
/// same-language pairs above 0.5).
fn boilerplate(language: Language) -> &'static str {
    match language {
        Language::English => {
            "This privacy policy describes how this website collects uses stores and shares \
             personal information about visitors. We process browsing data device identifiers \
             and usage statistics to operate the service improve content delivery and measure \
             audience engagement. Information may be retained for as long as necessary to \
             provide the service and comply with legal obligations. Visitors may contact the \
             operator to request access correction or deletion of personal information. \
             The website uses cookies and similar technologies to remember preferences \
             authenticate sessions and analyze traffic patterns. Continued use of the service \
             constitutes acceptance of the practices described in this policy. The operator \
             may update this policy from time to time and material changes will be posted on \
             this page. Personal information is protected using reasonable technical and \
             organizational security measures."
        }
        Language::Spanish => {
            "Esta política de privacidad describe cómo este sitio web recopila utiliza \
             almacena y comparte información personal sobre los visitantes. Procesamos datos \
             de navegación identificadores de dispositivos y estadísticas de uso para operar \
             el servicio. El sitio web utiliza cookies y tecnologías similares para recordar \
             preferencias autenticar sesiones y analizar el tráfico. El operador puede \
             actualizar esta política y los cambios se publicarán en esta página."
        }
        Language::Russian => {
            "Настоящая политика конфиденциальности описывает как данный веб сайт собирает \
             использует хранит и передает персональную информацию посетителей. Мы \
             обрабатываем данные просмотра идентификаторы устройств и статистику \
             использования для работы сервиса. Сайт использует файлы cookie и аналогичные \
             технологии для запоминания настроек аутентификации сессий и анализа трафика."
        }
        Language::French => {
            "Cette politique de confidentialité décrit comment ce site web collecte utilise \
             stocke et partage les informations personnelles des visiteurs. Nous traitons les \
             données de navigation les identifiants d'appareils et les statistiques \
             d'utilisation pour exploiter le service. Le site utilise des cookies et des \
             technologies similaires pour mémoriser les préférences et analyser le trafic."
        }
        Language::Portuguese => {
            "Esta política de privacidade descreve como este site coleta usa armazena e \
             compartilha informações pessoais sobre visitantes. Processamos dados de \
             navegação identificadores de dispositivos e estatísticas de uso para operar o \
             serviço. O site usa cookies e tecnologias semelhantes para lembrar preferências \
             e analisar o tráfego."
        }
        Language::Italian => {
            "La presente informativa sulla privacy descrive come questo sito web raccoglie \
             utilizza conserva e condivide le informazioni personali dei visitatori. \
             Trattiamo dati di navigazione identificatori dei dispositivi e statistiche di \
             utilizzo per gestire il servizio. Il sito utilizza cookie e tecnologie simili \
             per ricordare le preferenze e analizzare il traffico."
        }
        Language::German => {
            "Diese Datenschutzrichtlinie beschreibt wie diese Webseite personenbezogene \
             Informationen über Besucher erhebt verwendet speichert und weitergibt. Wir \
             verarbeiten Browserdaten Gerätekennungen und Nutzungsstatistiken um den Dienst \
             zu betreiben. Die Webseite verwendet Cookies und ähnliche Technologien um \
             Einstellungen zu speichern und den Verkehr zu analysieren."
        }
        Language::Romanian => {
            "Această politică de confidențialitate descrie modul în care acest site web \
             colectează utilizează stochează și partajează informații personale despre \
             vizitatori. Prelucrăm date de navigare identificatori de dispozitive și \
             statistici de utilizare pentru a opera serviciul. Site-ul folosește cookie-uri \
             și tehnologii similare pentru a reține preferințele și a analiza traficul."
        }
    }
}

/// Template-specific flavor sections (English templates only: the generic
/// CMS templates in the wild are English).
const GENERIC_SECTIONS: &[&str] = &[
    "Advertising partners may display interest based advertisements using pseudonymous \
     identifiers collected through embedded tags.",
    "Payment processing for premium memberships is handled by external billing providers \
     under separate terms.",
    "Video playback statistics buffering quality and player interactions are recorded to \
     optimize streaming performance.",
    "Community features including comments favorites and playlists store the content you \
     submit together with timestamps.",
    "Age verification records where required by applicable law are processed by specialized \
     compliance vendors.",
    "Newsletter subscriptions store your email address until you withdraw consent by using \
     the unsubscribe link.",
    "Affiliate programs attribute referred traffic using campaign parameters appended to \
     inbound links.",
    "Content delivery networks cache static assets in regional data centers to reduce \
     latency for distant visitors.",
    "Fraud prevention systems evaluate connection characteristics to detect automated \
     abuse and invalid advertising traffic.",
    "Live streaming interactions such as tips chat messages and private sessions are \
     processed by the broadcasting platform.",
    "Search queries entered on the website are aggregated to surface trending categories \
     and improve recommendations.",
    "Model verification documents are retained as required by record keeping regulations \
     applicable to adult content producers.",
];

/// The GDPR paragraph (the §7.3 string-match target).
const GDPR_PARAGRAPH: &str =
    "In accordance with the General Data Protection Regulation GDPR European visitors have \
     the right to access rectify erase restrict and object to the processing of their \
     personal data and the right to data portability. The legal bases for processing are \
     consent contract performance and legitimate interest under GDPR Article 6.";

/// Renders a policy's full text.
///
/// `site_domain` individualizes the text slightly; `company` (when the
/// template is a company template) is embedded verbatim so same-company
/// policies are near-identical; `third_parties` feeds the disclosure
/// section.
pub fn render_policy(
    spec: &PolicySpec,
    site_domain: &str,
    company: Option<&str>,
    third_parties: &[String],
) -> String {
    if spec.broken {
        return String::new(); // the server will answer 404 for these
    }
    let mut out = String::new();
    let boiler = boilerplate(spec.language);

    match spec.template {
        PolicyTemplate::Company(_) => {
            let co = company.unwrap_or("the operating company");
            out.push_str(&format!(
                "Privacy Policy. This website is operated by {co}. "
            ));
            out.push_str(boiler);
            out.push(' ');
            out.push_str(&format!(
                "All network properties of {co} share this unified privacy statement. \
                 Questions may be directed to the data protection office of {co}. "
            ));
            // Company templates embed two fixed flavor sections so the
            // whole cluster is mutually near-identical.
            out.push_str(GENERIC_SECTIONS[0]);
            out.push(' ');
            out.push_str(GENERIC_SECTIONS[7]);
        }
        PolicyTemplate::Generic(t) => {
            out.push_str("Privacy Policy. ");
            out.push_str(boiler);
            out.push(' ');
            // Each generic template mixes three fixed sections.
            let t = t as usize;
            for k in 0..3 {
                out.push_str(GENERIC_SECTIONS[(t + k * 4) % GENERIC_SECTIONS.len()]);
                out.push(' ');
            }
        }
        PolicyTemplate::Unique(u) => {
            out.push_str(&format!("Privacy statement for {site_domain}. "));
            out.push_str(boiler);
            out.push(' ');
            out.push_str(GENERIC_SECTIONS[(u as usize) % GENERIC_SECTIONS.len()]);
            out.push(' ');
            // Bespoke operational details: unique token salt keeps bespoke
            // policies from clustering with each other at 1.0.
            out.push_str(&format!(
                "Operational annex {u}: retention window {} days, registrar reference \
                 {site_domain}-{u}, escalation mailbox privacy-{u}. ",
                30 + (u % 300)
            ));
        }
    }

    if spec.mentions_gdpr {
        out.push(' ');
        out.push_str(GDPR_PARAGRAPH);
    }

    if spec.disclosures.cookies {
        out.push_str(
            " Cookies disclosure: this website stores first party cookies and permits \
             selected partners to store third party cookies for advertising measurement. ",
        );
    }
    if spec.disclosures.data_types {
        out.push_str(
            " Data categories collected include IP address approximate location browser \
             characteristics viewing history and interaction events. ",
        );
    }
    if spec.disclosures.third_parties {
        if spec.disclosures.full_third_party_list && !third_parties.is_empty() {
            out.push_str(" The complete list of embedded third party services is: ");
            out.push_str(&third_parties.join(", "));
            out.push_str(". ");
        } else {
            out.push_str(
                " Selected advertising and analytics partners receive pseudonymous usage \
                 data; the list of partners is available on request. ",
            );
        }
    }

    // Pad to the target length by cycling boilerplate paragraphs (legal
    // documents repeat themselves; this also preserves TF-IDF mass).
    // Non-English policies pad with their own boilerplate only, so
    // cross-language pairs stay dissimilar (§7.3's sub-0.5 quartile).
    let letters = |s: &str| s.chars().filter(|c| c.is_alphabetic()).count();
    let mut cursor = 0usize;
    while letters(&out) < spec.target_letters as usize {
        out.push(' ');
        out.push_str(boiler);
        if spec.language == Language::English {
            out.push(' ');
            out.push_str(GENERIC_SECTIONS[cursor % GENERIC_SECTIONS.len()]);
        }
        cursor += 1;
    }
    // Short targets: trim whole words down to the target so the corpus
    // reaches the paper's 1,088-letter minimum.
    if letters(&out) > spec.target_letters as usize {
        let mut acc = 0usize;
        let mut cut = out.len();
        for (idx, word) in out.split_word_bound_indices() {
            acc += word.chars().filter(|c| c.is_alphabetic()).count();
            if acc >= spec.target_letters as usize {
                cut = idx + word.len();
                break;
            }
        }
        out.truncate(cut);
    }
    out
}

/// Poor man's word-boundary iterator (whitespace splits), yielding
/// `(byte offset, word)` like the unicode-segmentation API would.
trait SplitWords {
    fn split_word_bound_indices(&self) -> Vec<(usize, &str)>;
}

impl SplitWords for String {
    fn split_word_bound_indices(&self) -> Vec<(usize, &str)> {
        let mut out = Vec::new();
        let mut start = None;
        for (i, c) in self.char_indices() {
            if c.is_whitespace() {
                if let Some(s) = start.take() {
                    out.push((s, &self[s..i]));
                }
            } else if start.is_none() {
                start = Some(i);
            }
        }
        if let Some(s) = start {
            out.push((s, &self[s..]));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use redlight_text::tfidf::TfIdfModel;
    use redlight_text::tokenize::letter_count;

    fn spec(template: PolicyTemplate, lang: Language, letters: u32) -> PolicySpec {
        PolicySpec {
            template,
            language: lang,
            mentions_gdpr: false,
            target_letters: letters,
            disclosures: PolicyDisclosures::default(),
            path: policy_path(lang).to_string(),
            broken: false,
        }
    }

    #[test]
    fn length_targets_are_respected() {
        let s = spec(PolicyTemplate::Unique(7), Language::English, 5_000);
        let text = render_policy(&s, "example.com", None, &[]);
        let n = letter_count(&text);
        assert!(n >= 5_000, "{n}");
        assert!(n < 8_000, "padding should stop near the target: {n}");
    }

    #[test]
    fn company_templates_are_near_identical() {
        let s = spec(PolicyTemplate::Company(1), Language::English, 3_000);
        let a = render_policy(&s, "pornhub.com", Some("MindGeek"), &[]);
        let b = render_policy(&s, "tube8-analog.com", Some("MindGeek"), &[]);
        let m = TfIdfModel::fit(&[a, b]);
        assert!(m.similarity(0, 1) > 0.95);
    }

    #[test]
    fn same_language_policies_stay_above_half() {
        let a = render_policy(
            &spec(PolicyTemplate::Generic(2), Language::English, 4_000),
            "a.com",
            None,
            &[],
        );
        let b = render_policy(
            &spec(PolicyTemplate::Unique(9), Language::English, 9_000),
            "b.com",
            None,
            &[],
        );
        let m = TfIdfModel::fit(&[a, b]);
        assert!(m.similarity(0, 1) >= 0.5, "sim = {}", m.similarity(0, 1));
    }

    #[test]
    fn cross_language_policies_diverge() {
        let a = render_policy(
            &spec(PolicyTemplate::Generic(2), Language::English, 3_000),
            "a.com",
            None,
            &[],
        );
        let b = render_policy(
            &spec(PolicyTemplate::Generic(2), Language::Russian, 3_000),
            "b.ru",
            None,
            &[],
        );
        let m = TfIdfModel::fit(&[a, b]);
        assert!(m.similarity(0, 1) < 0.5, "sim = {}", m.similarity(0, 1));
    }

    #[test]
    fn gdpr_mention_is_string_matchable() {
        let mut s = spec(PolicyTemplate::Generic(0), Language::English, 2_000);
        s.mentions_gdpr = true;
        let text = render_policy(&s, "x.com", None, &[]);
        assert!(text.contains("GDPR"));
        let s2 = spec(PolicyTemplate::Generic(0), Language::English, 2_000);
        assert!(!render_policy(&s2, "x.com", None, &[]).contains("GDPR"));
    }

    #[test]
    fn full_third_party_list_is_embedded() {
        let mut s = spec(PolicyTemplate::Unique(1), Language::English, 2_000);
        s.disclosures.third_parties = true;
        s.disclosures.full_third_party_list = true;
        let parties = vec!["exoclick.com".to_string(), "addthis.com".to_string()];
        let text = render_policy(&s, "x.com", None, &parties);
        assert!(text.contains("exoclick.com"));
        assert!(text.contains("addthis.com"));
    }

    #[test]
    fn broken_policies_render_empty() {
        let mut s = spec(PolicyTemplate::Unique(1), Language::English, 2_000);
        s.broken = true;
        assert!(render_policy(&s, "x.com", None, &[]).is_empty());
    }

    #[test]
    fn paths_cover_all_languages() {
        for lang in Language::ALL {
            assert!(policy_path(lang).starts_with('/'));
            assert!(!policy_link_text(lang).is_empty());
        }
    }
}
