//! Tracker-script generation.
//!
//! Every script the synthetic web serves is source text in the
//! `redlight-script` mini-language; the instrumented browser interprets it
//! and records the host-API calls, exactly as OpenWPM records JavaScript
//! calls. Script text is a pure function of `(service fqdn, scheme,
//! variant, behavior)` so identical deployments share bytes and the
//! "distinct scripts" counts of §5.1.3 are meaningful.

use crate::service::ThirdPartyService;

/// Scheme string for a service.
fn scheme(https: bool) -> &'static str {
    if https {
        "https"
    } else {
        "http"
    }
}

/// The standard ad/analytics tag: fires the measurement pixel (which is
/// where HTTP cookies get set) and, for RTB exchanges, opens the auction
/// frame that pulls demand partners in (the inclusion chain of §3.1).
pub fn tag_script(svc: &ThirdPartyService, variant: u32) -> String {
    let s = scheme(svc.https);
    let fqdn = &svc.fqdn;
    let mut out = String::new();
    out.push_str(&format!(
        "// {label} tag v{variant}\n\
         let ua = navigator.userAgent();\n\
         let w = screen.width();\n\
         http.pixel('{s}://{fqdn}/px?v={variant}&sid=' + page.host() + '&w=' + w);\n",
        label = svc.label,
    ));
    // Auctions are expensive: the exchange opens its RTB frame on roughly a
    // third of placements (keeps demand-partner reach below exchange reach,
    // as Fig. 3 shows).
    if !svc.rtb_partners.is_empty() && variant.is_multiple_of(3) {
        out.push_str(&format!(
            "dom.createFrame('{s}://{fqdn}/frame?v={variant}&sid=' + page.host());\n"
        ));
    }
    out
}

/// Google-Analytics-style first-party measurement: sets a *first-party*
/// cookie via `document.cookie` (scripts run in page context), then beacons.
pub fn analytics_script(svc: &ThirdPartyService, variant: u32) -> String {
    let s = scheme(svc.https);
    let fqdn = &svc.fqdn;
    format!(
        "// {label} analytics v{variant}\n\
         let cid = document.getCookie('_fpid');\n\
         if cid == null || cid == '' {{\n\
           cid = 'fp.' + page.host() + '.{variant}.' + entropy.value();\n\
           document.setCookie('_fpid', cid, 63072000);\n\
         }}\n\
         http.beacon('{s}://{fqdn}/collect?v={variant}&cid=' + substr(cid, 3, len(cid)) + '&dl=' + page.host());\n",
        label = svc.label,
    )
}

/// A canvas-fingerprinting script that satisfies every Englehardt criterion
/// the detector checks (§5.1.3): canvas ≥ 16×16, ≥ 2 fill colors, drawn text
/// with > 10 distinct characters, and a `toDataURL` readback — without ever
/// touching `save`/`restore`/`addEventListener`.
pub fn canvas_fp_script(svc: &ThirdPartyService, variant: u32) -> String {
    let s = scheme(svc.https);
    let fqdn = &svc.fqdn;
    // Pangram-ish payloads keep >10 distinct characters; the variant swaps
    // the exact text and colors so each variant hashes differently.
    let texts = [
        "Cwm fjordbank glyphs vext quiz 08",
        "Sphinx of black quartz judge my vow 19",
        "Pack my box with five dozen liquor jugs 27",
        "How vexingly quick daft zebras jump 35",
    ];
    let text = texts[(variant as usize) % texts.len()];
    let hue = 10 + (variant % 340);
    format!(
        "// cfp {fqdn} v{variant}\n\
         canvas.create(240, 60);\n\
         canvas.fillStyle('#f60');\n\
         canvas.fillRect(0, 0, 240, 60);\n\
         canvas.fillStyle('hsl({hue},80%,40%)');\n\
         canvas.fillText('{text}', 2, 15);\n\
         canvas.fillStyle('rgba(102,204,0,0.7)');\n\
         canvas.fillText('{text}', 4, 17);\n\
         let fp = canvas.toDataURL();\n\
         http.beacon('{s}://{fqdn}/fp-collect?v={variant}&h=' + entropy.hash(fp));\n"
    )
}

/// A canvas-using script that must NOT be counted: small canvas, single
/// color, short text, and `save`/`restore` — a sparkline/UI widget.
pub fn decoy_canvas_script(owner_fqdn: &str, https: bool) -> String {
    let s = scheme(https);
    format!(
        "// ui sparkline widget\n\
         canvas.create(12, 12);\n\
         canvas.save();\n\
         canvas.fillStyle('#ccc');\n\
         canvas.fillText('ok', 1, 9);\n\
         canvas.restore();\n\
         canvas.addEventListener('click');\n\
         let d = canvas.toDataURL();\n\
         http.beacon('{s}://{owner_fqdn}/widget-metrics?l=' + len(d));\n"
    )
}

/// The font-fingerprinting script (online-metrix.net analog): sets the font
/// and measures the same string across ≥ 50 fonts (§5.1.3's strict rule).
pub fn font_fp_script(svc: &ThirdPartyService) -> String {
    let s = scheme(svc.https);
    let fqdn = &svc.fqdn;
    format!(
        "// font probe {fqdn}\n\
         canvas.create(64, 16);\n\
         let acc = 0;\n\
         for i in 0..56 {{\n\
           canvas.setFont('probe-font-' + i);\n\
           let m = canvas.measureText('mmmmmmmmmmlli');\n\
           acc = acc + m;\n\
         }}\n\
         http.beacon('{s}://{fqdn}/font-collect?sum=' + acc);\n"
    )
}

/// A WebRTC address-harvesting script (§5.1.4).
pub fn webrtc_script(svc: &ThirdPartyService, variant: u32) -> String {
    let s = scheme(svc.https);
    let fqdn = &svc.fqdn;
    format!(
        "// rtc probe {fqdn} v{variant}\n\
         webrtc.createConnection();\n\
         webrtc.createDataChannel('probe{variant}');\n\
         let localip = webrtc.candidate();\n\
         http.beacon('{s}://{fqdn}/rtc-collect?v={variant}&l=' + localip);\n"
    )
}

/// A browser cryptominer loader (§5.3).
pub fn miner_script(svc: &ThirdPartyService) -> String {
    let s = scheme(svc.https);
    let fqdn = &svc.fqdn;
    format!(
        "// miner loader {fqdn}\n\
         miner.start(4);\n\
         http.beacon('{s}://{fqdn}/hashrate?w=' + screen.width());\n"
    )
}

/// The first-party site script: session bookkeeping cookies (some
/// persistent, some session — feeding the §5.1.1 totals).
pub fn first_party_script(domain: &str, n_persistent: u8, n_session: u8) -> String {
    let mut out = format!("// site core {domain}\n");
    for i in 0..n_persistent {
        out.push_str(&format!(
            "document.setCookie('pref{i}', 'v' + entropy.value() + 'x{i}', 2592000);\n"
        ));
    }
    for i in 0..n_session {
        out.push_str(&format!(
            "document.setCookie('sess{i}', 's' + entropy.value(), 0);\n"
        ));
    }
    out
}

/// A first-party canvas-fingerprinting script (the ~26 % of §5.1.3 scripts
/// that are not delivered by third parties).
pub fn first_party_canvas_script(domain: &str, https: bool) -> String {
    let s = scheme(https);
    format!(
        "// inhouse cfp {domain}\n\
         canvas.create(200, 40);\n\
         canvas.fillStyle('#123456');\n\
         canvas.fillRect(0, 0, 200, 40);\n\
         canvas.fillStyle('#fedcba');\n\
         canvas.fillText('Grumpy wizards make toxic brew {domain}', 3, 20);\n\
         let fp = canvas.toDataURL();\n\
         http.beacon('{s}://{domain}/own-fp?h=' + entropy.hash(fp));\n"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::org::OrgId;
    use crate::service::{
        Adoption, FpBehavior, ListCoverage, ServiceCategory, ServiceId, ThirdPartyService,
    };
    use redlight_script::{parse_program, run, CollectingHost};

    fn svc(fqdn: &str, https: bool) -> ThirdPartyService {
        ThirdPartyService {
            id: ServiceId(0),
            org: OrgId(0),
            label: "Test".into(),
            fqdn: fqdn.into(),
            extra_fqdns: vec![],
            category: ServiceCategory::AdNetwork,
            https,
            adoption: Adoption::none(),
            countries: None,
            cookies: None,
            sync_to: vec![],
            sync_gate_pct: 100,
            rtb_partners: vec![],
            fp: FpBehavior::default(),
            miner: false,
            malicious: false,
            list_coverage: ListCoverage::None,
            in_disconnect: false,
            cert_org: None,
        }
    }

    fn assert_parses(src: &str) {
        parse_program(src).unwrap_or_else(|e| panic!("script fails to parse: {e}\n{src}"));
    }

    #[test]
    fn all_generated_scripts_parse() {
        let s = svc("tracker.net", true);
        assert_parses(&tag_script(&s, 3));
        assert_parses(&analytics_script(&s, 1));
        assert_parses(&canvas_fp_script(&s, 7));
        assert_parses(&decoy_canvas_script("site.com", false));
        assert_parses(&font_fp_script(&s));
        assert_parses(&webrtc_script(&s, 2));
        assert_parses(&miner_script(&s));
        assert_parses(&first_party_script("site.com", 4, 2));
        assert_parses(&first_party_canvas_script("site.com", true));
    }

    #[test]
    fn canvas_variants_differ_textually() {
        let s = svc("fp.party", false);
        assert_ne!(canvas_fp_script(&s, 0), canvas_fp_script(&s, 1));
        assert_eq!(canvas_fp_script(&s, 0), canvas_fp_script(&s, 0));
    }

    #[test]
    fn canvas_script_calls_required_apis() {
        let s = svc("fp.party", true);
        let mut host = CollectingHost::default();
        run(&canvas_fp_script(&s, 1), &mut host).unwrap();
        let names: Vec<&str> = host.calls.iter().map(|(n, _)| n.as_str()).collect();
        assert!(names.contains(&"canvas.create"));
        assert!(names.iter().filter(|n| **n == "canvas.fillStyle").count() >= 2);
        assert!(names.contains(&"canvas.toDataURL"));
        assert!(!names.contains(&"canvas.save"));
        // The drawn text exceeds 10 distinct characters.
        let text_arg = host
            .calls
            .iter()
            .find(|(n, _)| n == "canvas.fillText")
            .and_then(|(_, args)| args[0].as_str().map(str::to_string))
            .unwrap();
        assert!(redlight_text::tokenize::distinct_chars(&text_arg) > 10);
    }

    #[test]
    fn font_script_measures_enough() {
        let s = svc("online-metrix.net", true);
        let mut host = CollectingHost::default();
        // measureText must return an int for the accumulator.
        host.responses
            .push(("canvas.measureText".into(), redlight_script::Value::Int(7)));
        run(&font_fp_script(&s), &mut host).unwrap();
        let measures = host
            .calls
            .iter()
            .filter(|(n, _)| n == "canvas.measureText")
            .count();
        assert!(measures >= 50, "{measures}");
        let fonts = host
            .calls
            .iter()
            .filter(|(n, _)| n == "canvas.setFont")
            .count();
        assert!(fonts >= 50);
    }

    #[test]
    fn decoy_uses_save_restore() {
        let mut host = CollectingHost::default();
        host.responses.push((
            "canvas.toDataURL".into(),
            redlight_script::Value::Str("data:".into()),
        ));
        run(&decoy_canvas_script("site.com", true), &mut host).unwrap();
        let names: Vec<&str> = host.calls.iter().map(|(n, _)| n.as_str()).collect();
        assert!(names.contains(&"canvas.save"));
        assert!(names.contains(&"canvas.restore"));
    }

    #[test]
    fn tag_scheme_follows_https_flag() {
        let https = svc("ads.net", true);
        let http = svc("ads.net", false);
        assert!(tag_script(&https, 0).contains("https://ads.net/px"));
        assert!(tag_script(&http, 0).contains("'http://ads.net/px"));
    }

    #[test]
    fn rtb_exchanges_open_frames_on_gated_variants() {
        let mut s = svc("exchange.com", true);
        assert!(!tag_script(&s, 0).contains("createFrame"));
        s.rtb_partners.push(ServiceId(9));
        assert!(tag_script(&s, 0).contains("createFrame"));
        assert!(tag_script(&s, 3).contains("createFrame"));
        assert!(!tag_script(&s, 1).contains("createFrame"));
        assert!(!tag_script(&s, 2).contains("createFrame"));
    }

    #[test]
    fn analytics_beacon_carries_partial_id_only() {
        // The first-party cid cookie must not appear whole in the beacon
        // URL, or the sync detector would count analytics as syncing.
        let s = svc("ga.example", true);
        let src = analytics_script(&s, 1);
        assert!(src.contains("substr(cid, 3, len(cid))"));
    }
}
