//! The simulated web's HTTP surface.
//!
//! [`WebServer::handle`] is the **only** door between the measurement
//! pipeline and the synthetic internet: it serves landing pages, static
//! assets, tracker scripts, measurement pixels (where `Set-Cookie` happens),
//! cookie-synchronization redirects, RTB auction frames and privacy
//! policies — all deterministically, with per-country behavior.

use redlight_net::codec;
use redlight_net::cookie::Cookie;
use redlight_net::geoip::{Country, GeoIpDb};
use redlight_net::http::{Request, Response, Scheme, StatusCode};
use redlight_net::psl;
use redlight_net::transport::Transport;
use redlight_net::url::Url;

// The client-facing vocabulary lives on the transport seam now; re-exported
// here so `websim::server::{BrowserKind, ClientContext, FetchOutcome}` keeps
// working for every existing consumer.
pub use redlight_net::transport::{BrowserKind, ClientContext, FetchOutcome};

use crate::content::{self, mix, RenderCtx};
use crate::scriptgen;
use crate::service::ThirdPartyService;
use crate::sitegen::Site;
use crate::world::{HostEntity, World};

/// The canonical [`Transport`] implementation: the in-process synthetic
/// web, no decorators.
pub type DirectTransport<'w> = WebServer<'w>;

/// The server over a built [`World`].
pub struct WebServer<'w> {
    world: &'w World,
    geoip: GeoIpDb,
}

impl Transport for WebServer<'_> {
    fn fetch(&self, req: &Request, ctx: &ClientContext) -> FetchOutcome {
        self.handle(req, ctx)
    }

    fn resolvable(&self, host: &str) -> bool {
        self.world.resolve_host(host).is_some()
    }
}

impl<'w> WebServer<'w> {
    /// Wraps a world.
    pub fn new(world: &'w World) -> Self {
        WebServer {
            world,
            geoip: GeoIpDb::study_default(),
        }
    }

    /// The world being served (ground truth — tests only).
    pub fn world(&self) -> &World {
        self.world
    }

    /// Handles one request.
    pub fn handle(&self, req: &Request, ctx: &ClientContext) -> FetchOutcome {
        let host = req.url.host().as_str().to_string();
        let Some(entity) = self.world.resolve_host(&host) else {
            return FetchOutcome::Unreachable;
        };
        match entity {
            HostEntity::Site(id) => self.handle_site(&self.world.sites[id as usize], req, ctx),
            HostEntity::SiteCdn(id) => {
                let site = &self.world.sites[id as usize];
                if site.unresponsive || site.blocked_in.contains(&ctx.country) {
                    return FetchOutcome::Unreachable;
                }
                self.finish(req, Response::ok("image/jpeg", &b"\xff\xd8cdn-bytes"[..]))
            }
            HostEntity::Service(id) => {
                let svc = self.world.services.get(id);
                self.handle_service(svc, req, ctx)
            }
            HostEntity::CloudHost(_) => self.finish(
                req,
                Response::ok("application/javascript", "// static lib\n"),
            ),
            HostEntity::Directory(idx) => self.handle_directory(idx as usize, req),
        }
    }

    /// Scheme enforcement + certificate attachment.
    fn finish(&self, req: &Request, mut resp: Response) -> FetchOutcome {
        if req.url.scheme() == Scheme::Https {
            resp = resp.with_certificate(self.world.cert_for_host(req.url.host().as_str()));
        }
        FetchOutcome::Response(resp)
    }

    /// `true` when the host does not speak HTTPS but the request asks for it.
    fn https_mismatch(&self, req: &Request, supports_https: bool) -> bool {
        req.url.scheme() == Scheme::Https && !supports_https
    }

    fn handle_site(&self, site: &Site, req: &Request, ctx: &ClientContext) -> FetchOutcome {
        if site.unresponsive || site.blocked_in.contains(&ctx.country) {
            return FetchOutcome::Unreachable;
        }
        if self.https_mismatch(req, site.https) {
            return FetchOutcome::Unreachable;
        }
        let path = req.url.path();

        // Document requests may time out for the OpenWPM crawl (§3.1's 120 s
        // budget lost 497 porn and ~1.2k regular sites).
        if path == "/" && site.openwpm_timeout && ctx.browser == BrowserKind::OpenWpm {
            return FetchOutcome::Timeout;
        }

        match path {
            "/" => {
                let gate_passed = req.url.query_param("verified").as_deref() == Some("1");
                let ctx2 = RenderCtx {
                    services: &self.world.services,
                    sites: &self.world.sites,
                    owner_name: self.world.owner_name(site),
                };
                let html = content::render_landing(&ctx2, site, ctx.country, gate_passed);
                self.finish(req, Response::ok("text/html", html))
            }
            "/static/main.css" => self.finish(req, Response::ok("text/css", "body{margin:0}")),
            p if p.starts_with("/static/") || p.starts_with("/embed/") => {
                self.finish(req, Response::ok("image/jpeg", &b"\xff\xd8img"[..]))
            }
            "/own/fp.js" if site.first_party_canvas => self.finish(
                req,
                Response::ok(
                    "application/javascript",
                    scriptgen::first_party_canvas_script(&site.domain, site.https),
                ),
            ),
            "/enter" => {
                let target = Url::parse(&format!(
                    "{}://{}/?verified=1",
                    if site.https { "https" } else { "http" },
                    site.domain
                ))
                .expect("static url");
                self.finish(req, Response::redirect(&target))
            }
            "/social-login" => self.finish(req, Response::error(StatusCode::FORBIDDEN)),
            "/login" | "/signup" => self.finish(
                req,
                Response::ok(
                    "text/html",
                    "<html><body><form>Sign Up free</form></body></html>",
                ),
            ),
            "/premium" => {
                let body = if site.premium_paid {
                    "<html><body><h1>Premium</h1><p>Checkout: $29.99 / month. \
                     Payment required to unlock full scenes.</p></body></html>"
                } else {
                    "<html><body><h1>Premium</h1><p>Free registration unlocks all \
                     content after you create an account.</p></body></html>"
                };
                self.finish(req, Response::ok("text/html", body))
            }
            p if site.policy.as_ref().is_some_and(|pol| pol.path == p) => {
                let pol = site.policy.as_ref().expect("guarded");
                if pol.broken {
                    return self.finish(req, Response::error(StatusCode::GONE));
                }
                let parties: Vec<String> = site
                    .deployments
                    .iter()
                    .map(|d| self.world.services.get(d.service).fqdn.clone())
                    .collect();
                let text = crate::policygen::render_policy(
                    pol,
                    &site.domain,
                    self.world.owner_name(site),
                    &parties,
                );
                self.finish(
                    req,
                    Response::ok(
                        "text/html",
                        format!("<html><body><main>{text}</main></body></html>"),
                    ),
                )
            }
            "/own-fp" | "/widget-metrics" => {
                self.finish(req, Response::ok("image/gif", &b"GIF89a"[..]))
            }
            _ => self.finish(req, Response::error(StatusCode::NOT_FOUND)),
        }
    }

    fn handle_directory(&self, idx: usize, req: &Request) -> FetchOutcome {
        // Each aggregator lists a slice of the directory-listed porn sites.
        let n_dirs = self.world.directory_domains.len().max(1);
        let mut html = String::from("<html><body><h1>Adult site directory</h1><ul>");
        for site in self
            .world
            .sites
            .iter()
            .filter(|s| s.in_directory)
            .filter(|s| (mix(s.id.0 as u64, 0xD1) as usize) % n_dirs == idx)
        {
            let scheme = if site.https { "https" } else { "http" };
            html.push_str(&format!(
                "<li><a href=\"{scheme}://{}/\">{}</a></li>",
                site.domain, site.domain
            ));
        }
        html.push_str("</ul></body></html>");
        self.finish(req, Response::ok("text/html", html))
    }

    fn handle_service(
        &self,
        svc: &ThirdPartyService,
        req: &Request,
        ctx: &ClientContext,
    ) -> FetchOutcome {
        if !svc.serves(ctx.country) {
            return FetchOutcome::Unreachable;
        }
        if self.https_mismatch(req, svc.https) {
            return FetchOutcome::Unreachable;
        }
        let path = req.url.path();
        let js = "application/javascript";

        // Script families.
        if let Some(v) = path_variant(path, "/tag/v", ".js") {
            return self.finish(req, Response::ok(js, scriptgen::tag_script(svc, v)));
        }
        if let Some(v) = path_variant(path, "/js/analytics-v", ".js") {
            return self.finish(req, Response::ok(js, scriptgen::analytics_script(svc, v)));
        }
        if let Some(v) = path_variant(path, "/fp/v", ".js").or(path_variant(path, "/fpx/v", ".js"))
        {
            return self.finish(req, Response::ok(js, scriptgen::canvas_fp_script(svc, v)));
        }
        if path == "/font/probe.js" {
            return self.finish(req, Response::ok(js, scriptgen::font_fp_script(svc)));
        }
        if let Some(v) = path_variant(path, "/rtc/v", ".js") {
            return self.finish(req, Response::ok(js, scriptgen::webrtc_script(svc, v)));
        }
        if path == "/miner/loader.js" {
            return self.finish(req, Response::ok(js, scriptgen::miner_script(svc)));
        }

        match path {
            // The measurement pixel: cookies happen here.
            "/px" | "/bid" => {
                let sid = req
                    .url
                    .query_param("sid")
                    .or_else(|| req.url.query_param("pid"));
                let site_hash = hash_str(sid.as_deref().unwrap_or("unknown"));
                // Cookie syncing: a repeat sighting of our own uid cookie
                // triggers a redirect that leaks it to a partner (§5.1.2).
                // Syncing is opportunistic: each service fires the redirect
                // on a per-site share of placements (its sync gate).
                let sync_gate =
                    mix(site_hash, svc.id.0 as u64 ^ 0x517C) % 100 < svc.sync_gate_pct as u64;
                if path == "/px" && !svc.sync_to.is_empty() && sync_gate {
                    if let Some(uid) = request_cookie(req, "uid") {
                        if let Some(target) = self.sync_target(svc, site_hash, ctx.country) {
                            let turl = Url::parse(&format!(
                                "{}://{}/sync?src={}&suid={}",
                                if target.https { "https" } else { "http" },
                                target.fqdn,
                                svc.fqdn,
                                codec::percent_encode(&uid),
                            ))
                            .expect("sync url");
                            let mut resp = Response::redirect(&turl);
                            self.set_service_cookies(svc, site_hash, ctx, &mut resp);
                            return self.finish(req, resp);
                        }
                    }
                }
                let mut resp = Response::ok("image/gif", &b"GIF89a"[..]);
                self.set_service_cookies(svc, site_hash, ctx, &mut resp);
                self.finish(req, resp)
            }
            // Sync destination: the partner records the uid carried in the
            // URL; no new cookie is needed (it already has its own).
            "/sync" => self.finish(req, Response::ok("image/gif", &b"GIF89a"[..])),
            // RTB auction frame: demand partners are pulled in from inside
            // the frame, so their requests carry the exchange as referrer
            // (the §3.1 inclusion chain).
            "/frame" => {
                let sid = req.url.query_param("sid").unwrap_or_default();
                let site_hash = hash_str(&sid);
                let mut html = String::from("<html><body>");
                let partners = &svc.rtb_partners;
                // Rotate the winning demand partner per site; a second slot
                // fills occasionally. Keeps per-partner RTB reach well below
                // the exchange's own reach (Fig. 3 shape).
                let take = if site_hash.is_multiple_of(3) { 2 } else { 1 };
                for k in 0..take.min(partners.len()) {
                    let pid = partners[(site_hash as usize + k) % partners.len()];
                    let p = self.world.services.get(pid);
                    if !p.serves(ctx.country) {
                        continue;
                    }
                    let s = if p.https { "https" } else { "http" };
                    html.push_str(&format!(
                        "<img src=\"{s}://{}/bid?pid={sid}&slot={k}\">",
                        p.fqdn
                    ));
                }
                html.push_str("</body></html>");
                self.finish(req, Response::ok("text/html", html))
            }
            // Beacon sinks.
            "/collect" | "/fp-collect" | "/rtc-collect" | "/font-collect" | "/hashrate" => {
                self.finish(req, Response::ok("image/gif", &b"GIF89a"[..]))
            }
            _ => self.finish(req, Response::error(StatusCode::NOT_FOUND)),
        }
    }

    /// The session-stable uid a service assigns this browser.
    fn uid_for(&self, svc: &ThirdPartyService, ctx: &ClientContext) -> String {
        let h = mix(svc.id.0 as u64 ^ 0x1D, ctx.session);
        format!("{h:016x}")
    }

    /// Chooses the sync partner for a site, honoring country gating.
    fn sync_target(
        &self,
        svc: &ThirdPartyService,
        site_hash: u64,
        country: Country,
    ) -> Option<&ThirdPartyService> {
        let n = svc.sync_to.len();
        if n == 0 {
            return None;
        }
        (0..n)
            .map(|k| svc.sync_to[(site_hash as usize + k) % n])
            .map(|id| self.world.services.get(id))
            .find(|p| p.serves(country))
    }

    /// Emits this service's `Set-Cookie` headers for a pixel hit.
    fn set_service_cookies(
        &self,
        svc: &ThirdPartyService,
        site_hash: u64,
        ctx: &ClientContext,
        resp: &mut Response,
    ) {
        let Some(behavior) = &svc.cookies else { return };
        let uid = self.uid_for(svc, ctx);
        let persistent =
            (mix(svc.id.0 as u64, site_hash) % 1_000) as f64 / 1_000.0 < behavior.id_ratio;
        let domain = psl::registrable_domain(&svc.fqdn).to_string();

        for i in 0..behavior.cookies_per_visit.max(1) {
            let name = if i == 0 {
                "uid".to_string()
            } else {
                format!("x{i}")
            };
            // Value construction per behavior.
            let value = if behavior.embed_geo {
                let geo = self.geoip.lookup(ctx.client_ip);
                let (lat, lon) = geo.map(|g| (g.latitude, g.longitude)).unwrap_or((0.0, 0.0));
                let mut raw = format!("lat={lat:.1},lon={lon:.1}");
                if behavior.geo_includes_isp {
                    let isp = geo
                        .and_then(|g| g.isp.clone())
                        .unwrap_or_else(|| "unknown".into());
                    raw.push_str(&format!(",isp={isp}"));
                }
                codec::percent_encode(&raw)
            } else {
                let embeds_ip = (mix(site_hash ^ (i as u64) << 32, svc.id.0 as u64) % 1_000) as f64
                    / 1_000.0
                    < behavior.embed_ip_ratio;
                if embeds_ip {
                    codec::base64_encode(format!("ip={}&uid={uid}", ctx.client_ip).as_bytes())
                } else if behavior.long_value {
                    // >1,000-char payloads, up to ~3,600 (§5.1.1).
                    let reps = 1 + ((mix(site_hash, 0x70) % 6) as usize);
                    format!("{}{}", uid, uid.repeat(38 * reps))
                } else {
                    let len = behavior.id_len.max(2) as usize;
                    let mut v = uid.repeat(len / 16 + 1);
                    v.truncate(len);
                    v
                }
            };
            let mut cookie = Cookie::new(name, value).with_domain(&domain).with_path("/");
            if persistent && !behavior.embed_geo {
                cookie = cookie.with_max_age(31_536_000);
            } else if behavior.embed_geo {
                cookie = cookie.with_max_age(86_400);
            }
            if svc.https && mix(svc.id.0 as u64, 0x5EC).is_multiple_of(2) {
                cookie = cookie.secure();
            }
            resp.add_cookie(&cookie);
        }
    }
}

/// Parses `/prefix{N}suffix` paths.
fn path_variant(path: &str, prefix: &str, suffix: &str) -> Option<u32> {
    path.strip_prefix(prefix)?
        .strip_suffix(suffix)?
        .parse()
        .ok()
}

/// First value of a named cookie in the request's `Cookie` header.
fn request_cookie(req: &Request, name: &str) -> Option<String> {
    let header = req.headers.get("cookie")?;
    for pair in header.split("; ") {
        if let Some((k, v)) = pair.split_once('=') {
            if k == name {
                return Some(v.to_string());
            }
        }
    }
    None
}

fn hash_str(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorldConfig;
    use redlight_net::http::{Method, ResourceKind};
    use std::net::Ipv4Addr;

    fn world() -> World {
        World::build(WorldConfig::tiny(77))
    }

    fn ctx(country: Country) -> ClientContext {
        ClientContext {
            country,
            client_ip: Ipv4Addr::new(203, 0, 113, 77),
            session: 0xBEEF,
            browser: BrowserKind::OpenWpm,
        }
    }

    fn get(url: &str) -> Request {
        Request {
            method: Method::Get,
            url: Url::parse(url).unwrap(),
            headers: Default::default(),
            referrer: None,
            kind: ResourceKind::Document,
        }
    }

    fn expect_response(out: FetchOutcome) -> Response {
        match out {
            FetchOutcome::Response(r) => r,
            other => panic!("expected response, got {other:?}"),
        }
    }

    #[test]
    fn serves_landing_pages_with_certificates() {
        let w = world();
        let server = WebServer::new(&w);
        let site = w
            .sites
            .iter()
            .find(|s| s.is_porn() && s.https && !s.unresponsive && !s.openwpm_timeout)
            .unwrap();
        let resp = expect_response(server.handle(&get(&w.landing_url(site)), &ctx(Country::Spain)));
        assert!(resp.status.is_success());
        assert!(resp.text().contains(&site.domain));
        assert!(resp.certificate.is_some());
    }

    #[test]
    fn https_to_http_only_site_is_unreachable() {
        let w = world();
        let server = WebServer::new(&w);
        let site = w
            .sites
            .iter()
            .find(|s| s.is_porn() && !s.https && !s.unresponsive)
            .unwrap();
        let req = get(&format!("https://{}/", site.domain));
        assert!(matches!(
            server.handle(&req, &ctx(Country::Spain)),
            FetchOutcome::Unreachable
        ));
        let req = get(&format!("http://{}/", site.domain));
        if !site.openwpm_timeout {
            assert!(matches!(
                server.handle(&req, &ctx(Country::Spain)),
                FetchOutcome::Response(_)
            ));
        }
    }

    #[test]
    fn openwpm_timeout_only_hits_openwpm() {
        let w = world();
        let server = WebServer::new(&w);
        let Some(site) = w
            .sites
            .iter()
            .find(|s| s.openwpm_timeout && !s.unresponsive && s.is_porn())
        else {
            return; // tiny worlds may have none
        };
        let req = get(&w.landing_url(site));
        assert!(matches!(
            server.handle(&req, &ctx(Country::Spain)),
            FetchOutcome::Timeout
        ));
        let mut selenium = ctx(Country::Spain);
        selenium.browser = BrowserKind::Selenium;
        assert!(matches!(
            server.handle(&req, &selenium),
            FetchOutcome::Response(_)
        ));
    }

    #[test]
    fn pixel_sets_stable_uid_cookie() {
        let w = world();
        let server = WebServer::new(&w);
        let svc = w.services.by_fqdn("doubleclick.net").unwrap();
        let mut req = get("https://doubleclick.net/px?sid=porn.site");
        req.kind = ResourceKind::Image;
        let c = ctx(Country::Spain);
        let r1 = expect_response(server.handle(&req, &c));
        let r2 = expect_response(server.handle(&req, &c));
        let c1 = r1.cookies();
        assert!(!c1.is_empty());
        assert_eq!(c1[0].name, "uid");
        assert_eq!(c1[0].value, r2.cookies()[0].value, "session-stable uid");
        assert_eq!(c1[0].domain.as_deref(), Some("doubleclick.net"));
        let _ = svc;
    }

    #[test]
    fn repeat_pixel_with_cookie_triggers_sync_redirect() {
        let w = world();
        let server = WebServer::new(&w);
        // exosrv has sync partners wired in the catalog; the redirect is
        // gated per site, so probe several site ids until one fires.
        let mut fired = false;
        for i in 0..20 {
            let mut req = get(&format!("https://exosrv.com/px?sid=site{i}.porn"));
            req.kind = ResourceKind::Image;
            req.headers.set("cookie", "uid=deadbeef01");
            let resp = expect_response(server.handle(&req, &ctx(Country::Spain)));
            if resp.status.is_redirect() {
                let loc = resp.location().unwrap();
                assert!(loc.contains("suid=deadbeef01"), "{loc}");
                assert!(loc.contains("/sync?src=exosrv.com"));
                fired = true;
                break;
            }
        }
        assert!(fired, "sync never fired across 20 site ids");
    }

    #[test]
    fn exosrv_cookies_embed_client_ip() {
        let w = world();
        let server = WebServer::new(&w);
        let c = ctx(Country::Spain);
        // Across many sites, ≈85 % of exosrv cookies embed the IP (§5.1.1).
        let mut with_ip = 0;
        let mut total = 0;
        for i in 0..120 {
            let mut req = get(&format!("https://exosrv.com/px?sid=site{i}.com"));
            req.kind = ResourceKind::Image;
            let resp = expect_response(server.handle(&req, &c));
            for cookie in resp.cookies() {
                total += 1;
                if let Some(text) = codec::base64_decode_lossy_text(&cookie.value) {
                    if text.contains(&c.client_ip.to_string()) {
                        with_ip += 1;
                    }
                }
            }
        }
        let frac = with_ip as f64 / total as f64;
        assert!((0.7..0.95).contains(&frac), "ip-embedding fraction {frac}");
    }

    #[test]
    fn country_gated_service_is_unreachable_elsewhere() {
        let w = world();
        let server = WebServer::new(&w);
        let svc = w
            .services
            .iter()
            .find(|s| s.countries.as_deref() == Some(&[Country::Russia][..]))
            .unwrap();
        let scheme = if svc.https { "https" } else { "http" };
        let req = get(&format!("{scheme}://{}/tag/v1.js", svc.fqdn));
        assert!(matches!(
            server.handle(&req, &ctx(Country::Spain)),
            FetchOutcome::Unreachable
        ));
        assert!(matches!(
            server.handle(&req, &ctx(Country::Russia)),
            FetchOutcome::Response(_)
        ));
    }

    #[test]
    fn directory_lists_directory_sites() {
        let w = world();
        let server = WebServer::new(&w);
        let mut found = 0;
        for (i, d) in w.directory_domains.iter().enumerate() {
            let resp = expect_response(
                server.handle(&get(&format!("https://{d}/")), &ctx(Country::Spain)),
            );
            let text = resp.text();
            for s in w.sites.iter().filter(|s| s.in_directory) {
                if text.contains(&s.domain) {
                    found += 1;
                }
            }
            let _ = i;
        }
        let total = w.sites.iter().filter(|s| s.in_directory).count();
        assert_eq!(found, total, "every directory site listed exactly once");
    }

    #[test]
    fn rtb_frame_embeds_partner_bids() {
        let w = world();
        let server = WebServer::new(&w);
        let resp = expect_response(server.handle(
            &get("https://exoclick.com/frame?v=1&sid=porn.site"),
            &ctx(Country::Spain),
        ));
        let text = resp.text();
        assert!(text.contains("/bid?pid=porn.site"), "{text}");
    }

    #[test]
    fn policy_pages_served_and_broken_policies_error() {
        let w = World::build(WorldConfig::small(7));
        let server = WebServer::new(&w);
        let c = ctx(Country::Spain);
        let site = w
            .sites
            .iter()
            .find(|s| {
                s.policy.as_ref().is_some_and(|p| !p.broken) && s.is_porn() && !s.unresponsive
            })
            .unwrap();
        let pol = site.policy.as_ref().unwrap();
        let scheme = if site.https { "https" } else { "http" };
        let resp = expect_response(
            server.handle(&get(&format!("{scheme}://{}{}", site.domain, pol.path)), &c),
        );
        assert!(resp.status.is_success());
        assert!(resp.text().len() > 500);

        if let Some(broken_site) = w
            .sites
            .iter()
            .find(|s| s.policy.as_ref().is_some_and(|p| p.broken) && !s.unresponsive)
        {
            let bp = broken_site.policy.as_ref().unwrap();
            let scheme = if broken_site.https { "https" } else { "http" };
            let resp = expect_response(server.handle(
                &get(&format!("{scheme}://{}{}", broken_site.domain, bp.path)),
                &c,
            ));
            assert!(resp.status.is_error());
        }
    }

    #[test]
    fn unknown_hosts_are_unreachable() {
        let w = world();
        let server = WebServer::new(&w);
        assert!(matches!(
            server.handle(&get("https://not-a-real-host.example/"), &ctx(Country::Usa)),
            FetchOutcome::Unreachable
        ));
    }
}
