//! Threat-intelligence ensemble (the VirusTotal stand-in).
//!
//! The paper aggregates 70 malware scanners through VirusTotal and flags a
//! domain as potentially malicious only when **at least 4** scanners agree
//! (§5.3). The simulated ensemble gives genuinely malicious domains a
//! detection count comfortably above the threshold, while benign domains
//! occasionally pick up 1–3 stray detections — the false-positive noise the
//! threshold exists to suppress.

use serde::{Deserialize, Serialize};

/// Number of aggregated scanners.
pub const SCANNER_COUNT: u8 = 70;

/// The paper's agreement threshold.
pub const DETECTION_THRESHOLD: u8 = 4;

/// Deterministic scanner ensemble.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScannerEnsemble {
    seed: u64,
}

impl ScannerEnsemble {
    /// Creates the ensemble for a world seed.
    pub fn new(seed: u64) -> Self {
        ScannerEnsemble { seed }
    }

    /// Number of scanners (of 70) that flag `domain`, given its ground-truth
    /// maliciousness. Deterministic per `(seed, domain)`.
    pub fn detections(&self, domain: &str, truly_malicious: bool) -> u8 {
        let h = crate::content::mix(self.seed, hash_str(domain));
        if truly_malicious {
            // 6..=26 detections: clearly above threshold, varying by vendor
            // coverage like real VT results.
            6 + (h % 21) as u8
        } else {
            // Most benign domains are clean; ~8 % pick up 1–3 stray hits.
            match h % 100 {
                0..=91 => 0,
                92..=95 => 1,
                96..=98 => 2,
                _ => 3,
            }
        }
    }

    /// Applies the ≥4 agreement rule.
    pub fn is_flagged(&self, domain: &str, truly_malicious: bool) -> bool {
        self.detections(domain, truly_malicious) >= DETECTION_THRESHOLD
    }
}

fn hash_str(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn malicious_domains_cross_the_threshold() {
        let e = ScannerEnsemble::new(7);
        for d in ["itraffictrade.com", "coinhive.com", "badsite.top"] {
            assert!(e.is_flagged(d, true), "{d}");
            assert!(e.detections(d, true) <= SCANNER_COUNT);
        }
    }

    #[test]
    fn benign_domains_stay_below() {
        let e = ScannerEnsemble::new(7);
        let flagged = (0..500)
            .filter(|i| e.is_flagged(&format!("clean{i}.com"), false))
            .count();
        assert_eq!(flagged, 0, "benign noise must stay under 4 detections");
        // But some benign domains DO have nonzero detections.
        let noisy = (0..500)
            .filter(|i| e.detections(&format!("clean{i}.com"), false) > 0)
            .count();
        assert!(
            noisy > 10,
            "stray single-scanner hits should exist: {noisy}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = ScannerEnsemble::new(1);
        let b = ScannerEnsemble::new(1);
        let c = ScannerEnsemble::new(2);
        assert_eq!(a.detections("x.com", true), b.detections("x.com", true));
        // Different seeds generally disagree on the exact count.
        let differs = (0..50).any(|i| {
            let d = format!("site{i}.com");
            a.detections(&d, true) != c.detections(&d, true)
        });
        assert!(differs);
    }
}
