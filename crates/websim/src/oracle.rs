//! The manual-inspection oracle.
//!
//! The paper's pipeline includes several **human** steps: manually
//! inspecting screenshots/DOMs to remove corpus false positives (§3),
//! manually verifying that a DOM element really is a cookie banner (§7.1),
//! and manually labeling subscription models as free vs paid (§4.1). The
//! oracle answers those questions from ground truth, playing the human's
//! role. Every call is counted so experiments can report how much "manual
//! effort" they consumed — and nothing outside this module may read ground
//! truth on behalf of an analysis.

use std::cell::Cell;

use crate::sitegen::{Site, SiteKind};

/// Labels the §4.1 manual subscription inspection produces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubscriptionLabel {
    /// Content unlocks after free registration.
    Free,
    /// Content sits behind a paywall.
    Paid,
}

/// The inspection oracle over a world's sites.
pub struct InspectionOracle<'w> {
    sites: &'w [Site],
    queries: Cell<usize>,
}

impl<'w> InspectionOracle<'w> {
    /// Creates an oracle over the site table.
    pub fn new(sites: &'w [Site]) -> Self {
        InspectionOracle {
            sites,
            queries: Cell::new(0),
        }
    }

    fn bump(&self) {
        self.queries.set(self.queries.get() + 1);
    }

    /// Number of manual inspections performed so far.
    pub fn manual_inspections(&self) -> usize {
        self.queries.get()
    }

    fn find(&self, domain: &str) -> Option<&Site> {
        self.sites.iter().find(|s| s.domain == domain)
    }

    /// §3 sanitization: "is this screenshot/DOM actually pornographic?"
    /// Unresponsive sites cannot be confirmed and count as false positives.
    pub fn is_porn_content(&self, domain: &str) -> bool {
        self.bump();
        self.find(domain)
            .is_some_and(|s| matches!(s.kind, SiteKind::Porn) && !s.unresponsive)
    }

    /// §7.1 banner verification: "is this floating element really a cookie
    /// banner?" — the screenshot check after DOM detection.
    pub fn confirm_banner(&self, domain: &str) -> bool {
        self.bump();
        self.find(domain).is_some_and(|s| s.banner.is_some())
    }

    /// §4.1 monetization labeling: free vs paid subscription.
    pub fn label_subscription(&self, domain: &str) -> Option<SubscriptionLabel> {
        self.bump();
        let site = self.find(domain)?;
        if !site.premium {
            return None;
        }
        Some(if site.premium_paid {
            SubscriptionLabel::Paid
        } else {
            SubscriptionLabel::Free
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{catalog, config::WorldConfig, sitegen};

    #[test]
    fn oracle_answers_and_counts() {
        let config = WorldConfig::tiny(31);
        let cat = catalog::build(&config);
        let pop = sitegen::generate(&config, &cat);
        let oracle = InspectionOracle::new(&pop.sites);

        let porn = pop
            .sites
            .iter()
            .find(|s| s.is_porn() && !s.unresponsive)
            .unwrap();
        let fp = pop
            .sites
            .iter()
            .find(|s| matches!(s.kind, SiteKind::FalsePositive(_)))
            .unwrap();
        assert!(oracle.is_porn_content(&porn.domain));
        assert!(!oracle.is_porn_content(&fp.domain));
        assert!(!oracle.is_porn_content("no-such-site.example"));
        assert_eq!(oracle.manual_inspections(), 3);
    }

    #[test]
    fn subscription_labels_follow_ground_truth() {
        let config = WorldConfig::small(31);
        let cat = catalog::build(&config);
        let pop = sitegen::generate(&config, &cat);
        let oracle = InspectionOracle::new(&pop.sites);
        let premium = pop.sites.iter().find(|s| s.premium).expect("premium site");
        assert!(oracle.label_subscription(&premium.domain).is_some());
        let plain = pop
            .sites
            .iter()
            .find(|s| s.is_porn() && !s.premium)
            .unwrap();
        assert_eq!(oracle.label_subscription(&plain.domain), None);
    }
}
