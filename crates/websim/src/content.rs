//! Landing-page HTML rendering.
//!
//! Pages are rendered per `(site, country, gate_passed)` because the served
//! content is geo-dependent: country-gated ad tags are injected server-side
//! only for the countries they serve (Table 7), consent banners may be
//! geo-fenced to the EU (Table 8), and age-gated sites serve their full
//! landing page only after the gate is passed (§7.2).

use redlight_net::geoip::Country;
use redlight_text::lang::pack;

use crate::org::PUBLISHERS;
use crate::policygen;
use crate::service::{ServiceCategory, ServiceRegistry};
use crate::sitegen::{AgeGateKind, BannerType, Site};

/// Stable tiny hash for content decisions (no RNG at serve time).
pub fn mix(a: u64, b: u64) -> u64 {
    let mut x = a.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ b;
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn scheme(https: bool) -> &'static str {
    if https {
        "https"
    } else {
        "http"
    }
}

/// Context needed to render a site's pages.
pub struct RenderCtx<'a> {
    /// Services.
    pub services: &'a ServiceRegistry,
    /// Sites.
    pub sites: &'a [Site],
    /// Resolved owner company name, when the site belongs to a cluster.
    pub owner_name: Option<&'a str>,
}

/// Path of a service's script for a deployment, by category/behavior.
/// `fp_variant` is `Some(effective_variant, indexed)` for canvas scripts.
pub fn script_path(category: ServiceCategory, variant: u32) -> String {
    match category {
        ServiceCategory::Analytics => format!("/js/analytics-v{variant}.js"),
        ServiceCategory::Cryptominer => "/miner/loader.js".to_string(),
        _ => format!("/tag/v{variant}.js"),
    }
}

/// Renders the landing page of `site` for `country`.
///
/// `gate_passed` selects the post-age-gate variant (what the Selenium
/// crawler sees after clicking through).
pub fn render_landing(
    ctx: &RenderCtx<'_>,
    site: &Site,
    country: Country,
    gate_passed: bool,
) -> String {
    let lp = pack(site.language);
    let h = mix(site.id.0 as u64, 0xC0FFEE);
    let mut out = String::with_capacity(4096);
    out.push_str("<!DOCTYPE html><html><head>");

    // --- <head>: title + company template signature (§4.1 clustering). ---
    if let Some(owner) = ctx.owner_name {
        let idx = PUBLISHERS.iter().position(|p| p.name == owner).unwrap_or(0);
        out.push_str(&format!(
            "<title>{domain} — {owner} network</title>\
             <meta name=\"generator\" content=\"NetworkSuite-{idx} by {owner}\">\
             <meta name=\"theme\" content=\"corporate-template-{idx}\">\
             <meta name=\"publisher\" content=\"{owner}\">",
            domain = site.domain,
        ));
    } else {
        out.push_str(&format!(
            "<title>{domain} — free videos {h4}</title>\
             <meta name=\"generator\" content=\"indie-cms-{h4}\">",
            domain = site.domain,
            h4 = h % 9_973,
        ));
    }
    if site.rta_label {
        out.push_str("<meta name=\"RATING\" content=\"RTA-5042-1996-1400-1577-RTA\">");
    }
    out.push_str("<link rel=\"stylesheet\" href=\"/static/main.css\">");

    // --- Third-party tags (server-side geo targeting). ---
    let page_scheme = scheme(site.https);
    for dep in &site.deployments {
        let svc = ctx.services.get(dep.service);
        if !svc.serves(country) {
            continue;
        }
        let s = scheme(svc.https);
        let fqdn = &svc.fqdn;
        if svc.miner {
            out.push_str(&format!(
                "<script src=\"{s}://{fqdn}/miner/loader.js\"></script>"
            ));
            continue;
        }
        // Ordinary tag / analytics script.
        let base = script_path(svc.category, dep.variant % 8);
        out.push_str(&format!("<script src=\"{s}://{fqdn}{base}\"></script>"));
        // Canvas fingerprinting variants this deployment carries.
        if dep.fp_scripts > 0 && svc.fp.canvas {
            for k in 0..dep.fp_scripts {
                let raw = dep.variant.wrapping_add(k as u32);
                let eff = if svc.fp.canvas_pool > 0 {
                    raw % svc.fp.canvas_pool as u32
                } else {
                    raw
                };
                // Deterministic split between the unindexed /fp/ and the
                // EasyList-indexed /fpx/ path families.
                let indexed = (mix(eff as u64, dep.service.0 as u64) % 1000) as f64 / 1000.0
                    < svc.fp.indexed_frac;
                let fam = if indexed { "fpx" } else { "fp" };
                out.push_str(&format!(
                    "<script src=\"{s}://{fqdn}/{fam}/v{eff}.js\"></script>"
                ));
            }
        }
        if svc.fp.font {
            out.push_str(&format!(
                "<script src=\"{s}://{fqdn}/font/probe.js\"></script>"
            ));
        }
        if svc.fp.webrtc {
            let v = dep.variant % 2; // ~2 variants per WebRTC service
            out.push_str(&format!(
                "<script src=\"{s}://{fqdn}/rtc/v{v}.js\"></script>"
            ));
        }
    }

    // Site-specific third-party cloud hosts.
    for (label, provider) in &site.cloud_hosts {
        out.push_str(&format!(
            "<script src=\"https://{label}.{provider}/lib.js\"></script>"
        ));
    }

    // First-party bookkeeping script (inline); minimalist sites run no
    // cookie bookkeeping at all (§5.1.1: 92 % of sites set cookies).
    if !site.minimal {
        let np = (h % 8) as u8 + 3;
        let ns = (h % 4) as u8 + 2;
        out.push_str(&format!(
            "<script>{}</script>",
            crate::scriptgen::first_party_script(&site.domain, np, ns)
        ));
    }
    if site.first_party_canvas {
        out.push_str(&format!(
            "<script src=\"{page_scheme}://{}/own/fp.js\"></script>",
            site.domain
        ));
    }
    if site.decoy_canvas {
        out.push_str(&format!(
            "<script>{}</script>",
            crate::scriptgen::decoy_canvas_script(&site.domain, site.https)
        ));
    }
    out.push_str("</head><body>");

    // --- Age gate (before the main content). ---
    let gate = site.age_gate.in_country(country);
    if let (Some(kind), false) = (gate, gate_passed) {
        match kind {
            AgeGateKind::SimpleButton => {
                out.push_str(&format!(
                    "<div id=\"age-gate\" style=\"position:fixed; z-index:9999\">\
                     <p>{warning} 18+</p>\
                     <a href=\"/?verified=1\"><button>{enter}</button></a>\
                     <a href=\"https://family-friendly.example/\"><button>Leave</button></a>\
                     </div>",
                    warning = lp.age_warning.first().copied().unwrap_or("adults only"),
                    enter = lp.affirmative[1], // "enter"
                ));
            }
            AgeGateKind::SocialLogin => {
                out.push_str(
                    "<div id=\"age-gate\" style=\"position:fixed; z-index:9999\">\
                     <p>Age verification is required by federal law. Sign in with your \
                     social network account linked to your passport.</p>\
                     <form action=\"/social-login\" method=\"post\">\
                     <input type=\"text\" name=\"vk-account\">\
                     <input type=\"submit\" value=\"Verify identity\"></form></div>",
                );
            }
        }
    }

    // --- Consent banner (Table 8), possibly EU-geofenced. ---
    if let Some(banner) = site.banner {
        let shown = !banner.eu_only || country.gdpr_applies();
        if shown {
            out.push_str("<div id=\"cookie-banner\" class=\"cookie-consent\" style=\"position:fixed; bottom:0\">");
            out.push_str(&format!(
                "<span>{}</span>",
                lp.cookie.last().copied().unwrap_or("we use cookies")
            ));
            match banner.kind {
                BannerType::NoOption => {}
                BannerType::Confirmation => {
                    out.push_str(&format!(
                        "<button class=\"consent-ok\">{}</button>",
                        lp.affirmative[4] // "accept"
                    ));
                }
                BannerType::Binary => {
                    out.push_str(&format!(
                        "<button class=\"consent-ok\">{}</button>\
                         <button class=\"consent-no\">No</button>",
                        lp.affirmative[4]
                    ));
                }
                BannerType::Others => {
                    out.push_str(
                        "<input type=\"range\" class=\"consent-slider\" min=\"0\" max=\"3\">\
                         <input type=\"checkbox\" class=\"consent-purpose\" value=\"ads\">\
                         <input type=\"checkbox\" class=\"consent-purpose\" value=\"analytics\">\
                         <button class=\"consent-save\">Save</button>",
                    );
                }
            }
            out.push_str("</div>");
        }
    }

    // --- Main content. ---
    out.push_str(&format!(
        "<h1>{}</h1><p>Updated daily with {} new clips. Popular categories and \
         channels are listed below. All performers verified.</p>",
        site.domain,
        10 + h % 90
    ));
    // Some body text naturally contains gate-like vocabulary (the §7.2
    // false-positive hazard the parent/grandparent check must survive).
    if h.is_multiple_of(5) {
        out.push_str(
            "<p>Members can enter the weekly raffle and agree to the community \
             guidelines before uploading. Yes, uploads are moderated.</p>",
        );
    }

    // Monetization signals (§4.1).
    if site.login {
        out.push_str(&format!(
            "<nav><a href=\"/login\">{}</a> <a href=\"/signup\">Sign Up</a></nav>",
            lp.account.first().copied().unwrap_or("log in"),
        ));
    }
    if site.premium {
        out.push_str(&format!(
            "<a class=\"upsell\" href=\"/premium\">{}</a>",
            lp.premium.first().copied().unwrap_or("premium"),
        ));
    }

    // First-party CDN-sharded thumbnails.
    if let Some(label) = &site.cdn_label {
        let label = if site.country_cdn {
            format!("{label}-{}", country.code().to_lowercase())
        } else {
            label.clone()
        };
        for i in 0..2 {
            out.push_str(&format!(
                "<img src=\"{page_scheme}://{label}.{}/thumb{i}.jpg\">",
                site.domain
            ));
        }
    } else {
        out.push_str(&format!(
            "<img src=\"{page_scheme}://{}/static/thumb0.jpg\">",
            site.domain
        ));
    }

    // Federation cross-embeds (§4.1): assets republished from peer sites.
    for peer_id in &site.cross_embeds {
        let peer = &ctx.sites[peer_id.0 as usize];
        let host = match &peer.cdn_label {
            Some(l) => format!("{l}.{}", peer.domain),
            None => peer.domain.clone(),
        };
        out.push_str(&format!(
            "<img src=\"{}://{host}/embed/clip{}.jpg\">",
            scheme(peer.https),
            peer_id.0 % 7
        ));
    }

    // Privacy-policy link (§7.3) — only on the full landing page.
    if let Some(policy) = &site.policy {
        if gate.is_none() || gate_passed {
            out.push_str(&format!(
                "<footer><a href=\"{}\">{}</a></footer>",
                policy.path,
                policygen::policy_link_text(policy.language)
            ));
        }
    }

    out.push_str("</body></html>");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;
    use crate::config::WorldConfig;
    use crate::sitegen;
    use redlight_html::{parser, query};
    use redlight_text::lang::Language;

    fn fixture() -> (crate::catalog::Catalog, Vec<Site>) {
        let config = WorldConfig::tiny(21);
        let cat = catalog::build(&config);
        let pop = sitegen::generate(&config, &cat);
        (cat, pop.sites)
    }

    #[test]
    fn pages_parse_and_contain_tags() {
        let (cat, sites) = fixture();
        let ctx = RenderCtx {
            services: &cat.services,
            sites: &sites,
            owner_name: None,
        };
        let site = sites
            .iter()
            .find(|s| s.is_porn() && !s.deployments.is_empty())
            .expect("some porn site with deployments");
        let html = render_landing(&ctx, site, Country::Spain, false);
        let doc = parser::parse(&html);
        let scripts = query::by_tag(&doc, "script");
        assert!(!scripts.is_empty());
        assert!(html.contains(&site.domain));
    }

    #[test]
    fn country_gated_services_disappear() {
        let (cat, mut sites) = fixture();
        // Find a Russia-only service and force it onto site 0.
        let ru_svc = cat
            .services
            .iter()
            .find(|s| s.countries.as_deref() == Some(&[Country::Russia][..]))
            .expect("country ATS exists");
        sites[0].deployments.push(crate::sitegen::Deployment {
            service: ru_svc.id,
            variant: 1,
            fp_scripts: 0,
        });
        let ctx = RenderCtx {
            services: &cat.services,
            sites: &sites,
            owner_name: None,
        };
        let ru = render_landing(&ctx, &sites[0], Country::Russia, false);
        let es = render_landing(&ctx, &sites[0], Country::Spain, false);
        assert!(ru.contains(&ru_svc.fqdn));
        assert!(!es.contains(&ru_svc.fqdn));
    }

    #[test]
    fn eu_only_banner_is_geofenced() {
        let (cat, mut sites) = fixture();
        let idx = sites.iter().position(|s| s.is_porn()).unwrap();
        sites[idx].banner = Some(crate::sitegen::BannerSpec {
            kind: BannerType::Binary,
            eu_only: true,
        });
        let ctx = RenderCtx {
            services: &cat.services,
            sites: &sites,
            owner_name: None,
        };
        let es = render_landing(&ctx, &sites[idx], Country::Spain, false);
        let us = render_landing(&ctx, &sites[idx], Country::Usa, false);
        assert!(es.contains("cookie-banner"));
        assert!(!us.contains("cookie-banner"));
    }

    #[test]
    fn age_gate_hides_policy_until_passed() {
        let (cat, mut sites) = fixture();
        let idx = sites.iter().position(|s| s.is_porn()).unwrap();
        sites[idx].age_gate.default = Some(AgeGateKind::SimpleButton);
        sites[idx].policy = Some(crate::policygen::PolicySpec {
            template: crate::policygen::PolicyTemplate::Unique(1),
            language: Language::English,
            mentions_gdpr: false,
            target_letters: 1_500,
            disclosures: Default::default(),
            path: "/privacy-policy".into(),
            broken: false,
        });
        let ctx = RenderCtx {
            services: &cat.services,
            sites: &sites,
            owner_name: None,
        };
        let gated = render_landing(&ctx, &sites[idx], Country::Spain, false);
        let passed = render_landing(&ctx, &sites[idx], Country::Spain, true);
        assert!(gated.contains("age-gate"));
        assert!(!gated.contains("/privacy-policy"));
        assert!(!passed.contains("age-gate"));
        assert!(passed.contains("/privacy-policy"));
    }

    #[test]
    fn owned_sites_share_head_template() {
        let (cat, sites) = fixture();
        let ctx = RenderCtx {
            services: &cat.services,
            sites: &sites,
            owner_name: Some("MindGeek"),
        };
        let a = render_landing(&ctx, &sites[0], Country::Spain, false);
        assert!(a.contains("NetworkSuite-"));
        assert!(a.contains("MindGeek"));
    }

    #[test]
    fn rta_label_appears_when_set() {
        let (cat, mut sites) = fixture();
        let idx = sites.iter().position(|s| s.is_porn()).unwrap();
        sites[idx].rta_label = true;
        let ctx = RenderCtx {
            services: &cat.services,
            sites: &sites,
            owner_name: None,
        };
        let html = render_landing(&ctx, &sites[idx], Country::Uk, false);
        assert!(html.contains("RTA-5042-1996-1400-1577-RTA"));
    }
}
