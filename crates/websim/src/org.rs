//! Organizations: porn publishers and third-party companies.
//!
//! The publisher registry mirrors the paper's Table 1 (the 15 largest
//! clusters, from Gamma Entertainment's 65 sites down to JM Productions' 5)
//! plus nine smaller attributable companies, for the §4.1 total of 24
//! companies owning 286 websites. Third-party organizations cover the
//! Fig. 3 cast: Alphabet, ExoClick, Cloudflare, Oracle, Yandex, JuicyAds,
//! EroAdvertising, Facebook, Amazon, Acxiom and the adult-industry long tail.

use serde::{Deserialize, Serialize};

/// Index into the organization table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct OrgId(pub u32);

/// What an organization does.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OrgKind {
    /// Owns and operates pornographic websites.
    PornPublisher,
    /// Advertising network / exchange.
    AdNetwork,
    /// Audience analytics.
    Analytics,
    /// Content delivery / cloud infrastructure.
    Cdn,
    /// Social network widgets.
    Social,
    /// Data broker / marketplace.
    DataBroker,
    /// Cryptocurrency mining services.
    Cryptominer,
    /// Anything else (security vendors, misc SaaS).
    Other,
}

/// One organization.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Organization {
    /// Id.
    pub id: OrgId,
    /// Name.
    pub name: String,
    /// Kind.
    pub kind: OrgKind,
    /// Whether the org specializes in the adult ecosystem (ExoClick,
    /// JuicyAds, …) as opposed to the regular web (Alphabet, Facebook, …).
    pub adult_specialized: bool,
}

/// A publisher cluster from Table 1: name, number of owned sites, and the
/// flagship site (domain, best 2018 Alexa rank).
pub struct PublisherSpec {
    /// Name.
    pub name: &'static str,
    /// Sites.
    pub sites: usize,
    /// Flagship domain.
    pub flagship_domain: &'static str,
    /// Flagship rank.
    pub flagship_rank: u32,
}

/// Table 1 publishers plus nine smaller attributable companies (§4.1: 24
/// companies, 286 sites in total).
pub const PUBLISHERS: &[PublisherSpec] = &[
    PublisherSpec {
        name: "Gamma Entertainment",
        sites: 65,
        flagship_domain: "evilangel.com",
        flagship_rank: 5_301,
    },
    PublisherSpec {
        name: "MindGeek",
        sites: 54,
        flagship_domain: "pornhub.com",
        flagship_rank: 22,
    },
    PublisherSpec {
        name: "PaperStreet Media",
        sites: 38,
        flagship_domain: "teamskeet.com",
        flagship_rank: 10_171,
    },
    PublisherSpec {
        name: "Techpump",
        sites: 25,
        flagship_domain: "porn300.com",
        flagship_rank: 2_366,
    },
    PublisherSpec {
        name: "PMG Entertainment",
        sites: 15,
        flagship_domain: "private.com",
        flagship_rank: 7_758,
    },
    PublisherSpec {
        name: "SexMex",
        sites: 12,
        flagship_domain: "sexmex.xxx",
        flagship_rank: 122_227,
    },
    PublisherSpec {
        name: "Docler Holding",
        sites: 10,
        flagship_domain: "livejasmin.com",
        flagship_rank: 36,
    },
    PublisherSpec {
        name: "Mature.nl",
        sites: 9,
        flagship_domain: "mature.nl",
        flagship_rank: 6_577,
    },
    PublisherSpec {
        name: "Liberty Media",
        sites: 7,
        flagship_domain: "corbinfisher.com",
        flagship_rank: 26_436,
    },
    PublisherSpec {
        name: "WGCZ",
        sites: 5,
        flagship_domain: "xvideos.com",
        flagship_rank: 32,
    },
    PublisherSpec {
        name: "AFS Media LTD",
        sites: 5,
        flagship_domain: "theclassicporn.com",
        flagship_rank: 13_939,
    },
    PublisherSpec {
        name: "AEBN",
        sites: 5,
        flagship_domain: "pornotube.com",
        flagship_rank: 31_148,
    },
    PublisherSpec {
        name: "Zero Tolerance",
        sites: 5,
        flagship_domain: "ztod.com",
        flagship_rank: 40_676,
    },
    PublisherSpec {
        name: "Eurocreme",
        sites: 5,
        flagship_domain: "eurocreme.com",
        flagship_rank: 110_012,
    },
    PublisherSpec {
        name: "JM Productions",
        sites: 5,
        flagship_domain: "jerkoffzone.com",
        flagship_rank: 147_753,
    },
    // Nine smaller companies closing the gap to 24 companies / 286 sites.
    PublisherSpec {
        name: "Adult Empire Group",
        sites: 3,
        flagship_domain: "adultempiregroup.com",
        flagship_rank: 61_000,
    },
    PublisherSpec {
        name: "Bang Bros Network",
        sites: 3,
        flagship_domain: "bangnetwork.com",
        flagship_rank: 9_400,
    },
    PublisherSpec {
        name: "Hustler Digital",
        sites: 3,
        flagship_domain: "hustlerdigital.com",
        flagship_rank: 44_000,
    },
    PublisherSpec {
        name: "Vivid Media",
        sites: 2,
        flagship_domain: "vividmedia.com",
        flagship_rank: 52_000,
    },
    PublisherSpec {
        name: "Kink Networks",
        sites: 2,
        flagship_domain: "kinknetworks.com",
        flagship_rank: 18_500,
    },
    PublisherSpec {
        name: "Twistys Group",
        sites: 2,
        flagship_domain: "twistysgroup.com",
        flagship_rank: 71_000,
    },
    PublisherSpec {
        name: "Reality Kings Media",
        sites: 2,
        flagship_domain: "realityworksmedia.com",
        flagship_rank: 12_800,
    },
    PublisherSpec {
        name: "Digital Playground SL",
        sites: 2,
        flagship_domain: "dpplayground.com",
        flagship_rank: 93_000,
    },
    PublisherSpec {
        name: "Naughty America Corp",
        sites: 2,
        flagship_domain: "naughtycorp.com",
        flagship_rank: 23_000,
    },
];

/// The organization registry, built once per world.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct OrgRegistry {
    orgs: Vec<Organization>,
}

impl OrgRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an organization and returns its id.
    pub fn register(&mut self, name: &str, kind: OrgKind, adult_specialized: bool) -> OrgId {
        let id = OrgId(self.orgs.len() as u32);
        self.orgs.push(Organization {
            id,
            name: name.to_string(),
            kind,
            adult_specialized,
        });
        id
    }

    /// Borrows an organization.
    pub fn get(&self, id: OrgId) -> &Organization {
        &self.orgs[id.0 as usize]
    }

    /// Finds an organization by exact name.
    pub fn by_name(&self, name: &str) -> Option<&Organization> {
        self.orgs.iter().find(|o| o.name == name)
    }

    /// All organizations.
    pub fn iter(&self) -> impl Iterator<Item = &Organization> {
        self.orgs.iter()
    }

    /// Number of organizations.
    pub fn len(&self) -> usize {
        self.orgs.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.orgs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publisher_table_matches_section_4_1() {
        assert_eq!(PUBLISHERS.len(), 24, "24 attributable companies");
        let total_sites: usize = PUBLISHERS.iter().map(|p| p.sites).sum();
        assert_eq!(total_sites, 286, "286 attributable sites");
        // Table 1 ordering: non-increasing cluster size for the 15 largest.
        for w in PUBLISHERS[..15].windows(2) {
            assert!(w[0].sites >= w[1].sites);
        }
        assert_eq!(PUBLISHERS[1].flagship_domain, "pornhub.com");
        assert_eq!(PUBLISHERS[1].flagship_rank, 22);
    }

    #[test]
    fn registry_roundtrip() {
        let mut reg = OrgRegistry::new();
        let a = reg.register("ExoClick", OrgKind::AdNetwork, true);
        let b = reg.register("Alphabet", OrgKind::AdNetwork, false);
        assert_ne!(a, b);
        assert_eq!(reg.get(a).name, "ExoClick");
        assert!(reg.get(a).adult_specialized);
        assert_eq!(reg.by_name("Alphabet").unwrap().id, b);
        assert_eq!(reg.by_name("Missing"), None);
        assert_eq!(reg.len(), 2);
    }
}
