//! Synthetic EasyList / EasyPrivacy / Disconnect generation.
//!
//! The filter *engine* (`redlight-blocklist`) is faithful; the list *content*
//! is generated from the catalog with the paper's coverage gaps baked in:
//!
//! * `DomainWide` services get `||fqdn^` rules (all their URLs match);
//! * `PathOnly` services get rules for their ad paths and the `/fpx/` script
//!   family only — so the domain is ATS under relaxed FQDN matching while
//!   most `/fp/…` fingerprinting scripts stay unindexed (91 %, §5.1.3);
//! * the Disconnect entity list covers mainstream organizations and misses
//!   the adult-specialized ecosystem (§4.2(3): 142 vs 4,477 attributions).

use redlight_blocklist::EntityList;

use crate::catalog::Catalog;
use crate::service::{ListCoverage, ServiceCategory};

/// Builds the EasyList-style text (advertising rules).
///
/// The two `*…*` wildcard rules mirror real EasyList entries whose literal
/// runs touch a wildcard: they have no *safe* token, so they land in the
/// matcher's always-scan list and exercise its Aho-Corasick prefilter tier.
/// Neither can match simulated traffic (no generated URL contains
/// `interstitial` or `vast`), so every verdict is unchanged.
pub fn easylist(catalog: &Catalog) -> String {
    let mut out = String::from(
        "[Adblock Plus 2.0]\n\
         ! Title: Synthetic EasyList (redlight)\n\
         ! Calibrated coverage — see DESIGN.md\n\
         /adserver/*$script\n\
         /popunder.\n\
         ||example-ads.invalid^\n\
         *interstitial*\n\
         *analytics*vast*\n",
    );
    for svc in catalog.services.iter() {
        if svc.category == ServiceCategory::Analytics {
            continue; // analytics rules live in EasyPrivacy
        }
        match svc.list_coverage {
            ListCoverage::None => {}
            ListCoverage::DomainWide => {
                for fqdn in svc.all_fqdns() {
                    out.push_str(&format!("||{fqdn}^\n"));
                }
            }
            ListCoverage::PathOnly => {
                for fqdn in svc.all_fqdns() {
                    out.push_str(&format!("||{fqdn}/ads/\n"));
                    out.push_str(&format!("||{fqdn}/banner/\n"));
                    if svc.fp.indexed_frac > 0.0 {
                        out.push_str(&format!("||{fqdn}/fpx/\n"));
                    }
                }
            }
        }
    }
    // Cosmetic rules for realism: the parser must skip them.
    out.push_str("example.com##.ad-container\n~allowed.example##.banner\n");
    out
}

/// Builds the EasyPrivacy-style text (tracking/analytics rules).
pub fn easyprivacy(catalog: &Catalog) -> String {
    let mut out = String::from(
        "! Title: Synthetic EasyPrivacy (redlight)\n\
         /beacon.js\n\
         /telemetry/*$third-party\n",
    );
    for svc in catalog.services.iter() {
        if svc.category != ServiceCategory::Analytics {
            continue;
        }
        match svc.list_coverage {
            ListCoverage::None => {}
            ListCoverage::DomainWide => {
                for fqdn in svc.all_fqdns() {
                    out.push_str(&format!("||{fqdn}^$third-party\n"));
                }
            }
            ListCoverage::PathOnly => {
                for fqdn in svc.all_fqdns() {
                    out.push_str(&format!("||{fqdn}/collect$third-party\n"));
                    if svc.fp.indexed_frac > 0.0 {
                        out.push_str(&format!("||{fqdn}/fpx/\n"));
                    }
                }
            }
        }
    }
    out
}

/// Builds the Disconnect-style entity list (mainstream orgs only).
pub fn disconnect(catalog: &Catalog) -> EntityList {
    let mut list = EntityList::new();
    for org in catalog.orgs.iter() {
        let fqdns: Vec<String> = catalog
            .services
            .iter()
            .filter(|s| s.org == org.id && s.in_disconnect)
            .flat_map(|s| s.all_fqdns().map(str::to_string).collect::<Vec<_>>())
            .collect();
        if !fqdns.is_empty() {
            let refs: Vec<&str> = fqdns.iter().map(String::as_str).collect();
            list.add(&org.name, &refs);
        }
    }
    list
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;
    use crate::config::WorldConfig;
    use redlight_blocklist::{FilterSet, RequestContext};
    use redlight_net::http::ResourceKind;

    fn filterset() -> (Catalog, FilterSet) {
        let cat = catalog::build(&WorldConfig::tiny(3));
        let mut fs = FilterSet::new();
        fs.add_list(&easylist(&cat));
        fs.add_list(&easyprivacy(&cat));
        (cat, fs)
    }

    use crate::catalog::Catalog;

    #[test]
    fn domainwide_services_match_everywhere() {
        let (_, fs) = filterset();
        let ctx = RequestContext::new("porn.site", "exoclick.com", ResourceKind::Script);
        assert!(fs
            .matches("https://exoclick.com/tag/v1.js", &ctx)
            .is_blocked());
        assert!(fs.matches_fqdn_relaxed("exoclick.com"));
    }

    #[test]
    fn pathonly_spares_fp_scripts_but_flags_domain() {
        let (_, fs) = filterset();
        let ctx = RequestContext::new("porn.site", "adnium.com", ResourceKind::Script);
        // The /fp/ family is NOT indexed…
        assert!(!fs.matches("https://adnium.com/fp/v3.js", &ctx).is_blocked());
        // …the ad path IS…
        assert!(fs.matches("https://adnium.com/ads/b.js", &ctx).is_blocked());
        // …and relaxed FQDN matching flags the domain as ATS.
        assert!(fs.matches_fqdn_relaxed("adnium.com"));
    }

    #[test]
    fn indexed_fpx_family_is_matched() {
        let (_, fs) = filterset();
        let ctx = RequestContext::new("porn.site", "ero-advertising.com", ResourceKind::Script);
        assert!(fs
            .matches("https://ero-advertising.com/fpx/v1.js", &ctx)
            .is_blocked());
        assert!(!fs
            .matches("https://ero-advertising.com/fp/v1.js", &ctx)
            .is_blocked());
    }

    #[test]
    fn unlisted_services_are_clean() {
        let (_, fs) = filterset();
        let ctx = RequestContext::new("porn.site", "xcvgdf.party", ResourceKind::Script);
        assert!(!fs
            .matches("http://xcvgdf.party/fp/v7.js", &ctx)
            .is_blocked());
        assert!(!fs.matches_fqdn_relaxed("xcvgdf.party"));
    }

    #[test]
    fn analytics_rules_land_in_easyprivacy() {
        let cat = catalog::build(&WorldConfig::tiny(3));
        let el = easylist(&cat);
        let ep = easyprivacy(&cat);
        assert!(!el.contains("||google-analytics.com"));
        assert!(ep.contains("||google-analytics.com^$third-party"));
        assert!(el.contains("||exoclick.com^"));
    }

    #[test]
    fn disconnect_is_mainstream_only() {
        let cat = catalog::build(&WorldConfig::tiny(3));
        let dc = disconnect(&cat);
        assert_eq!(dc.owner_of("stats.g.doubleclick.net"), Some("Alphabet"));
        assert_eq!(dc.owner_of("facebook.net"), Some("Facebook"));
        // The adult ecosystem is missing — the §4.2(3) gap.
        assert_eq!(dc.owner_of("exoclick.com"), None);
        assert_eq!(dc.owner_of("juicyads.com"), None);
    }
}
