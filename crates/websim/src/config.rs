//! World generation configuration.
//!
//! Defaults reproduce the paper's scale (§3): 342 directory-indexed porn
//! sites + 22 Alexa-Adult sites + 7,735 keyword-named candidates of which
//! 1,256 are false positives, for a sanitized corpus of 6,843; plus a
//! reference corpus of 9,688 regular websites. [`WorldConfig::small`] builds
//! a proportionally scaled-down world for unit tests and benches.

use serde::{Deserialize, Serialize};

/// Parameters controlling world generation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorldConfig {
    /// Master seed; every stochastic choice derives from it.
    pub seed: u64,
    /// Porn sites listed by the specialized directory/aggregator sites.
    pub n_directory_porn: usize,
    /// Porn sites indexed by the Alexa-style *Adult* category.
    pub n_alexa_adult_porn: usize,
    /// Sites whose domain contains a porn-related keyword (true porn +
    /// false positives).
    pub n_keyword_sites: usize,
    /// Of the keyword sites, how many are false positives (non-porn content
    /// or unresponsive at crawl time).
    pub n_false_positives: usize,
    /// Regular (reference) websites drawn from the popular web.
    pub n_regular: usize,
    /// Long-tail tracker services specialized in the adult ecosystem.
    pub n_longtail_trackers: usize,
    /// Long-tail tracker services of the regular web.
    pub n_regular_trackers: usize,
}

impl WorldConfig {
    /// Paper-scale world (§3 counts).
    pub fn paper_scale(seed: u64) -> Self {
        WorldConfig {
            seed,
            n_directory_porn: 342,
            n_alexa_adult_porn: 22,
            n_keyword_sites: 7_735,
            n_false_positives: 1_256,
            n_regular: 9_688,
            n_longtail_trackers: 3_400,
            n_regular_trackers: 160,
        }
    }

    /// A ~20× smaller world with the same proportions, for tests/benches.
    pub fn small(seed: u64) -> Self {
        WorldConfig {
            seed,
            n_directory_porn: 18,
            n_alexa_adult_porn: 4,
            n_keyword_sites: 380,
            n_false_positives: 62,
            n_regular: 480,
            n_longtail_trackers: 170,
            n_regular_trackers: 8,
        }
    }

    /// A tiny world for fast unit tests.
    pub fn tiny(seed: u64) -> Self {
        WorldConfig {
            seed,
            n_directory_porn: 6,
            n_alexa_adult_porn: 2,
            n_keyword_sites: 80,
            n_false_positives: 13,
            n_regular: 90,
            n_longtail_trackers: 40,
            n_regular_trackers: 10,
        }
    }

    /// The same world grown `factor`× in every population: site sources,
    /// false positives, the regular reference corpus and both tracker
    /// long tails all scale multiplicatively, so the grown world keeps the
    /// paper's proportions (`reproduce --sites-scale <n>`). `factor == 1`
    /// returns the config unchanged.
    pub fn scaled(mut self, factor: usize) -> Self {
        self.n_directory_porn *= factor;
        self.n_alexa_adult_porn *= factor;
        self.n_keyword_sites *= factor;
        self.n_false_positives *= factor;
        self.n_regular *= factor;
        self.n_longtail_trackers *= factor;
        self.n_regular_trackers *= factor;
        self
    }

    /// Total porn-candidate count before sanitization (the paper's 8,099).
    pub fn candidate_count(&self) -> usize {
        self.n_directory_porn + self.n_alexa_adult_porn + self.n_keyword_sites
    }

    /// Sanitized porn-corpus size (the paper's 6,843).
    pub fn sanitized_count(&self) -> usize {
        self.candidate_count() - self.n_false_positives
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_matches_section3() {
        let c = WorldConfig::paper_scale(1);
        assert_eq!(c.candidate_count(), 8_099);
        assert_eq!(c.sanitized_count(), 6_843);
        assert_eq!(c.n_regular, 9_688);
    }

    #[test]
    fn scaled_multiplies_every_population() {
        let base = WorldConfig::tiny(7);
        let grown = base.clone().scaled(4);
        assert_eq!(grown.candidate_count(), base.candidate_count() * 4);
        assert_eq!(grown.sanitized_count(), base.sanitized_count() * 4);
        assert_eq!(grown.n_regular, base.n_regular * 4);
        assert_eq!(grown.n_longtail_trackers, base.n_longtail_trackers * 4);
        assert_eq!(base.clone().scaled(1), base);
    }

    #[test]
    fn small_world_keeps_proportions() {
        let c = WorldConfig::small(1);
        let fp_ratio = c.n_false_positives as f64 / c.n_keyword_sites as f64;
        let paper = WorldConfig::paper_scale(1);
        let paper_ratio = paper.n_false_positives as f64 / paper.n_keyword_sites as f64;
        assert!((fp_ratio - paper_ratio).abs() < 0.03);
    }
}
