//! World assembly: ties the catalog, site population, policies, DNS/WHOIS,
//! certificates, filter lists and the host index together.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use rand::prelude::*;
use redlight_blocklist::EntityList;
use redlight_net::dns::{DnsDb, ZoneRecord};
use redlight_net::geoip::Country;
use redlight_net::psl;
use redlight_net::tls::Certificate;
use redlight_net::whois::{Registrant, WhoisDb, WhoisRecord};
use redlight_rankings::category::{Category, CategoryService};
use redlight_text::lang::Language;

use crate::catalog::{self, Catalog};
use crate::config::WorldConfig;
use crate::content::mix;
use crate::lists;
use crate::org::{OrgId, OrgKind, OrgRegistry, PUBLISHERS};
use crate::policygen::{PolicyDisclosures, PolicySpec, PolicyTemplate};
use crate::service::{ServiceId, ServiceRegistry};
use crate::sitegen::{self, Site, SiteKind, PUBLISHER_TAG};
use crate::threat::ScannerEnsemble;

/// What a hostname resolves to inside the simulated web.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostEntity {
    /// A website's apex domain (index into the site table).
    Site(u32),
    /// A site's sharded CDN host (`img100-589.xvideos.com`).
    SiteCdn(u32),
    /// A third-party service FQDN.
    Service(ServiceId),
    /// A site-specific third-party cloud host (`d8fk2.cloudfront.net`).
    CloudHost(u32),
    /// A porn-directory aggregator (§3 source 1).
    Directory(u32),
}

/// The fully assembled synthetic web.
pub struct World {
    /// Config.
    pub config: WorldConfig,
    /// Orgs.
    pub orgs: OrgRegistry,
    /// Services.
    pub services: ServiceRegistry,
    /// Sites.
    pub sites: Vec<Site>,
    /// Directory domains.
    pub directory_domains: Vec<String>,
    /// Category service.
    pub category_service: CategoryService,
    /// Whois.
    pub whois: WhoisDb,
    /// Dns.
    pub dns: DnsDb,
    /// Synthetic EasyList text (the Jan-2019 snapshot stand-in).
    pub easylist: String,
    /// Synthetic EasyPrivacy text.
    pub easyprivacy: String,
    /// Disconnect-style entity list.
    pub disconnect: EntityList,
    /// Scanners.
    pub scanners: ScannerEnsemble,
    /// Publisher org ids, parallel to [`PUBLISHERS`].
    pub publisher_orgs: Vec<OrgId>,
    host_index: HashMap<String, HostEntity>,
}

impl World {
    /// Builds the world for `config` (deterministic in `config.seed`).
    pub fn build(config: WorldConfig) -> World {
        let Catalog {
            orgs: mut org_registry,
            services,
            ..
        } = catalog::build(&config);
        let pop = sitegen::generate(&config, &catalog::build(&config));
        let mut sites = pop.sites;
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0x0A55_E55E);

        // Register publisher organizations and remap tagged owner ids.
        let publisher_orgs: Vec<OrgId> = PUBLISHERS
            .iter()
            .map(|p| org_registry.register(p.name, OrgKind::PornPublisher, true))
            .collect();
        for site in &mut sites {
            if let Some(OrgId(tagged)) = site.owner {
                if tagged & PUBLISHER_TAG != 0 {
                    site.owner = Some(publisher_orgs[(tagged & !PUBLISHER_TAG) as usize]);
                }
            }
        }

        assign_policies(&config, &mut sites, &services, &mut rng);

        // Alexa-style category service: Adult entries + a few mainstream.
        let mut category_service = CategoryService::new();
        for site in &sites {
            if site.in_alexa_adult {
                category_service.register(&site.domain, Category::Adult);
            }
        }
        for site in sites
            .iter()
            .filter(|s| matches!(s.kind, SiteKind::Regular))
            .take(40)
        {
            category_service.register(&site.domain, Category::News);
        }

        // WHOIS: owners are rarely visible (§4.1: 96 % unattributable).
        let mut whois = WhoisDb::new();
        for site in &sites {
            let registrant = match site.owner {
                Some(org) if rng.random_bool(0.30) => {
                    Registrant::Organization(org_registry.get(org).name.clone())
                }
                Some(_) => Registrant::Redacted,
                None => match site.kind {
                    SiteKind::Regular if rng.random_bool(0.6) => Registrant::Organization(format!(
                        "{} Media Group",
                        title_word(&site.domain)
                    )),
                    _ if rng.random_bool(0.02) => {
                        Registrant::AddressOnly("PO Box 311, Limassol, Cyprus".to_string())
                    }
                    _ => Registrant::Redacted,
                },
            };
            whois.insert(WhoisRecord {
                domain: psl::registrable_domain(&site.domain).to_string(),
                registrant,
                registrar: "Example Registrar Inc.".to_string(),
                created_year: 2004 + (mix(site.id.0 as u64, 11) % 14) as u16,
            });
        }

        // DNS: shared nameservers inside publisher clusters.
        let mut dns = DnsDb::new();
        for site in &sites {
            let ns = match site.owner {
                Some(org) => {
                    let slug: String = org_registry
                        .get(org)
                        .name
                        .to_ascii_lowercase()
                        .chars()
                        .filter(|c| c.is_ascii_alphanumeric())
                        .collect();
                    vec![
                        format!("ns1.{slug}-infra.net"),
                        format!("ns2.{slug}-infra.net"),
                    ]
                }
                None => vec![format!(
                    "ns{}.parked-dns.net",
                    mix(site.id.0 as u64, 3) % 50
                )],
            };
            dns.insert(
                &site.domain,
                ZoneRecord {
                    address: ip_for(site.id.0),
                    nameservers: ns,
                    cname: None,
                },
            );
        }

        // Filter lists and the entity list.
        let cat_again = catalog::build(&config);
        let easylist = lists::easylist(&cat_again);
        let easyprivacy = lists::easyprivacy(&cat_again);
        let disconnect = lists::disconnect(&cat_again);

        // Host index.
        let mut host_index = HashMap::new();
        for site in &sites {
            host_index.insert(site.domain.clone(), HostEntity::Site(site.id.0));
            if let Some(label) = &site.cdn_label {
                if site.country_cdn {
                    for c in Country::ALL {
                        host_index.insert(
                            format!("{label}-{}.{}", c.code().to_lowercase(), site.domain),
                            HostEntity::SiteCdn(site.id.0),
                        );
                    }
                } else {
                    host_index.insert(
                        format!("{label}.{}", site.domain),
                        HostEntity::SiteCdn(site.id.0),
                    );
                }
            }
            for (label, provider) in &site.cloud_hosts {
                host_index.insert(
                    format!("{label}.{provider}"),
                    HostEntity::CloudHost(site.id.0),
                );
            }
        }
        for svc in services.iter() {
            for fqdn in svc.all_fqdns() {
                host_index.insert(fqdn.to_string(), HostEntity::Service(svc.id));
            }
        }
        for (i, d) in pop.directory_domains.iter().enumerate() {
            host_index.insert(d.clone(), HostEntity::Directory(i as u32));
        }

        World {
            scanners: ScannerEnsemble::new(config.seed),
            config,
            orgs: org_registry,
            services,
            sites,
            directory_domains: pop.directory_domains,
            category_service,
            whois,
            dns,
            easylist,
            easyprivacy,
            disconnect,
            publisher_orgs,
            host_index,
        }
    }

    /// Resolves a hostname to its entity (exact match, then the site-CDN
    /// wildcard fallback for generated subdomains of known sites).
    pub fn resolve_host(&self, host: &str) -> Option<HostEntity> {
        if let Some(e) = self.host_index.get(host) {
            return Some(*e);
        }
        // Subdomain of a known site ⇒ that site's CDN space.
        let reg = psl::registrable_domain(host);
        if reg != host {
            if let Some(HostEntity::Site(id)) = self.host_index.get(reg) {
                return Some(HostEntity::SiteCdn(*id));
            }
        }
        None
    }

    /// Site lookup by apex domain.
    pub fn site_by_domain(&self, domain: &str) -> Option<&Site> {
        match self.host_index.get(domain) {
            Some(HostEntity::Site(id)) => Some(&self.sites[*id as usize]),
            _ => None,
        }
    }

    /// Owner company name of a site, when attributed.
    pub fn owner_name(&self, site: &Site) -> Option<&str> {
        site.owner.map(|o| self.orgs.get(o).name.as_str())
    }

    /// The leaf certificate a host presents over HTTPS.
    pub fn cert_for_host(&self, host: &str) -> Certificate {
        match self.resolve_host(host) {
            Some(HostEntity::Service(id)) => {
                let svc = self.services.get(id);
                Certificate::leaf(
                    &svc.fqdn,
                    svc.cert_org.as_deref(),
                    svc.all_fqdns()
                        .flat_map(|f| [f.to_string(), format!("*.{f}")])
                        .collect(),
                    mix(hash_str(&svc.fqdn), 0xCE47),
                )
            }
            Some(HostEntity::Site(id)) | Some(HostEntity::SiteCdn(id)) => {
                let site = &self.sites[id as usize];
                // A quarter of owned sites carry OV certificates naming the
                // company (one of the §4.1 attribution signals).
                let org = site.owner.and_then(|o| {
                    if mix(site.id.0 as u64, 0x0F).is_multiple_of(4) {
                        Some(self.orgs.get(o).name.clone())
                    } else {
                        None
                    }
                });
                Certificate::leaf(
                    &site.domain,
                    org.as_deref(),
                    vec![site.domain.clone(), format!("*.{}", site.domain)],
                    mix(hash_str(&site.domain), 0xCE47),
                )
            }
            Some(HostEntity::CloudHost(_)) => {
                let reg = psl::registrable_domain(host).to_string();
                let org = match reg.as_str() {
                    "cloudfront.net" => Some("Amazon Inc."),
                    "akamaihd.net" => Some("Akamai Technologies"),
                    "fastly.net" => Some("Fastly, Inc."),
                    "jscdn.net" => Some("Open JS Foundation CDN"),
                    _ => None,
                };
                Certificate::leaf(
                    &format!("*.{reg}"),
                    org,
                    vec![reg.clone()],
                    mix(hash_str(&reg), 3),
                )
            }
            Some(HostEntity::Directory(_)) | None => {
                Certificate::leaf(host, None, vec![host.to_string()], mix(hash_str(host), 9))
            }
        }
    }

    /// Ground truth: is this domain's operator malicious? (threat-intel
    /// input — the ensemble still decides the verdict).
    pub fn truly_malicious(&self, host: &str) -> bool {
        match self.resolve_host(host) {
            Some(HostEntity::Service(id)) => self.services.get(id).malicious,
            Some(HostEntity::Site(id)) | Some(HostEntity::SiteCdn(id)) => {
                self.sites[id as usize].malicious
            }
            _ => false,
        }
    }

    /// Domains that ever appeared in the simulated top-1M during 2018 (the
    /// longitudinal Alexa dataset of §3), with their best rank.
    pub fn toplist_domains(&self) -> Vec<(&str, u32)> {
        self.sites
            .iter()
            .filter_map(|s| s.history.best().map(|b| (s.domain.as_str(), b)))
            .collect()
    }

    /// The full longitudinal rank dataset: per-domain daily histories for
    /// 2018. This mirrors the paper's public Alexa top-1M snapshots — it is
    /// *published measurement data*, not simulator ground truth, so the
    /// popularity analyses may consume it directly.
    pub fn rank_histories(
        &self,
    ) -> std::collections::BTreeMap<String, redlight_rankings::RankHistory> {
        self.sites
            .iter()
            .map(|s| (s.domain.clone(), s.history.clone()))
            .collect()
    }

    /// The country hosting `host`'s servers, as a geo-IP database would
    /// report it — the observable input to the cross-border analysis
    /// (§10 future work / Iordanou et al.). Hosting concentrates in the US
    /// with a European and regional tail; deterministic per host.
    pub fn hosting_country(&self, host: &str) -> Country {
        let reg = psl::registrable_domain(host);
        match mix(hash_str(reg), self.config.seed ^ 0x6E0) % 100 {
            0..=54 => Country::Usa,
            55..=74 => Country::Spain, // EU data centers
            75..=84 => Country::Uk,
            85..=90 => Country::Russia,
            91..=95 => Country::India,
            _ => Country::Singapore,
        }
    }

    /// The landing-page URL for a site (HTTPS when supported).
    pub fn landing_url(&self, site: &Site) -> String {
        let scheme = if site.https { "https" } else { "http" };
        format!("{scheme}://{}/", site.domain)
    }
}

fn hash_str(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn ip_for(site_id: u32) -> Ipv4Addr {
    Ipv4Addr::new(
        10,
        (site_id >> 16) as u8,
        (site_id >> 8) as u8,
        site_id as u8,
    )
}

fn title_word(domain: &str) -> String {
    let stem = domain.split('.').next().unwrap_or(domain);
    let mut c = stem.chars();
    match c.next() {
        Some(first) => first.to_uppercase().collect::<String>() + c.as_str(),
        None => String::new(),
    }
}

/// Assigns privacy policies (§7.3 calibration).
fn assign_policies(
    config: &WorldConfig,
    sites: &mut [Site],
    services: &ServiceRegistry,
    rng: &mut StdRng,
) {
    let scale = config.sanitized_count() as f64 / 6_843.0;
    // Target: 16 % of the porn corpus carries a policy; every owned site
    // does; the remainder is spread over unowned sites.
    let porn_total = sites.iter().filter(|s| s.is_porn()).count();
    let owned_total = sites
        .iter()
        .filter(|s| s.is_porn() && s.owner.is_some())
        .count();
    // Compliance follows popularity (§7.3/§7.1: "only the companies behind
    // some of the most popular pornographic websites seem to make efforts"):
    // the unowned-policy probability is tier-weighted and normalized so the
    // corpus-wide rate lands at 16 %.
    let target = (0.16 * porn_total as f64).round() as usize;
    let tier_weight = |tier: redlight_rankings::PopularityTier| match tier {
        redlight_rankings::PopularityTier::Top1k => 10.0,
        redlight_rankings::PopularityTier::To10k => 4.5,
        redlight_rankings::PopularityTier::To100k => 1.0,
        redlight_rankings::PopularityTier::Beyond100k => 0.45,
    };
    let weight_mass: f64 = sites
        .iter()
        .filter(|s| s.is_porn() && s.owner.is_none())
        .map(|s| tier_weight(s.tier))
        .sum();
    let unowned_base = (target.saturating_sub(owned_total)) as f64 / weight_mass.max(1.0);

    let mut unique_counter: u32 = 0;
    let n_broken_target = ((44.0 * scale).round() as usize).max(1);
    let mut broken_left = n_broken_target;

    for site in sites.iter_mut() {
        let spec = match (site.kind, site.owner) {
            (SiteKind::Porn, Some(OrgId(_))) => {
                Some(PolicyTemplate::Company(publisher_index_of(site)))
            }
            (SiteKind::Porn, None) => {
                let rate = unowned_base * tier_weight(site.tier);
                if rng.random_bool(rate.clamp(0.0, 1.0)) {
                    if rng.random_bool(0.60) {
                        Some(PolicyTemplate::Generic(rng.random_range(0..12u8)))
                    } else {
                        unique_counter += 1;
                        Some(PolicyTemplate::Unique(unique_counter))
                    }
                } else {
                    None
                }
            }
            (SiteKind::Regular, _) => {
                if rng.random_bool(0.70) {
                    unique_counter += 1;
                    Some(if rng.random_bool(0.5) {
                        PolicyTemplate::Generic(rng.random_range(0..12u8))
                    } else {
                        PolicyTemplate::Unique(unique_counter)
                    })
                } else {
                    None
                }
            }
            _ => None,
        };
        let Some(template) = spec else { continue };

        // Policies are overwhelmingly English, even on localized sites —
        // the ~20 % localized remainder is what keeps the §7.3 pairwise
        // similarity near 76 % rather than 100 %.
        let language = if rng.random_bool(0.86) {
            Language::English
        } else if site.language != Language::English {
            site.language
        } else {
            // Localized policy on an English site: pick a non-English
            // language so the §7.3 cross-language dissimilar quartile exists
            // at every scale.
            Language::ALL[1 + (rng.random_range(0..7u8) as usize)]
        };
        let broken = site.is_porn() && broken_left > 0 && rng.random_bool(0.012);
        if broken {
            broken_left -= 1;
        }
        // Log-normal letter counts: mean ≈ 17k, clamped to the paper span.
        let z = {
            let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
            let u2: f64 = rng.random_range(0.0..1.0);
            (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
        };
        let letters = (9.35 + 0.75 * z).exp().clamp(1_088.0, 243_649.0) as u32;

        site.policy = Some(PolicySpec {
            template,
            language,
            mentions_gdpr: rng.random_bool(0.20),
            target_letters: letters,
            disclosures: PolicyDisclosures {
                cookies: rng.random_bool(0.75),
                data_types: rng.random_bool(0.70),
                third_parties: rng.random_bool(0.65),
                full_third_party_list: false,
            },
            path: crate::policygen::policy_path(language).to_string(),
            broken,
        });
    }

    // Exactly one policy discloses its complete third-party list (§7.3):
    // give it to the porn site with the most deployments that has a policy.
    let _ = services;
    if let Some(best) = sites
        .iter_mut()
        .filter(|s| s.is_porn() && s.policy.is_some())
        .max_by_key(|s| s.deployments.len())
    {
        if let Some(p) = &mut best.policy {
            p.disclosures.third_parties = true;
            p.disclosures.full_third_party_list = true;
        }
    }
}

/// Publisher index for an owned site (derived from the flagship table by
/// matching the resolved org later; during assignment the owner org id is
/// already a real id whose registration order mirrors PUBLISHERS).
fn publisher_index_of(site: &Site) -> u32 {
    // Owner org ids for publishers are assigned in PUBLISHERS order starting
    // at some base; the company template index only needs to distinguish
    // companies, so the org id itself serves as a stable index.
    site.owner.map(|o| o.0).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> World {
        World::build(WorldConfig::tiny(42))
    }

    #[test]
    fn build_is_deterministic() {
        let a = World::build(WorldConfig::tiny(4));
        let b = World::build(WorldConfig::tiny(4));
        assert_eq!(a.sites.len(), b.sites.len());
        for (x, y) in a.sites.iter().zip(&b.sites) {
            assert_eq!(x.domain, y.domain);
            assert_eq!(x.policy.is_some(), y.policy.is_some());
        }
        assert_eq!(a.easylist, b.easylist);
    }

    #[test]
    fn host_resolution_covers_everything() {
        let w = world();
        let site = &w.sites[0];
        assert_eq!(
            w.resolve_host(&site.domain),
            Some(HostEntity::Site(site.id.0))
        );
        assert!(matches!(
            w.resolve_host("exoclick.com"),
            Some(HostEntity::Service(_))
        ));
        assert_eq!(w.resolve_host("never-generated.example"), None);
        // Generated subdomains of known sites fall back to SiteCdn.
        let sub = format!("whatever.{}", site.domain);
        assert_eq!(w.resolve_host(&sub), Some(HostEntity::SiteCdn(site.id.0)));
    }

    #[test]
    fn owned_sites_resolve_owner_names() {
        let w = world();
        let ph = w.site_by_domain("pornhub.com").unwrap();
        assert_eq!(w.owner_name(ph), Some("MindGeek"));
    }

    #[test]
    fn policy_rate_is_near_16_percent() {
        let w = World::build(WorldConfig::small(9));
        let porn: Vec<&Site> = w.sites.iter().filter(|s| s.is_porn()).collect();
        let with_policy = porn.iter().filter(|s| s.policy.is_some()).count();
        let rate = with_policy as f64 / porn.len() as f64;
        assert!((0.10..0.24).contains(&rate), "policy rate {rate}");
        // Every owned site has one.
        assert!(porn
            .iter()
            .filter(|s| s.owner.is_some())
            .all(|s| s.policy.is_some()));
    }

    #[test]
    fn exactly_one_full_disclosure_policy() {
        let w = World::build(WorldConfig::small(9));
        let full = w
            .sites
            .iter()
            .filter(|s| {
                s.policy
                    .as_ref()
                    .is_some_and(|p| p.disclosures.full_third_party_list)
            })
            .count();
        assert_eq!(full, 1);
    }

    #[test]
    fn certificates_cover_their_hosts() {
        let w = world();
        let cert = w.cert_for_host("exoclick.com");
        assert!(cert.covers("exoclick.com"));
        assert_eq!(cert.attributable_organization(), Some("ExoClick S.L."));
        let site = &w.sites[0];
        let site_cert = w.cert_for_host(&site.domain);
        assert!(site_cert.covers(&site.domain));
        assert!(site_cert.covers(&format!("img.{}", site.domain)));
    }

    #[test]
    fn adult_category_lists_alexa_adult_sites() {
        let w = world();
        let adult = w.category_service.domains_in(Category::Adult);
        assert_eq!(adult.len(), w.config.n_alexa_adult_porn);
        for d in adult {
            assert!(w.site_by_domain(d).unwrap().in_alexa_adult);
        }
    }

    #[test]
    fn scanner_flags_malicious_service_domains() {
        let w = world();
        assert!(w.truly_malicious("coinhive.com"));
        assert!(w.scanners.is_flagged("coinhive.com", true));
        assert!(!w.truly_malicious("google-analytics.com"));
    }
}
