//! The service catalog: named organizations/services calibrated from the
//! paper's tables, plus generated long-tail populations.
//!
//! Calibration sources:
//! * Fig. 3 — organization prevalence in porn vs regular websites;
//! * Table 4 — the top cookie-setting third parties and their IP-embedding
//!   ratios (ExoSrv 85 %, ExoClick 29 %);
//! * Table 5 — the fingerprinting services and their canvas/WebRTC script
//!   counts;
//! * §4.2.2 — long-tail / unpopular-site-only services (adultforce,
//!   zingyads, the four Russian ATS, itraffictrade);
//! * §5.1.2 — the HProfits sync triangle;
//! * §5.3 — the three cryptominers;
//! * Table 7 — country-exclusive ATS populations.

use rand::prelude::*;
use redlight_net::geoip::Country;

use crate::config::WorldConfig;
use crate::org::{OrgId, OrgKind, OrgRegistry};
use crate::service::{
    Adoption, CookieBehavior, FpBehavior, ListCoverage, ServiceCategory, ServiceId,
    ServiceRegistry, ThirdPartyService,
};

/// Handles into the built catalog that site generation needs.
#[derive(Debug, Clone)]
pub struct Catalog {
    /// Orgs.
    pub orgs: OrgRegistry,
    /// Services.
    pub services: ServiceRegistry,
    /// Long-tail adult trackers (placed explicitly on 1–5 porn sites each).
    pub longtail_porn: Vec<ServiceId>,
    /// Long-tail canvas-fingerprinting services.
    pub longtail_fp: Vec<ServiceId>,
    /// Long-tail WebRTC services.
    pub longtail_webrtc: Vec<ServiceId>,
    /// Long-tail malicious services (beyond the named miners).
    pub longtail_malicious: Vec<ServiceId>,
    /// Country-exclusive ATS services per country.
    pub country_ats: Vec<(Country, Vec<ServiceId>)>,
    /// Regular-web long-tail trackers.
    pub longtail_regular: Vec<ServiceId>,
    /// Sync destination pool (hubs + destination-capable long tail).
    pub sync_destinations: Vec<ServiceId>,
    /// Services that appear only on unpopular (100k+) porn sites.
    pub unpopular_only: Vec<ServiceId>,
}

/// Number of country-exclusive ATS services generated per country (Table 7,
/// "Unique Country" ATS column).
pub const COUNTRY_UNIQUE_ATS: &[(Country, usize)] = &[
    (Country::Usa, 25),
    (Country::Uk, 20),
    (Country::Spain, 59),
    (Country::Russia, 27),
    (Country::India, 21),
    (Country::Singapore, 16),
];

struct Builder {
    orgs: OrgRegistry,
    services: ServiceRegistry,
}

impl Builder {
    fn org(&mut self, name: &str, kind: OrgKind, adult: bool) -> OrgId {
        if let Some(existing) = self.orgs.by_name(name) {
            return existing.id;
        }
        self.orgs.register(name, kind, adult)
    }

    #[allow(clippy::too_many_arguments)]
    fn svc(&mut self, org: OrgId, label: &str, fqdn: &str, cat: ServiceCategory) -> SvcBuilder<'_> {
        SvcBuilder {
            builder: self,
            svc: ThirdPartyService {
                id: ServiceId(0),
                org,
                label: label.to_string(),
                fqdn: fqdn.to_string(),
                extra_fqdns: vec![],
                category: cat,
                https: true,
                adoption: Adoption::none(),
                countries: None,
                cookies: None,
                sync_to: vec![],
                sync_gate_pct: 90,
                rtb_partners: vec![],
                fp: FpBehavior::default(),
                miner: false,
                malicious: false,
                list_coverage: ListCoverage::None,
                in_disconnect: false,
                cert_org: None,
            },
        }
    }
}

struct SvcBuilder<'a> {
    builder: &'a mut Builder,
    svc: ThirdPartyService,
}

impl SvcBuilder<'_> {
    fn extra(mut self, fqdn: &str) -> Self {
        self.svc.extra_fqdns.push(fqdn.to_string());
        self
    }
    fn adoption(mut self, porn: [f64; 4], regular: [f64; 4]) -> Self {
        self.svc.adoption = Adoption { porn, regular };
        self
    }
    fn flat(mut self, porn: f64, regular: f64) -> Self {
        self.svc.adoption = Adoption::flat(porn, regular);
        self
    }
    fn cookies(mut self, c: CookieBehavior) -> Self {
        self.svc.cookies = Some(c);
        self
    }
    fn fp(mut self, fp: FpBehavior) -> Self {
        self.svc.fp = fp;
        self
    }
    fn list(mut self, cov: ListCoverage) -> Self {
        self.svc.list_coverage = cov;
        self
    }
    fn disconnect(mut self) -> Self {
        self.svc.in_disconnect = true;
        self
    }
    fn cert(mut self, org: &str) -> Self {
        self.svc.cert_org = Some(org.to_string());
        self
    }
    fn no_https(mut self) -> Self {
        self.svc.https = false;
        self
    }
    fn miner(mut self) -> Self {
        self.svc.miner = true;
        self.svc.malicious = true;
        self
    }
    fn malicious(mut self) -> Self {
        self.svc.malicious = true;
        self
    }
    fn countries(mut self, cs: &[Country]) -> Self {
        self.svc.countries = Some(cs.to_vec());
        self
    }
    fn build(self) -> ServiceId {
        self.builder.services.add(self.svc)
    }
}

/// IP-embedding uid cookies (ExoClick family).
fn ip_cookie(
    cookies_per_visit: u8,
    id_len: u8,
    embed_ip_ratio: f64,
    id_ratio: f64,
) -> CookieBehavior {
    CookieBehavior {
        cookies_per_visit,
        id_len,
        embed_ip_ratio,
        embed_geo: false,
        geo_includes_isp: false,
        id_ratio,
        long_value: false,
    }
}

/// Geolocation cookies (fling.com / playwithme.com, §5.1.1).
fn geo_cookie(isp: bool) -> CookieBehavior {
    CookieBehavior {
        cookies_per_visit: 2,
        id_len: 16,
        embed_ip_ratio: 0.0,
        embed_geo: true,
        geo_includes_isp: isp,
        id_ratio: 1.0,
        long_value: false,
    }
}

/// >1,000-character cookies (JuicyAds / TrafficStars, §5.1.1).
fn long_cookie(cookies_per_visit: u8) -> CookieBehavior {
    CookieBehavior {
        cookies_per_visit,
        id_len: 24,
        embed_ip_ratio: 0.0,
        embed_geo: false,
        geo_includes_isp: false,
        id_ratio: 1.0,
        long_value: true,
    }
}

/// Builds the full catalog for `config`, deterministic in `config.seed`.
pub fn build(config: &WorldConfig) -> Catalog {
    let mut b = Builder {
        orgs: OrgRegistry::new(),
        services: ServiceRegistry::new(),
    };
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0xCA7A_1065);

    // ---- Alphabet (74 % of porn sites via the union of its services). ----
    let alphabet = b.org("Alphabet", OrgKind::AdNetwork, false);
    let ga = b
        .svc(
            alphabet,
            "Google Analytics",
            "google-analytics.com",
            ServiceCategory::Analytics,
        )
        .flat(0.39, 0.65)
        .list(ListCoverage::DomainWide)
        .disconnect()
        .cert("Alphabet Inc.")
        .build();
    let doubleclick = b
        .svc(
            alphabet,
            "DoubleClick",
            "doubleclick.net",
            ServiceCategory::AdNetwork,
        )
        .adoption([0.35, 0.20, 0.11, 0.08], [0.60; 4])
        .cookies(CookieBehavior {
            cookies_per_visit: 2,
            ..CookieBehavior::uid(22)
        })
        .list(ListCoverage::DomainWide)
        .disconnect()
        .cert("Alphabet Inc.")
        .build();
    let gapis = b
        .svc(
            alphabet,
            "Google APIs",
            "googleapis.com",
            ServiceCategory::Cdn,
        )
        .extra("gstatic.com")
        .flat(0.58, 0.70)
        .cert("Alphabet Inc.")
        .build();

    // ---- ExoClick: the adult ad giant (43 % of porn, 6 regular sites). ----
    let exo_org = b.org("ExoClick", OrgKind::AdNetwork, true);
    // ExoSrv/ExoClick adoption is handled as a correlated bundle during
    // site generation (43 % of porn sites host at least one, §4.2.1) —
    // probabilities here stay at zero.
    let exosrv = b
        .svc(exo_org, "ExoSrv", "exosrv.com", ServiceCategory::AdNetwork)
        .adoption([0.0; 4], [0.0004; 4])
        .cookies(ip_cookie(2, 18, 0.85, 0.68))
        .list(ListCoverage::DomainWide)
        .cert("ExoClick S.L.")
        .build();
    let exoclick = b
        .svc(
            exo_org,
            "ExoClick",
            "exoclick.com",
            ServiceCategory::AdNetwork,
        )
        .adoption([0.0; 4], [0.0004; 4])
        .cookies(ip_cookie(2, 18, 0.29, 0.45))
        .list(ListCoverage::DomainWide)
        .cert("ExoClick S.L.")
        .build();

    // ---- Cloudflare (35 % porn / 30 % regular; operator unconfirmed). ----
    let cloudflare_org = b.org("Cloudflare", OrgKind::Cdn, false);
    let cloudflare = b
        .svc(
            cloudflare_org,
            "Cloudflare CDN",
            "cloudflare.com",
            ServiceCategory::Cdn,
        )
        .extra("cdnjs.cloudflare.com")
        .flat(0.35, 0.30)
        .list(ListCoverage::PathOnly)
        .disconnect()
        .fp(FpBehavior {
            canvas: true,
            canvas_site_fraction: 0.0013, // hosts FP for a couple of customers
            canvas_scripts: (1, 1),
            canvas_pool: 2,
            indexed_frac: 1.0,
            ..FpBehavior::default()
        })
        .build();

    // ---- Oracle: AddThis (17 % of porn) + BlueKai sync hub. ----
    let oracle = b.org("Oracle", OrgKind::DataBroker, false);
    let addthis = b
        .svc(oracle, "AddThis", "addthis.com", ServiceCategory::Widget)
        .flat(0.17, 0.25)
        .cookies(CookieBehavior {
            cookies_per_visit: 2,
            ..CookieBehavior::uid(20)
        })
        .list(ListCoverage::DomainWide)
        .cert("Oracle Corporation")
        .build();
    let bluekai = b
        .svc(
            oracle,
            "BlueKai",
            "bluekai.com",
            ServiceCategory::DataBroker,
        )
        .flat(0.01, 0.08)
        .cookies(CookieBehavior::uid(24))
        .list(ListCoverage::DomainWide)
        .cert("Oracle Corporation")
        .build();

    // ---- Yandex (4 % porn, Table 4). ----
    let yandex_org = b.org("Yandex", OrgKind::Analytics, false);
    let yandex = b
        .svc(
            yandex_org,
            "Yandex Metrica",
            "yandex.ru",
            ServiceCategory::Analytics,
        )
        .extra("mc.yandex.ru")
        .flat(0.04, 0.08)
        .cookies(CookieBehavior {
            cookies_per_visit: 3,
            ..CookieBehavior::uid(20)
        })
        .list(ListCoverage::DomainWide)
        .disconnect()
        .cert("Yandex LLC")
        .build();

    // ---- Adult ad networks. ----
    let juicy_org = b.org("JuicyAds", OrgKind::AdNetwork, true);
    let juicyads = b
        .svc(
            juicy_org,
            "JuicyAds",
            "juicyads.com",
            ServiceCategory::AdNetwork,
        )
        .flat(0.04, 0.0)
        .cookies(long_cookie(2))
        .list(ListCoverage::DomainWide)
        .cert("JuicyAds Inc.")
        .build();

    let ero_org = b.org("EroAdvertising", OrgKind::AdNetwork, true);
    let ero = b
        .svc(
            ero_org,
            "EroAdvertising",
            "ero-advertising.com",
            ServiceCategory::AdNetwork,
        )
        .flat(0.0052, 0.0002)
        .cookies(CookieBehavior::uid(16))
        .list(ListCoverage::PathOnly)
        .fp(FpBehavior {
            indexed_frac: 0.31, // ~10 of its 32 variants live on the indexed path
            ..FpBehavior::canvas_everywhere((1, 1))
        })
        .cert("EroAdvertising BV")
        .build();

    let dpimp_org = b.org("DoublePimp", OrgKind::AdNetwork, true);
    let doublepimp = b
        .svc(
            dpimp_org,
            "DoublePimp",
            "doublepimp.com",
            ServiceCategory::AdNetwork,
        )
        .extra("doublepimpssl.com")
        .adoption([0.12, 0.07, 0.035, 0.02], [0.0001; 4])
        .cookies(CookieBehavior::uid(18))
        .list(ListCoverage::DomainWide)
        .cert("DoublePimp Ltd.")
        .build();

    let tj_org = b.org("TrafficJunky", OrgKind::AdNetwork, true);
    let trafficjunky = b
        .svc(
            tj_org,
            "TrafficJunky",
            "trafficjunky.net",
            ServiceCategory::AdNetwork,
        )
        .adoption([0.50, 0.25, 0.08, 0.02], [0.0; 4])
        .cookies(CookieBehavior::uid(20))
        .list(ListCoverage::DomainWide)
        .cert("MindGeek")
        .build();

    let ts_org = b.org("TrafficStars", OrgKind::AdNetwork, true);
    let tsyndicate = b
        .svc(
            ts_org,
            "TrafficStars",
            "tsyndicate.com",
            ServiceCategory::AdNetwork,
        )
        .adoption([0.12, 0.09, 0.055, 0.04], [0.0; 4])
        .cookies(long_cookie(1))
        .list(ListCoverage::DomainWide)
        .cert("Traffic Stars Ltd")
        .build();

    // ---- The HProfits sync triangle (§5.1.2). ----
    let hprofits_org = b.org("HProfits", OrgKind::AdNetwork, true);
    let hprofits = b
        .svc(
            hprofits_org,
            "HProfits Exchange",
            "hprofits.com",
            ServiceCategory::AdNetwork,
        )
        .flat(0.008, 0.0)
        .cookies(CookieBehavior::uid(18))
        .cert("HProfits Group")
        .build();
    let hd1 = b
        .svc(
            hprofits_org,
            "HProfits hd",
            "hd100546b.com",
            ServiceCategory::AdNetwork,
        )
        .flat(0.01, 0.0)
        .cookies(CookieBehavior::uid(18))
        .cert("HProfits Group")
        .build();
    let bd2 = b
        .svc(
            hprofits_org,
            "HProfits bd",
            "bd202457b.com",
            ServiceCategory::AdNetwork,
        )
        .flat(0.01, 0.0)
        .cookies(CookieBehavior::uid(18))
        .cert("HProfits Group")
        .build();

    // ---- Security / anti-fraud (Table 5). ----
    let adscore_org = b.org("Adscore", OrgKind::Other, true);
    let adscore = b
        .svc(
            adscore_org,
            "Adscore",
            "adsco.re",
            ServiceCategory::Security,
        )
        .flat(0.024, 0.01)
        .fp(FpBehavior {
            webrtc: true,
            ..FpBehavior::default()
        })
        .build();

    let tm_org = b.org("ThreatMetrix", OrgKind::Other, false);
    let online_metrix = b
        .svc(
            tm_org,
            "ThreatMetrix",
            "online-metrix.net",
            ServiceCategory::Security,
        )
        .adoption([0.0; 4], [0.05; 4])
        .fp(FpBehavior {
            font: true,
            webrtc: true,
            ..FpBehavior::default()
        })
        .list(ListCoverage::DomainWide)
        .cert("ThreatMetrix Inc.")
        .build();

    let th_org = b.org("TrafficHunt", OrgKind::AdNetwork, true);
    let traffichunt = b
        .svc(
            th_org,
            "TrafficHunt",
            "traffichunt.com",
            ServiceCategory::AdNetwork,
        )
        .flat(0.0016, 0.001)
        .cookies(CookieBehavior::uid(16))
        .fp(FpBehavior {
            webrtc: true,
            ..FpBehavior::default()
        })
        .list(ListCoverage::DomainWide)
        .build();

    // ---- Amazon: CloudFront CDN + the Alexa widget. ----
    let amazon = b.org("Amazon", OrgKind::Cdn, false);
    let cloudfront = b
        .svc(amazon, "CloudFront", "cloudfront.net", ServiceCategory::Cdn)
        .flat(0.08, 0.25)
        .list(ListCoverage::PathOnly)
        .fp(FpBehavior {
            canvas: true,
            canvas_site_fraction: 0.061, // ~31 of ~510 deployments
            canvas_scripts: (1, 1),
            canvas_pool: 8,
            indexed_frac: 1.0, // its 8 variants are the bulk of indexed scripts
            ..FpBehavior::default()
        })
        .cert("Amazon Inc.")
        .build();
    let alexa_widget = b
        .svc(
            amazon,
            "Alexa Widget",
            "alexa.com",
            ServiceCategory::Analytics,
        )
        .flat(0.05, 0.10)
        .cookies(CookieBehavior::uid(16))
        .list(ListCoverage::DomainWide)
        .disconnect()
        .cert("Amazon Inc.")
        .build();

    // ---- Data brokers. ----
    let towerdata = b.org("TowerData/Acxiom", OrgKind::DataBroker, false);
    let rlcdn = b
        .svc(
            towerdata,
            "RapLeaf",
            "rlcdn.com",
            ServiceCategory::DataBroker,
        )
        .flat(0.0006, 0.30)
        .cookies(CookieBehavior::uid(24))
        .list(ListCoverage::DomainWide)
        .cert("TowerData Inc.")
        .build();

    // ---- Mainstream web (Fig. 3's regular-web side). ----
    let facebook_org = b.org("Facebook", OrgKind::Social, false);
    let facebook = b
        .svc(
            facebook_org,
            "Facebook Connect",
            "facebook.net",
            ServiceCategory::Social,
        )
        .extra("facebook.com")
        .flat(0.02, 0.55)
        .cookies(CookieBehavior::uid(24))
        .list(ListCoverage::DomainWide)
        .disconnect()
        .cert("Facebook, Inc.")
        .build();
    let twitter_org = b.org("Twitter", OrgKind::Social, false);
    let twitter = b
        .svc(
            twitter_org,
            "Twitter Widgets",
            "twitter.com",
            ServiceCategory::Social,
        )
        .flat(0.01, 0.30)
        .cookies(CookieBehavior::uid(20))
        .list(ListCoverage::DomainWide)
        .disconnect()
        .cert("Twitter, Inc.")
        .build();
    let criteo_org = b.org("Criteo", OrgKind::AdNetwork, false);
    let criteo = b
        .svc(
            criteo_org,
            "Criteo",
            "criteo.com",
            ServiceCategory::AdNetwork,
        )
        .flat(0.002, 0.25)
        .cookies(CookieBehavior::uid(22))
        .list(ListCoverage::DomainWide)
        .disconnect()
        .cert("Criteo SA")
        .build();
    let appnexus_org = b.org("AppNexus", OrgKind::AdNetwork, false);
    let adnxs = b
        .svc(
            appnexus_org,
            "AppNexus",
            "adnxs.com",
            ServiceCategory::AdNetwork,
        )
        .flat(0.005, 0.30)
        .cookies(CookieBehavior::uid(22))
        .list(ListCoverage::DomainWide)
        .disconnect()
        .cert("AppNexus Inc.")
        .build();
    let comscore_org = b.org("comScore", OrgKind::Analytics, false);
    let scorecard = b
        .svc(
            comscore_org,
            "ScorecardResearch",
            "scorecardresearch.com",
            ServiceCategory::Analytics,
        )
        .flat(0.004, 0.25)
        .cookies(CookieBehavior::uid(20))
        .list(ListCoverage::DomainWide)
        .cert("comScore, Inc.")
        .build();
    let quantcast_org = b.org("Quantcast", OrgKind::Analytics, false);
    let quantserve = b
        .svc(
            quantcast_org,
            "Quantcast",
            "quantserve.com",
            ServiceCategory::Analytics,
        )
        .flat(0.003, 0.20)
        .cookies(CookieBehavior::uid(20))
        .list(ListCoverage::DomainWide)
        .cert("Quantcast Corp.")
        .build();
    let jsdelivr_org = b.org("jsDelivr", OrgKind::Cdn, false);
    let _jsdelivr = b
        .svc(
            jsdelivr_org,
            "jsDelivr",
            "jsdelivr.net",
            ServiceCategory::Cdn,
        )
        .flat(0.08, 0.25)
        .build();
    let akamai_org = b.org("Akamai", OrgKind::Cdn, false);
    let _akamai = b
        .svc(akamai_org, "Akamai", "akamaihd.net", ServiceCategory::Cdn)
        .flat(0.05, 0.30)
        .cert("Akamai Technologies")
        .build();
    let fastly_org = b.org("Fastly", OrgKind::Cdn, false);
    let _fastly = b
        .svc(fastly_org, "Fastly", "fastly.net", ServiceCategory::Cdn)
        .flat(0.03, 0.20)
        .cert("Fastly, Inc.")
        .build();

    // ---- Cryptominers (§5.3: three services on 8 porn sites). ----
    let coinhive_org = b.org("Coinhive", OrgKind::Cryptominer, false);
    let coinhive = b
        .svc(
            coinhive_org,
            "Coinhive",
            "coinhive.com",
            ServiceCategory::Cryptominer,
        )
        .miner()
        .build();
    let jse_org = b.org("JSEcoin", OrgKind::Cryptominer, false);
    let jsecoin = b
        .svc(
            jse_org,
            "JSEcoin",
            "jsecoin.com",
            ServiceCategory::Cryptominer,
        )
        .miner()
        .build();
    let btcpay_org = b.org("BitcoinPay", OrgKind::Cryptominer, false);
    let bitcoin_pay = b
        .svc(
            btcpay_org,
            "BitcoinPay",
            "bitcoin-pay.eu",
            ServiceCategory::Cryptominer,
        )
        .no_https()
        .miner()
        .build();

    // ---- Traffic trade (potentially malicious, §4.2.2). ----
    let itt_org = b.org("iTrafficTrade", OrgKind::AdNetwork, true);
    let itraffictrade = b
        .svc(
            itt_org,
            "iTrafficTrade",
            "itraffictrade.com",
            ServiceCategory::AdNetwork,
        )
        .flat(0.003, 0.0)
        .no_https()
        .malicious()
        .cookies(ip_cookie(1, 14, 0.5, 1.0))
        .build();

    // ---- Unpopular-site-only analytics (§4.2.2). ----
    let af_org = b.org("AdultForce", OrgKind::Analytics, true);
    let adultforce = b
        .svc(
            af_org,
            "AdultForce",
            "adultforce.com",
            ServiceCategory::Analytics,
        )
        .adoption([0.0, 0.0, 0.0, 0.012], [0.0; 4])
        .cookies(CookieBehavior::uid(16))
        .build();
    let zingy_org = b.org("ZingyAds", OrgKind::AdNetwork, true);
    let zingyads = b
        .svc(
            zingy_org,
            "ZingyAds",
            "zingyads.com",
            ServiceCategory::AdNetwork,
        )
        .adoption([0.0, 0.0, 0.0, 0.010], [0.0; 4])
        .cookies(CookieBehavior::uid(14))
        .no_https()
        .build();

    // ---- The four Russian ATS found on pornovhd.info (§4.2.2). ----
    let mut russian_ats = Vec::new();
    for fqdn in [
        "betweendigital.ru",
        "datamind.ru",
        "adlabs.ru",
        "adx.com.ru",
    ] {
        let org = b.org(&format!("RU-ATS {fqdn}"), OrgKind::AdNetwork, true);
        let id = b
            .svc(org, fqdn, fqdn, ServiceCategory::AdNetwork)
            .adoption([0.0, 0.0, 0.0, 0.002], [0.0; 4])
            .cookies(CookieBehavior::uid(16))
            .list(ListCoverage::DomainWide)
            .no_https()
            .build();
        russian_ats.push(id);
    }

    // ---- Geo-cookie services (27 of the 28 geolocation cookies). ----
    let fling_org = b.org("Fling", OrgKind::Other, true);
    // Placed explicitly during site generation (a fixed handful of sites),
    // so geolocation cookies exist at every world scale.
    let fling = b
        .svc(fling_org, "Fling", "fling.com", ServiceCategory::Widget)
        .cookies(geo_cookie(false))
        .build();
    let pwm_org = b.org("PlayWithMe", OrgKind::Other, true);
    let playwithme = b
        .svc(
            pwm_org,
            "PlayWithMe",
            "playwithme.com",
            ServiceCategory::Widget,
        )
        .cookies(geo_cookie(true))
        .build();

    // ---- The Table 5 fingerprinting cast. ----
    let adnium_org = b.org("Adnium", OrgKind::AdNetwork, true);
    let adnium = b
        .svc(
            adnium_org,
            "Adnium",
            "adnium.com",
            ServiceCategory::AdNetwork,
        )
        .flat(0.004, 0.0)
        .cookies(CookieBehavior::uid(16))
        .list(ListCoverage::PathOnly)
        .fp(FpBehavior::canvas_everywhere((1, 2)))
        .build();
    let hwm_org = b.org("HighWebMedia", OrgKind::Other, true);
    let highwebmedia = b
        .svc(
            hwm_org,
            "HighWebMedia",
            "highwebmedia.com",
            ServiceCategory::Widget,
        )
        .flat(0.0035, 0.0001)
        .list(ListCoverage::PathOnly)
        .fp(FpBehavior {
            canvas_pool: 1,
            indexed_frac: 1.0,
            ..FpBehavior::canvas_everywhere((1, 1))
        })
        .cert("Multi Media LLC")
        .build();
    let xcv_org = b.org("xcvgdf.party", OrgKind::AdNetwork, true);
    let xcvgdf = b
        .svc(
            xcv_org,
            "xcvgdf.party",
            "xcvgdf.party",
            ServiceCategory::AdNetwork,
        )
        .flat(0.0028, 0.0)
        .no_https()
        .fp(FpBehavior::canvas_everywhere((1, 1)))
        .build();
    let provers_org = b.org("provers.pro", OrgKind::AdNetwork, true);
    let provers = b
        .svc(
            provers_org,
            "provers.pro",
            "provers.pro",
            ServiceCategory::AdNetwork,
        )
        .flat(0.0024, 0.0)
        .list(ListCoverage::PathOnly)
        .fp(FpBehavior {
            canvas_pool: 1,
            indexed_frac: 1.0,
            ..FpBehavior::canvas_everywhere((1, 1))
        })
        .build();
    let montwam_org = b.org("montwam.top", OrgKind::AdNetwork, true);
    let montwam = b
        .svc(
            montwam_org,
            "montwam.top",
            "montwam.top",
            ServiceCategory::AdNetwork,
        )
        .flat(0.002, 0.0)
        .no_https()
        .list(ListCoverage::PathOnly)
        .fp(FpBehavior::canvas_everywhere((1, 2)))
        .build();
    let ddits_org = b.org("DDITS", OrgKind::Cdn, true);
    let dditscdn = b
        .svc(ddits_org, "dditscdn", "dditscdn.com", ServiceCategory::Cdn)
        .flat(0.0016, 0.0001)
        .list(ListCoverage::PathOnly)
        .fp(FpBehavior {
            canvas_pool: 1,
            indexed_frac: 1.0,
            ..FpBehavior::canvas_everywhere((1, 1))
        })
        .build();

    // Wire RTB chains: the exchanges call demand partners inside frames.
    for (exchange, partners) in [
        (exoclick, vec![doublepimp, adnxs]),
        (exosrv, vec![exoclick, criteo]),
        (doubleclick, vec![criteo, adnxs, bluekai]),
        (trafficjunky, vec![exoclick]),
    ] {
        b.services.get_mut(exchange).rtb_partners = partners;
    }

    // Wire named sync flows (§5.1.2).
    for (origin, dests) in [
        (
            exosrv,
            vec![exoclick, rlcdn, adnxs, criteo, tsyndicate, doubleclick],
        ),
        (exoclick, vec![exosrv, adnxs, criteo, juicyads]),
        (hd1, vec![hprofits]),
        (bd2, vec![hprofits]),
        (doubleclick, vec![criteo, adnxs, bluekai]),
        (juicyads, vec![criteo]),
        (tsyndicate, vec![adnxs]),
        (yandex, vec![criteo]),
        (traffichunt, vec![adnxs]),
        (itraffictrade, vec![rlcdn]),
    ] {
        b.services.get_mut(origin).sync_to = dests;
    }
    // High-reach networks sync selectively (§5.1.2 is a lower bound partly
    // because of this): roughly every other placement.
    for svc in [exosrv, exoclick, doubleclick, tsyndicate, juicyads] {
        b.services.get_mut(svc).sync_gate_pct = 55;
    }

    // ---- Long-tail populations. ----
    let sync_hubs = vec![criteo, adnxs, rlcdn, doubleclick];
    let longtail_org = b.org("(long-tail adult trackers)", OrgKind::AdNetwork, true);
    let mut longtail_porn = Vec::with_capacity(config.n_longtail_trackers);
    let mut destination_capable: Vec<ServiceId> = sync_hubs.clone();
    // Org-name pool: small tracker shops share holding companies, which is
    // why the paper resolves 4,477 FQDNs to only ~1,014 companies (§4.2(3)).
    let org_pool = ((config.n_longtail_trackers as f64) * 0.29).ceil().max(4.0) as usize;
    for i in 0..config.n_longtail_trackers {
        let fqdn = longtail_fqdn(&mut rng, i);
        let listed = rng.random_bool(0.18); // → ≈663 porn ATS domains at paper scale
        let session_only = rng.random_bool(0.18);
        let short_value = rng.random_bool(0.10); // filtered by the len≥6 rule
        let embeds_ip = rng.random_bool(0.025); // plain-HTTP IP leakers (§5.2)
        let has_ov_cert = rng.random_bool(0.80);
        let mut builder = b
            .svc(
                longtail_org,
                &format!("lt-{i}"),
                &fqdn,
                ServiceCategory::AdNetwork,
            )
            .cookies(CookieBehavior {
                cookies_per_visit: 1 + (i % 2) as u8,
                id_len: if short_value { 4 } else { 12 + (i % 20) as u8 },
                embed_ip_ratio: if embeds_ip { 1.0 } else { 0.0 },
                embed_geo: false,
                geo_includes_isp: false,
                id_ratio: if session_only { 0.0 } else { 1.0 },
                long_value: false,
            })
            .list(if listed {
                ListCoverage::DomainWide
            } else {
                ListCoverage::None
            });
        if has_ov_cert {
            let pool_idx = rng.random_range(0..org_pool);
            builder = builder.cert(&format!("Holding {pool_idx} Media Group"));
        }
        let id = builder.build();
        // HTTPS support in the long tail is scarce (Table 6 third parties).
        b.services.get_mut(id).https = rng.random_bool(0.30);
        if rng.random_bool(0.45) {
            // Sync origin: 3–6 partners from the destination pool.
            let n = rng.random_range(3..=6usize);
            let dests: Vec<ServiceId> = (0..n)
                .filter_map(|_| destination_capable.choose(&mut rng).copied())
                .filter(|d| *d != id)
                .collect();
            b.services.get_mut(id).sync_to = dests;
        }
        if rng.random_bool(0.12) {
            // Geo-fenced out of Russia (payment/sanction constraints):
            // the Table 7 Russian dip of ~700 FQDNs.
            let everywhere_but_ru: Vec<Country> = Country::ALL
                .into_iter()
                .filter(|c| *c != Country::Russia)
                .collect();
            b.services.get_mut(id).countries = Some(everywhere_but_ru);
        }
        if rng.random_bool(0.20) && destination_capable.len() < 720 {
            destination_capable.push(id);
        }
        longtail_porn.push(id);
    }

    // Long-tail canvas fingerprinters (the other ~40 of the 49 FP services).
    let ltfp_org = b.org("(long-tail fingerprinters)", OrgKind::AdNetwork, true);
    let n_ltfp = (config.n_longtail_trackers / 85).max(3);
    let mut longtail_fp = Vec::new();
    for i in 0..n_ltfp {
        let fqdn = longtail_fqdn(&mut rng, 100_000 + i);
        let id = b
            .svc(
                ltfp_org,
                &format!("ltfp-{i}"),
                &fqdn,
                ServiceCategory::AdNetwork,
            )
            .fp(FpBehavior::canvas_everywhere((1, 1)))
            .build();
        b.services.get_mut(id).https = rng.random_bool(0.3);
        longtail_fp.push(id);
    }

    // Long-tail WebRTC services (13 total with the named three).
    let ltrtc_org = b.org("(long-tail webrtc)", OrgKind::Analytics, true);
    let n_ltrtc = (config.n_longtail_trackers / 340).max(2);
    let mut longtail_webrtc = Vec::new();
    for i in 0..n_ltrtc {
        let fqdn = longtail_fqdn(&mut rng, 200_000 + i);
        let id = b
            .svc(
                ltrtc_org,
                &format!("ltrtc-{i}"),
                &fqdn,
                ServiceCategory::Analytics,
            )
            .fp(FpBehavior {
                webrtc: true,
                ..FpBehavior::default()
            })
            .cookies(CookieBehavior::uid(16))
            .build();
        b.services.get_mut(id).https = rng.random_bool(0.3);
        longtail_webrtc.push(id);
    }

    // Long-tail malicious services (16 malicious third parties total, §5.3;
    // a few only serve specific countries, §6.2).
    let ltmal_org = b.org("(long-tail malicious)", OrgKind::Other, true);
    let mut longtail_malicious = Vec::new();
    let regionals: [Option<Country>; 12] = [
        None,
        None,
        None,
        None,
        None,
        None,
        None,
        None,
        None,
        Some(Country::India),
        Some(Country::India),
        Some(Country::Spain),
    ];
    for (i, region) in regionals.iter().enumerate() {
        let fqdn = longtail_fqdn(&mut rng, 300_000 + i);
        let mut builder = b
            .svc(
                ltmal_org,
                &format!("ltmal-{i}"),
                &fqdn,
                ServiceCategory::AdNetwork,
            )
            .no_https()
            .malicious()
            .cookies(CookieBehavior::uid(12));
        if let Some(c) = region {
            builder = builder.countries(&[*c]);
        }
        let id = builder.build();
        longtail_malicious.push(id);
    }

    // Country-exclusive ATS (Table 7 "Unique Country" ATS column).
    let cats_org = b.org("(country-exclusive ATS)", OrgKind::AdNetwork, true);
    let scale = config.n_longtail_trackers as f64 / 3_400.0;
    let mut country_ats = Vec::new();
    for &(country, paper_count) in COUNTRY_UNIQUE_ATS {
        let count = ((paper_count as f64 * scale).round() as usize).max(1);
        let mut ids = Vec::with_capacity(count);
        for i in 0..count {
            let fqdn = longtail_fqdn(&mut rng, 400_000 + (country as usize) * 1_000 + i);
            let id = b
                .svc(
                    cats_org,
                    &format!("cats-{}-{i}", country.code()),
                    &fqdn,
                    ServiceCategory::AdNetwork,
                )
                .countries(&[country])
                .cookies(CookieBehavior::uid(14))
                .list(ListCoverage::DomainWide)
                .build();
            b.services.get_mut(id).https = rng.random_bool(0.3);
            ids.push(id);
        }
        country_ats.push((country, ids));
    }

    // Regular-web long-tail trackers (→ 196 regular ATS; ~50 of them also
    // reach a couple of porn sites, feeding the 86-domain ATS intersection).
    let ltreg_org = b.org("(long-tail regular trackers)", OrgKind::Analytics, false);
    let mut longtail_regular = Vec::new();
    for i in 0..config.n_regular_trackers {
        let fqdn = regular_fqdn(&mut rng, i);
        let also_porn = rng.random_bool(0.30);
        let mut builder = b
            .svc(
                ltreg_org,
                &format!("ltreg-{i}"),
                &fqdn,
                ServiceCategory::Analytics,
            )
            .adoption(
                if also_porn {
                    [0.0006, 0.0006, 0.0004, 0.0002]
                } else {
                    [0.0; 4]
                },
                [0.05, 0.04, 0.03, 0.02],
            )
            .cookies(CookieBehavior::uid(18))
            .list(ListCoverage::DomainWide);
        if rng.random_bool(0.70) {
            builder = builder.disconnect();
        }
        let id = builder.build();
        b.services.get_mut(id).https = rng.random_bool(0.85);
        longtail_regular.push(id);
    }

    // Silence "unused" for ids referenced only via the registry.
    let _ = (
        ga,
        gapis,
        cloudflare,
        addthis,
        scorecard,
        quantserve,
        adscore,
        online_metrix,
        facebook,
        twitter,
        alexa_widget,
        cloudfront,
        coinhive,
        jsecoin,
        bitcoin_pay,
        adultforce,
        zingyads,
        fling,
        playwithme,
        adnium,
        highwebmedia,
        xcvgdf,
        provers,
        montwam,
        dditscdn,
        russian_ats,
        ero,
    );

    Catalog {
        orgs: b.orgs,
        services: b.services,
        longtail_porn,
        longtail_fp,
        longtail_webrtc,
        longtail_malicious,
        country_ats,
        longtail_regular,
        sync_destinations: destination_capable,
        unpopular_only: vec![adultforce, zingyads],
    }
}

/// Generates a shady long-tail tracker FQDN.
fn longtail_fqdn(rng: &mut StdRng, salt: usize) -> String {
    const SYL: &[&str] = &[
        "ad", "trk", "traf", "pix", "tag", "stat", "meter", "count", "bid", "pop", "push", "zone",
        "媒", "clk", "srv", "net", "delta", "omni", "hyper", "turbo",
    ];
    const TLD: &[&str] = &[
        "com", "net", "top", "party", "club", "online", "site", "pro", "xxx",
    ];
    let a = SYL[rng.random_range(0..SYL.len())];
    let c = SYL[rng.random_range(0..SYL.len())];
    let tld = TLD[rng.random_range(0..TLD.len())];
    let a = if a == "媒" { "media" } else { a };
    let c = if c == "媒" { "media" } else { c };
    format!("{a}{c}{}{salt}.{tld}", rng.random_range(0..10))
}

/// Generates a mainstream tracker FQDN.
fn regular_fqdn(rng: &mut StdRng, salt: usize) -> String {
    const WORDS: &[&str] = &[
        "metrics", "insight", "audience", "optimize", "engage", "funnel", "session", "heat",
        "signal", "measure",
    ];
    const TLD: &[&str] = &["com", "io", "net"];
    let w = WORDS[rng.random_range(0..WORDS.len())];
    let t = TLD[rng.random_range(0..TLD.len())];
    format!("{w}{salt}.{t}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_is_deterministic() {
        let c1 = build(&WorldConfig::tiny(5));
        let c2 = build(&WorldConfig::tiny(5));
        assert_eq!(c1.services.len(), c2.services.len());
        let fqdns1: Vec<String> = c1.services.iter().map(|s| s.fqdn.clone()).collect();
        let fqdns2: Vec<String> = c2.services.iter().map(|s| s.fqdn.clone()).collect();
        assert_eq!(fqdns1, fqdns2);
    }

    #[test]
    fn named_cast_is_present() {
        let c = build(&WorldConfig::tiny(1));
        for fqdn in [
            "exoclick.com",
            "exosrv.com",
            "google-analytics.com",
            "doubleclick.net",
            "addthis.com",
            "juicyads.com",
            "coinhive.com",
            "adsco.re",
            "xcvgdf.party",
            "online-metrix.net",
            "rlcdn.com",
            "hprofits.com",
            "adx.com.ru",
        ] {
            assert!(c.services.by_fqdn(fqdn).is_some(), "missing {fqdn}");
        }
    }

    #[test]
    fn exoclick_family_embeds_ip() {
        let c = build(&WorldConfig::tiny(1));
        let exosrv = c.services.by_fqdn("exosrv.com").unwrap();
        assert!((exosrv.cookies.as_ref().unwrap().embed_ip_ratio - 0.85).abs() < 1e-9);
        let exoclick = c.services.by_fqdn("exoclick.com").unwrap();
        assert!((exoclick.cookies.as_ref().unwrap().embed_ip_ratio - 0.29).abs() < 1e-9);
        assert_eq!(exosrv.org, exoclick.org);
    }

    #[test]
    fn hprofits_triangle_syncs_inward() {
        let c = build(&WorldConfig::tiny(1));
        let hd = c.services.by_fqdn("hd100546b.com").unwrap();
        let hp = c.services.by_fqdn("hprofits.com").unwrap();
        assert_eq!(hd.sync_to, vec![hp.id]);
        assert_eq!(hd.cert_org.as_deref(), Some("HProfits Group"));
        assert_eq!(hp.cert_org.as_deref(), Some("HProfits Group"));
    }

    #[test]
    fn country_exclusive_ats_cover_all_countries() {
        let c = build(&WorldConfig::tiny(1));
        assert_eq!(c.country_ats.len(), 6);
        for (country, ids) in &c.country_ats {
            assert!(!ids.is_empty());
            for id in ids {
                let svc = c.services.get(*id);
                assert_eq!(svc.countries.as_deref(), Some(&[*country][..]));
            }
        }
    }

    #[test]
    fn miners_are_malicious_and_font_fp_is_unique() {
        let c = build(&WorldConfig::tiny(1));
        let miners: Vec<_> = c.services.iter().filter(|s| s.miner).collect();
        assert_eq!(miners.len(), 3);
        assert!(miners.iter().all(|s| s.malicious));
        let font_services: Vec<_> = c.services.iter().filter(|s| s.fp.font).collect();
        assert_eq!(font_services.len(), 1);
        assert_eq!(font_services[0].fqdn, "online-metrix.net");
    }

    #[test]
    fn some_longtail_trackers_refuse_russian_traffic() {
        let c = build(&WorldConfig::small(3));
        let ru_excluded = c
            .longtail_porn
            .iter()
            .filter(|id| {
                c.services
                    .get(**id)
                    .countries
                    .as_ref()
                    .is_some_and(|cs| !cs.contains(&Country::Russia) && cs.len() == 5)
            })
            .count();
        let frac = ru_excluded as f64 / c.longtail_porn.len() as f64;
        assert!((0.04..0.25).contains(&frac), "RU-fenced fraction {frac}");
    }

    #[test]
    fn high_reach_networks_sync_selectively() {
        let c = build(&WorldConfig::tiny(3));
        assert_eq!(c.services.by_fqdn("exosrv.com").unwrap().sync_gate_pct, 55);
        // Long-tail origins sync almost everywhere they can.
        let lt_gate = c
            .longtail_porn
            .iter()
            .map(|id| c.services.get(*id).sync_gate_pct)
            .max()
            .unwrap();
        assert_eq!(lt_gate, 90);
    }

    #[test]
    fn longtail_scales_with_config() {
        let small = build(&WorldConfig::tiny(1));
        let big = build(&WorldConfig::small(1));
        assert!(big.longtail_porn.len() > small.longtail_porn.len());
        assert_eq!(
            small.longtail_porn.len(),
            WorldConfig::tiny(1).n_longtail_trackers
        );
    }
}
