//! Site population generation: porn sites, false positives and the regular
//! reference corpus, with paper-calibrated properties.
//!
//! Calibration sources: §3 (corpus sizes, Fig. 1 rank stability), Table 1
//! (ownership clusters), Tables 3 & 6 (popularity-tier distribution, HTTPS),
//! §4.1 (monetization), §5 (tracking behaviors), §6 (country blocking),
//! Table 8 (consent banners), §7.2 (age gates) and §7.3 (privacy policies).

use rand::prelude::*;
use redlight_net::geoip::Country;
use redlight_rankings::trajectory::trajectory_with_best;
use redlight_rankings::{PopularityTier, RankHistory, TrajectoryParams, TOPLIST_SIZE};
use redlight_text::lang::Language;
use serde::{Deserialize, Serialize};

use crate::catalog::Catalog;
use crate::config::WorldConfig;
use crate::org::{OrgId, PUBLISHERS};
use crate::policygen::PolicySpec;
use crate::service::ServiceId;

/// Index into the world's site table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SiteId(pub u32);

/// Why a keyword-named site is not actually pornographic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FalsePositiveKind {
    /// The keyword is a red herring (video portal, shop, …).
    NonPornContent,
    /// The site did not respond during the crawl.
    Unresponsive,
}

/// Ground-truth site type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SiteKind {
    /// The pornographic corpus.
    Porn,
    /// The regular (reference) corpus.
    Regular,
    /// False positive.
    FalsePositive(FalsePositiveKind),
}

/// Cookie-banner taxonomy (Degeling et al., §7.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BannerType {
    /// Informs without any choice.
    NoOption,
    /// A single "OK" button.
    Confirmation,
    /// Accept and reject buttons.
    Binary,
    /// Slider or per-purpose checkboxes ("Others" in Table 8).
    Others,
}

/// A site's consent banner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BannerSpec {
    /// Kind.
    pub kind: BannerType,
    /// Shown only to EU visitors (geo-fenced consent).
    pub eu_only: bool,
}

/// Age-verification mechanism kinds (§7.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AgeGateKind {
    /// A warning text plus an "Enter"/"Yes" button — trivially bypassed.
    SimpleButton,
    /// Social-network login tied to a passport (Russia's pornhub).
    SocialLogin,
}

/// Per-country age-gate behavior. The paper's §7.2 variation is between
/// Russia and everywhere else.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AgeGate {
    /// Gate shown outside Russia.
    pub default: Option<AgeGateKind>,
    /// Gate shown to Russian visitors.
    pub russia: Option<AgeGateKind>,
}

impl AgeGate {
    /// The gate shown in `country`.
    pub fn in_country(&self, country: Country) -> Option<AgeGateKind> {
        if country == Country::Russia {
            self.russia
        } else {
            self.default
        }
    }
}

/// One third-party deployment on a site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Deployment {
    /// Service.
    pub service: ServiceId,
    /// Variant selector for script URLs (pool index or per-site unique).
    pub variant: u32,
    /// Canvas-FP scripts this deployment carries (0 when not fingerprinting
    /// here).
    pub fp_scripts: u8,
}

/// A generated website.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Site {
    /// Id.
    pub id: SiteId,
    /// Domain.
    pub domain: String,
    /// Kind.
    pub kind: SiteKind,
    /// Language.
    pub language: Language,
    /// Owning company, when the site belongs to a publisher cluster.
    pub owner: Option<OrgId>,
    /// `true` for the cluster's most popular site (Table 1 column 3).
    pub flagship: bool,
    /// Daily Alexa-style rank series over 2018.
    pub history: RankHistory,
    /// Popularity tier by best rank.
    pub tier: PopularityTier,
    /// HTTPS.
    pub https: bool,
    /// Deployments.
    pub deployments: Vec<Deployment>,
    /// Porn sites whose CDN assets this site embeds (federation, §4.1).
    pub cross_embeds: Vec<SiteId>,
    /// First-party CDN label (e.g. `img100-589`), when the site shards its
    /// static assets over a generated subdomain.
    pub cdn_label: Option<String>,
    /// The CDN label varies per country (region-localized balancing) —
    /// source of country-unique FQDNs in Table 7.
    pub country_cdn: bool,
    /// Site-specific third-party cloud hosts (label, provider registrable
    /// domain), e.g. `("d8f3k2", "cloudfront.net")`.
    pub cloud_hosts: Vec<(String, String)>,
    /// Banner.
    pub banner: Option<BannerSpec>,
    /// Age gate.
    pub age_gate: AgeGate,
    /// Policy.
    pub policy: Option<PolicySpec>,
    /// Monetization signals (§4.1): account creation, premium offering,
    /// whether premium is behind a paywall.
    pub login: bool,
    /// Premium.
    pub premium: bool,
    /// Premium paid.
    pub premium_paid: bool,
    /// The site itself is flagged by threat intel (7 porn sites, §5.3).
    pub malicious: bool,
    /// Hosts a first-party canvas-fingerprinting script.
    pub first_party_canvas: bool,
    /// Hosts a first-party decoy canvas script (UI sparkles — must NOT be
    /// counted by the detector).
    pub decoy_canvas: bool,
    /// A minimalist site: no cookie bookkeeping and almost no third-party
    /// embeds (the ~8 % of §5.1.1 sites where no cookies appear at all).
    pub minimal: bool,
    /// Never responds (false positives, §3).
    pub unresponsive: bool,
    /// Responds to the Selenium crawler but exceeded the OpenWPM 120 s
    /// timeout (6,843 → 6,346 successfully crawled).
    pub openwpm_timeout: bool,
    /// Countries from which the site is unreachable (censorship or
    /// server-side geo-blocking, §3.1).
    pub blocked_in: Vec<Country>,
    /// Listed by the specialized porn directories (§3 source 1).
    pub in_directory: bool,
    /// Indexed under the Alexa-style Adult category (§3 source 2).
    pub in_alexa_adult: bool,
    /// Carries the ASACP Restricted-To-Adults meta tag (§2.1).
    pub rta_label: bool,
}

impl Site {
    /// `true` for genuinely pornographic sites.
    pub fn is_porn(&self) -> bool {
        matches!(self.kind, SiteKind::Porn)
    }

    /// `true` when the domain contains one of the §3 search keywords.
    pub fn has_keyword(&self) -> bool {
        domain_has_keyword(&self.domain)
    }
}

/// The §3 keyword bag.
pub const KEYWORDS: &[&str] = &["porn", "tube", "sex", "gay", "lesbian", "mature", "xxx"];

/// Does `domain` contain a corpus keyword?
pub fn domain_has_keyword(domain: &str) -> bool {
    KEYWORDS.iter().any(|k| domain.contains(k))
}

/// Tier population shares for porn sites (Table 6: 75 / 552 / 3,886 / 2,330
/// of 6,843).
const PORN_TIER_SHARE: [f64; 4] = [0.011, 0.081, 0.568, 0.340];

/// HTTPS adoption by tier (Table 6).
const PORN_HTTPS: [f64; 4] = [0.92, 0.63, 0.32, 0.22];
const REGULAR_HTTPS: [f64; 4] = [0.97, 0.90, 0.85, 0.80];

/// ExoClick-bundle adoption by tier (→ 43 % of the corpus overall).
const EXO_BUNDLE: [f64; 4] = [0.75, 0.60, 0.45, 0.32];

/// Language distribution of porn sites (English-dominated, with the eight
/// default languages of §3.1 footnote 4).
const LANGS: [(Language, f64); 8] = [
    (Language::English, 0.55),
    (Language::Russian, 0.10),
    (Language::Spanish, 0.08),
    (Language::German, 0.06),
    (Language::French, 0.06),
    (Language::Portuguese, 0.05),
    (Language::Italian, 0.05),
    (Language::Romanian, 0.05),
];

fn pick_language(rng: &mut StdRng) -> Language {
    let mut x: f64 = rng.random_range(0.0..1.0);
    for (lang, w) in LANGS {
        if x < w {
            return lang;
        }
        x -= w;
    }
    Language::English
}

fn tier_index(t: PopularityTier) -> usize {
    match t {
        PopularityTier::Top1k => 0,
        PopularityTier::To10k => 1,
        PopularityTier::To100k => 2,
        PopularityTier::Beyond100k => 3,
    }
}

fn sample_tier(rng: &mut StdRng) -> PopularityTier {
    let mut x: f64 = rng.random_range(0.0..1.0);
    for (i, share) in PORN_TIER_SHARE.iter().enumerate() {
        if x < *share {
            return PopularityTier::ALL[i];
        }
        x -= share;
    }
    PopularityTier::Beyond100k
}

/// Samples a base rank inside a tier (log-uniform).
fn base_rank_in_tier(rng: &mut StdRng, tier: PopularityTier) -> u32 {
    let (lo, hi): (f64, f64) = match tier {
        PopularityTier::Top1k => (20.0, 1_000.0),
        PopularityTier::To10k => (1_200.0, 10_000.0),
        PopularityTier::To100k => (13_000.0, 100_000.0),
        // Beyond the 100k boundary but still inside the published top-1M:
        // every §3 candidate was discoverable through the Alexa keyword
        // search, so each site's best rank stays within the list at least
        // once during the year.
        PopularityTier::Beyond100k => (110_000.0, 0.97 * TOPLIST_SIZE as f64),
    };
    let x: f64 = rng.random_range(lo.ln()..hi.ln());
    x.exp() as u32
}

/// Builds a rank history whose realized best rank equals `target_best`,
/// tuned so roughly 16 % of porn sites are always inside the top-1M
/// (Fig. 1). Targets beyond the top-1M cutoff yield never-indexed sites.
fn history_for(rng: &mut StdRng, target_best: u32, stable: bool, seed: u64) -> RankHistory {
    let volatility = if stable {
        if target_best < 1_000 {
            // Even stable top-1k sites wander: only ~16 giants never leave
            // the top-1k over the year (§3).
            rng.random_range(0.18..0.34)
        } else {
            rng.random_range(0.08..0.18)
        }
    } else {
        rng.random_range(0.35..0.75)
    };
    trajectory_with_best(
        &TrajectoryParams {
            base_rank: target_best,
            persistence: 0.9,
            volatility,
            days: redlight_rankings::DAYS_IN_YEAR,
        },
        target_best,
        seed,
    )
}

/// Name fragments for porn-site domains.
const PORN_ADJ: &[&str] = &[
    "hot", "wild", "real", "amateur", "euro", "classic", "extreme", "young", "busty", "kinky",
    "sweet", "dirty", "golden", "velvet", "crazy", "ultra", "mega", "super", "prime", "royal",
];
const PORN_NOUN: &[&str] = &[
    "vids", "clips", "cams", "babes", "models", "films", "flicks", "dolls", "stars", "angels",
    "zone", "land", "world", "planet", "palace", "vault", "hub", "station", "city", "island",
];
const TLDS: &[&str] = &["com", "net", "xxx", "tv", "org", "porn", "sex"];
const SAFE_TLDS: &[&str] = &["com", "net", "org", "io", "co"];

fn keyword_domain(rng: &mut StdRng, n: usize) -> String {
    let kw = KEYWORDS[rng.random_range(0..KEYWORDS.len())];
    let adj = PORN_ADJ[rng.random_range(0..PORN_ADJ.len())];
    let noun = PORN_NOUN[rng.random_range(0..PORN_NOUN.len())];
    let tld = TLDS[rng.random_range(0..TLDS.len())];
    match rng.random_range(0..3u8) {
        0 => format!("{adj}{kw}{n}.{tld}"),
        1 => format!("{kw}{noun}{n}.{tld}"),
        _ => format!("{adj}{kw}{noun}{n}.{tld}"),
    }
}

fn brand_domain(rng: &mut StdRng, n: usize) -> String {
    // Directory-listed brands avoid the keyword bag (or the keyword search
    // would have found them and the paper's union arithmetic would differ).
    const BRAND_A: &[&str] = &[
        "velvet", "scarlet", "midnight", "crimson", "boudoir", "aphro", "eros", "sultry", "tease",
        "allure", "lux", "noir", "charm", "desire", "tempt",
    ];
    const BRAND_B: &[&str] = &[
        "angels", "dolls", "affairs", "nights", "rooms", "films", "live", "club", "den", "lounge",
        "story", "scene", "play", "secret", "vision",
    ];
    loop {
        let a = BRAND_A[rng.random_range(0..BRAND_A.len())];
        let b = BRAND_B[rng.random_range(0..BRAND_B.len())];
        let tld = SAFE_TLDS[rng.random_range(0..SAFE_TLDS.len())];
        let d = format!("{a}{b}{n}.{tld}");
        if !domain_has_keyword(&d) {
            return d;
        }
    }
}

fn regular_domain(rng: &mut StdRng, n: usize) -> String {
    const A: &[&str] = &[
        "daily", "global", "smart", "quick", "cloud", "tech", "open", "meta", "micro", "hyper",
        "green", "blue", "north", "east", "prime", "first", "city", "shop", "news", "game",
    ];
    const B: &[&str] = &[
        "times", "mart", "pedia", "base", "portal", "press", "works", "labs", "spot", "point",
        "center", "market", "journal", "network", "review", "guide", "forum", "board", "space",
        "deals",
    ];
    loop {
        let a = A[rng.random_range(0..A.len())];
        let b = B[rng.random_range(0..B.len())];
        let tld = SAFE_TLDS[rng.random_range(0..SAFE_TLDS.len())];
        let d = format!("{a}{b}{n}.{tld}");
        if !domain_has_keyword(&d) {
            return d;
        }
    }
}

fn fp_domain(rng: &mut StdRng, n: usize) -> String {
    // Keyword-bearing but innocent domains (the YouTube effect).
    const INNOCENT: &[&str] = &[
        "tubeamps{n}.com",      // guitar amplifiers
        "innertube{n}.net",     // swimming gear
        "sextant{n}.org",       // navigation
        "sussexnews{n}.com",    // regional news
        "middlesexshop{n}.co",  // regional retail
        "maturefunds{n}.com",   // retirement finance
        "gaylordhotels{n}.net", // hospitality brand
        "tubewell{n}.org",      // irrigation
        "essexmotors{n}.com",   // car dealer
        "videotube{n}.io",      // generic video portal
    ];
    let t = INNOCENT[rng.random_range(0..INNOCENT.len())];
    t.replace("{n}", &n.to_string())
}

/// Output of site generation.
pub struct SitePopulation {
    /// Sites.
    pub sites: Vec<Site>,
    /// The specialized porn-directory domains (the §3 source-1 aggregators).
    pub directory_domains: Vec<String>,
}

/// Generates the full site population for `config` against `catalog`.
pub fn generate(config: &WorldConfig, catalog: &Catalog) -> SitePopulation {
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x517E_6E6E);
    let scale = config.sanitized_count() as f64 / 6_843.0;
    let mut sites: Vec<Site> = Vec::new();

    // ---------- 1. Owned porn sites (Table 1 clusters). ----------
    // Scale cluster sizes down for small worlds, keeping ≥1 site (the
    // flagship) per company so owner discovery has something to find.
    for spec in PUBLISHERS {
        let owner = catalog.orgs.by_name(spec.name).map(|o| o.id).or(None);
        // Publishers are registered lazily: the catalog only lists service
        // orgs, so owner ids are resolved later in world assembly. Here we
        // tag sites with a placeholder resolved by name.
        let _ = owner;
        let n_sites = ((spec.sites as f64 * scale).round() as usize).max(1);
        for k in 0..n_sites {
            let flagship = k == 0;
            let (domain, base_rank) = if flagship {
                (spec.flagship_domain.to_string(), spec.flagship_rank)
            } else {
                let d = if rng.random_bool(0.5) {
                    keyword_domain(&mut rng, sites.len())
                } else {
                    brand_domain(&mut rng, sites.len())
                };
                // Non-flagship cluster members are strictly less popular,
                // but stay discoverable through the 2018 toplist.
                let floor = spec.flagship_rank.saturating_mul(2).clamp(2_000, 800_000);
                let ceil = floor.saturating_mul(40).clamp(floor + 10, 950_000);
                (d, rng.random_range(floor..ceil))
            };
            let stable = base_rank < 150_000 && rng.random_bool(0.7);
            let site_seed = config.seed ^ ((sites.len() as u64) << 20) ^ 0xA11CE;
            let history = history_for(&mut rng, base_rank, stable, site_seed);
            let tier = PopularityTier::from_best_rank(history.best());
            let mut site = blank_site(
                SiteId(sites.len() as u32),
                domain,
                SiteKind::Porn,
                pick_language(&mut rng),
                history,
                tier,
            );
            site.owner = Some(OrgId(u32::MAX)); // resolved in world assembly
            site.flagship = flagship;
            site.in_directory = !site.has_keyword();
            site.https = rng.random_bool(PORN_HTTPS[tier_index(tier)].max(0.5));
            sites.push(site);
        }
    }
    let owned_count = sites.len();

    // Remember the publisher each owned site belongs to, in order.
    let mut owned_cursor = 0usize;
    let mut owner_names: Vec<&'static str> = Vec::with_capacity(owned_count);
    for spec in PUBLISHERS {
        let n_sites = ((spec.sites as f64 * scale).round() as usize).max(1);
        for _ in 0..n_sites {
            owner_names.push(spec.name);
            owned_cursor += 1;
        }
    }
    debug_assert_eq!(owned_cursor, owned_count);

    // ---------- 2. Unowned porn sites up to the sanitized corpus size. ----
    let n_porn_total = config.sanitized_count();
    let owned_keyworded = sites.iter().filter(|s| s.has_keyword()).count();
    let owned_branded = owned_count - owned_keyworded;
    // Directory sites are brand-named; keyword sites carry keywords.
    let n_directory_left = config.n_directory_porn.saturating_sub(owned_branded);
    let n_alexa_adult = config.n_alexa_adult_porn;
    let n_unowned = n_porn_total - owned_count;

    // A specific Russian site hosting the four Russian ATS (§4.2.2).
    let pornovhd_idx = sites.len();
    {
        let site_seed = config.seed ^ ((sites.len() as u64) << 20) ^ 0xA11CE;
        let history = history_for(&mut rng, 320_000, false, site_seed);
        let tier = PopularityTier::from_best_rank(history.best());
        let mut site = blank_site(
            SiteId(sites.len() as u32),
            "pornovhd.info".to_string(),
            SiteKind::Porn,
            Language::Russian,
            history,
            tier,
        );
        site.https = false;
        sites.push(site);
    }

    for i in 1..n_unowned {
        let mut in_directory = false;
        let mut in_alexa_adult = false;
        let brand_budget = n_directory_left + n_alexa_adult;
        let domain = if i <= brand_budget {
            if i <= n_directory_left {
                in_directory = true;
            } else {
                in_alexa_adult = true;
            }
            brand_domain(&mut rng, sites.len())
        } else {
            keyword_domain(&mut rng, sites.len())
        };
        let tier = sample_tier(&mut rng);
        let base_rank = base_rank_in_tier(&mut rng, tier);
        // Alexa-adult sites are prominent, pin them into the visible list.
        let base_rank = if in_alexa_adult {
            rng.random_range(500..40_000)
        } else {
            base_rank
        };
        // Stability tuned so ≈16 % of the corpus is always inside the
        // top-1M (Fig. 1): popular tiers are mostly stable.
        let stable = match tier {
            PopularityTier::Top1k | PopularityTier::To10k => rng.random_bool(0.92),
            PopularityTier::To100k => rng.random_bool(0.12),
            PopularityTier::Beyond100k => false,
        };
        let site_seed = config.seed ^ ((sites.len() as u64) << 20) ^ 0xA11CE;
        let history = history_for(&mut rng, base_rank, stable, site_seed);
        let tier = PopularityTier::from_best_rank(history.best());
        let mut site = blank_site(
            SiteId(sites.len() as u32),
            domain,
            SiteKind::Porn,
            pick_language(&mut rng),
            history,
            tier,
        );
        site.in_directory = in_directory;
        site.in_alexa_adult = in_alexa_adult;
        site.https = rng.random_bool(PORN_HTTPS[tier_index(tier)]);
        sites.push(site);
    }

    // ---------- 3. False positives (keyword-named, not porn). ----------
    for i in 0..config.n_false_positives {
        let unresponsive = rng.random_bool(0.55); // "many … unresponsive" (§3)
        let kind = if unresponsive {
            FalsePositiveKind::Unresponsive
        } else {
            FalsePositiveKind::NonPornContent
        };
        let domain = if unresponsive {
            keyword_domain(&mut rng, 900_000 + i)
        } else {
            fp_domain(&mut rng, i)
        };
        let tier = sample_tier(&mut rng);
        let base_rank = base_rank_in_tier(&mut rng, tier);
        let site_seed = config.seed ^ ((sites.len() as u64) << 20) ^ 0xA11CE;
        let history = history_for(&mut rng, base_rank, false, site_seed);
        let tier = PopularityTier::from_best_rank(history.best());
        let mut site = blank_site(
            SiteId(sites.len() as u32),
            domain,
            SiteKind::FalsePositive(kind),
            Language::English,
            history,
            tier,
        );
        site.unresponsive = unresponsive;
        site.https = rng.random_bool(0.6);
        sites.push(site);
    }

    // ---------- 4. Regular reference corpus (Alexa top-10k extract). ------
    for i in 0..config.n_regular {
        let domain = regular_domain(&mut rng, i);
        let base_rank = rng.random_range(1..10_000u32);
        let site_seed = config.seed ^ ((sites.len() as u64) << 20) ^ 0xA11CE;
        let history = history_for(&mut rng, base_rank, true, site_seed);
        let tier = PopularityTier::from_best_rank(history.best());
        let mut site = blank_site(
            SiteId(sites.len() as u32),
            domain,
            SiteKind::Regular,
            pick_language(&mut rng),
            history,
            tier,
        );
        site.https = rng.random_bool(REGULAR_HTTPS[tier_index(tier)]);
        // ~12 % of the regular corpus fails to crawl (9,688 → 8,511).
        site.openwpm_timeout = rng.random_bool(0.12);
        sites.push(site);
    }

    // ---------- 5. Behavioral decoration. ----------
    decorate(config, catalog, &mut rng, &mut sites, pornovhd_idx);

    // Directory aggregator domains (source 1 of §3).
    let directory_domains = vec![
        "only4adults-directory.com".to_string(),
        "toppornsites-index.com".to_string(),
        "mypornbible-list.com".to_string(),
    ];

    // Resolve owner placeholder ids against catalog orgs extended with
    // publishers: world assembly registers publisher orgs; here we stash the
    // publisher index in `owner` as OrgId(offset + idx) is not yet known, so
    // instead reuse the name table ordering.
    let mut owner_iter = owner_names.into_iter();
    for site in sites.iter_mut().take(owned_count) {
        let name = owner_iter.next().expect("one name per owned site");
        // Temporarily store the publisher index; world assembly remaps.
        let idx = PUBLISHERS.iter().position(|p| p.name == name).unwrap() as u32;
        site.owner = Some(OrgId(idx | PUBLISHER_TAG));
    }

    SitePopulation {
        sites,
        directory_domains,
    }
}

/// Owner ids produced by [`generate`] carry this tag until world assembly
/// remaps them onto real [`OrgId`]s (high bit set, low bits = index into
/// [`PUBLISHERS`]).
pub const PUBLISHER_TAG: u32 = 0x8000_0000;

fn blank_site(
    id: SiteId,
    domain: String,
    kind: SiteKind,
    language: Language,
    history: RankHistory,
    tier: PopularityTier,
) -> Site {
    Site {
        id,
        domain,
        kind,
        language,
        owner: None,
        flagship: false,
        history,
        tier,
        https: false,
        deployments: Vec::new(),
        cross_embeds: Vec::new(),
        cdn_label: None,
        country_cdn: false,
        cloud_hosts: Vec::new(),
        banner: None,
        age_gate: AgeGate::default(),
        policy: None,
        login: false,
        premium: false,
        premium_paid: false,
        minimal: false,
        malicious: false,
        first_party_canvas: false,
        decoy_canvas: false,
        unresponsive: false,
        openwpm_timeout: false,
        blocked_in: Vec::new(),
        in_directory: false,
        in_alexa_adult: false,
        rta_label: false,
    }
}

/// Applies tracking, compliance and geo behavior to the generated sites.
#[allow(clippy::needless_range_loop)] // index-based: the loop mutates `sites[i]` while reading peers
fn decorate(
    config: &WorldConfig,
    catalog: &Catalog,
    rng: &mut StdRng,
    sites: &mut [Site],
    pornovhd_idx: usize,
) {
    let scale = config.sanitized_count() as f64 / 6_843.0;

    // -- Minimalist porn sites (§5.1.1: 8 % of sites set no cookies). --
    for site in sites.iter_mut() {
        if site.is_porn() && rng.random_bool(0.08) {
            site.minimal = true;
        }
    }

    // Explicit placements below avoid minimalist sites too.
    let porn_ids: Vec<usize> = sites
        .iter()
        .enumerate()
        .filter(|(_, s)| s.is_porn() && !s.unresponsive && !s.minimal)
        .map(|(i, _)| i)
        .collect();

    let exosrv = catalog.services.by_fqdn("exosrv.com").map(|s| s.id);
    let exoclick = catalog.services.by_fqdn("exoclick.com").map(|s| s.id);
    let rlcdn = catalog.services.by_fqdn("rlcdn.com").map(|s| s.id);

    // -- Probability-driven named services + the ExoClick bundle. --
    for site in sites.iter_mut() {
        if site.unresponsive || site.minimal {
            continue;
        }
        let ti = tier_index(site.tier);
        let is_porn = site.is_porn();
        let is_regular = matches!(site.kind, SiteKind::Regular)
            || matches!(
                site.kind,
                SiteKind::FalsePositive(FalsePositiveKind::NonPornContent)
            );
        for svc in catalog.services.iter() {
            let p = if is_porn {
                svc.adoption.porn[ti]
            } else if is_regular {
                svc.adoption.regular[ti]
            } else {
                0.0
            };
            if p > 0.0 && rng.random_bool(p.min(1.0)) {
                site.deployments.push(Deployment {
                    service: svc.id,
                    variant: rng.random::<u32>(),
                    fp_scripts: 0,
                });
            }
        }
        if is_porn && rng.random_bool(EXO_BUNDLE[ti]) {
            let u: f64 = rng.random_range(0.0..1.0);
            let (srv, click) = if u < 0.45 {
                (true, false)
            } else if u < 0.70 {
                (true, true)
            } else {
                (false, true)
            };
            if srv {
                if let Some(id) = exosrv {
                    site.deployments.push(Deployment {
                        service: id,
                        variant: rng.random::<u32>(),
                        fp_scripts: 0,
                    });
                }
            }
            if click {
                if let Some(id) = exoclick {
                    site.deployments.push(Deployment {
                        service: id,
                        variant: rng.random::<u32>(),
                        fp_scripts: 0,
                    });
                }
            }
        }
    }

    // -- rlcdn on exactly 4 porn sites (§4.2.1's data-broker sighting). --
    if let Some(rl) = rlcdn {
        for idx in pick_distinct(rng, &porn_ids, (4.0 * scale).round().max(1.0) as usize) {
            push_unique(&mut sites[idx].deployments, rl, rng);
        }
    }

    // -- The Russian ATS quartet on pornovhd.info + a couple of peers. --
    for fqdn in [
        "betweendigital.ru",
        "datamind.ru",
        "adlabs.ru",
        "adx.com.ru",
    ] {
        if let Some(svc) = catalog.services.by_fqdn(fqdn) {
            push_unique(&mut sites[pornovhd_idx].deployments, svc.id, rng);
            for idx in pick_distinct(rng, &porn_ids, 2) {
                if rng.random_bool(0.5) {
                    push_unique(&mut sites[idx].deployments, svc.id, rng);
                }
            }
        }
    }

    // -- Long-tail adult trackers: 1–5 sites each, skewed to the unpopular
    //    tail (§4.2.2: 18 % of services appear only on 100k+ sites). --
    let weighted: Vec<usize> = porn_ids
        .iter()
        .flat_map(|&i| {
            let w = match sites[i].tier {
                PopularityTier::Top1k => 0,
                PopularityTier::To10k => 1,
                PopularityTier::To100k => 3,
                PopularityTier::Beyond100k => 12,
            };
            std::iter::repeat_n(i, w)
        })
        .collect();
    for &svc in &catalog.longtail_porn {
        let mut k = 1 + (rng.random_range(0.0..1.0f64).powi(3) * 4.0) as usize; // zipf-ish 1..5
                                                                                // Sync origins are the better-connected tail: they sit on a few
                                                                                // sites each (the paper observes ≈4.2 pairs per origin), and the
                                                                                // first visit only plants the cookie.
        if !catalog.services.get(svc).sync_to.is_empty() {
            k = rng.random_range(4..=8usize);
        }
        for _ in 0..k {
            let idx = weighted[rng.random_range(0..weighted.len())];
            push_unique(&mut sites[idx].deployments, svc, rng);
        }
    }

    // -- Long-tail canvas fingerprinters: 1–3 sites each. --
    for &svc in &catalog.longtail_fp {
        let k = rng.random_range(1..=3usize);
        for idx in pick_distinct(rng, &porn_ids, k) {
            let d = Deployment {
                service: svc,
                variant: rng.random::<u32>(),
                fp_scripts: 1,
            };
            sites[idx].deployments.push(d);
        }
    }

    // -- Long-tail WebRTC services: ~2 sites each. --
    for &svc in &catalog.longtail_webrtc {
        for idx in pick_distinct(rng, &porn_ids, 2) {
            push_unique(&mut sites[idx].deployments, svc, rng);
        }
    }

    // -- Malicious long tail: 1–4 porn sites each (§5.3: 16 services in 41
    //    sites; §6.2 geo-targeting comes from their country gating). --
    for &svc in &catalog.longtail_malicious {
        let k = rng.random_range(1..=4usize);
        for idx in pick_distinct(rng, &porn_ids, k) {
            push_unique(&mut sites[idx].deployments, svc, rng);
        }
    }

    // -- Country-exclusive ATS: 1–3 porn sites each. --
    for (_, ids) in &catalog.country_ats {
        for &svc in ids {
            let k = rng.random_range(1..=3usize);
            for idx in pick_distinct(rng, &porn_ids, k) {
                push_unique(&mut sites[idx].deployments, svc, rng);
            }
        }
    }

    // -- Miners: coinhive 5, jsecoin 2, bitcoin-pay 1 (8 sites, §5.3). --
    for (fqdn, count) in [
        ("coinhive.com", 5usize),
        ("jsecoin.com", 2),
        ("bitcoin-pay.eu", 1),
    ] {
        if let Some(svc) = catalog.services.by_fqdn(fqdn) {
            let k = ((count as f64 * scale).round() as usize).max(1);
            for idx in pick_distinct(rng, &porn_ids, k) {
                push_unique(&mut sites[idx].deployments, svc.id, rng);
            }
        }
    }

    // -- Mark canvas deployments for services with probabilistic FP. --
    for site in sites.iter_mut() {
        let mut extra: Vec<Deployment> = Vec::new();
        for dep in &mut site.deployments {
            let svc = catalog.services.get(dep.service);
            if svc.fp.canvas && dep.fp_scripts == 0 {
                let frac = svc.fp.canvas_site_fraction;
                if frac > 0.0 && rng.random_bool(frac.min(1.0)) {
                    let (lo, hi) = svc.fp.canvas_scripts;
                    dep.fp_scripts = rng.random_range(lo..=hi.max(lo));
                }
            }
        }
        site.deployments.append(&mut extra);
    }

    // -- Cross-embeds, CDN labels, cloud hosts. --
    let n_sites = sites.len();
    for i in 0..n_sites {
        if sites[i].unresponsive {
            continue;
        }
        match sites[i].kind {
            SiteKind::Porn => {
                if rng.random_bool(0.12) {
                    let a = rng.random_range(1..200u32);
                    let bsuf = rng.random_range(100..999u32);
                    sites[i].cdn_label = Some(format!("img{a}-{bsuf}"));
                    sites[i].country_cdn = rng.random_bool(0.45);
                }
                if rng.random_bool(0.12) && porn_ids.len() > 2 {
                    let k = rng.random_range(1..=2usize);
                    for idx in pick_distinct(rng, &porn_ids, k) {
                        // HTTPS sites federate with HTTPS peers (mixed
                        // content breaks their players), keeping fully-HTTPS
                        // sites possible (§5.2).
                        let scheme_ok = !sites[i].https || sites[idx].https;
                        if idx != i
                            && scheme_ok
                            && !sites[i].cross_embeds.contains(&SiteId(idx as u32))
                        {
                            sites[i].cross_embeds.push(SiteId(idx as u32));
                        }
                    }
                }
                if rng.random_bool(0.15) {
                    sites[i].cloud_hosts.push(cloud_host(rng));
                }
            }
            SiteKind::Regular => {
                if rng.random_bool(0.80) {
                    for _ in 0..rng.random_range(1..=3usize) {
                        sites[i].cloud_hosts.push(cloud_host(rng));
                    }
                }
                // Regular sites shard their own static assets too — the
                // first-party FQDN population of Table 2.
                if rng.random_bool(0.50) {
                    let a = rng.random_range(1..50u32);
                    sites[i].cdn_label = Some(format!("static{a}"));
                }
            }
            SiteKind::FalsePositive(_) => {}
        }
    }

    // -- Shared public CDN pool: popular JS/static hosts used by both
    //    ecosystems — the Table 7 "web ecosystem" overlap and most of the
    //    Table 2 third-party intersection. --
    let pool_size = ((700.0 * scale).ceil() as usize).max(8);
    let shared_pool: Vec<(String, String)> = (0..pool_size)
        .map(|k| (format!("lib{k}"), "jscdn.net".to_string()))
        .collect();
    for i in 0..n_sites {
        if sites[i].unresponsive {
            continue;
        }
        let (p, max_hosts) = match sites[i].kind {
            // Public-CDN adoption is a professional-operations signal: the
            // unpopular porn tail serves everything itself (Table 6's low
            // third-party HTTPS shares down-tier).
            SiteKind::Porn if sites[i].tier != PopularityTier::Beyond100k => (0.35, 1usize),
            SiteKind::Porn => (0.08, 1usize),
            SiteKind::Regular => (0.55, 2usize),
            SiteKind::FalsePositive(_) => (0.2, 1usize),
        };
        if rng.random_bool(p) {
            for _ in 0..rng.random_range(1..=max_hosts) {
                let host = shared_pool[rng.random_range(0..shared_pool.len())].clone();
                if !sites[i].cloud_hosts.contains(&host) {
                    sites[i].cloud_hosts.push(host);
                }
            }
        }
    }

    // -- Geolocation-cookie widgets (§5.1.1): fling on ~9, playwithme on ~6
    //    sites at paper scale; at least one each at any scale. --
    for (fqdn, count) in [
        ("fling.com", 9.0f64),
        ("playwithme.com", 6.0),
        // ThreatMetrix: the single font-fingerprinting script (§5.1.3).
        ("online-metrix.net", 6.0),
    ] {
        if let Some(svc) = catalog.services.by_fqdn(fqdn) {
            let k = ((count * scale).round() as usize).max(1);
            for idx in pick_distinct(rng, &porn_ids, k) {
                push_unique(&mut sites[idx].deployments, svc.id, rng);
            }
        }
    }

    // -- First-party canvas FP (≈26 % of the 245 scripts) and decoys. --
    let n_fp_canvas = ((64.0 * scale).round() as usize).max(1);
    for idx in pick_distinct(rng, &porn_ids, n_fp_canvas) {
        sites[idx].first_party_canvas = true;
    }
    for idx in pick_distinct(rng, &porn_ids, (porn_ids.len() / 12).max(1)) {
        sites[idx].decoy_canvas = true; // UI canvas use that must not count
    }

    // -- Malicious porn sites themselves (7 at paper scale). --
    for idx in pick_distinct(rng, &porn_ids, ((7.0 * scale).round() as usize).max(1)) {
        sites[idx].malicious = true;
    }

    // -- Monetization (§4.1): 14 % offer subscriptions; 23 % of those paid.
    for &idx in &porn_ids {
        if rng.random_bool(0.35) {
            sites[idx].login = true;
        }
        if rng.random_bool(0.14) {
            sites[idx].login = true;
            sites[idx].premium = true;
            sites[idx].premium_paid = rng.random_bool(0.23);
        }
    }

    // -- Consent banners (Table 8). --
    for &idx in &porn_ids {
        let u: f64 = rng.random_range(0.0..1.0);
        // Global banner carriers (USA column) by type.
        let spec = if u < 0.0139 {
            Some((BannerType::NoOption, false))
        } else if u < 0.0139 + 0.023 {
            Some((BannerType::Confirmation, false))
        } else if u < 0.0139 + 0.023 + 0.0006 {
            Some((BannerType::Binary, false))
        } else if u < 0.0139 + 0.023 + 0.0006 + 0.0001 {
            Some((BannerType::Others, false))
        } else if u < 0.0376 + 0.0052 {
            // EU-only carriers close the 4.41 % − 3.76 % gap, mostly
            // Confirmation/Binary (GDPR-minded geo-fencing).
            let t = if rng.random_bool(0.6) {
                BannerType::Confirmation
            } else {
                BannerType::Binary
            };
            Some((t, true))
        } else {
            None
        };
        sites[idx].banner = spec.map(|(kind, eu_only)| BannerSpec { kind, eu_only });
    }

    // -- Age gates (§7.2): structured over the top-50, background elsewhere.
    let mut by_rank: Vec<usize> = porn_ids.clone();
    by_rank.sort_by_key(|&i| sites[i].history.best().unwrap_or(u32::MAX));
    let top50: Vec<usize> = by_rank
        .iter()
        .copied()
        .take((50.0 * scale).max(10.0) as usize)
        .collect();
    let n50 = top50.len();
    // 12 % gate everywhere except Russia; 8 % gate everywhere incl. Russia;
    // 8 % gate ONLY in Russia; pornhub's Russian gate is a social login.
    let n_a_not_b = (0.12 * n50 as f64).round() as usize;
    let n_a_and_b = (0.08 * n50 as f64).round() as usize;
    let n_b_only = (0.08 * n50 as f64).round() as usize;
    let mut shuffled = top50.clone();
    shuffled.shuffle(rng);
    for (pos, &idx) in shuffled.iter().enumerate() {
        let gate = &mut sites[idx].age_gate;
        if pos < n_a_not_b {
            gate.default = Some(AgeGateKind::SimpleButton);
        } else if pos < n_a_not_b + n_a_and_b {
            gate.default = Some(AgeGateKind::SimpleButton);
            gate.russia = Some(AgeGateKind::SimpleButton);
        } else if pos < n_a_not_b + n_a_and_b + n_b_only {
            gate.russia = Some(AgeGateKind::SimpleButton);
        }
    }
    // Background gates outside the top-50.
    for &idx in by_rank.iter().skip(n50) {
        if rng.random_bool(0.04) {
            sites[idx].age_gate.default = Some(AgeGateKind::SimpleButton);
            sites[idx].age_gate.russia = Some(AgeGateKind::SimpleButton);
        }
    }
    // The pornhub analog: Russian social-login gate mandated in 2017.
    if let Some(ph) = sites.iter_mut().find(|s| s.domain == "pornhub.com") {
        ph.age_gate.default = Some(AgeGateKind::SimpleButton);
        ph.age_gate.russia = Some(AgeGateKind::SocialLogin);
    }

    // -- RTA labels (§2.1): a minority of responsible sites. --
    for &idx in &porn_ids {
        if rng.random_bool(0.06) {
            sites[idx].rta_label = true;
        }
    }

    // -- Geo blocking (§3.1): 21 sites unreachable from Russia, 168 from
    //    India (censorship or server-side blocking — indistinguishable). --
    for idx in pick_distinct(rng, &porn_ids, ((21.0 * scale).round() as usize).max(1)) {
        sites[idx].blocked_in.push(Country::Russia);
    }
    for idx in pick_distinct(rng, &porn_ids, ((168.0 * scale).round() as usize).max(1)) {
        if !sites[idx].blocked_in.contains(&Country::India) {
            sites[idx].blocked_in.push(Country::India);
        }
    }

    // -- OpenWPM crawl failures: 6,843 → 6,346 (≈7 %). --
    for &idx in &porn_ids {
        if rng.random_bool(0.073) {
            sites[idx].openwpm_timeout = true;
        }
    }

    // -- Privacy policies are assigned in world assembly (they need the
    //    policy generator); here we only mark which sites will carry one. --
}

fn cloud_host(rng: &mut StdRng) -> (String, String) {
    const PROVIDERS: &[&str] = &["cloudfront.net", "akamaihd.net", "fastly.net"];
    let provider = PROVIDERS[rng.random_range(0..PROVIDERS.len())];
    let label: String = (0..8)
        .map(|_| char::from(b'a' + rng.random_range(0..26u8)))
        .collect();
    (format!("d{label}"), provider.to_string())
}

fn push_unique(deps: &mut Vec<Deployment>, svc: ServiceId, rng: &mut StdRng) {
    if !deps.iter().any(|d| d.service == svc) {
        deps.push(Deployment {
            service: svc,
            variant: rng.random::<u32>(),
            fp_scripts: 0,
        });
    }
}

fn pick_distinct(rng: &mut StdRng, pool: &[usize], k: usize) -> Vec<usize> {
    if pool.is_empty() {
        return Vec::new();
    }
    let k = k.min(pool.len());
    let mut chosen: Vec<usize> = Vec::with_capacity(k);
    let mut guard = 0;
    while chosen.len() < k && guard < k * 30 {
        guard += 1;
        let cand = pool[rng.random_range(0..pool.len())];
        if !chosen.contains(&cand) {
            chosen.push(cand);
        }
    }
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    fn population(seed: u64) -> SitePopulation {
        let config = WorldConfig::small(seed);
        let cat = catalog::build(&config);
        generate(&config, &cat)
    }

    #[test]
    fn corpus_sizes_match_config() {
        let config = WorldConfig::small(3);
        let pop = population(3);
        let porn = pop.sites.iter().filter(|s| s.is_porn()).count();
        let fp = pop
            .sites
            .iter()
            .filter(|s| matches!(s.kind, SiteKind::FalsePositive(_)))
            .count();
        let regular = pop
            .sites
            .iter()
            .filter(|s| matches!(s.kind, SiteKind::Regular))
            .count();
        assert_eq!(porn, config.sanitized_count());
        assert_eq!(fp, config.n_false_positives);
        assert_eq!(regular, config.n_regular);
    }

    #[test]
    fn deterministic_generation() {
        let a = population(9);
        let b = population(9);
        assert_eq!(a.sites.len(), b.sites.len());
        for (x, y) in a.sites.iter().zip(&b.sites) {
            assert_eq!(x.domain, y.domain);
            assert_eq!(x.deployments.len(), y.deployments.len());
        }
    }

    #[test]
    fn source_accounting_is_consistent() {
        let config = WorldConfig::small(7);
        let pop = population(7);
        // Every porn site is reachable through at least one §3 source.
        for s in pop.sites.iter().filter(|s| s.is_porn()) {
            assert!(
                s.has_keyword() || s.in_directory || s.in_alexa_adult,
                "{} unreachable by any corpus source",
                s.domain
            );
        }
        // False positives all carry keywords (that is why they were caught).
        for s in pop
            .sites
            .iter()
            .filter(|s| matches!(s.kind, SiteKind::FalsePositive(_)))
        {
            assert!(s.has_keyword(), "{}", s.domain);
        }
        // Regular sites never match the keyword bag.
        for s in pop
            .sites
            .iter()
            .filter(|s| matches!(s.kind, SiteKind::Regular))
        {
            assert!(!s.has_keyword(), "{}", s.domain);
        }
        let _ = config;
    }

    #[test]
    fn flagships_present_with_ranks() {
        let pop = population(1);
        let ph = pop
            .sites
            .iter()
            .find(|s| s.domain == "pornhub.com")
            .unwrap();
        assert!(ph.flagship);
        assert!(ph.is_porn());
        assert!(ph.history.best().unwrap() < 1_000);
        assert_eq!(ph.age_gate.russia, Some(AgeGateKind::SocialLogin));
        assert_eq!(
            ph.age_gate.in_country(Country::Spain),
            Some(AgeGateKind::SimpleButton)
        );
    }

    #[test]
    fn tier_distribution_shape() {
        let pop = population(5);
        let porn: Vec<&Site> = pop.sites.iter().filter(|s| s.is_porn()).collect();
        let frac = |t: PopularityTier| {
            porn.iter().filter(|s| s.tier == t).count() as f64 / porn.len() as f64
        };
        assert!(frac(PopularityTier::To100k) > 0.3, "mid tier dominates");
        assert!(frac(PopularityTier::Beyond100k) > 0.15);
        assert!(frac(PopularityTier::Top1k) < 0.12);
    }

    #[test]
    fn https_correlates_with_popularity() {
        let pop = population(11);
        let porn: Vec<&Site> = pop.sites.iter().filter(|s| s.is_porn()).collect();
        let rate = |t: PopularityTier| {
            let tier: Vec<_> = porn.iter().filter(|s| s.tier == t).collect();
            if tier.is_empty() {
                return 1.0;
            }
            tier.iter().filter(|s| s.https).count() as f64 / tier.len() as f64
        };
        assert!(rate(PopularityTier::Top1k) > rate(PopularityTier::Beyond100k));
    }

    #[test]
    fn keyword_bag_matches_paper() {
        assert!(domain_has_keyword("hotporn12.com"));
        assert!(domain_has_keyword("maturefunds1.com"));
        assert!(domain_has_keyword("innertube7.net"));
        assert!(!domain_has_keyword("dailytimes4.com"));
    }

    #[test]
    fn exo_bundle_lands_near_43_percent() {
        let pop = population(13);
        let cat = catalog::build(&WorldConfig::small(13));
        let exosrv = cat.services.by_fqdn("exosrv.com").unwrap().id;
        let exoclick = cat.services.by_fqdn("exoclick.com").unwrap().id;
        let porn: Vec<&Site> = pop.sites.iter().filter(|s| s.is_porn()).collect();
        let with_exo = porn
            .iter()
            .filter(|s| {
                s.deployments
                    .iter()
                    .any(|d| d.service == exosrv || d.service == exoclick)
            })
            .count();
        let frac = with_exo as f64 / porn.len() as f64;
        assert!((0.3..0.55).contains(&frac), "exo union = {frac}");
    }

    #[test]
    fn banners_are_rare_and_typed() {
        let pop = population(17);
        let porn: Vec<&Site> = pop.sites.iter().filter(|s| s.is_porn()).collect();
        let with_banner = porn.iter().filter(|s| s.banner.is_some()).count();
        let frac = with_banner as f64 / porn.len() as f64;
        assert!((0.01..0.10).contains(&frac), "banner rate {frac}");
    }

    #[test]
    fn minimalist_sites_exist_and_carry_no_trackers() {
        let pop = population(29);
        let porn: Vec<&Site> = pop.sites.iter().filter(|s| s.is_porn()).collect();
        let minimal = porn.iter().filter(|s| s.minimal).count();
        let frac = minimal as f64 / porn.len() as f64;
        assert!((0.03..0.16).contains(&frac), "minimal share {frac}");
        for s in porn.iter().filter(|s| s.minimal) {
            assert!(
                s.deployments.is_empty(),
                "{} must stay tracker-free",
                s.domain
            );
        }
    }

    #[test]
    fn unresponsive_sites_have_no_deployments() {
        let pop = population(19);
        for s in pop.sites.iter().filter(|s| s.unresponsive) {
            assert!(s.deployments.is_empty(), "{}", s.domain);
        }
    }
}
