//! The Selenium-style interaction crawler (paper §3.1).
//!
//! For each site it: (1) loads the landing page; (2) searches for an
//! age-verification mechanism — floating elements containing "Yes",
//! "Enter", "Agree", "Continue", "Accept" in eight languages, verified by
//! inspecting the text of the candidate's parent and grandparent elements
//! for age/adult vocabulary; (3) clicks through the gate when one is found;
//! (4) searches the (post-gate) landing page for a privacy-policy link
//! ("Privacy"/"Policy" in eight languages) and fetches it; (5) records
//! monetization signals (account/premium keywords) and fetches the premium
//! page when advertised.

use redlight_browser::{Browser, Initiator};
use redlight_html::dom::Document;
use redlight_html::{parser, query, style};
use redlight_net::geoip::Country;
use redlight_net::http::ResourceKind;
use redlight_net::transport::{BrowserKind, NetProfile, Transport, TransportMeter, TransportStats};
use redlight_net::url::Url;
use redlight_obs::{Registry, Trace, Tracer};
use redlight_sim::{SimHandle, SimTransport};
use redlight_text::lang;
use redlight_websim::server::WebServer;
use redlight_websim::World;

use crate::db::InteractionRecord;
use crate::openwpm::VISIT_BATCH;

/// One interaction crawl's output plus its network bookkeeping.
#[derive(Debug)]
pub struct InteractionCrawl {
    /// One record per crawled domain, in input order.
    pub records: Vec<InteractionRecord>,
    /// Transport counters when the profile meters (`None` on bare stacks).
    pub transport: Option<TransportStats>,
    /// Landing-page load attempts across all sites.
    pub attempts: u64,
    /// Attempts beyond each site's first.
    pub retries: u64,
}

/// The interaction crawler.
pub struct SeleniumCrawler<'w> {
    world: &'w World,
    country: Country,
    net: NetProfile,
}

impl<'w> SeleniumCrawler<'w> {
    /// Creates a crawler from the given vantage point over a default
    /// (healthy, metered, no-retry) network.
    pub fn new(world: &'w World, country: Country) -> Self {
        SeleniumCrawler {
            world,
            country,
            net: NetProfile::default(),
        }
    }

    /// Replaces the network profile the crawl runs over.
    pub fn with_net(mut self, net: NetProfile) -> Self {
        self.net = net;
        self
    }

    /// Crawls `domains`, producing one record each.
    pub fn crawl(&self, domains: &[String]) -> Vec<InteractionRecord> {
        self.crawl_metered(domains).records
    }

    /// Like [`crawl`](Self::crawl), but keeps the transport counters and
    /// per-crawl attempt totals alongside the records.
    pub fn crawl_metered(&self, domains: &[String]) -> InteractionCrawl {
        let trace = Trace::disabled();
        let mut tracer = trace.tracer("crawl");
        self.crawl_observed(domains, &mut tracer, &Registry::new())
    }

    /// [`crawl_metered`](Self::crawl_metered) with telemetry: records a
    /// `crawl.selenium.<country>` span with `visits.NNN` batch children
    /// into `tracer` and publishes `transport.*` counters,
    /// `transport.retries`, `crawl.unreachable_sites` and the
    /// `crawl.attempts` histogram into `registry`. Records are
    /// byte-identical to the unobserved path.
    pub fn crawl_observed(
        &self,
        domains: &[String],
        tracer: &mut Tracer,
        registry: &Registry,
    ) -> InteractionCrawl {
        let ctx = Browser::context_for(self.world, self.country, BrowserKind::Selenium);
        let meter = TransportMeter::in_registry(registry);
        let transport = self
            .net
            .stack_in(WebServer::new(self.world), &meter, registry);
        // Sim profiles rehost the stack on the logical clock (outcomes are
        // unchanged; retries consume their backoff as simulated time).
        let sim = self.net.sim.map(SimHandle::new);
        let transport: Box<dyn Transport + '_> = match &sim {
            Some(handle) => Box::new(SimTransport::new(transport, handle.clone())),
            None => transport,
        };
        let mut browser = Browser::with_transport(transport, ctx);

        let retry_counter = registry.counter("transport.retries");
        let unreachable = registry.counter("crawl.unreachable_sites");
        let attempts_hist = registry.histogram("crawl.attempts");

        tracer.open(&format!(
            "crawl.selenium.{}",
            self.country.code().to_ascii_lowercase()
        ));
        tracer.attr("sites", domains.len());

        let mut attempts_total = 0u64;
        let mut retries = 0u64;
        let mut records = Vec::with_capacity(domains.len());
        for (batch_idx, batch) in domains.chunks(VISIT_BATCH).enumerate() {
            tracer.open(&format!("visits.{batch_idx:03}"));
            let mut batch_attempts = 0u64;
            let mut batch_failures = 0u64;
            for d in batch {
                let (record, attempts) = self.crawl_site(&mut browser, d, sim.as_ref());
                attempts_total += attempts as u64;
                retries += attempts.saturating_sub(1) as u64;
                retry_counter.add(attempts.saturating_sub(1) as u64);
                attempts_hist.record(attempts as u64);
                batch_attempts += attempts as u64;
                if !record.reachable {
                    unreachable.inc();
                    batch_failures += 1;
                }
                records.push(record);
            }
            tracer.attr("sites", batch.len());
            tracer.attr("attempts", batch_attempts);
            tracer.attr("failures", batch_failures);
            tracer.close();
        }
        tracer.close();

        InteractionCrawl {
            records,
            transport: self.net.metered.then(|| meter.snapshot()),
            attempts: attempts_total,
            retries,
        }
    }

    /// Crawls one site, returning its record with the number of
    /// landing-page attempts spent (0 when the domain never parsed). Under
    /// a sim profile, retry backoff is consumed on the logical clock and
    /// checked against the recorded schedule.
    fn crawl_site(
        &self,
        browser: &mut Browser<'w>,
        domain: &str,
        sim: Option<&SimHandle>,
    ) -> (InteractionRecord, u32) {
        let mut record = InteractionRecord {
            domain: domain.to_string(),
            country: self.country,
            reachable: false,
            age_gate_detected: false,
            age_gate_bypassed: false,
            social_login_gate: false,
            policy_url: None,
            policy_text: None,
            login_signal: false,
            premium_signal: false,
            premium_page: None,
        };
        let Ok(url) = Url::parse(&format!("https://{domain}/")) else {
            // Malformed corpus entry: recorded as unreachable, never dropped.
            return (record, 0);
        };
        let backoff_mark = sim.map(|h| h.backoff_consumed());
        let mut attempts = 1u32;
        let mut visit = browser.visit(&url);
        while !visit.success && attempts < self.net.retry.max_attempts {
            attempts += 1;
            if let Some(handle) = sim {
                handle.consume_backoff(self.net.retry.backoff_before(attempts));
            }
            visit = browser.visit(&url);
        }
        if let Some((handle, before)) = sim.zip(backoff_mark) {
            assert_eq!(
                handle.backoff_consumed() - before,
                self.net.retry.total_backoff(attempts),
                "recorded backoff must equal logical time consumed"
            );
        }
        if !visit.success {
            return (record, attempts);
        }
        record.reachable = true;
        let Some(mut page_url) = visit.final_url.clone() else {
            return (record, attempts);
        };
        let mut doc = parser::parse(&visit.dom_html);

        // --- Age-gate detection & bypass. ---
        if let Some(gate) = detect_age_gate(&doc) {
            record.age_gate_detected = true;
            match gate {
                GateAction::Click(href) => {
                    if let Ok(target) = page_url.join(&href) {
                        if let Some((final_url, resp)) = browser.fetch_resource(
                            &mut visit,
                            &target,
                            ResourceKind::Document,
                            Some(&page_url),
                            Initiator::Document,
                        ) {
                            if resp.status.is_success() {
                                record.age_gate_bypassed = true;
                                page_url = final_url;
                                doc = parser::parse(&resp.text());
                            }
                        }
                    }
                }
                GateAction::SocialLogin => {
                    record.social_login_gate = true;
                    // No way through; analysis continues on the gated page.
                }
            }
        }

        // --- Privacy-policy link. ---
        if let Some(href) = find_policy_link(&doc) {
            if let Ok(target) = page_url.join(&href) {
                record.policy_url = Some(target.without_fragment());
                if let Some((_, resp)) = browser.fetch_resource(
                    &mut visit,
                    &target,
                    ResourceKind::Document,
                    Some(&page_url),
                    Initiator::Document,
                ) {
                    if resp.status.is_success() {
                        let text = extract_main_text(&resp.text());
                        record.policy_text = Some(text);
                    }
                }
            }
        }

        // --- Monetization signals (§4.1). ---
        let body_text = doc.text_content(doc.root());
        record.login_signal = lang::matches_account(&body_text);
        record.premium_signal = lang::matches_premium(&body_text);
        if record.premium_signal {
            if let Ok(premium) = page_url.join("/premium") {
                if let Some((_, resp)) = browser.fetch_resource(
                    &mut visit,
                    &premium,
                    ResourceKind::Document,
                    Some(&page_url),
                    Initiator::Document,
                ) {
                    if resp.status.is_success() {
                        record.premium_page = Some(resp.text());
                    }
                }
            }
        }

        (record, attempts)
    }
}

enum GateAction {
    /// Click the affirmative element (href of the enclosing anchor).
    Click(String),
    /// The gate demands a social login — cannot be passed automatically.
    SocialLogin,
}

/// Detects an age gate: a floating element whose subtree holds an
/// affirmative keyword, verified by age/adult vocabulary in the candidate's
/// parent/grandparent text (the §3.1 false-positive filter).
fn detect_age_gate(doc: &Document) -> Option<GateAction> {
    for float_id in style::floating_elements(doc) {
        let float_text = doc.text_content(float_id);
        if !lang::matches_age_warning(&float_text) {
            continue;
        }
        // Affirmative button inside the floating element?
        for node in doc.subtree(float_id) {
            let Some(el) = doc.element(node) else {
                continue;
            };
            if el.tag != "button" && el.tag != "a" {
                continue;
            }
            let label = doc.text_content(node);
            if !lang::matches_affirmative(&label) {
                continue;
            }
            // Parent/grandparent verification: the surrounding context must
            // actually be an age warning, not ordinary page copy.
            let ancestors = doc.ancestors(node);
            let verified = ancestors
                .iter()
                .take(3)
                .any(|&a| lang::matches_age_warning(&doc.text_content(a)));
            if !verified {
                continue;
            }
            // Find the click target: the element itself or its anchor parent.
            let href = std::iter::once(node)
                .chain(ancestors.iter().copied())
                .find_map(|n| {
                    doc.element(n)
                        .filter(|e| e.tag == "a")
                        .and_then(|e| e.attr("href"))
                        .map(str::to_string)
                });
            if let Some(href) = href {
                return Some(GateAction::Click(href));
            }
        }
        // A floating age warning with a form but no clickable affirmative
        // element: the social-login style gate.
        let has_form = doc
            .subtree(float_id)
            .any(|n| doc.element(n).is_some_and(|e| e.tag == "form"));
        if has_form {
            return Some(GateAction::SocialLogin);
        }
    }
    None
}

/// Finds a privacy-policy link by anchor text or href keywords in any of the
/// eight languages.
fn find_policy_link(doc: &Document) -> Option<String> {
    query::links(doc).into_iter().find_map(|(id, href)| {
        let text = doc.text_content(id);
        if lang::matches_privacy(&text) || lang::matches_privacy(&href) {
            Some(href)
        } else {
            None
        }
    })
}

/// Extracts readable text from a fetched policy page.
fn extract_main_text(html: &str) -> String {
    let doc = parser::parse(html);
    doc.text_content(doc.root())
}

#[cfg(test)]
mod tests {
    use super::*;
    use redlight_websim::sitegen::AgeGateKind;
    use redlight_websim::WorldConfig;

    fn crawl_one(world: &World, domain: &str, country: Country) -> InteractionRecord {
        let crawler = SeleniumCrawler::new(world, country);
        crawler.crawl(&[domain.to_string()]).remove(0)
    }

    #[test]
    fn detects_and_bypasses_simple_gates() {
        let world = World::build(WorldConfig::tiny(55));
        let gated = world
            .sites
            .iter()
            .find(|s| {
                s.is_porn()
                    && !s.unresponsive
                    && s.age_gate.default == Some(AgeGateKind::SimpleButton)
            })
            .expect("tiny world has gated sites");
        let rec = crawl_one(&world, &gated.domain, Country::Spain);
        assert!(rec.reachable);
        assert!(rec.age_gate_detected, "gate on {} missed", gated.domain);
        assert!(rec.age_gate_bypassed, "simple gates must be bypassable");
        assert!(!rec.social_login_gate);
    }

    #[test]
    fn social_login_gate_is_not_bypassable() {
        let world = World::build(WorldConfig::tiny(55));
        let rec = crawl_one(&world, "pornhub.com", Country::Russia);
        assert!(rec.age_gate_detected);
        assert!(rec.social_login_gate);
        assert!(!rec.age_gate_bypassed);
        // Outside Russia the same site has a simple gate.
        let rec_es = crawl_one(&world, "pornhub.com", Country::Spain);
        assert!(rec_es.age_gate_detected);
        assert!(rec_es.age_gate_bypassed);
    }

    #[test]
    fn ungated_sites_have_no_gate_detected() {
        let world = World::build(WorldConfig::tiny(55));
        let plain = world
            .sites
            .iter()
            .find(|s| s.is_porn() && !s.unresponsive && s.age_gate.default.is_none())
            .unwrap();
        let rec = crawl_one(&world, &plain.domain, Country::Spain);
        assert!(rec.reachable);
        assert!(!rec.age_gate_detected, "false positive on {}", plain.domain);
    }

    #[test]
    fn fetches_policies_including_behind_gates() {
        let world = World::build(WorldConfig::small(56));
        let site = world
            .sites
            .iter()
            .find(|s| {
                s.is_porn() && !s.unresponsive && s.policy.as_ref().is_some_and(|p| !p.broken)
            })
            .unwrap();
        let rec = crawl_one(&world, &site.domain, Country::Spain);
        assert!(
            rec.policy_url.is_some(),
            "policy link missed on {}",
            site.domain
        );
        let text = rec.policy_text.expect("policy fetch succeeded");
        assert!(text.len() > 400, "policy too short: {}", text.len());
    }

    #[test]
    fn broken_policy_links_yield_no_text() {
        let world = World::build(WorldConfig::small(56));
        let Some(site) = world.sites.iter().find(|s| {
            s.is_porn() && !s.unresponsive && s.policy.as_ref().is_some_and(|p| p.broken)
        }) else {
            return;
        };
        let rec = crawl_one(&world, &site.domain, Country::Spain);
        assert!(rec.policy_url.is_some());
        assert!(rec.policy_text.is_none(), "broken policy must not fetch");
    }

    #[test]
    fn monetization_signals_follow_ground_truth() {
        let world = World::build(WorldConfig::small(57));
        let premium_site = world
            .sites
            .iter()
            .find(|s| s.is_porn() && !s.unresponsive && s.premium && s.age_gate.default.is_none())
            .unwrap();
        let rec = crawl_one(&world, &premium_site.domain, Country::Spain);
        assert!(rec.premium_signal);
        let page = rec.premium_page.expect("premium page fetched");
        if premium_site.premium_paid {
            assert!(page.contains('$'));
        } else {
            assert!(page.to_lowercase().contains("free"));
        }
    }
}
