//! The measurement database — this repository's stand-in for OpenWPM's
//! SQLite store, plus the interaction crawler's records.

use redlight_browser::PageVisit;
use redlight_net::geoip::Country;
use serde::{Deserialize, Serialize};

/// Which corpus a crawl covered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CorpusLabel {
    /// The pornographic corpus.
    Porn,
    /// The regular (reference) corpus.
    Regular,
}

/// One site's visit inside a crawl.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SiteVisitRecord {
    /// The crawled domain (corpus entry).
    pub domain: String,
    /// Visit.
    pub visit: PageVisit,
}

/// One crawl: a country × corpus sweep with a single browser session.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CrawlRecord {
    /// Country.
    pub country: Country,
    /// Corpus.
    pub corpus: CorpusLabel,
    /// Visits.
    pub visits: Vec<SiteVisitRecord>,
}

impl CrawlRecord {
    /// Visits whose document loaded successfully.
    pub fn successful(&self) -> impl Iterator<Item = &SiteVisitRecord> {
        self.visits.iter().filter(|v| v.visit.success)
    }

    /// Number of successfully crawled sites.
    pub fn success_count(&self) -> usize {
        self.successful().count()
    }
}

/// What the interaction (Selenium-style) crawler observed on one site.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InteractionRecord {
    /// Domain.
    pub domain: String,
    /// Country.
    pub country: Country,
    /// The landing page loaded at all.
    pub reachable: bool,
    /// An age-verification mechanism was detected.
    pub age_gate_detected: bool,
    /// The crawler clicked through it successfully.
    pub age_gate_bypassed: bool,
    /// The gate demands a social-network login (not bypassable).
    pub social_login_gate: bool,
    /// Privacy-policy link found on the (post-gate) landing page.
    pub policy_url: Option<String>,
    /// Fetched policy text (`None` when the link 404s/errors — the §7.3
    /// false positives).
    pub policy_text: Option<String>,
    /// Landing page text contained account-creation keywords.
    pub login_signal: bool,
    /// Landing page text contained premium/subscription keywords.
    pub premium_signal: bool,
    /// Text of the premium page, when one was fetched.
    pub premium_page: Option<String>,
}

/// The whole study's collected data.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MeasurementDb {
    /// OpenWPM-style crawls (one per country × corpus).
    pub crawls: Vec<CrawlRecord>,
    /// Interaction-crawler records (one per country crawled interactively).
    pub interactions: Vec<InteractionRecord>,
}

impl MeasurementDb {
    /// Empty DB.
    pub fn new() -> Self {
        Self::default()
    }

    /// The crawl for `(country, corpus)`, if recorded.
    pub fn crawl(&self, country: Country, corpus: CorpusLabel) -> Option<&CrawlRecord> {
        self.crawls
            .iter()
            .find(|c| c.country == country && c.corpus == corpus)
    }

    /// Interaction records for one country.
    pub fn interactions_in(&self, country: Country) -> impl Iterator<Item = &InteractionRecord> {
        self.interactions.iter().filter(move |r| r.country == country)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use redlight_net::url::Url;

    #[test]
    fn crawl_lookup_and_success_counting() {
        let mut db = MeasurementDb::new();
        let ok = PageVisit {
            success: true,
            ..PageVisit::failed(Url::parse("https://a.com/").unwrap(), false)
        };
        let fail = PageVisit::failed(Url::parse("https://b.com/").unwrap(), true);
        db.crawls.push(CrawlRecord {
            country: Country::Spain,
            corpus: CorpusLabel::Porn,
            visits: vec![
                SiteVisitRecord {
                    domain: "a.com".into(),
                    visit: ok,
                },
                SiteVisitRecord {
                    domain: "b.com".into(),
                    visit: fail,
                },
            ],
        });
        let crawl = db.crawl(Country::Spain, CorpusLabel::Porn).unwrap();
        assert_eq!(crawl.success_count(), 1);
        assert!(db.crawl(Country::Usa, CorpusLabel::Porn).is_none());
        assert_eq!(db.interactions_in(Country::Spain).count(), 0);
    }
}
