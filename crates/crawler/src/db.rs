//! The measurement database — this repository's stand-in for OpenWPM's
//! SQLite store, plus the interaction crawler's records.

use std::collections::BTreeMap;
use std::net::Ipv4Addr;
use std::time::Duration;

use redlight_browser::PageVisit;
use redlight_net::geoip::Country;
use serde::{Deserialize, Serialize};

/// Which corpus a crawl covered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum CorpusLabel {
    /// The pornographic corpus.
    Porn,
    /// The regular (reference) corpus.
    Regular,
}

/// One site's visit inside a crawl.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SiteVisitRecord {
    /// The crawled domain (corpus entry).
    pub domain: String,
    /// Visit.
    pub visit: PageVisit,
    /// Document-load attempts spent on the site (1 = first try succeeded
    /// or no retry budget; 0 = the corpus entry never parsed into a URL).
    pub attempts: u32,
    /// Wall time the crawler spent on this site, retries included.
    pub wall: Duration,
}

impl SiteVisitRecord {
    /// A single-attempt record (the overwhelmingly common case; retrying
    /// crawlers fill the attempt/wall fields themselves).
    pub fn new(domain: impl Into<String>, visit: PageVisit) -> Self {
        SiteVisitRecord {
            domain: domain.into(),
            visit,
            attempts: 1,
            wall: Duration::ZERO,
        }
    }
}

/// One crawl: a country × corpus sweep with a single browser session.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CrawlRecord {
    /// Country.
    pub country: Country,
    /// Corpus.
    pub corpus: CorpusLabel,
    /// The vantage point's public IPv4 address during this crawl — what
    /// server-side trackers embed in cookies (§5.1.1), so the cookie and
    /// HTTPS analyses need it alongside the visits.
    pub client_ip: Ipv4Addr,
    /// Visits.
    pub visits: Vec<SiteVisitRecord>,
}

impl CrawlRecord {
    /// Visits whose document loaded successfully.
    pub fn successful(&self) -> impl Iterator<Item = &SiteVisitRecord> {
        self.visits.iter().filter(|v| v.visit.success)
    }

    /// Number of successfully crawled sites.
    pub fn success_count(&self) -> usize {
        self.successful().count()
    }

    /// Number of visits whose document never loaded.
    pub fn failure_count(&self) -> usize {
        self.visits.len() - self.success_count()
    }

    /// Total document-load attempts across all visits.
    pub fn total_attempts(&self) -> u64 {
        self.visits.iter().map(|v| v.attempts as u64).sum()
    }

    /// Total retries (attempts beyond each visit's first).
    pub fn total_retries(&self) -> u64 {
        self.visits
            .iter()
            .map(|v| v.attempts.saturating_sub(1) as u64)
            .sum()
    }
}

/// What the interaction (Selenium-style) crawler observed on one site.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InteractionRecord {
    /// Domain.
    pub domain: String,
    /// Country.
    pub country: Country,
    /// The landing page loaded at all.
    pub reachable: bool,
    /// An age-verification mechanism was detected.
    pub age_gate_detected: bool,
    /// The crawler clicked through it successfully.
    pub age_gate_bypassed: bool,
    /// The gate demands a social-network login (not bypassable).
    pub social_login_gate: bool,
    /// Privacy-policy link found on the (post-gate) landing page.
    pub policy_url: Option<String>,
    /// Fetched policy text (`None` when the link 404s/errors — the §7.3
    /// false positives).
    pub policy_text: Option<String>,
    /// Landing page text contained account-creation keywords.
    pub login_signal: bool,
    /// Landing page text contained premium/subscription keywords.
    pub premium_signal: bool,
    /// Text of the premium page, when one was fetched.
    pub premium_page: Option<String>,
}

/// The whole study's collected data.
///
/// Fields are private so every insertion goes through [`push_crawl`] /
/// [`push_interactions`] and the `(country, corpus)` lookup index can never
/// go stale.
///
/// [`push_crawl`]: MeasurementDb::push_crawl
/// [`push_interactions`]: MeasurementDb::push_interactions
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MeasurementDb {
    /// OpenWPM-style crawls (one per country × corpus).
    crawls: Vec<CrawlRecord>,
    /// Interaction-crawler records (one per country × site crawled
    /// interactively).
    interactions: Vec<InteractionRecord>,
    /// `(country, corpus)` → index into `crawls`.
    crawl_index: BTreeMap<(Country, CorpusLabel), usize>,
}

impl MeasurementDb {
    /// Empty DB.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a crawl and indexes it. The first record for a `(country,
    /// corpus)` pair wins the index slot (matching the previous linear-scan
    /// semantics); duplicates stay reachable through [`crawls`].
    ///
    /// [`crawls`]: MeasurementDb::crawls
    pub fn push_crawl(&mut self, crawl: CrawlRecord) {
        let key = (crawl.country, crawl.corpus);
        let idx = self.crawls.len();
        self.crawls.push(crawl);
        self.crawl_index.entry(key).or_insert(idx);
    }

    /// Appends interaction-crawler output.
    pub fn push_interactions(&mut self, records: impl IntoIterator<Item = InteractionRecord>) {
        self.interactions.extend(records);
    }

    /// All crawls, in insertion order.
    pub fn crawls(&self) -> &[CrawlRecord] {
        &self.crawls
    }

    /// All interaction records, in insertion order.
    pub fn interactions(&self) -> &[InteractionRecord] {
        &self.interactions
    }

    /// The crawl for `(country, corpus)`, if recorded — an indexed lookup,
    /// not a scan.
    pub fn crawl(&self, country: Country, corpus: CorpusLabel) -> Option<&CrawlRecord> {
        self.crawl_index
            .get(&(country, corpus))
            .map(|&i| &self.crawls[i])
    }

    /// Crawls recorded from one country (any corpus), in insertion order.
    pub fn crawls_in(&self, country: Country) -> impl Iterator<Item = &CrawlRecord> {
        self.crawls.iter().filter(move |c| c.country == country)
    }

    /// The distinct countries with at least one crawl, in ascending
    /// [`Country`] order.
    pub fn countries(&self) -> Vec<Country> {
        let mut out: Vec<Country> = self.crawl_index.keys().map(|&(c, _)| c).collect();
        out.dedup();
        out
    }

    /// Interaction records for one country.
    pub fn interactions_in(&self, country: Country) -> impl Iterator<Item = &InteractionRecord> {
        self.interactions
            .iter()
            .filter(move |r| r.country == country)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use redlight_net::url::Url;

    fn crawl_with(country: Country, corpus: CorpusLabel, domains: &[(&str, bool)]) -> CrawlRecord {
        CrawlRecord {
            country,
            corpus,
            client_ip: Ipv4Addr::new(203, 0, 113, 77),
            visits: domains
                .iter()
                .map(|(d, ok)| {
                    SiteVisitRecord::new(
                        *d,
                        if *ok {
                            PageVisit {
                                success: true,
                                ..PageVisit::failed(
                                    Url::parse(&format!("https://{d}/")).unwrap(),
                                    false,
                                )
                            }
                        } else {
                            PageVisit::failed(Url::parse(&format!("https://{d}/")).unwrap(), true)
                        },
                    )
                })
                .collect(),
        }
    }

    #[test]
    fn crawl_lookup_and_success_counting() {
        let mut db = MeasurementDb::new();
        db.push_crawl(crawl_with(
            Country::Spain,
            CorpusLabel::Porn,
            &[("a.com", true), ("b.com", false)],
        ));
        let crawl = db.crawl(Country::Spain, CorpusLabel::Porn).unwrap();
        assert_eq!(crawl.success_count(), 1);
        assert!(db.crawl(Country::Usa, CorpusLabel::Porn).is_none());
        assert_eq!(db.interactions_in(Country::Spain).count(), 0);
    }

    #[test]
    fn index_tracks_every_pair_and_first_record_wins() {
        let mut db = MeasurementDb::new();
        db.push_crawl(crawl_with(
            Country::Spain,
            CorpusLabel::Porn,
            &[("a.com", true)],
        ));
        db.push_crawl(crawl_with(
            Country::Spain,
            CorpusLabel::Regular,
            &[("r.com", true)],
        ));
        db.push_crawl(crawl_with(
            Country::Usa,
            CorpusLabel::Porn,
            &[("a.com", true)],
        ));
        // A duplicate pair: reachable through crawls(), but the lookup keeps
        // returning the first record (the old linear scan's behavior).
        db.push_crawl(crawl_with(Country::Spain, CorpusLabel::Porn, &[]));

        assert_eq!(db.crawls().len(), 4);
        assert_eq!(
            db.crawl(Country::Spain, CorpusLabel::Porn)
                .unwrap()
                .visits
                .len(),
            1
        );
        assert_eq!(db.crawls_in(Country::Spain).count(), 3);
        assert_eq!(db.crawls_in(Country::Usa).count(), 1);
        assert_eq!(db.countries(), vec![Country::Usa, Country::Spain]);
    }
}
