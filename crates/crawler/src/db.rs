//! The measurement database — this repository's stand-in for OpenWPM's
//! SQLite store, plus the interaction crawler's records.
//!
//! Crawl rows are columnar: the strings a crawl observes (crawled domains,
//! request hosts, final-URL hosts) are interned into a per-crawl
//! [`StrTable`] at record time, so a [`SiteVisitRecord`] carries [`Sym`]
//! ids instead of owned strings and analyses resolve names through the
//! crawl (or any [`CrawlSlice`] of it).

use std::collections::BTreeMap;
use std::net::Ipv4Addr;
use std::time::Duration;

use redlight_browser::PageVisit;
use redlight_net::geoip::Country;
use serde::{Deserialize, Serialize};

use crate::store::{shard_ranges, CrawlSlice, StrTable, Sym};

/// Which corpus a crawl covered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum CorpusLabel {
    /// The pornographic corpus.
    Porn,
    /// The regular (reference) corpus.
    Regular,
}

/// One site's visit inside a crawl. Rows are appended through
/// [`CrawlRecord::push_visit`] / [`CrawlRecord::push_visit_with`], which
/// intern the string columns into the owning crawl's table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SiteVisitRecord {
    /// The crawled domain (corpus entry), interned in the crawl's table.
    pub domain: Sym,
    /// Visit.
    pub visit: PageVisit,
    /// The host of each request in `visit.requests`, interned in the
    /// crawl's table (same order as the requests).
    pub request_hosts: Vec<Sym>,
    /// The full URL (fragment stripped — what a server and a blocklist
    /// see) of each request in `visit.requests`, interned in the crawl's
    /// table (same order as the requests). Batch classification keys
    /// verdicts by these, so analyses never re-render request URLs.
    pub request_urls: Vec<Sym>,
    /// The final (post-redirect) document host, interned — `None` when the
    /// document never loaded.
    pub final_host: Option<Sym>,
    /// Document-load attempts spent on the site (1 = first try succeeded
    /// or no retry budget; 0 = the corpus entry never parsed into a URL).
    pub attempts: u32,
    /// Wall time the crawler spent on this site, retries included.
    pub wall: Duration,
}

/// Single-pass totals over a crawl's visit column — attempts, retries and
/// failures in one sweep (the `--timings` roll-up used to walk the visits
/// three times for these).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VisitRollup {
    /// Total document-load attempts across all visits.
    pub attempts: u64,
    /// Attempts beyond each visit's first.
    pub retries: u64,
    /// Visits whose document never loaded.
    pub failures: u64,
}

/// One crawl: a country × corpus sweep with a single browser session.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CrawlRecord {
    /// Country.
    pub country: Country,
    /// Corpus.
    pub corpus: CorpusLabel,
    /// The vantage point's public IPv4 address during this crawl — what
    /// server-side trackers embed in cookies (§5.1.1), so the cookie and
    /// HTTPS analyses need it alongside the visits.
    pub client_ip: Ipv4Addr,
    /// Visits.
    pub visits: Vec<SiteVisitRecord>,
    /// The crawl's interned string table (domains + request hosts).
    names: StrTable,
}

impl CrawlRecord {
    /// An empty crawl whose visit rows are appended through
    /// [`push_visit`](Self::push_visit) /
    /// [`push_visit_with`](Self::push_visit_with).
    pub fn new(country: Country, corpus: CorpusLabel, client_ip: Ipv4Addr) -> Self {
        CrawlRecord {
            country,
            corpus,
            client_ip,
            visits: Vec::new(),
            names: StrTable::new(),
        }
    }

    /// Appends a single-attempt visit row (the overwhelmingly common case;
    /// retrying crawlers record attempts/wall via
    /// [`push_visit_with`](Self::push_visit_with)).
    pub fn push_visit(&mut self, domain: &str, visit: PageVisit) {
        self.push_visit_with(domain, visit, 1, Duration::ZERO);
    }

    /// Appends a visit row, interning the domain and every request host
    /// into the crawl's string table at record time.
    pub fn push_visit_with(
        &mut self,
        domain: &str,
        visit: PageVisit,
        attempts: u32,
        wall: Duration,
    ) {
        let domain = self.names.intern(domain);
        let request_hosts = visit
            .requests
            .iter()
            .map(|r| self.names.intern(r.url.host().as_str()))
            .collect();
        let request_urls = visit
            .requests
            .iter()
            .map(|r| self.names.intern(&r.url.without_fragment()))
            .collect();
        let final_host = visit
            .final_url
            .as_ref()
            .map(|u| self.names.intern(u.host().as_str()));
        self.visits.push(SiteVisitRecord {
            domain,
            visit,
            request_hosts,
            request_urls,
            final_host,
            attempts,
            wall,
        });
    }

    /// Resolves an interned name through this crawl's table.
    pub fn name(&self, sym: Sym) -> &str {
        self.names.resolve(sym)
    }

    /// The crawl's interned string table.
    pub fn names(&self) -> &StrTable {
        &self.names
    }

    /// The whole crawl as one zero-copy slice.
    pub fn full(&self) -> CrawlSlice<'_> {
        CrawlSlice::new(
            self.country,
            self.corpus,
            self.client_ip,
            &self.visits,
            0,
            &self.names,
        )
    }

    /// Splits the crawl into at most `n` contiguous near-equal slices (all
    /// sharing this crawl's string table) whose in-order concatenation is
    /// exactly [`full`](Self::full).
    pub fn shards(&self, n: usize) -> Vec<CrawlSlice<'_>> {
        shard_ranges(self.visits.len(), n)
            .into_iter()
            .map(|(lo, hi)| {
                CrawlSlice::new(
                    self.country,
                    self.corpus,
                    self.client_ip,
                    &self.visits[lo..hi],
                    lo,
                    &self.names,
                )
            })
            .collect()
    }

    /// Visits whose document loaded successfully.
    pub fn successful(&self) -> impl Iterator<Item = &SiteVisitRecord> {
        self.visits.iter().filter(|v| v.visit.success)
    }

    /// Number of successfully crawled sites.
    pub fn success_count(&self) -> usize {
        self.successful().count()
    }

    /// Number of visits whose document never loaded.
    pub fn failure_count(&self) -> usize {
        self.visits.len() - self.success_count()
    }

    /// Total document-load attempts across all visits.
    pub fn total_attempts(&self) -> u64 {
        self.visits.iter().map(|v| v.attempts as u64).sum()
    }

    /// Total retries (attempts beyond each visit's first).
    pub fn total_retries(&self) -> u64 {
        self.visits
            .iter()
            .map(|v| v.attempts.saturating_sub(1) as u64)
            .sum()
    }

    /// Attempts, retries and failures in one pass over the visit column.
    pub fn rollup(&self) -> VisitRollup {
        let mut out = VisitRollup::default();
        for v in &self.visits {
            out.attempts += v.attempts as u64;
            out.retries += v.attempts.saturating_sub(1) as u64;
            out.failures += u64::from(!v.visit.success);
        }
        out
    }
}

/// What the interaction (Selenium-style) crawler observed on one site.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InteractionRecord {
    /// Domain.
    pub domain: String,
    /// Country.
    pub country: Country,
    /// The landing page loaded at all.
    pub reachable: bool,
    /// An age-verification mechanism was detected.
    pub age_gate_detected: bool,
    /// The crawler clicked through it successfully.
    pub age_gate_bypassed: bool,
    /// The gate demands a social-network login (not bypassable).
    pub social_login_gate: bool,
    /// Privacy-policy link found on the (post-gate) landing page.
    pub policy_url: Option<String>,
    /// Fetched policy text (`None` when the link 404s/errors — the §7.3
    /// false positives).
    pub policy_text: Option<String>,
    /// Landing page text contained account-creation keywords.
    pub login_signal: bool,
    /// Landing page text contained premium/subscription keywords.
    pub premium_signal: bool,
    /// Text of the premium page, when one was fetched.
    pub premium_page: Option<String>,
}

/// The whole study's collected data.
///
/// Fields are private so every insertion goes through [`push_crawl`] /
/// [`push_interactions`] and the `(country, corpus)` lookup index can never
/// go stale.
///
/// [`push_crawl`]: MeasurementDb::push_crawl
/// [`push_interactions`]: MeasurementDb::push_interactions
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MeasurementDb {
    /// OpenWPM-style crawls (one per country × corpus).
    crawls: Vec<CrawlRecord>,
    /// Interaction-crawler records (one per country × site crawled
    /// interactively).
    interactions: Vec<InteractionRecord>,
    /// `(country, corpus)` → index into `crawls`.
    crawl_index: BTreeMap<(Country, CorpusLabel), usize>,
}

impl MeasurementDb {
    /// Empty DB.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a crawl and indexes it. The first record for a `(country,
    /// corpus)` pair wins the index slot (matching the previous linear-scan
    /// semantics); duplicates stay reachable through [`crawls`].
    ///
    /// [`crawls`]: MeasurementDb::crawls
    pub fn push_crawl(&mut self, crawl: CrawlRecord) {
        let key = (crawl.country, crawl.corpus);
        let idx = self.crawls.len();
        self.crawls.push(crawl);
        self.crawl_index.entry(key).or_insert(idx);
    }

    /// Appends interaction-crawler output.
    pub fn push_interactions(&mut self, records: impl IntoIterator<Item = InteractionRecord>) {
        self.interactions.extend(records);
    }

    /// All crawls, in insertion order.
    pub fn crawls(&self) -> &[CrawlRecord] {
        &self.crawls
    }

    /// All interaction records, in insertion order.
    pub fn interactions(&self) -> &[InteractionRecord] {
        &self.interactions
    }

    /// The crawl for `(country, corpus)`, if recorded — an indexed lookup,
    /// not a scan.
    pub fn crawl(&self, country: Country, corpus: CorpusLabel) -> Option<&CrawlRecord> {
        self.crawl_index
            .get(&(country, corpus))
            .map(|&i| &self.crawls[i])
    }

    /// Crawls recorded from one country (any corpus), in insertion order.
    pub fn crawls_in(&self, country: Country) -> impl Iterator<Item = &CrawlRecord> {
        self.crawls.iter().filter(move |c| c.country == country)
    }

    /// The distinct countries with at least one crawl, in ascending
    /// [`Country`] order. The projection is explicitly sorted before the
    /// dedup, so correctness never rides on the index's key layout keeping
    /// equal countries adjacent.
    pub fn countries(&self) -> Vec<Country> {
        let mut out: Vec<Country> = self.crawl_index.keys().map(|&(c, _)| c).collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// A merged global string table over every crawl's per-crawl table plus
    /// the interaction domains — the store-wide dedup view the shard stats
    /// report.
    pub fn global_names(&self) -> StrTable {
        let mut out = StrTable::new();
        for crawl in &self.crawls {
            out.absorb(crawl.names());
        }
        for record in &self.interactions {
            out.intern(&record.domain);
        }
        out
    }

    /// Interaction records for one country.
    pub fn interactions_in(&self, country: Country) -> impl Iterator<Item = &InteractionRecord> {
        self.interactions
            .iter()
            .filter(move |r| r.country == country)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use redlight_net::url::Url;

    fn crawl_with(country: Country, corpus: CorpusLabel, domains: &[(&str, bool)]) -> CrawlRecord {
        let mut crawl = CrawlRecord::new(country, corpus, Ipv4Addr::new(203, 0, 113, 77));
        for (d, ok) in domains {
            let visit = if *ok {
                PageVisit {
                    success: true,
                    ..PageVisit::failed(Url::parse(&format!("https://{d}/")).unwrap(), false)
                }
            } else {
                PageVisit::failed(Url::parse(&format!("https://{d}/")).unwrap(), true)
            };
            crawl.push_visit(d, visit);
        }
        crawl
    }

    #[test]
    fn crawl_lookup_and_success_counting() {
        let mut db = MeasurementDb::new();
        db.push_crawl(crawl_with(
            Country::Spain,
            CorpusLabel::Porn,
            &[("a.com", true), ("b.com", false)],
        ));
        let crawl = db.crawl(Country::Spain, CorpusLabel::Porn).unwrap();
        assert_eq!(crawl.success_count(), 1);
        assert!(db.crawl(Country::Usa, CorpusLabel::Porn).is_none());
        assert_eq!(db.interactions_in(Country::Spain).count(), 0);
    }

    #[test]
    fn index_tracks_every_pair_and_first_record_wins() {
        let mut db = MeasurementDb::new();
        db.push_crawl(crawl_with(
            Country::Spain,
            CorpusLabel::Porn,
            &[("a.com", true)],
        ));
        db.push_crawl(crawl_with(
            Country::Spain,
            CorpusLabel::Regular,
            &[("r.com", true)],
        ));
        db.push_crawl(crawl_with(
            Country::Usa,
            CorpusLabel::Porn,
            &[("a.com", true)],
        ));
        // A duplicate pair: reachable through crawls(), but the lookup keeps
        // returning the first record (the old linear scan's behavior).
        db.push_crawl(crawl_with(Country::Spain, CorpusLabel::Porn, &[]));

        assert_eq!(db.crawls().len(), 4);
        assert_eq!(
            db.crawl(Country::Spain, CorpusLabel::Porn)
                .unwrap()
                .visits
                .len(),
            1
        );
        assert_eq!(db.crawls_in(Country::Spain).count(), 3);
        assert_eq!(db.crawls_in(Country::Usa).count(), 1);
        assert_eq!(db.countries(), vec![Country::Usa, Country::Spain]);
    }

    #[test]
    fn countries_dedup_survives_interleaved_insertion() {
        // Regression: insertion order interleaving countries and corpora
        // must never produce duplicate countries — the projection is
        // sorted before the dedup, not inherited from insertion order.
        let mut db = MeasurementDb::new();
        for (country, corpus) in [
            (Country::Russia, CorpusLabel::Porn),
            (Country::Usa, CorpusLabel::Porn),
            (Country::Russia, CorpusLabel::Regular),
            (Country::Spain, CorpusLabel::Porn),
            (Country::Usa, CorpusLabel::Regular),
            (Country::Spain, CorpusLabel::Regular),
        ] {
            db.push_crawl(crawl_with(country, corpus, &[("a.com", true)]));
        }
        assert_eq!(
            db.countries(),
            vec![Country::Usa, Country::Spain, Country::Russia]
        );
    }

    #[test]
    fn interning_and_rollup_single_pass() {
        let mut crawl = crawl_with(
            Country::Spain,
            CorpusLabel::Porn,
            &[("a.com", true), ("b.com", false), ("a.com", true)],
        );
        // Equal domains share one sym; resolution round-trips.
        assert_eq!(crawl.visits[0].domain, crawl.visits[2].domain);
        assert_ne!(crawl.visits[0].domain, crawl.visits[1].domain);
        assert_eq!(crawl.name(crawl.visits[1].domain), "b.com");
        // URL and final-host columns intern alongside the hosts: the test
        // helper's visits carry no requests and no final URL, so both
        // columns stay empty here (populated columns are pinned below).
        assert!(crawl.visits[0].request_urls.is_empty());
        assert_eq!(crawl.visits[0].final_host, None);
        crawl.visits[1].attempts = 3;
        let rollup = crawl.rollup();
        assert_eq!(rollup.attempts, crawl.total_attempts());
        assert_eq!(rollup.retries, crawl.total_retries());
        assert_eq!(rollup.failures, crawl.failure_count() as u64);
        assert_eq!(rollup.failures, 1);
    }

    #[test]
    fn request_url_and_final_host_columns_intern_at_record_time() {
        use redlight_browser::instrument::{Initiator, RequestRecord};
        use redlight_net::http::{Method, ResourceKind, StatusCode};

        let mut crawl = CrawlRecord::new(
            Country::Spain,
            CorpusLabel::Porn,
            Ipv4Addr::new(203, 0, 113, 77),
        );
        let req = |url: &str| RequestRecord {
            url: Url::parse(url).unwrap(),
            method: Method::Get,
            kind: ResourceKind::Image,
            referrer: None,
            initiator: Initiator::Markup,
            status: Some(StatusCode::OK),
            content_type: None,
            cert: None,
            redirected_to: None,
        };
        let visit = PageVisit {
            success: true,
            final_url: Some(Url::parse("https://www.a.com/landing").unwrap()),
            requests: vec![
                req("https://t.net/px.gif?uid=1#frag"),
                req("https://t.net/px.gif?uid=1"),
            ],
            ..PageVisit::failed(Url::parse("https://a.com/").unwrap(), false)
        };
        crawl.push_visit("a.com", visit);
        let rec = &crawl.visits[0];
        // Fragments are stripped before interning, so both requests share
        // one URL sym; the column stays parallel to `visit.requests`.
        assert_eq!(rec.request_urls.len(), 2);
        assert_eq!(rec.request_urls[0], rec.request_urls[1]);
        assert_eq!(
            crawl.name(rec.request_urls[0]),
            "https://t.net/px.gif?uid=1"
        );
        assert_eq!(rec.final_host.map(|s| crawl.name(s)), Some("www.a.com"));
    }

    #[test]
    fn shards_partition_the_crawl() {
        let crawl = crawl_with(
            Country::Spain,
            CorpusLabel::Porn,
            &[
                ("a.com", true),
                ("b.com", false),
                ("c.com", true),
                ("d.com", true),
                ("e.com", false),
            ],
        );
        for n in [1usize, 2, 3, 5, 9] {
            let shards = crawl.shards(n);
            assert_eq!(shards.len(), n.min(crawl.visits.len()));
            let total: usize = shards.iter().map(|s| s.len()).sum();
            assert_eq!(total, crawl.visits.len());
            let successes: usize = shards.iter().map(|s| s.success_count()).sum();
            assert_eq!(successes, crawl.success_count());
            let mut expected_offset = 0;
            for shard in &shards {
                assert_eq!(shard.offset, expected_offset);
                expected_offset += shard.len();
                for v in shard.visits {
                    // Shards resolve through the shared table.
                    assert!(!shard.name(v.domain).is_empty());
                }
            }
        }
        let full = crawl.full();
        assert_eq!(full.len(), 5);
        assert_eq!(full.offset, 0);
    }
}
