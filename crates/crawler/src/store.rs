//! The columnar shard store underneath [`MeasurementDb`].
//!
//! Crawl records intern every string they observe — crawled domains,
//! request hosts, final-URL hosts — into an arena-backed [`StrTable`] at
//! record time, so a visit row carries a fixed-width [`Sym`] instead of an
//! owned `String` and the analysis layer resolves names through the table.
//! A [`CrawlSlice`] is a zero-copy view over a contiguous visit range of
//! one crawl (sharing the crawl's table), which is the unit the map/reduce
//! stage pipeline streams: `CrawlRecord::shards(n)` splits a crawl into `n`
//! near-equal contiguous slices whose concatenation, in order, is exactly
//! the monolithic crawl.
//!
//! [`MeasurementDb`]: crate::db::MeasurementDb

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::net::Ipv4Addr;

use redlight_net::geoip::Country;
use serde::{Deserialize, Serialize};

use crate::db::{CorpusLabel, SiteVisitRecord};

/// An interned string id: an index into the owning [`StrTable`].
///
/// Two `Sym`s from the *same* table are equal iff the strings are equal;
/// comparing syms across tables is meaningless, which is why the slice and
/// record APIs always pair a sym with its table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Sym(u32);

impl Sym {
    /// The table index this sym resolves through.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An arena-backed interned string table.
///
/// All string bytes live in one contiguous arena; a sym is an index into
/// the span column. Interning dedups through hash buckets with exact
/// comparison inside the bucket, so equal strings always share one sym and
/// a 64-bit collision can never alias two different strings.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct StrTable {
    /// Concatenated string bytes.
    arena: String,
    /// `(start, len)` of each interned string, indexed by sym.
    spans: Vec<(u32, u32)>,
    /// hash → syms whose strings share that hash.
    buckets: HashMap<u64, Vec<Sym>>,
}

impl StrTable {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    fn hash_of(s: &str) -> u64 {
        let mut hasher = DefaultHasher::new();
        s.hash(&mut hasher);
        hasher.finish()
    }

    /// Interns `s`, returning the existing sym when the string was seen
    /// before.
    pub fn intern(&mut self, s: &str) -> Sym {
        let hash = Self::hash_of(s);
        if let Some(bucket) = self.buckets.get(&hash) {
            for &sym in bucket {
                if self.resolve(sym) == s {
                    return sym;
                }
            }
        }
        let sym = Sym(u32::try_from(self.spans.len()).expect("string table overflow"));
        let start = u32::try_from(self.arena.len()).expect("arena overflow");
        let len = u32::try_from(s.len()).expect("oversized string");
        self.arena.push_str(s);
        self.spans.push((start, len));
        self.buckets.entry(hash).or_default().push(sym);
        sym
    }

    /// The sym of `s`, when it has been interned — a read-only probe that
    /// never grows the table.
    pub fn lookup(&self, s: &str) -> Option<Sym> {
        self.buckets
            .get(&Self::hash_of(s))?
            .iter()
            .copied()
            .find(|&sym| self.resolve(sym) == s)
    }

    /// The string behind `sym`. Panics on a sym from another table whose
    /// index is out of range.
    pub fn resolve(&self, sym: Sym) -> &str {
        let (start, len) = self.spans[sym.index()];
        &self.arena[start as usize..(start + len) as usize]
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Bytes held by the string arena (excluding the span/bucket columns).
    pub fn arena_bytes(&self) -> usize {
        self.arena.len()
    }

    /// All interned strings in sym order.
    pub fn iter(&self) -> impl Iterator<Item = &str> {
        (0..self.spans.len()).map(|i| self.resolve(Sym(i as u32)))
    }

    /// Interns every string of `other` into `self` (the merged-global-table
    /// construction; syms of `other` do **not** carry over).
    pub fn absorb(&mut self, other: &StrTable) {
        for s in other.iter() {
            self.intern(s);
        }
    }
}

/// A zero-copy view over one contiguous visit range of a crawl, sharing the
/// crawl's string table — the unit of work the sharded stage pipeline
/// streams.
#[derive(Debug, Clone, Copy)]
pub struct CrawlSlice<'a> {
    /// Country of the underlying crawl.
    pub country: Country,
    /// Corpus of the underlying crawl.
    pub corpus: CorpusLabel,
    /// Vantage-point public IP of the underlying crawl.
    pub client_ip: Ipv4Addr,
    /// The visit rows this slice covers.
    pub visits: &'a [SiteVisitRecord],
    /// Absolute index of `visits[0]` within the full crawl — session-order
    /// analyses (cookie syncing) need every visit's global position.
    pub offset: usize,
    names: &'a StrTable,
}

impl<'a> CrawlSlice<'a> {
    pub(crate) fn new(
        country: Country,
        corpus: CorpusLabel,
        client_ip: Ipv4Addr,
        visits: &'a [SiteVisitRecord],
        offset: usize,
        names: &'a StrTable,
    ) -> Self {
        CrawlSlice {
            country,
            corpus,
            client_ip,
            visits,
            offset,
            names,
        }
    }

    /// Resolves an interned name through the crawl's table.
    pub fn name(&self, sym: Sym) -> &'a str {
        self.names.resolve(sym)
    }

    /// The crawl's string table.
    pub fn names(&self) -> &'a StrTable {
        self.names
    }

    /// Visits whose document loaded successfully.
    pub fn successful(&self) -> impl Iterator<Item = &'a SiteVisitRecord> + 'a {
        self.visits.iter().filter(|v| v.visit.success)
    }

    /// Number of successful visits in this slice.
    pub fn success_count(&self) -> usize {
        self.successful().count()
    }

    /// Number of visit rows in this slice.
    pub fn len(&self) -> usize {
        self.visits.len()
    }

    /// Whether the slice covers no visits.
    pub fn is_empty(&self) -> bool {
        self.visits.is_empty()
    }
}

/// Splits `len` rows into at most `shards` contiguous near-equal ranges
/// (first `len % shards` ranges are one row longer). Degenerate inputs
/// clamp: zero shards become one, and empty trailing shards are dropped, so
/// every returned range is non-empty unless `len == 0`.
pub fn shard_ranges(len: usize, shards: usize) -> Vec<(usize, usize)> {
    let shards = shards.max(1).min(len.max(1));
    let base = len / shards;
    let rem = len % shards;
    let mut out = Vec::with_capacity(shards);
    let mut start = 0;
    for i in 0..shards {
        let size = base + usize::from(i < rem);
        out.push((start, start + size));
        start += size;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_dedups_and_resolves() {
        let mut t = StrTable::new();
        let a = t.intern("exoclick.com");
        let b = t.intern("pornsite.com");
        let a2 = t.intern("exoclick.com");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(t.resolve(a), "exoclick.com");
        assert_eq!(t.resolve(b), "pornsite.com");
        assert_eq!(t.len(), 2);
        assert_eq!(t.arena_bytes(), "exoclick.com".len() + "pornsite.com".len());
    }

    #[test]
    fn lookup_probes_without_growing() {
        let mut t = StrTable::new();
        let a = t.intern("exoclick.com");
        assert_eq!(t.lookup("exoclick.com"), Some(a));
        assert_eq!(t.lookup("never-interned.com"), None);
        assert_eq!(t.len(), 1, "lookup must not intern");
    }

    #[test]
    fn absorb_merges_distinct_strings() {
        let mut a = StrTable::new();
        a.intern("x.com");
        let mut b = StrTable::new();
        b.intern("x.com");
        b.intern("y.com");
        a.absorb(&b);
        assert_eq!(a.len(), 2);
        let strings: Vec<&str> = a.iter().collect();
        assert_eq!(strings, vec!["x.com", "y.com"]);
    }

    #[test]
    fn shard_ranges_cover_exactly_once() {
        for len in [0usize, 1, 5, 12, 100] {
            for shards in [0usize, 1, 3, 7, 200] {
                let ranges = shard_ranges(len, shards);
                assert!(!ranges.is_empty());
                assert_eq!(ranges.first().unwrap().0, 0);
                assert_eq!(ranges.last().unwrap().1, len);
                for w in ranges.windows(2) {
                    assert_eq!(w[0].1, w[1].0, "contiguous");
                    assert!(w[0].1 > w[0].0 || len == 0, "non-empty");
                }
                if len > 0 {
                    let sizes: Vec<usize> = ranges.iter().map(|(a, b)| b - a).collect();
                    let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
                    assert!(max - min <= 1, "near-equal split: {sizes:?}");
                }
            }
        }
    }
}
