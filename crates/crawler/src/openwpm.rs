//! The OpenWPM-style crawler (paper §3.1).
//!
//! One long-lived browser session per crawl — the study deliberately never
//! restarts the browser between visits so cookie synchronization stays
//! observable — visiting only each site's landing page, recording every
//! HTTP exchange, cookie and instrumented JS call. Visits are attempted
//! HTTPS-first with HTTP downgrade; pages may hit the 120 s timeout.

use redlight_browser::Browser;
use redlight_net::geoip::Country;
use redlight_net::url::Url;
use redlight_websim::server::BrowserKind;
use redlight_websim::World;

use crate::db::{CorpusLabel, CrawlRecord, SiteVisitRecord};

/// Crawl configuration.
#[derive(Debug, Clone)]
pub struct CrawlConfig {
    /// Country.
    pub country: Country,
    /// Corpus.
    pub corpus: CorpusLabel,
    /// Keep the fetched document markup in the DB (needed for consent-banner
    /// and owner analyses; dropped for pure-geo sweeps to save memory).
    pub store_dom: bool,
}

/// The crawler.
pub struct OpenWpmCrawler<'w> {
    world: &'w World,
    config: CrawlConfig,
}

impl<'w> OpenWpmCrawler<'w> {
    /// Creates a crawler for `world` with `config`.
    pub fn new(world: &'w World, config: CrawlConfig) -> Self {
        OpenWpmCrawler { world, config }
    }

    /// Crawls `domains` sequentially in one browser session.
    pub fn crawl(&self, domains: &[String]) -> CrawlRecord {
        let ctx = Browser::context_for(self.world, self.config.country, BrowserKind::OpenWpm);
        let client_ip = ctx.client_ip;
        let mut browser = Browser::new(self.world, ctx);
        let mut visits = Vec::with_capacity(domains.len());
        for domain in domains {
            let Ok(url) = Url::parse(&format!("https://{domain}/")) else {
                continue;
            };
            let mut visit = browser.visit(&url);
            if !self.config.store_dom {
                visit.dom_html = String::new();
            }
            visits.push(SiteVisitRecord {
                domain: domain.clone(),
                visit,
            });
        }
        CrawlRecord {
            country: self.config.country,
            corpus: self.config.corpus,
            client_ip,
            visits,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusCompiler;
    use redlight_websim::WorldConfig;

    #[test]
    fn crawl_visits_all_domains_and_records_failures() {
        let world = World::build(WorldConfig::tiny(7));
        let corpus = CorpusCompiler::new(&world).compile();
        let crawler = OpenWpmCrawler::new(
            &world,
            CrawlConfig {
                country: Country::Spain,
                corpus: CorpusLabel::Porn,
                store_dom: true,
            },
        );
        let crawl = crawler.crawl(&corpus.sanitized);
        assert_eq!(crawl.visits.len(), corpus.sanitized.len());
        // The record carries the Spanish vantage point's public IP.
        let spain_ip = redlight_net::geoip::VantagePoint::study_default()
            .into_iter()
            .find(|v| v.country == Country::Spain)
            .unwrap()
            .client_ip;
        assert_eq!(crawl.client_ip, spain_ip);
        let expected_success = world
            .sites
            .iter()
            .filter(|s| s.is_porn() && !s.unresponsive && !s.openwpm_timeout)
            .count();
        assert_eq!(crawl.success_count(), expected_success);
        // Timeouts show up as timeout-flagged failures.
        let timeouts = crawl.visits.iter().filter(|v| v.visit.timeout).count();
        let expected_timeouts = world
            .sites
            .iter()
            .filter(|s| s.is_porn() && !s.unresponsive && s.openwpm_timeout)
            .count();
        assert_eq!(timeouts, expected_timeouts);
    }

    #[test]
    fn store_dom_flag_prunes_markup() {
        let world = World::build(WorldConfig::tiny(7));
        let corpus = CorpusCompiler::new(&world).compile();
        let slim = OpenWpmCrawler::new(
            &world,
            CrawlConfig {
                country: Country::Usa,
                corpus: CorpusLabel::Porn,
                store_dom: false,
            },
        )
        .crawl(&corpus.sanitized[..4.min(corpus.sanitized.len())]);
        assert!(slim.visits.iter().all(|v| v.visit.dom_html.is_empty()));
        // Requests are still recorded.
        assert!(slim.visits.iter().any(|v| !v.visit.requests.is_empty()));
    }
}
