//! The OpenWPM-style crawler (paper §3.1).
//!
//! One long-lived browser session per crawl — the study deliberately never
//! restarts the browser between visits so cookie synchronization stays
//! observable — visiting only each site's landing page, recording every
//! HTTP exchange, cookie and instrumented JS call. Visits are attempted
//! HTTPS-first with HTTP downgrade; pages may hit the 120 s timeout.
//!
//! The session fetches through a [`Transport`] stack assembled from the
//! crawl's [`NetProfile`]: the direct in-process server by default,
//! optionally wrapped in metering and deterministic fault-injection
//! decorators. Failed document loads are retried up to the profile's
//! [`RetryPolicy`](redlight_net::transport::RetryPolicy) budget, with the
//! attempt count and per-site wall time recorded on every
//! [`SiteVisitRecord`].
//!
//! When the profile carries a [`SimSpec`](redlight_net::transport::SimSpec)
//! the stack is rehosted on a simulated clock ([`SimTransport`]): visit
//! walls become logical time, and retry backoff is *consumed* on that
//! clock — the crawl asserts the recorded schedule equals the elapsed
//! logical time, closing the recorded-only gap of the legacy path.

use std::time::Instant;

use redlight_browser::Browser;
use redlight_net::geoip::Country;
use redlight_net::transport::{BrowserKind, NetProfile, Transport, TransportMeter, TransportStats};
use redlight_net::url::Url;
use redlight_obs::{Registry, Trace, Tracer};
use redlight_sim::{SimHandle, SimTransport};
use redlight_websim::server::WebServer;
use redlight_websim::World;

use crate::db::{CorpusLabel, CrawlRecord};

/// Sites per `visits.NNN` batch span in the crawl journal.
pub const VISIT_BATCH: usize = 25;

/// Crawl configuration.
#[derive(Debug, Clone)]
pub struct CrawlConfig {
    /// Country.
    pub country: Country,
    /// Corpus.
    pub corpus: CorpusLabel,
    /// Keep the fetched document markup in the DB (needed for consent-banner
    /// and owner analyses; dropped for pure-geo sweeps to save memory).
    pub store_dom: bool,
}

/// The crawler.
pub struct OpenWpmCrawler<'w> {
    world: &'w World,
    config: CrawlConfig,
    net: NetProfile,
}

impl<'w> OpenWpmCrawler<'w> {
    /// Creates a crawler for `world` with `config` over a default (healthy,
    /// metered, no-retry) network.
    pub fn new(world: &'w World, config: CrawlConfig) -> Self {
        OpenWpmCrawler {
            world,
            config,
            net: NetProfile::default(),
        }
    }

    /// Replaces the network profile the crawl runs over.
    pub fn with_net(mut self, net: NetProfile) -> Self {
        self.net = net;
        self
    }

    /// Crawls `domains` sequentially in one browser session.
    pub fn crawl(&self, domains: &[String]) -> CrawlRecord {
        self.crawl_metered(domains).0
    }

    /// Like [`crawl`](Self::crawl), but also returns the transport-layer
    /// counters when the profile meters (`None` on bare stacks).
    pub fn crawl_metered(&self, domains: &[String]) -> (CrawlRecord, Option<TransportStats>) {
        let trace = Trace::disabled();
        let mut tracer = trace.tracer("crawl");
        self.crawl_observed(domains, &mut tracer, &Registry::new())
    }

    /// [`crawl_metered`](Self::crawl_metered) with telemetry: the crawl
    /// records a `crawl.openwpm.<country>.<corpus>` span with one
    /// `visits.NNN` child per [`VISIT_BATCH`] sites into `tracer`, and
    /// publishes `transport.*` counters, `transport.retries`,
    /// `crawl.failed_visits` and the `crawl.attempts` /
    /// `crawl.requests_per_visit` histograms into `registry`. Crawl
    /// results are byte-identical to the unobserved path.
    pub fn crawl_observed(
        &self,
        domains: &[String],
        tracer: &mut Tracer,
        registry: &Registry,
    ) -> (CrawlRecord, Option<TransportStats>) {
        let ctx = Browser::context_for(self.world, self.config.country, BrowserKind::OpenWpm);
        let client_ip = ctx.client_ip;
        let meter = TransportMeter::in_registry(registry);
        let transport = self
            .net
            .stack_in(WebServer::new(self.world), &meter, registry);
        // Under a sim profile the whole stack is rehosted on the logical
        // clock: outcomes are unchanged, but every fetch, fault stall and
        // retry backoff consumes simulated time.
        let sim = self.net.sim.map(SimHandle::new);
        let transport: Box<dyn Transport + '_> = match &sim {
            Some(handle) => Box::new(SimTransport::new(transport, handle.clone())),
            None => transport,
        };
        let mut browser = Browser::with_transport(transport, ctx);

        let retries = registry.counter("transport.retries");
        let failed_visits = registry.counter("crawl.failed_visits");
        let attempts_hist = registry.histogram("crawl.attempts");
        let requests_hist = registry.histogram("crawl.requests_per_visit");

        tracer.open(&format!(
            "crawl.openwpm.{}.{}",
            self.config.country.code().to_ascii_lowercase(),
            corpus_slug(self.config.corpus),
        ));
        tracer.attr("sites", domains.len());
        tracer.attr("store_dom", self.config.store_dom);

        let mut record = CrawlRecord::new(self.config.country, self.config.corpus, client_ip);
        record.visits.reserve(domains.len());
        for (batch_idx, batch) in domains.chunks(VISIT_BATCH).enumerate() {
            tracer.open(&format!("visits.{batch_idx:03}"));
            let mut batch_attempts = 0u64;
            let mut batch_failures = 0u64;
            for domain in batch {
                let started = Instant::now();
                let sim_mark = sim.as_ref().map(|h| (h.now(), h.backoff_consumed()));
                let wall = |attempts_done: u32| match (&sim, sim_mark) {
                    // Logical wall: fetches + backoff since the visit began.
                    // The recorded backoff schedule must equal the logical
                    // time the retries actually consumed — the sim clock
                    // closes the old recorded-only gap, so enforce it.
                    (Some(h), Some((t0, b0))) => {
                        assert_eq!(
                            h.backoff_consumed() - b0,
                            self.net.retry.total_backoff(attempts_done),
                            "recorded backoff must equal logical time consumed"
                        );
                        h.now() - t0
                    }
                    _ => started.elapsed(),
                };
                let Ok(url) = Url::parse(&format!("https://{domain}/")) else {
                    // A corpus entry that never parses still costs a visit
                    // slot: dropping it here would silently shrink the crawl
                    // and skew every per-corpus denominator downstream.
                    record.push_visit_with(domain, unparsable_visit(), 0, wall(0));
                    attempts_hist.record(0);
                    requests_hist.record(0);
                    failed_visits.inc();
                    batch_failures += 1;
                    continue;
                };
                let mut attempts = 1u32;
                let mut visit = browser.visit(&url);
                while !visit.success && attempts < self.net.retry.max_attempts {
                    attempts += 1;
                    if let Some(handle) = &sim {
                        handle.consume_backoff(self.net.retry.backoff_before(attempts));
                    }
                    visit = browser.visit(&url);
                }
                retries.add(attempts.saturating_sub(1) as u64);
                attempts_hist.record(attempts as u64);
                requests_hist.record(visit.requests.len() as u64);
                batch_attempts += attempts as u64;
                if !visit.success {
                    failed_visits.inc();
                    batch_failures += 1;
                }
                if !self.config.store_dom {
                    visit.dom_html = String::new();
                }
                record.push_visit_with(domain, visit, attempts, wall(attempts));
            }
            tracer.attr("sites", batch.len());
            tracer.attr("attempts", batch_attempts);
            tracer.attr("failures", batch_failures);
            tracer.close();
        }
        tracer.close();

        let stats = self.net.metered.then(|| meter.snapshot());
        (record, stats)
    }
}

/// Lower-case label for span/metric names.
pub(crate) fn corpus_slug(corpus: CorpusLabel) -> &'static str {
    match corpus {
        CorpusLabel::Porn => "porn",
        CorpusLabel::Regular => "regular",
    }
}

/// The failed-visit placeholder for corpus entries that are not valid
/// hostnames (`invalid.` is the RFC 2606 reserved TLD, so the sentinel can
/// never collide with a generated site).
fn unparsable_visit() -> redlight_browser::PageVisit {
    redlight_browser::PageVisit::failed(
        Url::parse("https://invalid.invalid/").expect("static sentinel URL"),
        false,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusCompiler;
    use redlight_websim::WorldConfig;

    #[test]
    fn crawl_visits_all_domains_and_records_failures() {
        let world = World::build(WorldConfig::tiny(7));
        let corpus = CorpusCompiler::new(&world).compile();
        let crawler = OpenWpmCrawler::new(
            &world,
            CrawlConfig {
                country: Country::Spain,
                corpus: CorpusLabel::Porn,
                store_dom: true,
            },
        );
        let crawl = crawler.crawl(&corpus.sanitized);
        assert_eq!(crawl.visits.len(), corpus.sanitized.len());
        // The record carries the Spanish vantage point's public IP.
        let spain_ip = redlight_net::geoip::VantagePoint::study_default()
            .into_iter()
            .find(|v| v.country == Country::Spain)
            .unwrap()
            .client_ip;
        assert_eq!(crawl.client_ip, spain_ip);
        let expected_success = world
            .sites
            .iter()
            .filter(|s| s.is_porn() && !s.unresponsive && !s.openwpm_timeout)
            .count();
        assert_eq!(crawl.success_count(), expected_success);
        // Timeouts show up as timeout-flagged failures.
        let timeouts = crawl.visits.iter().filter(|v| v.visit.timeout).count();
        let expected_timeouts = world
            .sites
            .iter()
            .filter(|s| s.is_porn() && !s.unresponsive && s.openwpm_timeout)
            .count();
        assert_eq!(timeouts, expected_timeouts);
        // Without a retry budget every visit spends exactly one attempt.
        assert!(crawl.visits.iter().all(|v| v.attempts == 1));
        assert_eq!(crawl.total_retries(), 0);
    }

    #[test]
    fn malformed_domains_become_failed_visits_not_gaps() {
        let world = World::build(WorldConfig::tiny(7));
        let domains = vec![
            "not a hostname".to_string(),
            world
                .sites
                .iter()
                .find(|s| s.is_porn() && !s.unresponsive && !s.openwpm_timeout)
                .unwrap()
                .domain
                .clone(),
        ];
        let crawl = OpenWpmCrawler::new(
            &world,
            CrawlConfig {
                country: Country::Spain,
                corpus: CorpusLabel::Porn,
                store_dom: false,
            },
        )
        .crawl(&domains);
        // Visit counts always equal corpus size, malformed entries included.
        assert_eq!(crawl.visits.len(), domains.len());
        let bad = &crawl.visits[0];
        assert_eq!(crawl.name(bad.domain), "not a hostname");
        assert!(!bad.visit.success);
        assert_eq!(bad.attempts, 0, "nothing was ever fetched");
        assert!(crawl.visits[1].visit.success);
        assert_eq!(crawl.failure_count(), 1);
    }

    #[test]
    fn store_dom_flag_prunes_markup() {
        let world = World::build(WorldConfig::tiny(7));
        let corpus = CorpusCompiler::new(&world).compile();
        let slim = OpenWpmCrawler::new(
            &world,
            CrawlConfig {
                country: Country::Usa,
                corpus: CorpusLabel::Porn,
                store_dom: false,
            },
        )
        .crawl(&corpus.sanitized[..4.min(corpus.sanitized.len())]);
        assert!(slim.visits.iter().all(|v| v.visit.dom_html.is_empty()));
        // Requests are still recorded.
        assert!(slim.visits.iter().any(|v| !v.visit.requests.is_empty()));
    }
}
