//! Semi-supervised corpus compilation (paper §3).
//!
//! Three sources with decreasing precision:
//!
//! 1. the specialized porn directories (342 sites in the paper);
//! 2. the Alexa categorization service's *Adult* category (22 sites);
//! 3. keyword search over every domain indexed by the 2018 Alexa top-1M
//!    (`porn`, `tube`, `sex`, `gay`, `lesbian`, `mature`, `xxx` — 7,735
//!    matches).
//!
//! The keyword source introduces false positives (PornTube is porn, YouTube
//! is not), so each candidate is crawled (DOM + screenshot) and manually
//! inspected — here, by the [`InspectionOracle`] standing in for the
//! authors' manual review. Unresponsive candidates are removed too.

use redlight_browser::Browser;
use redlight_net::geoip::Country;
use redlight_net::url::Url;
use redlight_rankings::category::Category;
use redlight_websim::oracle::InspectionOracle;
use redlight_websim::server::{BrowserKind, ClientContext};
use redlight_websim::sitegen::domain_has_keyword;
use redlight_websim::World;

/// Result of corpus compilation.
#[derive(Debug, Clone)]
pub struct CorpusReport {
    /// Domains from the directory aggregators (source 1).
    pub from_directories: Vec<String>,
    /// Domains from the Adult category (source 2).
    pub from_adult_category: Vec<String>,
    /// Domains matching the keyword bag in the top-1M (source 3).
    pub from_keywords: Vec<String>,
    /// Union of all sources.
    pub candidates: Vec<String>,
    /// Candidates removed by the sanitization pass.
    pub false_positives: Vec<String>,
    /// The sanitized porn corpus.
    pub sanitized: Vec<String>,
    /// The reference corpus of popular non-porn websites.
    pub reference_regular: Vec<String>,
    /// Manual inspections spent during sanitization.
    pub manual_inspections: usize,
}

/// The compiler.
pub struct CorpusCompiler<'w> {
    world: &'w World,
}

impl<'w> CorpusCompiler<'w> {
    /// Creates a compiler over `world`.
    pub fn new(world: &'w World) -> Self {
        CorpusCompiler { world }
    }

    /// Runs the full §3 pipeline from the Spanish vantage point.
    pub fn compile(&self) -> CorpusReport {
        let from_directories = self.scrape_directories();
        let from_adult_category: Vec<String> = self
            .world
            .category_service
            .domains_in(Category::Adult)
            .into_iter()
            .map(str::to_string)
            .collect();
        let from_keywords = self.keyword_search();

        // Union, preserving source order, deduplicated.
        let mut candidates: Vec<String> = Vec::new();
        for d in from_directories
            .iter()
            .chain(from_adult_category.iter())
            .chain(from_keywords.iter())
        {
            if !candidates.contains(d) {
                candidates.push(d.clone());
            }
        }

        // Sanitization: crawl each candidate, manually inspect the result.
        let oracle = InspectionOracle::new(&self.world.sites);
        let ctx = Browser::context_for(self.world, Country::Spain, BrowserKind::Selenium);
        let mut browser = Browser::new(self.world, ctx);
        let mut sanitized = Vec::new();
        let mut false_positives = Vec::new();
        for domain in &candidates {
            let url = Url::parse(&format!("https://{domain}/")).expect("valid candidate url");
            let visit = browser.visit(&url);
            // Unresponsive sites cannot be verified; responsive ones get a
            // DOM + screenshot and a human (oracle) verdict.
            let keep = visit.success && oracle.is_porn_content(domain);
            if keep {
                sanitized.push(domain.clone());
            } else {
                false_positives.push(domain.clone());
            }
        }

        // Reference corpus: top-10k domains that are neither sanitized porn
        // nor keyword-bearing (§3's 9,688 popular non-porn websites).
        let reference_regular: Vec<String> = self
            .world
            .toplist_domains()
            .into_iter()
            .filter(|(_, best)| *best <= 10_000)
            .map(|(d, _)| d.to_string())
            .filter(|d| !domain_has_keyword(d))
            .filter(|d| !sanitized.contains(d))
            .collect();

        CorpusReport {
            from_directories,
            from_adult_category,
            from_keywords,
            candidates,
            false_positives,
            sanitized,
            reference_regular,
            manual_inspections: oracle.manual_inspections(),
        }
    }

    /// Source 1: crawl the aggregator pages and collect their outlinks.
    fn scrape_directories(&self) -> Vec<String> {
        let ctx = Browser::context_for(self.world, Country::Spain, BrowserKind::Selenium);
        let mut browser = Browser::new(self.world, ctx);
        let mut out = Vec::new();
        for dir in &self.world.directory_domains {
            let url = Url::parse(&format!("https://{dir}/")).expect("directory url");
            let visit = browser.visit(&url);
            if !visit.success {
                continue;
            }
            let doc = redlight_html::parser::parse(&visit.dom_html);
            for (_, href) in redlight_html::query::links(&doc) {
                if let Ok(link) = Url::parse(&href) {
                    let host = link.host().as_str().to_string();
                    if !out.contains(&host) {
                        out.push(host);
                    }
                }
            }
        }
        out
    }

    /// Source 3: keyword search over every domain the toplist indexed
    /// during 2018.
    fn keyword_search(&self) -> Vec<String> {
        self.world
            .toplist_domains()
            .into_iter()
            .map(|(d, _)| d.to_string())
            .filter(|d| domain_has_keyword(d))
            .collect()
    }
}

/// Convenience for the client context used by corpus crawls.
pub fn spain_selenium(world: &World) -> ClientContext {
    Browser::context_for(world, Country::Spain, BrowserKind::Selenium)
}

#[cfg(test)]
mod tests {
    use super::*;
    use redlight_websim::WorldConfig;

    #[test]
    fn corpus_counts_match_the_config() {
        let config = WorldConfig::tiny(101);
        let world = World::build(config.clone());
        let report = CorpusCompiler::new(&world).compile();

        assert_eq!(
            report.candidates.len(),
            config.candidate_count(),
            "directories {} + category {} + keywords {}",
            report.from_directories.len(),
            report.from_adult_category.len(),
            report.from_keywords.len(),
        );
        assert_eq!(report.from_adult_category.len(), config.n_alexa_adult_porn);
        assert_eq!(report.false_positives.len(), config.n_false_positives);
        assert_eq!(report.sanitized.len(), config.sanitized_count());
        // Sanitization inspected responsive candidates only, one query each.
        assert!(report.manual_inspections <= config.candidate_count());
    }

    #[test]
    fn sources_are_disjoint_and_keyworded_correctly() {
        let world = World::build(WorldConfig::tiny(102));
        let report = CorpusCompiler::new(&world).compile();
        for d in &report.from_keywords {
            assert!(domain_has_keyword(d), "{d}");
        }
        for d in &report.from_directories {
            assert!(
                !domain_has_keyword(d),
                "directory sites are brand-named: {d}"
            );
        }
        for d in &report.from_directories {
            assert!(!report.from_adult_category.contains(d));
        }
    }

    #[test]
    fn reference_corpus_is_popular_and_clean() {
        let world = World::build(WorldConfig::tiny(103));
        let report = CorpusCompiler::new(&world).compile();
        assert!(!report.reference_regular.is_empty());
        for d in &report.reference_regular {
            assert!(!domain_has_keyword(d));
            assert!(!report.sanitized.contains(d));
        }
    }

    #[test]
    fn ground_truth_agreement() {
        // The compiled corpus must equal the set of responsive porn sites.
        let world = World::build(WorldConfig::tiny(104));
        let report = CorpusCompiler::new(&world).compile();
        let truth: Vec<&str> = world
            .sites
            .iter()
            .filter(|s| s.is_porn() && !s.unresponsive)
            .map(|s| s.domain.as_str())
            .collect();
        assert_eq!(report.sanitized.len(), truth.len());
        for d in &report.sanitized {
            assert!(truth.contains(&d.as_str()), "{d} not ground-truth porn");
        }
    }
}
