//! Parallel crawl execution.
//!
//! Crawls are independent browser sessions, so they parallelize cleanly
//! across a crossbeam scoped-thread pool; **within** one crawl the visits
//! stay sequential because the paper keeps a single browser session alive to
//! observe cookie syncing (§3.1). Two job shapes exist: [`CrawlJob`] for
//! OpenWPM-style sweeps (heterogeneous country × corpus × store-DOM
//! configurations) and [`InteractionJob`] for Selenium-style interaction
//! crawls. Both report per-job wall times for the stage report.

use std::time::{Duration, Instant};

use redlight_net::geoip::Country;
use redlight_websim::World;

use crate::db::{CorpusLabel, CrawlRecord, InteractionRecord};
use crate::openwpm::{CrawlConfig, OpenWpmCrawler};
use crate::selenium::SeleniumCrawler;

/// One OpenWPM-style crawl job: a full crawler configuration plus the
/// domain list it sweeps.
#[derive(Debug, Clone)]
pub struct CrawlJob<'d> {
    /// Crawler configuration.
    pub config: CrawlConfig,
    /// Domains to sweep.
    pub domains: &'d [String],
}

/// Runs heterogeneous OpenWPM-style crawl jobs concurrently, returning each
/// record with its wall time, in job order.
pub fn run_crawl_jobs(world: &World, jobs: &[CrawlJob<'_>]) -> Vec<(CrawlRecord, Duration)> {
    let mut slots: Vec<Option<(CrawlRecord, Duration)>> = Vec::new();
    slots.resize_with(jobs.len(), || None);

    crossbeam::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (i, job) in jobs.iter().enumerate() {
            handles.push((
                i,
                scope.spawn(move |_| {
                    let start = Instant::now();
                    let record = OpenWpmCrawler::new(world, job.config.clone()).crawl(job.domains);
                    (record, start.elapsed())
                }),
            ));
        }
        for (i, handle) in handles {
            slots[i] = Some(handle.join().expect("crawl thread panicked"));
        }
    })
    .expect("crossbeam scope");

    slots.into_iter().map(|s| s.expect("filled")).collect()
}

/// One Selenium-style interaction crawl job.
#[derive(Debug, Clone)]
pub struct InteractionJob<'d> {
    /// Vantage point.
    pub country: Country,
    /// Domains to interact with.
    pub domains: &'d [String],
}

/// Runs interaction crawl jobs concurrently, returning each country's
/// records with the job's wall time, in job order.
pub fn run_interaction_jobs(
    world: &World,
    jobs: &[InteractionJob<'_>],
) -> Vec<(Vec<InteractionRecord>, Duration)> {
    let mut slots: Vec<Option<(Vec<InteractionRecord>, Duration)>> = Vec::new();
    slots.resize_with(jobs.len(), || None);

    crossbeam::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (i, job) in jobs.iter().enumerate() {
            handles.push((
                i,
                scope.spawn(move |_| {
                    let start = Instant::now();
                    let records = SeleniumCrawler::new(world, job.country).crawl(job.domains);
                    (records, start.elapsed())
                }),
            ));
        }
        for (i, handle) in handles {
            slots[i] = Some(handle.join().expect("interaction thread panicked"));
        }
    })
    .expect("crossbeam scope");

    slots.into_iter().map(|s| s.expect("filled")).collect()
}

/// Runs one OpenWPM-style crawl per country concurrently, returning the
/// records in `countries` order.
///
/// `store_dom_for` limits DOM retention to the countries whose crawls feed
/// DOM-level analyses (consent banners need Spain + USA).
pub fn crawl_countries(
    world: &World,
    domains: &[String],
    countries: &[Country],
    corpus: CorpusLabel,
    store_dom_for: &[Country],
) -> Vec<CrawlRecord> {
    let jobs: Vec<CrawlJob<'_>> = countries
        .iter()
        .map(|&country| CrawlJob {
            config: CrawlConfig {
                country,
                corpus,
                store_dom: store_dom_for.contains(&country),
            },
            domains,
        })
        .collect();
    run_crawl_jobs(world, &jobs)
        .into_iter()
        .map(|(record, _)| record)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusCompiler;
    use redlight_websim::WorldConfig;

    #[test]
    fn parallel_crawls_match_sequential() {
        let world = World::build(WorldConfig::tiny(61));
        let corpus = CorpusCompiler::new(&world).compile();
        let domains: Vec<String> = corpus.sanitized.iter().take(12).cloned().collect();
        let countries = [Country::Spain, Country::Usa, Country::Russia];

        let parallel = crawl_countries(
            &world,
            &domains,
            &countries,
            CorpusLabel::Porn,
            &[Country::Spain],
        );
        assert_eq!(parallel.len(), 3);
        assert_eq!(parallel[0].country, Country::Spain);

        // Sequential rerun of one country must agree request-for-request.
        let sequential = OpenWpmCrawler::new(
            &world,
            CrawlConfig {
                country: Country::Usa,
                corpus: CorpusLabel::Porn,
                store_dom: false,
            },
        )
        .crawl(&domains);
        let par_usa = &parallel[1];
        assert_eq!(par_usa.visits.len(), sequential.visits.len());
        for (a, b) in par_usa.visits.iter().zip(&sequential.visits) {
            assert_eq!(a.domain, b.domain);
            assert_eq!(a.visit.requests.len(), b.visit.requests.len());
            assert_eq!(a.visit.success, b.visit.success);
        }
    }

    #[test]
    fn dom_retention_respects_country_list() {
        let world = World::build(WorldConfig::tiny(62));
        let corpus = CorpusCompiler::new(&world).compile();
        let domains: Vec<String> = corpus.sanitized.iter().take(6).cloned().collect();
        let records = crawl_countries(
            &world,
            &domains,
            &[Country::Spain, Country::India],
            CorpusLabel::Porn,
            &[Country::Spain],
        );
        assert!(records[0]
            .visits
            .iter()
            .any(|v| !v.visit.dom_html.is_empty()));
        assert!(records[1]
            .visits
            .iter()
            .all(|v| v.visit.dom_html.is_empty()));
    }

    #[test]
    fn heterogeneous_jobs_keep_order_and_report_timings() {
        let world = World::build(WorldConfig::tiny(63));
        let corpus = CorpusCompiler::new(&world).compile();
        let porn: Vec<String> = corpus.sanitized.iter().take(5).cloned().collect();
        let regular: Vec<String> = corpus.reference_regular.iter().take(5).cloned().collect();

        let jobs = [
            CrawlJob {
                config: CrawlConfig {
                    country: Country::Spain,
                    corpus: CorpusLabel::Porn,
                    store_dom: true,
                },
                domains: &porn,
            },
            CrawlJob {
                config: CrawlConfig {
                    country: Country::Spain,
                    corpus: CorpusLabel::Regular,
                    store_dom: false,
                },
                domains: &regular,
            },
        ];
        let results = run_crawl_jobs(&world, &jobs);
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].0.corpus, CorpusLabel::Porn);
        assert_eq!(results[1].0.corpus, CorpusLabel::Regular);
        assert_eq!(results[0].0.visits.len(), porn.len());
        assert_eq!(results[1].0.visits.len(), regular.len());
        assert!(results.iter().all(|(_, wall)| *wall > Duration::ZERO));

        let interactions = run_interaction_jobs(
            &world,
            &[InteractionJob {
                country: Country::Usa,
                domains: &porn,
            }],
        );
        assert_eq!(interactions.len(), 1);
        assert_eq!(interactions[0].0.len(), porn.len());
        assert!(interactions[0].0.iter().all(|r| r.country == Country::Usa));
    }
}
