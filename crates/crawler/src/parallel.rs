//! Parallel per-country crawling.
//!
//! Countries are independent browser sessions, so they parallelize cleanly
//! across a crossbeam scoped-thread pool; **within** one country the visits
//! stay sequential because the paper keeps a single browser session alive to
//! observe cookie syncing (§3.1).

use redlight_net::geoip::Country;
use redlight_websim::World;

use crate::db::{CorpusLabel, CrawlRecord};
use crate::openwpm::{CrawlConfig, OpenWpmCrawler};

/// Runs one OpenWPM-style crawl per country concurrently, returning the
/// records in `countries` order.
///
/// `store_dom_for` limits DOM retention to the countries whose crawls feed
/// DOM-level analyses (consent banners need Spain + USA).
pub fn crawl_countries(
    world: &World,
    domains: &[String],
    countries: &[Country],
    corpus: CorpusLabel,
    store_dom_for: &[Country],
) -> Vec<CrawlRecord> {
    let mut slots: Vec<Option<CrawlRecord>> = Vec::new();
    slots.resize_with(countries.len(), || None);

    crossbeam::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (i, &country) in countries.iter().enumerate() {
            let store_dom = store_dom_for.contains(&country);
            handles.push((
                i,
                scope.spawn(move |_| {
                    OpenWpmCrawler::new(
                        world,
                        CrawlConfig {
                            country,
                            corpus,
                            store_dom,
                        },
                    )
                    .crawl(domains)
                }),
            ));
        }
        for (i, handle) in handles {
            slots[i] = Some(handle.join().expect("crawl thread panicked"));
        }
    })
    .expect("crossbeam scope");

    slots.into_iter().map(|s| s.expect("filled")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusCompiler;
    use redlight_websim::WorldConfig;

    #[test]
    fn parallel_crawls_match_sequential() {
        let world = World::build(WorldConfig::tiny(61));
        let corpus = CorpusCompiler::new(&world).compile();
        let domains: Vec<String> = corpus.sanitized.iter().take(12).cloned().collect();
        let countries = [Country::Spain, Country::Usa, Country::Russia];

        let parallel = crawl_countries(
            &world,
            &domains,
            &countries,
            CorpusLabel::Porn,
            &[Country::Spain],
        );
        assert_eq!(parallel.len(), 3);
        assert_eq!(parallel[0].country, Country::Spain);

        // Sequential rerun of one country must agree request-for-request.
        let sequential = OpenWpmCrawler::new(
            &world,
            CrawlConfig {
                country: Country::Usa,
                corpus: CorpusLabel::Porn,
                store_dom: false,
            },
        )
        .crawl(&domains);
        let par_usa = &parallel[1];
        assert_eq!(par_usa.visits.len(), sequential.visits.len());
        for (a, b) in par_usa.visits.iter().zip(&sequential.visits) {
            assert_eq!(a.domain, b.domain);
            assert_eq!(a.visit.requests.len(), b.visit.requests.len());
            assert_eq!(a.visit.success, b.visit.success);
        }
    }

    #[test]
    fn dom_retention_respects_country_list() {
        let world = World::build(WorldConfig::tiny(62));
        let corpus = CorpusCompiler::new(&world).compile();
        let domains: Vec<String> = corpus.sanitized.iter().take(6).cloned().collect();
        let records = crawl_countries(
            &world,
            &domains,
            &[Country::Spain, Country::India],
            CorpusLabel::Porn,
            &[Country::Spain],
        );
        assert!(records[0]
            .visits
            .iter()
            .any(|v| !v.visit.dom_html.is_empty()));
        assert!(records[1]
            .visits
            .iter()
            .all(|v| v.visit.dom_html.is_empty()));
    }
}
