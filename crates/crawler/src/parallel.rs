//! Parallel crawl execution.
//!
//! Crawls are independent browser sessions, so they parallelize cleanly
//! across a crossbeam scoped-thread pool; **within** one crawl the visits
//! stay sequential because the paper keeps a single browser session alive to
//! observe cookie syncing (§3.1) — which also keeps each session's transport
//! stack (meters, fault injectors) deterministic regardless of thread
//! interleaving. Two job shapes exist: [`CrawlJob`] for OpenWPM-style sweeps
//! (heterogeneous country × corpus × store-DOM configurations) and
//! [`InteractionJob`] for Selenium-style interaction crawls. Both report
//! per-job wall times and transport counters for the stage report.

use std::time::{Duration, Instant};

use redlight_net::geoip::Country;
use redlight_net::transport::{NetProfile, TransportStats};
use redlight_obs::{Registry, SpanLink, Trace};
use redlight_websim::World;

use crate::db::{CorpusLabel, CrawlRecord, InteractionRecord};
use crate::openwpm::{corpus_slug, CrawlConfig, OpenWpmCrawler};
use crate::selenium::SeleniumCrawler;

/// The telemetry plumbing a batch of crawl jobs records into: each worker
/// gets its own tracer shard (named by job index, so shard names — and the
/// merged journal — never depend on thread scheduling) and its own scratch
/// [`Registry`], whose snapshot is absorbed into `metrics` in job order
/// after the pool joins.
#[derive(Debug, Clone)]
pub struct CrawlObs {
    /// Span collector shared with the study.
    pub trace: Trace,
    /// Study-wide registry worker snapshots fold into.
    pub metrics: Registry,
    /// Span the per-crawl shards hang under (the study's `collect` span).
    pub parent: Option<SpanLink>,
}

impl CrawlObs {
    /// The no-op plumbing the unobserved entry points run with.
    pub fn disabled() -> Self {
        CrawlObs {
            trace: Trace::disabled(),
            metrics: Registry::new(),
            parent: None,
        }
    }
}

/// One OpenWPM-style crawl job: a full crawler configuration plus the
/// domain list it sweeps and the network it runs over.
#[derive(Debug, Clone)]
pub struct CrawlJob<'d> {
    /// Crawler configuration.
    pub config: CrawlConfig,
    /// Domains to sweep.
    pub domains: &'d [String],
    /// Network profile (transport stack + retry policy).
    pub net: NetProfile,
}

/// One executed job's output with its instrumentation.
#[derive(Debug)]
pub struct JobOutcome<R> {
    /// The crawl's records.
    pub output: R,
    /// Wall-clock duration of the whole job.
    pub wall: Duration,
    /// Transport counters, when the job's profile meters.
    pub transport: Option<TransportStats>,
    /// Document-load attempts across the job's sites.
    pub attempts: u64,
    /// Attempts beyond each site's first.
    pub retries: u64,
    /// Sites whose document never loaded (interaction jobs: unreachable
    /// sites).
    pub failures: u64,
}

/// Runs heterogeneous OpenWPM-style crawl jobs concurrently, returning each
/// record with its instrumentation, in job order.
pub fn run_crawl_jobs(world: &World, jobs: &[CrawlJob<'_>]) -> Vec<JobOutcome<CrawlRecord>> {
    run_crawl_jobs_observed(world, jobs, &CrawlObs::disabled())
}

/// [`run_crawl_jobs`] with telemetry: worker `i` records into the
/// `collect/openwpm.II.<country>.<corpus>` shard and a scratch registry;
/// scratch snapshots are absorbed into `obs.metrics` in job order, so the
/// study-wide counters are deterministic for a given plan and seed.
pub fn run_crawl_jobs_observed(
    world: &World,
    jobs: &[CrawlJob<'_>],
    obs: &CrawlObs,
) -> Vec<JobOutcome<CrawlRecord>> {
    let mut slots: Vec<Option<(JobOutcome<CrawlRecord>, redlight_obs::MetricsSnapshot)>> =
        Vec::new();
    slots.resize_with(jobs.len(), || None);

    crossbeam::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (i, job) in jobs.iter().enumerate() {
            handles.push((
                i,
                scope.spawn(move |_| {
                    let shard = format!(
                        "collect/openwpm.{i:02}.{}.{}",
                        job.config.country.code().to_ascii_lowercase(),
                        corpus_slug(job.config.corpus),
                    );
                    let mut tracer = match obs.parent.clone() {
                        Some(parent) => obs.trace.tracer_under(&shard, parent),
                        None => obs.trace.tracer(&shard),
                    };
                    let registry = Registry::new();
                    let start = Instant::now();
                    let (record, transport) = OpenWpmCrawler::new(world, job.config.clone())
                        .with_net(job.net.clone())
                        .crawl_observed(job.domains, &mut tracer, &registry);
                    tracer.finish();
                    // One pass over the visit column for all three totals.
                    let rollup = record.rollup();
                    let outcome = JobOutcome {
                        wall: start.elapsed(),
                        transport,
                        attempts: rollup.attempts,
                        retries: rollup.retries,
                        failures: rollup.failures,
                        output: record,
                    };
                    (outcome, registry.snapshot())
                }),
            ));
        }
        for (i, handle) in handles {
            slots[i] = Some(handle.join().expect("crawl thread panicked"));
        }
    })
    .expect("crossbeam scope");

    slots
        .into_iter()
        .map(|s| {
            let (outcome, snapshot) = s.expect("filled");
            obs.metrics.absorb(&snapshot);
            outcome
        })
        .collect()
}

/// One Selenium-style interaction crawl job.
#[derive(Debug, Clone)]
pub struct InteractionJob<'d> {
    /// Vantage point.
    pub country: Country,
    /// Domains to interact with.
    pub domains: &'d [String],
    /// Network profile (transport stack + retry policy).
    pub net: NetProfile,
}

/// Runs interaction crawl jobs concurrently, returning each country's
/// records with the job's instrumentation, in job order.
pub fn run_interaction_jobs(
    world: &World,
    jobs: &[InteractionJob<'_>],
) -> Vec<JobOutcome<Vec<InteractionRecord>>> {
    run_interaction_jobs_observed(world, jobs, &CrawlObs::disabled())
}

/// [`run_interaction_jobs`] with telemetry: worker `i` records into the
/// `collect/selenium.II.<country>` shard; scratch registries are absorbed
/// in job order, exactly like [`run_crawl_jobs_observed`].
pub fn run_interaction_jobs_observed(
    world: &World,
    jobs: &[InteractionJob<'_>],
    obs: &CrawlObs,
) -> Vec<JobOutcome<Vec<InteractionRecord>>> {
    let mut slots: Vec<
        Option<(
            JobOutcome<Vec<InteractionRecord>>,
            redlight_obs::MetricsSnapshot,
        )>,
    > = Vec::new();
    slots.resize_with(jobs.len(), || None);

    crossbeam::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (i, job) in jobs.iter().enumerate() {
            handles.push((
                i,
                scope.spawn(move |_| {
                    let shard = format!(
                        "collect/selenium.{i:02}.{}",
                        job.country.code().to_ascii_lowercase()
                    );
                    let mut tracer = match obs.parent.clone() {
                        Some(parent) => obs.trace.tracer_under(&shard, parent),
                        None => obs.trace.tracer(&shard),
                    };
                    let registry = Registry::new();
                    let start = Instant::now();
                    let crawl = SeleniumCrawler::new(world, job.country)
                        .with_net(job.net.clone())
                        .crawl_observed(job.domains, &mut tracer, &registry);
                    tracer.finish();
                    let outcome = JobOutcome {
                        wall: start.elapsed(),
                        transport: crawl.transport,
                        attempts: crawl.attempts,
                        retries: crawl.retries,
                        failures: crawl.records.iter().filter(|r| !r.reachable).count() as u64,
                        output: crawl.records,
                    };
                    (outcome, registry.snapshot())
                }),
            ));
        }
        for (i, handle) in handles {
            slots[i] = Some(handle.join().expect("interaction thread panicked"));
        }
    })
    .expect("crossbeam scope");

    slots
        .into_iter()
        .map(|s| {
            let (outcome, snapshot) = s.expect("filled");
            obs.metrics.absorb(&snapshot);
            outcome
        })
        .collect()
}

/// Runs one OpenWPM-style crawl per country concurrently over a default
/// network, returning the records in `countries` order.
///
/// `store_dom_for` limits DOM retention to the countries whose crawls feed
/// DOM-level analyses (consent banners need Spain + USA).
pub fn crawl_countries(
    world: &World,
    domains: &[String],
    countries: &[Country],
    corpus: CorpusLabel,
    store_dom_for: &[Country],
) -> Vec<CrawlRecord> {
    let jobs: Vec<CrawlJob<'_>> = countries
        .iter()
        .map(|&country| CrawlJob {
            config: CrawlConfig {
                country,
                corpus,
                store_dom: store_dom_for.contains(&country),
            },
            domains,
            net: NetProfile::default(),
        })
        .collect();
    run_crawl_jobs(world, &jobs)
        .into_iter()
        .map(|job| job.output)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusCompiler;
    use redlight_websim::WorldConfig;

    #[test]
    fn parallel_crawls_match_sequential() {
        let world = World::build(WorldConfig::tiny(61));
        let corpus = CorpusCompiler::new(&world).compile();
        let domains: Vec<String> = corpus.sanitized.iter().take(12).cloned().collect();
        let countries = [Country::Spain, Country::Usa, Country::Russia];

        let parallel = crawl_countries(
            &world,
            &domains,
            &countries,
            CorpusLabel::Porn,
            &[Country::Spain],
        );
        assert_eq!(parallel.len(), 3);
        assert_eq!(parallel[0].country, Country::Spain);

        // Sequential rerun of one country must agree request-for-request.
        let sequential = OpenWpmCrawler::new(
            &world,
            CrawlConfig {
                country: Country::Usa,
                corpus: CorpusLabel::Porn,
                store_dom: false,
            },
        )
        .crawl(&domains);
        let par_usa = &parallel[1];
        assert_eq!(par_usa.visits.len(), sequential.visits.len());
        for (a, b) in par_usa.visits.iter().zip(&sequential.visits) {
            assert_eq!(a.domain, b.domain);
            assert_eq!(a.visit.requests.len(), b.visit.requests.len());
            assert_eq!(a.visit.success, b.visit.success);
        }
    }

    #[test]
    fn dom_retention_respects_country_list() {
        let world = World::build(WorldConfig::tiny(62));
        let corpus = CorpusCompiler::new(&world).compile();
        let domains: Vec<String> = corpus.sanitized.iter().take(6).cloned().collect();
        let records = crawl_countries(
            &world,
            &domains,
            &[Country::Spain, Country::India],
            CorpusLabel::Porn,
            &[Country::Spain],
        );
        assert!(records[0]
            .visits
            .iter()
            .any(|v| !v.visit.dom_html.is_empty()));
        assert!(records[1]
            .visits
            .iter()
            .all(|v| v.visit.dom_html.is_empty()));
    }

    #[test]
    fn heterogeneous_jobs_keep_order_and_report_timings() {
        let world = World::build(WorldConfig::tiny(63));
        let corpus = CorpusCompiler::new(&world).compile();
        let porn: Vec<String> = corpus.sanitized.iter().take(5).cloned().collect();
        let regular: Vec<String> = corpus.reference_regular.iter().take(5).cloned().collect();

        let jobs = [
            CrawlJob {
                config: CrawlConfig {
                    country: Country::Spain,
                    corpus: CorpusLabel::Porn,
                    store_dom: true,
                },
                domains: &porn,
                net: NetProfile::default(),
            },
            CrawlJob {
                config: CrawlConfig {
                    country: Country::Spain,
                    corpus: CorpusLabel::Regular,
                    store_dom: false,
                },
                domains: &regular,
                net: NetProfile::default(),
            },
        ];
        let results = run_crawl_jobs(&world, &jobs);
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].output.corpus, CorpusLabel::Porn);
        assert_eq!(results[1].output.corpus, CorpusLabel::Regular);
        assert_eq!(results[0].output.visits.len(), porn.len());
        assert_eq!(results[1].output.visits.len(), regular.len());
        assert!(results.iter().all(|job| job.wall > Duration::ZERO));
        // The default profile meters: the transport saw every request the
        // visits recorded (and the redirect hops inside them).
        for job in &results {
            let stats = job.transport.as_ref().expect("default profile meters");
            let recorded: u64 = job
                .output
                .visits
                .iter()
                .map(|v| v.visit.requests.len() as u64)
                .sum();
            assert_eq!(stats.requests, recorded);
            assert_eq!(job.attempts, job.output.visits.len() as u64);
            assert_eq!(job.retries, 0);
        }

        let interactions = run_interaction_jobs(
            &world,
            &[InteractionJob {
                country: Country::Usa,
                domains: &porn,
                net: NetProfile::default(),
            }],
        );
        assert_eq!(interactions.len(), 1);
        assert_eq!(interactions[0].output.len(), porn.len());
        assert!(interactions[0]
            .output
            .iter()
            .all(|r| r.country == Country::Usa));
        assert!(interactions[0].transport.as_ref().unwrap().requests > 0);
    }
}
