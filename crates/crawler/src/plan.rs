//! The crawl plan — the collection layer's single entry point.
//!
//! A [`CrawlPlan`] declares every crawl a study performs: OpenWPM-style
//! sweeps as country × corpus × store-DOM triples, and Selenium-style
//! interaction crawls as country × domain-selector pairs. The plan itself
//! is data; [`CrawlPlan::execute`] resolves the domain selectors against
//! the compiled corpus, fans every crawl out through one code path
//! ([`parallel`](crate::parallel)), and records it all — the Spanish main
//! crawls, the geo sweep, the per-country age-gate crawls — into one
//! [`MeasurementDb`], with per-crawl wall timings for the stage report.

use std::time::Duration;

use redlight_net::geoip::Country;
use redlight_net::transport::{NetProfile, TransportStats};
use redlight_websim::World;

use crate::db::{CorpusLabel, MeasurementDb};
use crate::openwpm::{corpus_slug, CrawlConfig};
use crate::parallel::{
    run_crawl_jobs_observed, run_interaction_jobs_observed, CrawlJob, CrawlObs, InteractionJob,
};

/// Which domain list a planned crawl sweeps. Selectors are resolved at
/// execution time, so a plan can be built before the corpus is compiled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DomainSel {
    /// The sanitized porn corpus.
    Porn,
    /// The regular (reference) corpus.
    Regular,
    /// The most-popular porn subset manually studied for age gates (§7.2).
    AgeGateTop,
}

/// One planned OpenWPM-style crawl.
#[derive(Debug, Clone)]
pub struct CrawlSpec {
    /// Crawler configuration (country × corpus × store-DOM).
    pub config: CrawlConfig,
    /// Domain list to sweep.
    pub domains: DomainSel,
    /// Network the crawl runs over (transport stack + retry policy).
    pub net: NetProfile,
}

/// One planned interaction crawl.
#[derive(Debug, Clone)]
pub struct InteractionSpec {
    /// Vantage point.
    pub country: Country,
    /// Domain list to interact with.
    pub domains: DomainSel,
    /// Network the crawl runs over (transport stack + retry policy).
    pub net: NetProfile,
}

/// The concrete domain lists a plan's selectors resolve against.
#[derive(Debug, Clone, Copy)]
pub struct PlanDomains<'a> {
    /// The sanitized porn corpus.
    pub porn: &'a [String],
    /// The regular reference corpus.
    pub regular: &'a [String],
    /// The top-N porn sites by best historical rank.
    pub agegate_top: &'a [String],
}

impl PlanDomains<'_> {
    fn resolve(&self, sel: DomainSel) -> &[String] {
        match sel {
            DomainSel::Porn => self.porn,
            DomainSel::Regular => self.regular,
            DomainSel::AgeGateTop => self.agegate_top,
        }
    }
}

/// Wall time, size and network instrumentation of one executed crawl.
#[derive(Debug, Clone)]
pub struct CrawlTiming {
    /// `"openwpm"` or `"selenium"`.
    pub crawler: &'static str,
    /// Vantage point.
    pub country: Country,
    /// Corpus swept (OpenWPM crawls only).
    pub corpus: Option<CorpusLabel>,
    /// Number of sites the crawl covered.
    pub sites: usize,
    /// Document-load attempts spent across those sites.
    pub attempts: u64,
    /// Attempts beyond each site's first (retry-policy spillover).
    pub retries: u64,
    /// Sites whose document never loaded.
    pub failures: u64,
    /// Wall-clock duration of the crawl.
    pub wall: Duration,
    /// Transport-layer counters, when the crawl's profile metered.
    pub net: Option<TransportStats>,
}

/// Every crawl one study performs.
#[derive(Debug, Clone, Default)]
pub struct CrawlPlan {
    /// OpenWPM-style sweeps, in recording order.
    pub openwpm: Vec<CrawlSpec>,
    /// Interaction crawls, in recording order.
    pub interactions: Vec<InteractionSpec>,
}

impl CrawlPlan {
    /// Executes every planned crawl — concurrently across crawls, via the
    /// shared [`parallel`](crate::parallel) fan-out — and records the
    /// results into a fresh [`MeasurementDb`] in plan order, returning it
    /// with one [`CrawlTiming`] per crawl.
    pub fn execute(
        &self,
        world: &World,
        domains: PlanDomains<'_>,
    ) -> (MeasurementDb, Vec<CrawlTiming>) {
        self.execute_observed(world, domains, &CrawlObs::disabled())
    }

    /// [`execute`](Self::execute) with telemetry: every crawl records its
    /// span tree into a per-worker journal shard and publishes its
    /// transport/cache counters into `obs.metrics`, plus one
    /// `crawl.<crawler>.<country>[.<corpus>].{sites,attempts,retries,failures}`
    /// counter group per executed crawl — the same numbers the returned
    /// [`CrawlTiming`]s carry, so the timing rows are a view over the
    /// registry. The db and timings are byte-identical to [`execute`].
    pub fn execute_observed(
        &self,
        world: &World,
        domains: PlanDomains<'_>,
        obs: &CrawlObs,
    ) -> (MeasurementDb, Vec<CrawlTiming>) {
        let crawl_jobs: Vec<CrawlJob<'_>> = self
            .openwpm
            .iter()
            .map(|spec| CrawlJob {
                config: spec.config.clone(),
                domains: domains.resolve(spec.domains),
                net: spec.net.clone(),
            })
            .collect();
        let interaction_jobs: Vec<InteractionJob<'_>> = self
            .interactions
            .iter()
            .map(|spec| InteractionJob {
                country: spec.country,
                domains: domains.resolve(spec.domains),
                net: spec.net.clone(),
            })
            .collect();

        let mut db = MeasurementDb::new();
        let mut timings = Vec::with_capacity(crawl_jobs.len() + interaction_jobs.len());
        for job in run_crawl_jobs_observed(world, &crawl_jobs, obs) {
            let record = job.output;
            let timing = CrawlTiming {
                crawler: "openwpm",
                country: record.country,
                corpus: Some(record.corpus),
                sites: record.visits.len(),
                attempts: job.attempts,
                retries: job.retries,
                failures: job.failures,
                wall: job.wall,
                net: job.transport,
            };
            publish_timing(obs, &timing);
            timings.push(timing);
            db.push_crawl(record);
        }
        for (spec, job) in self.interactions.iter().zip(run_interaction_jobs_observed(
            world,
            &interaction_jobs,
            obs,
        )) {
            let records = job.output;
            let timing = CrawlTiming {
                crawler: "selenium",
                country: spec.country,
                corpus: None,
                sites: records.len(),
                attempts: job.attempts,
                retries: job.retries,
                failures: job.failures,
                wall: job.wall,
                net: job.transport,
            };
            publish_timing(obs, &timing);
            timings.push(timing);
            db.push_interactions(records);
        }
        (db, timings)
    }
}

/// Mirrors one crawl's [`CrawlTiming`] into per-crawl registry counters.
fn publish_timing(obs: &CrawlObs, t: &CrawlTiming) {
    let mut prefix = format!(
        "crawl.{}.{}",
        t.crawler,
        t.country.code().to_ascii_lowercase()
    );
    if let Some(corpus) = t.corpus {
        prefix.push('.');
        prefix.push_str(corpus_slug(corpus));
    }
    for (field, value) in [
        ("sites", t.sites as u64),
        ("attempts", t.attempts),
        ("retries", t.retries),
        ("failures", t.failures),
    ] {
        obs.metrics.counter(&format!("{prefix}.{field}")).add(value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusCompiler;
    use crate::openwpm::OpenWpmCrawler;
    use redlight_websim::WorldConfig;

    #[test]
    fn plan_records_every_crawl_with_timings() {
        let world = World::build(WorldConfig::tiny(81));
        let corpus = CorpusCompiler::new(&world).compile();
        let top: Vec<String> = corpus.sanitized.iter().take(4).cloned().collect();
        let plan = CrawlPlan {
            openwpm: vec![
                CrawlSpec {
                    config: CrawlConfig {
                        country: Country::Spain,
                        corpus: CorpusLabel::Porn,
                        store_dom: true,
                    },
                    domains: DomainSel::Porn,
                    net: NetProfile::default(),
                },
                CrawlSpec {
                    config: CrawlConfig {
                        country: Country::Spain,
                        corpus: CorpusLabel::Regular,
                        store_dom: false,
                    },
                    domains: DomainSel::Regular,
                    net: NetProfile::default(),
                },
                CrawlSpec {
                    config: CrawlConfig {
                        country: Country::Russia,
                        corpus: CorpusLabel::Porn,
                        store_dom: false,
                    },
                    domains: DomainSel::Porn,
                    net: NetProfile::default(),
                },
            ],
            interactions: vec![
                InteractionSpec {
                    country: Country::Spain,
                    domains: DomainSel::Porn,
                    net: NetProfile::default(),
                },
                InteractionSpec {
                    country: Country::Uk,
                    domains: DomainSel::AgeGateTop,
                    net: NetProfile::default(),
                },
            ],
        };

        let (db, timings) = plan.execute(
            &world,
            PlanDomains {
                porn: &corpus.sanitized,
                regular: &corpus.reference_regular,
                agegate_top: &top,
            },
        );

        assert_eq!(db.crawls().len(), 3);
        assert_eq!(timings.len(), 5);
        assert_eq!(db.countries(), vec![Country::Spain, Country::Russia]);
        let porn_es = db.crawl(Country::Spain, CorpusLabel::Porn).unwrap();
        assert_eq!(porn_es.visits.len(), corpus.sanitized.len());
        assert!(porn_es.visits.iter().any(|v| !v.visit.dom_html.is_empty()));
        let porn_ru = db.crawl(Country::Russia, CorpusLabel::Porn).unwrap();
        assert!(porn_ru.visits.iter().all(|v| v.visit.dom_html.is_empty()));
        assert_eq!(
            db.interactions_in(Country::Spain).count(),
            corpus.sanitized.len()
        );
        assert_eq!(db.interactions_in(Country::Uk).count(), top.len());
        assert!(timings
            .iter()
            .filter(|t| t.crawler == "selenium")
            .all(|t| t.corpus.is_none() && t.sites > 0));
    }

    #[test]
    fn plan_execution_matches_direct_crawling() {
        // The single code path must reproduce exactly what a hand-rolled
        // crawler invocation records (determinism across entry points).
        let world = World::build(WorldConfig::tiny(82));
        let corpus = CorpusCompiler::new(&world).compile();
        let config = CrawlConfig {
            country: Country::Usa,
            corpus: CorpusLabel::Porn,
            store_dom: true,
        };
        let plan = CrawlPlan {
            openwpm: vec![CrawlSpec {
                config: config.clone(),
                domains: DomainSel::Porn,
                net: NetProfile::default(),
            }],
            interactions: vec![],
        };
        let (db, _) = plan.execute(
            &world,
            PlanDomains {
                porn: &corpus.sanitized,
                regular: &[],
                agegate_top: &[],
            },
        );
        let direct = OpenWpmCrawler::new(&world, config).crawl(&corpus.sanitized);
        let planned = db.crawl(Country::Usa, CorpusLabel::Porn).unwrap();
        assert_eq!(planned.client_ip, direct.client_ip);
        assert_eq!(planned.visits.len(), direct.visits.len());
        for (a, b) in planned.visits.iter().zip(&direct.visits) {
            assert_eq!(a.domain, b.domain);
            assert_eq!(a.visit.success, b.visit.success);
            assert_eq!(a.visit.requests.len(), b.visit.requests.len());
            assert_eq!(a.visit.dom_html, b.visit.dom_html);
        }
    }
}
