//! # redlight-crawler
//!
//! The study's data-collection layer (paper §3):
//!
//! * [`corpus`] — the semi-supervised corpus compilation: three sources
//!   (specialized directories, the Alexa Adult category, keyword search over
//!   the 2018 top-1M) plus manual-inspection sanitization;
//! * [`openwpm`] — the OpenWPM-style crawler: one long-lived browser
//!   session, landing pages only, 120 s timeout semantics, recording all
//!   HTTP/cookie/JS instrumentation into the measurement DB;
//! * [`selenium`] — the Selenium-style interaction crawler: age-gate
//!   detection and bypass (floating elements + 8-language keywords +
//!   parent/grandparent verification), privacy-policy retrieval, and
//!   monetization-signal collection;
//! * [`db`] — the measurement database (the OpenWPM SQLite stand-in),
//!   indexed by country × corpus, with per-crawl interned string tables;
//! * [`store`] — the columnar shard store: arena-backed string interning
//!   ([`store::StrTable`] / [`store::Sym`]) and zero-copy
//!   [`store::CrawlSlice`] shards the map/reduce analysis streams;
//! * [`parallel`] — a crossbeam worker pool that runs independent crawl
//!   jobs concurrently (crawls are independent sessions; within a crawl the
//!   session is sequential, preserving cookie-sync observability);
//! * [`plan`] — the [`CrawlPlan`](plan::CrawlPlan): every crawl a study
//!   performs, declared as data and executed through one code path into a
//!   [`MeasurementDb`] with per-crawl wall timings.
//!
//! Every crawl fetches through the transport seam
//! ([`redlight_net::transport`]): its [`NetProfile`] — carried on the plan
//! specs — assembles the stack (direct server, optional fault injection,
//! optional metering) and sets the visit [`RetryPolicy`], so a plan fully
//! describes the network weather it runs under.

#![warn(missing_docs)]

pub mod corpus;
pub mod db;
pub mod openwpm;
pub mod parallel;
pub mod plan;
pub mod selenium;
pub mod store;

pub use corpus::{CorpusCompiler, CorpusReport};
pub use db::{CrawlRecord, InteractionRecord, MeasurementDb, SiteVisitRecord, VisitRollup};
pub use openwpm::OpenWpmCrawler;
pub use plan::{CrawlPlan, CrawlSpec, CrawlTiming, DomainSel, InteractionSpec, PlanDomains};
pub use redlight_net::transport::{NetProfile, RetryPolicy};
pub use selenium::{InteractionCrawl, SeleniumCrawler};
pub use store::{CrawlSlice, StrTable, Sym};
