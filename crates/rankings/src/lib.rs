//! # redlight-rankings
//!
//! An Alexa-style daily toplist simulation.
//!
//! The study uses a longitudinal dataset of Alexa top-1M snapshots covering
//! all of 2018 as a popularity proxy (§3, Fig. 1): per-site best and median
//! rank, and the percentage of days each site was indexed. It deliberately
//! looks at a whole year to smooth out the single-day instability of top
//! lists (Scheitle et al., IMC'18). This crate models exactly that substrate:
//!
//! * [`trajectory`] — a per-site daily rank time series built from a latent
//!   popularity plus AR(1) noise (ranks churn day to day; unpopular sites
//!   fall in and out of the top-1M);
//! * [`stats`] — best/median rank, presence fraction, and the popularity
//!   tiers (0–1k, 1k–10k, 10k–100k, 100k+) the paper's Tables 3 and 6 group
//!   by;
//! * [`category`] — a site categorization service (the paper extracts the 22
//!   sites Alexa classifies as *Adult*).

#![warn(missing_docs)]

pub mod category;
pub mod stats;
pub mod trajectory;

pub use stats::{PopularityTier, RankStats};
pub use trajectory::{RankHistory, TrajectoryParams, DAYS_IN_YEAR, TOPLIST_SIZE};
