//! Daily rank trajectories.
//!
//! A site's daily rank is modeled as `base_rank · exp(x_t)` where `x_t`
//! follows a stationary AR(1) process. Days on which the modeled rank falls
//! below the top-1M cutoff are recorded as *absent* — exactly how a site
//! drops out of the published Alexa list.

use rand::prelude::*;
use serde::{Deserialize, Serialize};

/// Days in the simulated year (2018).
pub const DAYS_IN_YEAR: usize = 365;

/// The toplist cutoff: Alexa publishes the top one million sites.
pub const TOPLIST_SIZE: u32 = 1_000_000;

/// Parameters of the AR(1) rank model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrajectoryParams {
    /// The site's central rank (geometric mean of its daily ranks).
    pub base_rank: u32,
    /// AR(1) persistence in `[0, 1)`; higher ⇒ smoother trajectories.
    pub persistence: f64,
    /// Innovation standard deviation of the log-rank process.
    pub volatility: f64,
    /// Number of days to simulate.
    pub days: usize,
}

impl TrajectoryParams {
    /// A plausible default: sticky ranks with moderate churn.
    pub fn new(base_rank: u32) -> Self {
        TrajectoryParams {
            base_rank,
            persistence: 0.9,
            volatility: 0.25,
            days: DAYS_IN_YEAR,
        }
    }
}

/// A site's daily rank series; `None` marks days outside the top-1M.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RankHistory {
    /// Daily.
    pub daily: Vec<Option<u32>>,
}

impl RankHistory {
    /// Best (numerically lowest) rank achieved, when ever indexed.
    pub fn best(&self) -> Option<u32> {
        self.daily.iter().flatten().copied().min()
    }

    /// Median of indexed-day ranks (lower median), when ever indexed.
    pub fn median(&self) -> Option<u32> {
        let mut present: Vec<u32> = self.daily.iter().flatten().copied().collect();
        if present.is_empty() {
            return None;
        }
        present.sort_unstable();
        Some(present[(present.len() - 1) / 2])
    }

    /// Fraction of days the site appeared in the toplist, in `[0, 1]`.
    pub fn presence(&self) -> f64 {
        if self.daily.is_empty() {
            return 0.0;
        }
        self.daily.iter().filter(|d| d.is_some()).count() as f64 / self.daily.len() as f64
    }

    /// `true` when the site was indexed on every simulated day.
    pub fn always_present(&self) -> bool {
        !self.daily.is_empty() && self.daily.iter().all(|d| d.is_some())
    }

    /// `true` when the site never left the top-`k` over the whole period.
    pub fn always_within(&self, k: u32) -> bool {
        !self.daily.is_empty() && self.daily.iter().all(|d| d.is_some_and(|r| r <= k))
    }
}

/// A standard normal sample via Box–Muller (rand ships no normal
/// distribution and this repo adds no extra dependencies).
fn standard_normal(rng: &mut impl Rng) -> f64 {
    let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// The daily log-rank multipliers of the AR(1) process (rank on day `t` is
/// `base · exp(m[t])`). Exposed separately so callers can re-anchor the
/// same noise path to a different base — e.g. pinning the realized **best**
/// rank, which is what the paper's tables key on.
pub fn log_multipliers(params: &TrajectoryParams, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let phi = params.persistence.clamp(0.0, 0.999);
    // Start the process from its stationary distribution so day 0 is not
    // special: stationary sd = volatility / sqrt(1 - phi^2).
    let stationary_sd = params.volatility / (1.0 - phi * phi).sqrt();
    let mut x = standard_normal(&mut rng) * stationary_sd;
    (0..params.days)
        .map(|_| {
            x = phi * x + params.volatility * standard_normal(&mut rng);
            x
        })
        .collect()
}

/// Builds a history from a base rank and a multiplier path. Ranks beyond the
/// top-1M cutoff become absent days.
pub fn history_from_multipliers(base: f64, multipliers: &[f64]) -> RankHistory {
    let daily = multipliers
        .iter()
        .map(|m| {
            let rank = (base * m.exp()).round();
            if rank >= 1.0 && rank <= TOPLIST_SIZE as f64 {
                Some(rank as u32)
            } else if rank < 1.0 {
                Some(1)
            } else {
                None
            }
        })
        .collect();
    RankHistory { daily }
}

/// Simulates a daily rank trajectory around `base_rank`. Deterministic for a
/// given `seed`.
pub fn trajectory(params: &TrajectoryParams, seed: u64) -> RankHistory {
    let base = params.base_rank.max(1) as f64;
    history_from_multipliers(base, &log_multipliers(params, seed))
}

/// Simulates a trajectory whose realized **best** (lowest) rank equals
/// `target_best` exactly: the noise path is re-anchored so its minimum lands
/// on the target. This matches how the study keys sites by their highest
/// Alexa rank throughout 2018 (Tables 1, 3, 6).
pub fn trajectory_with_best(params: &TrajectoryParams, target_best: u32, seed: u64) -> RankHistory {
    let mults = log_multipliers(params, seed);
    let min = mults.iter().copied().fold(f64::INFINITY, f64::min);
    let base = target_best.max(1) as f64 / min.exp();
    history_from_multipliers(base, &mults)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let p = TrajectoryParams::new(5_000);
        assert_eq!(trajectory(&p, 42), trajectory(&p, 42));
        assert_ne!(trajectory(&p, 42), trajectory(&p, 43));
    }

    #[test]
    fn popular_sites_never_leave_the_list() {
        let p = TrajectoryParams::new(100);
        let h = trajectory(&p, 7);
        assert!(h.always_present());
        assert!(h.best().unwrap() <= 1_000);
    }

    #[test]
    fn marginal_sites_churn_in_and_out() {
        let p = TrajectoryParams {
            base_rank: 900_000,
            persistence: 0.9,
            volatility: 0.5,
            days: DAYS_IN_YEAR,
        };
        let h = trajectory(&p, 11);
        let presence = h.presence();
        assert!(presence > 0.05 && presence < 1.0, "presence = {presence}");
    }

    #[test]
    fn ranks_stay_near_base_rank() {
        let p = TrajectoryParams::new(10_000);
        let h = trajectory(&p, 3);
        let med = h.median().unwrap();
        assert!((2_000..50_000).contains(&med), "median = {med}");
        assert!(h.best().unwrap() <= med);
    }

    #[test]
    fn empty_history_stats() {
        let h = RankHistory { daily: vec![] };
        assert_eq!(h.best(), None);
        assert_eq!(h.median(), None);
        assert_eq!(h.presence(), 0.0);
        assert!(!h.always_present());
    }

    #[test]
    fn never_indexed_site() {
        let h = RankHistory {
            daily: vec![None; 10],
        };
        assert_eq!(h.best(), None);
        assert_eq!(h.presence(), 0.0);
    }

    #[test]
    fn always_within_bounds() {
        let h = RankHistory {
            daily: vec![Some(5), Some(900), Some(50)],
        };
        assert!(h.always_within(1_000));
        assert!(!h.always_within(100));
    }

    #[test]
    fn pinned_best_rank_is_exact() {
        let p = TrajectoryParams {
            base_rank: 0, // unused by trajectory_with_best
            persistence: 0.9,
            volatility: 0.6,
            days: DAYS_IN_YEAR,
        };
        for (target, seed) in [(22u32, 1u64), (5_301, 2), (122_227, 3)] {
            let h = trajectory_with_best(&p, target, seed);
            assert_eq!(h.best(), Some(target), "seed {seed}");
        }
    }

    #[test]
    fn multiplier_anchoring_matches_trajectory() {
        let p = TrajectoryParams::new(5_000);
        let mults = log_multipliers(&p, 9);
        let h = history_from_multipliers(5_000.0, &mults);
        assert_eq!(h, trajectory(&p, 9));
    }

    #[test]
    fn rank_one_floor() {
        let p = TrajectoryParams {
            base_rank: 1,
            persistence: 0.5,
            volatility: 0.3,
            days: 50,
        };
        let h = trajectory(&p, 5);
        assert!(h.daily.iter().flatten().all(|&r| r >= 1));
    }
}
