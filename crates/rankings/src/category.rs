//! Site categorization service (Alexa's category pages).
//!
//! The corpus compilation (§3, step 2) extracts the websites that Alexa's
//! categorization service classifies as *Adult*. The service indexes only a
//! small curated subset of sites — 22 in the paper — which the simulator
//! reproduces by registering only a few prominent sites per category.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// Alexa-style top-level categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Category {
    /// Adult content.
    Adult,
    /// News.
    News,
    /// Shopping.
    Shopping,
    /// Sports.
    Sports,
    /// Computers.
    Computers,
    /// Arts.
    Arts,
}

/// A curated domain → category index.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CategoryService {
    index: BTreeMap<String, Category>,
}

impl CategoryService {
    /// Empty service.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `domain` under `category` (lowercased).
    pub fn register(&mut self, domain: &str, category: Category) {
        self.index.insert(domain.to_ascii_lowercase(), category);
    }

    /// The category of `domain`, when indexed.
    pub fn category_of(&self, domain: &str) -> Option<Category> {
        self.index.get(&domain.to_ascii_lowercase()).copied()
    }

    /// All domains filed under `category`, sorted.
    pub fn domains_in(&self, category: Category) -> Vec<&str> {
        self.index
            .iter()
            .filter(|(_, c)| **c == category)
            .map(|(d, _)| d.as_str())
            .collect()
    }

    /// Number of indexed domains.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// `true` when nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_query() {
        let mut svc = CategoryService::new();
        svc.register("PornHub.com", Category::Adult);
        svc.register("bbc.co.uk", Category::News);
        assert_eq!(svc.category_of("pornhub.com"), Some(Category::Adult));
        assert_eq!(svc.category_of("bbc.co.uk"), Some(Category::News));
        assert_eq!(svc.category_of("unknown.com"), None);
    }

    #[test]
    fn domains_in_category_sorted() {
        let mut svc = CategoryService::new();
        svc.register("zzz.com", Category::Adult);
        svc.register("aaa.com", Category::Adult);
        svc.register("news.com", Category::News);
        assert_eq!(svc.domains_in(Category::Adult), vec!["aaa.com", "zzz.com"]);
        assert_eq!(svc.len(), 3);
    }
}
