//! Rank statistics and the popularity tiers used across the paper's tables.

use serde::{Deserialize, Serialize};

use crate::trajectory::RankHistory;

/// The popularity intervals of Tables 3 and 6, keyed by a site's **highest**
/// (best) Alexa rank throughout 2018.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum PopularityTier {
    /// Best rank in 1–1,000.
    Top1k,
    /// Best rank in 1,001–10,000.
    To10k,
    /// Best rank in 10,001–100,000.
    To100k,
    /// Best rank beyond 100,000 — or never indexed at all.
    Beyond100k,
}

impl PopularityTier {
    /// All tiers in table order.
    pub const ALL: [PopularityTier; 4] = [
        PopularityTier::Top1k,
        PopularityTier::To10k,
        PopularityTier::To100k,
        PopularityTier::Beyond100k,
    ];

    /// Classifies a best rank (use `None` for never-indexed sites).
    pub fn from_best_rank(best: Option<u32>) -> PopularityTier {
        match best {
            Some(r) if r <= 1_000 => PopularityTier::Top1k,
            Some(r) if r <= 10_000 => PopularityTier::To10k,
            Some(r) if r <= 100_000 => PopularityTier::To100k,
            _ => PopularityTier::Beyond100k,
        }
    }

    /// The label used in the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            PopularityTier::Top1k => "0 — 1k",
            PopularityTier::To10k => "1k — 10k",
            PopularityTier::To100k => "10k — 100k",
            PopularityTier::Beyond100k => "100k+",
        }
    }
}

/// Summary statistics over one site's rank history (the per-site series
/// behind Fig. 1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RankStats {
    /// Best.
    pub best: Option<u32>,
    /// Median.
    pub median: Option<u32>,
    /// Fraction of days in the toplist, `[0, 1]`.
    pub presence: f64,
    /// Tier.
    pub tier: PopularityTier,
}

impl RankStats {
    /// Computes the summary from a history.
    pub fn from_history(history: &RankHistory) -> RankStats {
        let best = history.best();
        RankStats {
            best,
            median: history.median(),
            presence: history.presence(),
            tier: PopularityTier::from_best_rank(best),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_boundaries() {
        assert_eq!(
            PopularityTier::from_best_rank(Some(1)),
            PopularityTier::Top1k
        );
        assert_eq!(
            PopularityTier::from_best_rank(Some(1_000)),
            PopularityTier::Top1k
        );
        assert_eq!(
            PopularityTier::from_best_rank(Some(1_001)),
            PopularityTier::To10k
        );
        assert_eq!(
            PopularityTier::from_best_rank(Some(10_000)),
            PopularityTier::To10k
        );
        assert_eq!(
            PopularityTier::from_best_rank(Some(10_001)),
            PopularityTier::To100k
        );
        assert_eq!(
            PopularityTier::from_best_rank(Some(100_000)),
            PopularityTier::To100k
        );
        assert_eq!(
            PopularityTier::from_best_rank(Some(100_001)),
            PopularityTier::Beyond100k
        );
        assert_eq!(
            PopularityTier::from_best_rank(None),
            PopularityTier::Beyond100k
        );
    }

    #[test]
    fn stats_from_history() {
        let h = RankHistory {
            daily: vec![Some(500), None, Some(2_000), Some(800)],
        };
        let s = RankStats::from_history(&h);
        assert_eq!(s.best, Some(500));
        assert_eq!(s.median, Some(800));
        assert!((s.presence - 0.75).abs() < 1e-9);
        assert_eq!(s.tier, PopularityTier::Top1k);
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(PopularityTier::Top1k.label(), "0 — 1k");
        assert_eq!(PopularityTier::Beyond100k.label(), "100k+");
    }
}
