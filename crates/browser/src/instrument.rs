//! Instrumentation records — the browser's equivalent of OpenWPM's
//! `http_requests`, `javascript` and `cookies` tables.

use redlight_net::cookie::Cookie;
use redlight_net::http::{Method, ResourceKind, StatusCode};
use redlight_net::tls::CertSummary;
use redlight_net::url::Url;
use serde::{Deserialize, Serialize};

/// What caused a request.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Initiator {
    /// The top-level document load (or a redirect of it).
    Document,
    /// A `<script>`/`<img>`/`<link>` element on the page.
    Markup,
    /// A running script (beacon/pixel/XHR), identified by its source URL
    /// (`None` for inline scripts).
    Script(Option<Url>),
    /// A subresource of an embedded frame (URL of the frame document).
    Frame(Url),
}

/// One HTTP exchange. The owning [`crate::page::PageVisit`] provides the
/// page context, so records stay compact at crawl scale.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RequestRecord {
    /// URL.
    pub url: Url,
    /// Method.
    pub method: Method,
    /// Kind.
    pub kind: ResourceKind,
    /// The `Referer` the request carried.
    pub referrer: Option<Url>,
    /// Initiator.
    pub initiator: Initiator,
    /// Response status; `None` when the host was unreachable.
    pub status: Option<StatusCode>,
    /// Content type.
    pub content_type: Option<String>,
    /// Digest of the certificate the server presented (HTTPS only).
    pub cert: Option<CertSummary>,
    /// `Location` target when the response redirected.
    pub redirected_to: Option<Url>,
}

/// How a cookie reached the jar.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SetVia {
    /// A `Set-Cookie` response header.
    HttpHeader,
    /// `document.cookie` from a script.
    Script,
}

/// One observed cookie-set event.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CookieObservation {
    /// Host of the response (or page, for script cookies) that set it.
    pub origin_host: String,
    /// Effective cookie domain after jar rules.
    pub effective_domain: String,
    /// Cookie.
    pub cookie: Cookie,
    /// Via.
    pub via: SetVia,
    /// Whether the jar accepted it.
    pub accepted: bool,
    /// The response that set it travelled over HTTPS (always true for
    /// script cookies on HTTPS pages) — §5.2's clear-text-leak signal.
    pub secure_channel: bool,
}

/// One instrumented JavaScript host-API call.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JsCall {
    /// Source URL of the calling script; `None` for inline scripts.
    pub script_url: Option<Url>,
    /// Host function name (`canvas.fillText`, `webrtc.createDataChannel`…).
    pub api: String,
    /// Stringified arguments.
    pub args: Vec<String>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initiator_equality() {
        let u = Url::parse("https://t.co/a.js").unwrap();
        assert_eq!(
            Initiator::Script(Some(u.clone())),
            Initiator::Script(Some(u))
        );
        assert_ne!(Initiator::Document, Initiator::Markup);
    }
}
