//! The browser proper: fetch pipeline, redirects, subresources, script
//! execution, frame loading.

use redlight_html::{parser, query};
use redlight_net::http::{Method, Request, ResourceKind, Response, Scheme};
use redlight_net::jar::CookieJar;
use redlight_net::transport::{BrowserKind, ClientContext, FetchOutcome, Transport};
use redlight_net::url::Url;
use redlight_websim::server::WebServer;
use redlight_websim::World;

use crate::device::{hash, mix, DeviceProfile};
use crate::engine::PageHost;
use crate::instrument::{CookieObservation, Initiator, RequestRecord, SetVia};
use crate::page::PageVisit;

/// Maximum redirect hops per request (sync chains are short; loops must
/// terminate).
const MAX_REDIRECTS: usize = 8;

/// An instrumented browser session.
pub struct Browser<'w> {
    transport: Box<dyn Transport + 'w>,
    /// Jar.
    pub jar: CookieJar,
    /// Device.
    pub device: DeviceProfile,
    /// Ctx.
    pub ctx: ClientContext,
    /// Optional content blocker (AdBlock-Plus-style): matching subresource
    /// requests are never issued. Used by the anti-tracking-effectiveness
    /// extension (the paper's §10 future work).
    blocker: Option<redlight_blocklist::FilterSet>,
}

impl<'w> Browser<'w> {
    /// Opens a session against `world` from the given vantage point.
    ///
    /// The session nonce (and therefore every tracker uid) derives from the
    /// world seed, country and crawler kind — one session per crawl, exactly
    /// like the paper's single long-lived browser (§3.1).
    pub fn new(world: &'w World, ctx: ClientContext) -> Browser<'w> {
        Browser::with_transport(Box::new(WebServer::new(world)), ctx)
    }

    /// Opens a session over an already-assembled transport stack (a
    /// metered/fault-injecting decorator chain, or any future socket-backed
    /// implementation). [`Browser::new`] is the direct-stack shorthand.
    pub fn with_transport(transport: Box<dyn Transport + 'w>, ctx: ClientContext) -> Browser<'w> {
        let device = match ctx.browser {
            BrowserKind::OpenWpm => DeviceProfile::openwpm_firefox52(),
            BrowserKind::Selenium => DeviceProfile::selenium_chrome(),
        };
        Browser {
            transport,
            jar: CookieJar::new(),
            device,
            ctx,
            blocker: None,
        }
    }

    /// Installs a content blocker for the rest of the session.
    pub fn set_blocker(&mut self, filters: redlight_blocklist::FilterSet) {
        self.blocker = Some(filters);
    }

    /// Convenience: builds the client context for a country/crawler pair.
    pub fn context_for(
        world: &World,
        country: redlight_net::geoip::Country,
        kind: BrowserKind,
    ) -> ClientContext {
        let vp = redlight_net::geoip::VantagePoint::study_default()
            .into_iter()
            .find(|v| v.country == country)
            .expect("all six countries have vantage points");
        ClientContext {
            country,
            client_ip: vp.client_ip,
            session: mix(
                world.config.seed,
                country as u64 ^ ((kind == BrowserKind::Selenium) as u64) << 17,
            ),
            browser: kind,
        }
    }

    /// Loads a landing page (and only the landing page), recording
    /// everything. HTTPS is attempted first; an unreachable HTTPS endpoint
    /// is retried over HTTP (the paper's downgrade rule, §5.2).
    pub fn visit(&mut self, url: &Url) -> PageVisit {
        let mut visit = PageVisit::failed(url.clone(), false);
        let https_url = url.with_scheme(Scheme::Https);

        let (doc_url, response) = match self.fetch_chain(
            &mut visit,
            &https_url,
            ResourceKind::Document,
            None,
            Initiator::Document,
        ) {
            ChainResult::Ok(u, r) => {
                if url.scheme() == Scheme::Http {
                    visit.https_downgraded = false; // caller already knew
                }
                (u, r)
            }
            ChainResult::Timeout => {
                visit.timeout = true;
                return visit;
            }
            ChainResult::Unreachable => {
                // Downgrade to HTTP.
                let http_url = url.with_scheme(Scheme::Http);
                match self.fetch_chain(
                    &mut visit,
                    &http_url,
                    ResourceKind::Document,
                    None,
                    Initiator::Document,
                ) {
                    ChainResult::Ok(u, r) => {
                        visit.https_downgraded = true;
                        (u, r)
                    }
                    ChainResult::Timeout => {
                        visit.timeout = true;
                        return visit;
                    }
                    ChainResult::Unreachable => return visit,
                }
            }
        };

        if !response.status.is_success() {
            return visit;
        }
        visit.final_url = Some(doc_url.clone());
        visit.success = true;
        visit.dom_html = response.text();
        visit.screenshot_hash = mix(hash(&visit.dom_html), self.device.render_quirk);

        // Parse and load the page.
        let doc = parser::parse(&visit.dom_html);

        // Markup subresources (scripts are fetched AND executed in order).
        for (tag, src) in query::subresources(&doc) {
            let Ok(sub_url) = doc_url.join(&src) else {
                continue;
            };
            let kind = match tag.as_str() {
                "script" => ResourceKind::Script,
                "img" => ResourceKind::Image,
                "iframe" => ResourceKind::Frame,
                _ => ResourceKind::Stylesheet,
            };
            let fetched = self.fetch_chain(
                &mut visit,
                &sub_url,
                kind,
                Some(&doc_url),
                Initiator::Markup,
            );
            let ChainResult::Ok(final_sub, resp) = fetched else {
                continue;
            };
            match kind {
                ResourceKind::Script if resp.content_type.contains("javascript") => {
                    self.execute_script(&mut visit, &doc_url, Some(final_sub), &resp.text());
                }
                ResourceKind::Frame if resp.content_type.contains("html") => {
                    self.load_frame(&mut visit, &doc_url, &final_sub, &resp.text());
                }
                _ => {}
            }
        }

        // Inline scripts.
        for body in query::inline_scripts(&doc) {
            self.execute_script(&mut visit, &doc_url, None, &body);
        }

        visit
    }

    /// Runs one script in the instrumented engine.
    fn execute_script(
        &mut self,
        visit: &mut PageVisit,
        page_url: &Url,
        script_url: Option<Url>,
        source: &str,
    ) {
        let mut frames: Vec<Url> = Vec::new();
        {
            let mut host = PageHost::new(self, visit, page_url, script_url.clone(), &mut frames);
            // Script failures are swallowed like a browser console error.
            let _ = redlight_script::run(source, &mut host);
            let activity = host.take_canvas();
            if activity != crate::canvas::CanvasActivity::default() {
                visit.canvas.push((script_url.clone(), activity));
            }
        }
        // Frames created by the script load after it finishes.
        let frames_snapshot = frames;
        for frame_url in frames_snapshot {
            if let ChainResult::Ok(final_url, resp) = self.fetch_chain(
                visit,
                &frame_url,
                ResourceKind::Frame,
                Some(page_url),
                Initiator::Script(script_url.clone()),
            ) {
                if resp.content_type.contains("html") {
                    self.load_frame(visit, page_url, &final_url, &resp.text());
                }
            }
        }
    }

    /// Loads an embedded frame document's subresources; their referrer is
    /// the frame URL — the observable inclusion-chain signal (§3.1).
    fn load_frame(&mut self, visit: &mut PageVisit, _page: &Url, frame_url: &Url, html: &str) {
        let doc = parser::parse(html);
        for (tag, src) in query::subresources(&doc) {
            let Ok(sub) = frame_url.join(&src) else {
                continue;
            };
            let kind = if tag == "script" {
                ResourceKind::Script
            } else {
                ResourceKind::Image
            };
            let _ = self.fetch_chain(
                visit,
                &sub,
                kind,
                Some(frame_url),
                Initiator::Frame(frame_url.clone()),
            );
        }
    }

    /// Issues one request, following redirects, recording every hop and
    /// storing cookies. Public for the interaction crawler (policy fetches).
    pub fn fetch_resource(
        &mut self,
        visit: &mut PageVisit,
        url: &Url,
        kind: ResourceKind,
        referrer: Option<&Url>,
        initiator: Initiator,
    ) -> Option<(Url, Response)> {
        match self.fetch_chain(visit, url, kind, referrer, initiator) {
            ChainResult::Ok(u, r) => Some((u, r)),
            _ => None,
        }
    }

    fn fetch_chain(
        &mut self,
        visit: &mut PageVisit,
        url: &Url,
        kind: ResourceKind,
        referrer: Option<&Url>,
        initiator: Initiator,
    ) -> ChainResult {
        // Active mixed content is blocked, as Firefox 52 did by default: an
        // HTTPS document never executes plain-HTTP scripts/frames/XHR.
        // Passive content (images, beacons) is allowed with a warning.
        let page_is_secure = visit
            .final_url
            .as_ref()
            .is_some_and(|u| u.scheme() == Scheme::Https);
        let active = matches!(
            kind,
            ResourceKind::Script
                | ResourceKind::Frame
                | ResourceKind::Xhr
                | ResourceKind::Stylesheet
        );
        if page_is_secure && active && url.scheme() == Scheme::Http {
            return ChainResult::Unreachable; // blocked before any packet
        }
        let mut current = url.clone();
        let mut referrer = referrer.cloned();
        for _ in 0..MAX_REDIRECTS {
            // Content blocker: matching subresource requests never leave
            // the browser (documents always load — blockers don't block
            // navigation). Checked per redirect hop, as real blockers do —
            // otherwise an unlisted tracker could launder requests to a
            // listed one through a 302.
            if kind != ResourceKind::Document {
                if let Some(filters) = &self.blocker {
                    let page_host = visit
                        .final_url
                        .as_ref()
                        .unwrap_or(&visit.requested_url)
                        .host()
                        .as_str()
                        .to_string();
                    let ctx = redlight_blocklist::RequestContext::new(
                        &page_host,
                        current.host().as_str(),
                        kind,
                    );
                    if filters
                        .matches(&current.without_fragment(), &ctx)
                        .is_blocked()
                    {
                        return ChainResult::Unreachable;
                    }
                }
            }
            let cookies = self.jar.cookies_for(&current);
            let mut req = Request::get(current.clone(), kind).with_cookie_header(&cookies);
            if let Some(r) = &referrer {
                req = req.with_referrer(r);
            }
            req.headers
                .set("user-agent", self.device.user_agent.clone());

            let outcome = self.transport.fetch(&req, &self.ctx);
            let mut record = RequestRecord {
                url: current.clone(),
                method: Method::Get,
                kind,
                referrer: referrer.clone(),
                initiator: initiator.clone(),
                status: None,
                content_type: None,
                cert: None,
                redirected_to: None,
            };
            match outcome {
                FetchOutcome::Unreachable => {
                    visit.requests.push(record);
                    return ChainResult::Unreachable;
                }
                FetchOutcome::Timeout => {
                    visit.requests.push(record);
                    return ChainResult::Timeout;
                }
                FetchOutcome::Response(resp) => {
                    record.status = Some(resp.status);
                    record.content_type = Some(resp.content_type.clone());
                    record.cert = resp.certificate.as_ref().map(Into::into);

                    // Store Set-Cookie headers.
                    for cookie in resp.cookies() {
                        let accepted = self.jar.store(cookie.clone(), &current);
                        visit.cookies.push(CookieObservation {
                            origin_host: current.host().as_str().to_string(),
                            effective_domain: cookie
                                .domain
                                .clone()
                                .unwrap_or_else(|| current.host().as_str().to_string()),
                            cookie,
                            via: SetVia::HttpHeader,
                            accepted,
                            secure_channel: current.scheme() == redlight_net::http::Scheme::Https,
                        });
                    }

                    if let Some(location) = resp.location() {
                        if let Ok(next) = current.join(location) {
                            record.redirected_to = Some(next.clone());
                            visit.requests.push(record);
                            referrer = Some(current.clone());
                            current = next;
                            continue;
                        }
                    }
                    visit.requests.push(record);
                    return ChainResult::Ok(current, resp);
                }
            }
        }
        ChainResult::Unreachable // redirect loop
    }

    /// The session's client context.
    pub fn client(&self) -> &ClientContext {
        &self.ctx
    }

    /// DNS-ish reachability of a host through the session's transport.
    pub fn host_resolvable(&self, host: &str) -> bool {
        self.transport.resolvable(host)
    }
}

#[allow(clippy::large_enum_variant)] // the Ok variant is the overwhelmingly common case
enum ChainResult {
    Ok(Url, Response),
    Unreachable,
    Timeout,
}

#[cfg(test)]
mod tests {
    use super::*;
    use redlight_net::geoip::Country;
    use redlight_websim::WorldConfig;

    fn world() -> World {
        World::build(WorldConfig::tiny(99))
    }

    fn browser(world: &World) -> Browser<'_> {
        let ctx = Browser::context_for(world, Country::Spain, BrowserKind::OpenWpm);
        Browser::new(world, ctx)
    }

    #[test]
    fn visits_record_requests_and_cookies() {
        let w = world();
        let mut b = browser(&w);
        let site = w
            .sites
            .iter()
            .find(|s| {
                s.is_porn() && !s.unresponsive && !s.openwpm_timeout && !s.deployments.is_empty()
            })
            .unwrap();
        let visit = b.visit(&Url::parse(&w.landing_url(site)).unwrap());
        assert!(visit.success, "visit failed: {:?}", visit.requests.first());
        assert!(visit.requests.len() > 1, "subresources must load");
        assert!(!visit.dom_html.is_empty());
        // First-party cookies from the inline script.
        assert!(
            visit
                .cookies
                .iter()
                .any(|c| c.via == SetVia::Script && c.origin_host == site.domain),
            "inline script cookies missing"
        );
    }

    #[test]
    fn https_downgrade_is_flagged() {
        let w = world();
        let mut b = browser(&w);
        let site = w
            .sites
            .iter()
            .find(|s| s.is_porn() && !s.https && !s.unresponsive && !s.openwpm_timeout)
            .unwrap();
        let visit = b.visit(&Url::parse(&format!("https://{}/", site.domain)).unwrap());
        assert!(visit.success);
        assert!(visit.https_downgraded);
        assert_eq!(visit.final_url.as_ref().unwrap().scheme(), Scheme::Http);
    }

    #[test]
    fn session_cookies_persist_across_sites_enabling_sync() {
        let w = world();
        let mut b = browser(&w);
        // Visit every porn site that embeds exosrv; after the first visit,
        // the uid cookie rides along and the pixel redirects to a partner.
        let exosrv = w.services.by_fqdn("exosrv.com").unwrap().id;
        let hosts: Vec<String> = w
            .sites
            .iter()
            .filter(|s| {
                s.is_porn()
                    && !s.unresponsive
                    && !s.openwpm_timeout
                    && s.deployments.iter().any(|d| d.service == exosrv)
            })
            .map(|s| w.landing_url(s))
            .collect();
        assert!(hosts.len() >= 2, "need at least two exosrv sites");
        let mut saw_sync = false;
        for h in &hosts {
            let visit = b.visit(&Url::parse(h).unwrap());
            if visit
                .requests
                .iter()
                .any(|r| r.url.path() == "/sync" && r.url.query_param("suid").is_some())
            {
                saw_sync = true;
            }
        }
        assert!(saw_sync, "cookie sync chain never observed");
    }

    #[test]
    fn canvas_activity_is_attributed_to_scripts() {
        let w = world();
        let mut b = browser(&w);
        // Find a site whose landing page actually renders AND executes a
        // canvas-FP script for this vantage. Mirrors the render conditions
        // in websim::content (fp_scripts > 0, canvas-capable non-miner
        // service, serves the crawl country) plus the browser's
        // mixed-content rule: an HTTPS page never runs an HTTP script.
        let site = w
            .sites
            .iter()
            .filter(|s| s.is_porn() && !s.unresponsive && !s.openwpm_timeout)
            .find(|s| {
                s.first_party_canvas
                    || s.deployments.iter().any(|d| {
                        let svc = w.services.get(d.service);
                        d.fp_scripts > 0
                            && svc.fp.canvas
                            && !svc.miner
                            && svc.serves(Country::Spain)
                            && (svc.https || !s.https)
                    })
            });
        let Some(site) = site else { return };
        let visit = b.visit(&Url::parse(&w.landing_url(site)).unwrap());
        assert!(
            visit.canvas.iter().any(|(_, a)| a.to_data_url_calls > 0),
            "canvas readback not recorded"
        );
    }

    #[test]
    fn unreachable_hosts_yield_failed_visits() {
        let w = world();
        let mut b = browser(&w);
        let visit = b.visit(&Url::parse("https://definitely-not-generated.example/").unwrap());
        assert!(!visit.success);
        assert!(!visit.timeout);
    }

    #[test]
    fn timeouts_are_flagged_for_openwpm() {
        let w = world();
        let Some(site) = w
            .sites
            .iter()
            .find(|s| s.openwpm_timeout && !s.unresponsive && s.is_porn())
        else {
            return;
        };
        let mut b = browser(&w);
        let visit = b.visit(&Url::parse(&w.landing_url(site)).unwrap());
        assert!(visit.timeout);
        assert!(!visit.success);
    }

    #[test]
    fn frames_carry_frame_referrers() {
        let w = world();
        let mut b = browser(&w);
        // Visit sites until an RTB bid request shows up.
        let mut saw_chained = false;
        for s in w
            .sites
            .iter()
            .filter(|s| s.is_porn() && !s.unresponsive && !s.openwpm_timeout)
        {
            let visit = b.visit(&Url::parse(&w.landing_url(s)).unwrap());
            for r in &visit.requests {
                if r.url.path() == "/bid" {
                    let refr = r.referrer.as_ref().expect("bids carry referrers");
                    assert_ne!(
                        refr.host().as_str(),
                        s.domain,
                        "bid referrer must be the exchange frame, not the page"
                    );
                    saw_chained = true;
                }
            }
            if saw_chained {
                break;
            }
        }
        assert!(saw_chained, "no RTB chain observed in tiny world");
    }
}
