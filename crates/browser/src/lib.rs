//! # redlight-browser
//!
//! The instrumented browser — this repository's OpenWPM analog.
//!
//! A [`Browser`] holds one long-lived session (cookie jar, device profile,
//! vantage point) against a [`redlight_net::transport::Transport`] stack —
//! by default the simulated [`redlight_websim::WebServer`], optionally
//! wrapped in metering/fault-injection decorators. A call to
//! [`Browser::visit`] loads a landing page exactly the way the paper's
//! crawler does: HTTPS first with HTTP downgrade, redirects followed,
//! subresources fetched with referrer and cookie headers, scripts executed
//! in an instrumented engine that records every host-API call (canvas, font
//! metrics, WebRTC, cookies), and every HTTP exchange logged — producing a
//! [`page::PageVisit`] record equivalent to OpenWPM's `http_requests`,
//! `javascript` and `cookies` tables for that visit.

#![warn(missing_docs)]

pub mod browser;
pub mod canvas;
pub mod device;
pub mod engine;
pub mod instrument;
pub mod page;

pub use browser::Browser;
pub use device::DeviceProfile;
pub use instrument::{CookieObservation, Initiator, JsCall, RequestRecord, SetVia};
pub use page::PageVisit;
