//! Device profiles: the entropy surface fingerprinting scripts read.

use std::net::Ipv4Addr;

use serde::{Deserialize, Serialize};

/// A browser/device identity.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeviceProfile {
    /// User agent.
    pub user_agent: String,
    /// Platform.
    pub platform: String,
    /// Screen width.
    pub screen_width: u32,
    /// Screen height.
    pub screen_height: u32,
    /// Installed fonts (font fingerprinting measures these).
    pub fonts: Vec<String>,
    /// Private address exposed through WebRTC candidates.
    pub local_ip: Ipv4Addr,
    /// GPU/renderer quirk seed: two devices render the same canvas ops to
    /// different pixels.
    pub render_quirk: u64,
}

impl DeviceProfile {
    /// The OpenWPM profile the study used (Firefox 52).
    pub fn openwpm_firefox52() -> Self {
        DeviceProfile {
            user_agent: "Mozilla/5.0 (X11; Linux x86_64; rv:52.0) Gecko/20100101 Firefox/52.0"
                .to_string(),
            platform: "Linux x86_64".to_string(),
            screen_width: 1366,
            screen_height: 768,
            fonts: default_fonts(),
            local_ip: Ipv4Addr::new(10, 0, 2, 15),
            render_quirk: 0xF1_52F0,
        }
    }

    /// The Selenium Chrome profile of the interaction crawler.
    pub fn selenium_chrome() -> Self {
        DeviceProfile {
            user_agent: "Mozilla/5.0 (X11; Linux x86_64) AppleWebKit/537.36 (KHTML, like Gecko) \
                         Chrome/71.0.3578.98 Safari/537.36"
                .to_string(),
            platform: "Linux x86_64".to_string(),
            screen_width: 1920,
            screen_height: 1080,
            fonts: default_fonts(),
            local_ip: Ipv4Addr::new(10, 0, 2, 16),
            render_quirk: 0xC4_0713,
        }
    }

    /// Deterministic text-measurement width for a `(font, text)` pair on
    /// this device — the signal font fingerprinting integrates.
    pub fn measure_text(&self, font: &str, text: &str) -> i64 {
        let installed = self.fonts.iter().any(|f| f == font);
        let base = text.chars().count() as i64 * 7;
        if installed {
            base + (mix(hash(font), self.render_quirk) % 5) as i64
        } else {
            base // fallback font: default metrics
        }
    }
}

fn default_fonts() -> Vec<String> {
    [
        "DejaVu Sans",
        "DejaVu Serif",
        "Liberation Mono",
        "Liberation Sans",
        "Noto Sans",
        "probe-font-3",
        "probe-font-17",
        "probe-font-42",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect()
}

pub(crate) fn hash(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

pub(crate) fn mix(a: u64, b: u64) -> u64 {
    let mut x = a.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ b;
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_differ() {
        let ff = DeviceProfile::openwpm_firefox52();
        let cr = DeviceProfile::selenium_chrome();
        assert!(ff.user_agent.contains("Firefox/52"));
        assert!(cr.user_agent.contains("Chrome"));
        assert_ne!(ff.render_quirk, cr.render_quirk);
    }

    #[test]
    fn measure_text_discriminates_installed_fonts() {
        let d = DeviceProfile::openwpm_firefox52();
        let installed = d.measure_text("probe-font-3", "mmmmmmmmmmlli");
        let missing = d.measure_text("probe-font-4", "mmmmmmmmmmlli");
        // Installed fonts perturb the default metric for at least one probe.
        let any_diff = d
            .fonts
            .iter()
            .any(|f| d.measure_text(f, "mmmmmmmmmmlli") != missing);
        assert!(any_diff);
        assert_eq!(installed, d.measure_text("probe-font-3", "mmmmmmmmmmlli"));
    }
}
