//! The canvas model: records drawing operations per script execution so the
//! fingerprinting heuristics (§5.1.3) can be evaluated, and renders
//! device-dependent readback values.

use serde::{Deserialize, Serialize};

use crate::device::{hash, mix, DeviceProfile};

/// Recorded canvas activity of **one script execution** (OpenWPM attributes
/// canvas calls to the calling script).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CanvasActivity {
    /// Width.
    pub width: u32,
    /// Height.
    pub height: u32,
    /// Distinct fill styles used.
    pub fill_styles: Vec<String>,
    /// Texts drawn with `fillText`.
    pub texts: Vec<String>,
    /// To data URL calls.
    pub to_data_url_calls: u32,
    /// `(w, h)` areas requested through `getImageData`.
    pub get_image_data: Vec<(u32, u32)>,
    /// Save calls.
    pub save_calls: u32,
    /// Restore calls.
    pub restore_calls: u32,
    /// Add event listener calls.
    pub add_event_listener_calls: u32,
    /// `(font, text)` pairs measured via `measureText`.
    pub measured: Vec<(String, String)>,
    /// Fonts set via the `font` property.
    pub fonts_set: u32,
}

impl CanvasActivity {
    /// Registers a fill style (deduplicated).
    pub fn fill_style(&mut self, style: &str) {
        if !self.fill_styles.iter().any(|s| s == style) {
            self.fill_styles.push(style.to_string());
        }
    }

    /// Device-dependent `toDataURL` readback: same ops + same device ⇒ same
    /// value; different device ⇒ different value. That is precisely what
    /// makes canvas output a fingerprint.
    pub fn render_data_url(&self, device: &DeviceProfile) -> String {
        let mut acc = mix(
            device.render_quirk,
            (self.width as u64) << 32 | self.height as u64,
        );
        for s in &self.fill_styles {
            acc = mix(acc, hash(s));
        }
        for t in &self.texts {
            acc = mix(acc, hash(t));
        }
        format!("data:image/png;base64,{acc:016x}")
    }

    /// Whether any text drawn uses more than 10 distinct characters (one of
    /// the Englehardt inclusion criteria).
    pub fn has_rich_text(&self) -> bool {
        self.texts
            .iter()
            .any(|t| redlight_text::tokenize::distinct_chars(t) > 10)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_url_is_device_dependent() {
        let mut a = CanvasActivity {
            width: 240,
            height: 60,
            ..Default::default()
        };
        a.fill_style("#f60");
        a.texts.push("Cwm fjordbank glyphs vext quiz".into());

        let ff = DeviceProfile::openwpm_firefox52();
        let cr = DeviceProfile::selenium_chrome();
        assert_eq!(a.render_data_url(&ff), a.render_data_url(&ff));
        assert_ne!(a.render_data_url(&ff), a.render_data_url(&cr));
    }

    #[test]
    fn data_url_depends_on_drawn_content() {
        let device = DeviceProfile::openwpm_firefox52();
        let mut a = CanvasActivity::default();
        a.texts.push("one".into());
        let mut b = CanvasActivity::default();
        b.texts.push("two".into());
        assert_ne!(a.render_data_url(&device), b.render_data_url(&device));
    }

    #[test]
    fn fill_styles_deduplicate() {
        let mut a = CanvasActivity::default();
        a.fill_style("#fff");
        a.fill_style("#fff");
        a.fill_style("#000");
        assert_eq!(a.fill_styles.len(), 2);
    }

    #[test]
    fn rich_text_threshold() {
        let mut a = CanvasActivity::default();
        a.texts.push("short".into());
        assert!(!a.has_rich_text());
        a.texts.push("Cwm fjordbank glyphs vext quiz".into());
        assert!(a.has_rich_text());
    }
}
