//! The script host: wires mini-language host-API calls to browser state and
//! the instrumentation log.

use redlight_net::cookie::Cookie;
use redlight_net::http::ResourceKind;
use redlight_net::url::Url;
use redlight_script::{HostApi, Value};

use crate::browser::Browser;
use crate::canvas::CanvasActivity;
use crate::device::{hash, mix};
use crate::instrument::{CookieObservation, Initiator, JsCall, SetVia};
use crate::page::PageVisit;

/// Host-API implementation for one script execution on one page.
pub struct PageHost<'a, 'w> {
    browser: &'a mut Browser<'w>,
    visit: &'a mut PageVisit,
    page_url: Url,
    script_url: Option<Url>,
    frames: &'a mut Vec<Url>,
    canvas: CanvasActivity,
    current_font: String,
    entropy_counter: u64,
}

impl<'a, 'w> PageHost<'a, 'w> {
    /// Creates the host for one script run.
    pub fn new(
        browser: &'a mut Browser<'w>,
        visit: &'a mut PageVisit,
        page_url: &Url,
        script_url: Option<Url>,
        frames: &'a mut Vec<Url>,
    ) -> Self {
        PageHost {
            browser,
            visit,
            page_url: page_url.clone(),
            script_url,
            frames,
            canvas: CanvasActivity::default(),
            current_font: String::new(),
            entropy_counter: 0,
        }
    }

    /// Takes the canvas activity accumulated by this script.
    pub fn take_canvas(&mut self) -> CanvasActivity {
        std::mem::take(&mut self.canvas)
    }

    fn record(&mut self, api: &str, args: &[Value]) {
        self.visit.js_calls.push(JsCall {
            script_url: self.script_url.clone(),
            api: api.to_string(),
            args: args.iter().map(|v| v.to_string()).collect(),
        });
    }

    fn str_arg(args: &[Value], i: usize) -> String {
        args.get(i).map(|v| v.to_string()).unwrap_or_default()
    }

    fn int_arg(args: &[Value], i: usize) -> i64 {
        args.get(i).and_then(|v| v.as_int()).unwrap_or(0)
    }

    fn issue_request(&mut self, url_str: &str, kind: ResourceKind) {
        let Ok(url) = self.page_url.join(url_str) else {
            return;
        };
        let page = self.page_url.clone();
        let initiator = Initiator::Script(self.script_url.clone());
        let _ = self
            .browser
            .fetch_resource(self.visit, &url, kind, Some(&page), initiator);
    }
}

impl HostApi for PageHost<'_, '_> {
    fn call(&mut self, name: &str, args: &[Value]) -> Value {
        self.record(name, args);
        match name {
            // --- document.cookie: scripts set FIRST-party cookies. ---
            "document.setCookie" => {
                let name = Self::str_arg(args, 0);
                let value = Self::str_arg(args, 1);
                let max_age = Self::int_arg(args, 2);
                if name.is_empty() {
                    return Value::Null;
                }
                let mut cookie = Cookie::new(name, value);
                if max_age > 0 {
                    cookie = cookie.with_max_age(max_age);
                }
                let accepted = self.browser.jar.store(cookie.clone(), &self.page_url);
                self.visit.cookies.push(CookieObservation {
                    origin_host: self.page_url.host().as_str().to_string(),
                    effective_domain: self.page_url.host().as_str().to_string(),
                    cookie,
                    via: SetVia::Script,
                    accepted,
                    secure_channel: self.page_url.scheme() == redlight_net::http::Scheme::Https,
                });
                Value::Null
            }
            "document.getCookie" => {
                let wanted = Self::str_arg(args, 0);
                self.browser
                    .jar
                    .cookies_for(&self.page_url)
                    .into_iter()
                    .find(|(n, _)| *n == wanted)
                    .map(|(_, v)| Value::Str(v))
                    .unwrap_or(Value::Null)
            }

            // --- Network. ---
            "http.pixel" => {
                self.issue_request(&Self::str_arg(args, 0), ResourceKind::Image);
                Value::Null
            }
            "http.beacon" => {
                self.issue_request(&Self::str_arg(args, 0), ResourceKind::Beacon);
                Value::Null
            }
            "http.fetch" => {
                self.issue_request(&Self::str_arg(args, 0), ResourceKind::Xhr);
                Value::Null
            }
            "dom.createFrame" => {
                if let Ok(url) = self.page_url.join(&Self::str_arg(args, 0)) {
                    self.frames.push(url);
                }
                Value::Null
            }

            // --- Canvas (the instrumented §5.1.3 surface). ---
            "canvas.create" => {
                self.canvas.width = Self::int_arg(args, 0).max(0) as u32;
                self.canvas.height = Self::int_arg(args, 1).max(0) as u32;
                Value::Null
            }
            "canvas.fillStyle" => {
                let style = Self::str_arg(args, 0);
                self.canvas.fill_style(&style);
                Value::Null
            }
            "canvas.fillRect" => Value::Null,
            "canvas.fillText" => {
                self.canvas.texts.push(Self::str_arg(args, 0));
                Value::Null
            }
            "canvas.toDataURL" => {
                self.canvas.to_data_url_calls += 1;
                Value::Str(self.canvas.render_data_url(&self.browser.device))
            }
            "canvas.getImageData" => {
                let w = Self::int_arg(args, 2).max(0) as u32;
                let h = Self::int_arg(args, 3).max(0) as u32;
                self.canvas.get_image_data.push((w, h));
                Value::Str(format!("imagedata:{w}x{h}"))
            }
            "canvas.save" => {
                self.canvas.save_calls += 1;
                Value::Null
            }
            "canvas.restore" => {
                self.canvas.restore_calls += 1;
                Value::Null
            }
            "canvas.addEventListener" => {
                self.canvas.add_event_listener_calls += 1;
                Value::Null
            }
            "canvas.setFont" => {
                self.current_font = Self::str_arg(args, 0);
                self.canvas.fonts_set += 1;
                Value::Null
            }
            "canvas.measureText" => {
                let text = Self::str_arg(args, 0);
                let width = self.browser.device.measure_text(&self.current_font, &text);
                self.canvas.measured.push((self.current_font.clone(), text));
                Value::Int(width)
            }

            // --- WebRTC (§5.1.4). ---
            "webrtc.createConnection" | "webrtc.createDataChannel" => Value::Null,
            "webrtc.candidate" => Value::Str(self.browser.device.local_ip.to_string()),

            // --- Navigator / screen entropy. ---
            "navigator.userAgent" => Value::Str(self.browser.device.user_agent.clone()),
            "navigator.platform" => Value::Str(self.browser.device.platform.clone()),
            "screen.width" => Value::Int(self.browser.device.screen_width as i64),
            "screen.height" => Value::Int(self.browser.device.screen_height as i64),

            // --- Page context. ---
            "page.host" => Value::Str(self.page_url.host().as_str().to_string()),

            // --- Deterministic entropy for script-generated ids. ---
            "entropy.value" => {
                self.entropy_counter += 1;
                let v = mix(
                    self.browser.ctx.session,
                    hash(self.page_url.host().as_str()) ^ self.entropy_counter,
                );
                Value::Str(format!("{v:012x}"))
            }
            "entropy.hash" => {
                let v = hash(&Self::str_arg(args, 0));
                Value::Str(format!("{v:016x}"))
            }

            // --- Mining is record-only. ---
            "miner.start" => Value::Null,

            // Unknown vendor APIs no-op, like a real browser.
            _ => Value::Null,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use redlight_net::geoip::Country;
    use redlight_websim::server::BrowserKind;
    use redlight_websim::{World, WorldConfig};

    fn run_script(source: &str) -> (PageVisit, CanvasActivity) {
        // A throwaway world provides the server; the script here only
        // touches local state.
        let world = Box::leak(Box::new(World::build(WorldConfig::tiny(3))));
        let ctx = Browser::context_for(world, Country::Spain, BrowserKind::OpenWpm);
        let mut browser = Browser::new(world, ctx);
        let page = Url::parse("https://somepage.example/").unwrap();
        let mut visit = PageVisit::failed(page.clone(), false);
        let mut frames = Vec::new();
        let mut host = PageHost::new(&mut browser, &mut visit, &page, None, &mut frames);
        redlight_script::run(source, &mut host).unwrap();
        let canvas = host.take_canvas();
        (visit, canvas)
    }

    #[test]
    fn canvas_calls_accumulate_activity() {
        let (_visit, canvas) = run_script(
            "canvas.create(240, 60);\
             canvas.fillStyle('#f60');\
             canvas.fillStyle('#00a');\
             canvas.fillText('Sphinx of black quartz judge my vow', 2, 15);\
             let d = canvas.toDataURL();",
        );
        assert_eq!(canvas.width, 240);
        assert_eq!(canvas.fill_styles.len(), 2);
        assert_eq!(canvas.to_data_url_calls, 1);
        assert!(canvas.has_rich_text());
    }

    #[test]
    fn measure_text_tracks_font() {
        let (visit, canvas) = run_script(
            "canvas.setFont('probe-font-3');\
             canvas.measureText('mmmm');\
             canvas.setFont('probe-font-4');\
             canvas.measureText('mmmm');",
        );
        assert_eq!(canvas.fonts_set, 2);
        assert_eq!(canvas.measured.len(), 2);
        assert_eq!(canvas.measured[0].0, "probe-font-3");
        assert!(visit.js_calls.iter().any(|c| c.api == "canvas.measureText"));
    }

    #[test]
    fn script_cookies_are_first_party() {
        let (visit, _) = run_script("document.setCookie('u', 'abc123xyz', 3600);");
        assert_eq!(visit.cookies.len(), 1);
        let obs = &visit.cookies[0];
        assert_eq!(obs.via, SetVia::Script);
        assert_eq!(obs.effective_domain, "somepage.example");
        assert!(obs.accepted);
    }

    #[test]
    fn get_cookie_reads_back() {
        let (_, _) = run_script(
            "document.setCookie('k', 'v1', 60);\
             let v = document.getCookie('k');\
             if v != 'v1' { 1 / 0; }",
        );
    }

    #[test]
    fn webrtc_candidate_exposes_local_ip() {
        let (visit, _) =
            run_script("let ip = webrtc.candidate(); http.beacon('https://x.example/l?' + ip);");
        assert!(visit.js_calls.iter().any(|c| c.api == "webrtc.candidate"));
    }

    #[test]
    fn unknown_api_is_tolerated() {
        let (visit, _) = run_script("vendor.mystery(1, 'two');");
        assert_eq!(visit.js_calls.len(), 1);
        assert_eq!(visit.js_calls[0].args, vec!["1", "two"]);
    }
}
