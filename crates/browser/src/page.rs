//! The result of one page visit — a visit-scoped slice of what OpenWPM's
//! database holds.

use redlight_net::url::Url;
use serde::{Deserialize, Serialize};

use crate::canvas::CanvasActivity;
use crate::instrument::{CookieObservation, JsCall, RequestRecord};

/// Everything recorded while loading one landing page.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PageVisit {
    /// The URL the crawler asked for.
    pub requested_url: Url,
    /// The document URL that finally loaded (after redirects/downgrade).
    pub final_url: Option<Url>,
    /// Document loaded with a 2xx.
    pub success: bool,
    /// The load hit the crawler's page timeout (§3.1: 120 s).
    pub timeout: bool,
    /// HTTPS was attempted but the server only speaks HTTP.
    pub https_downgraded: bool,
    /// Every HTTP exchange, in causal order.
    pub requests: Vec<RequestRecord>,
    /// Every cookie-set event.
    pub cookies: Vec<CookieObservation>,
    /// Every instrumented JS host-API call.
    pub js_calls: Vec<JsCall>,
    /// Canvas activity per executed script (`None` = inline), materialized
    /// from the call stream for the fingerprinting analyses.
    pub canvas: Vec<(Option<Url>, CanvasActivity)>,
    /// The document markup as fetched (the "DOM dump").
    pub dom_html: String,
    /// Device-dependent screenshot stand-in.
    pub screenshot_hash: u64,
}

impl PageVisit {
    /// An empty failed visit.
    pub fn failed(requested_url: Url, timeout: bool) -> PageVisit {
        PageVisit {
            requested_url,
            final_url: None,
            success: false,
            timeout,
            https_downgraded: false,
            requests: Vec::new(),
            cookies: Vec::new(),
            js_calls: Vec::new(),
            canvas: Vec::new(),
            dom_html: String::new(),
            screenshot_hash: 0,
        }
    }

    /// Distinct hostnames contacted during the visit.
    pub fn contacted_hosts(&self) -> Vec<&str> {
        let mut hosts: Vec<&str> = self
            .requests
            .iter()
            .filter(|r| r.status.is_some())
            .map(|r| r.url.host().as_str())
            .collect();
        hosts.sort_unstable();
        hosts.dedup();
        hosts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instrument::{Initiator, RequestRecord};
    use redlight_net::http::{Method, ResourceKind, StatusCode};

    fn record(url: &str, ok: bool) -> RequestRecord {
        RequestRecord {
            url: Url::parse(url).unwrap(),
            method: Method::Get,
            kind: ResourceKind::Image,
            referrer: None,
            initiator: Initiator::Markup,
            status: ok.then_some(StatusCode::OK),
            content_type: None,
            cert: None,
            redirected_to: None,
        }
    }

    #[test]
    fn contacted_hosts_dedupes_and_skips_failures() {
        let mut visit = PageVisit::failed(Url::parse("https://site.com/").unwrap(), false);
        visit.requests.push(record("https://a.com/x", true));
        visit.requests.push(record("https://a.com/y", true));
        visit.requests.push(record("https://b.net/z", true));
        visit.requests.push(record("https://dead.example/", false));
        assert_eq!(visit.contacted_hosts(), vec!["a.com", "b.net"]);
    }

    #[test]
    fn failed_visit_shape() {
        let v = PageVisit::failed(Url::parse("https://x.com/").unwrap(), true);
        assert!(v.timeout);
        assert!(!v.success);
        assert!(v.final_url.is_none());
        assert!(v.contacted_hosts().is_empty());
    }
}
