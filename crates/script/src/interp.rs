//! Tree-walking interpreter with a step budget.

use std::collections::HashMap;

use crate::ast::{BinOp, Expr, Program, Stmt};
use crate::hostapi::HostApi;
use crate::parser::{parse_program, ParseError};
use crate::value::Value;

/// Errors surfaced while running a script.
#[derive(Debug, Clone, PartialEq)]
pub enum ScriptError {
    /// The source failed to parse.
    Parse(String),
    /// Reference to an undefined variable.
    Undefined(String),
    /// Type error in an operator or builtin.
    Type(String),
    /// Division or modulo by zero.
    DivideByZero,
    /// The step budget was exhausted (runaway loop).
    BudgetExhausted,
}

impl std::fmt::Display for ScriptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScriptError::Parse(m) => write!(f, "parse: {m}"),
            ScriptError::Undefined(v) => write!(f, "undefined variable {v}"),
            ScriptError::Type(m) => write!(f, "type error: {m}"),
            ScriptError::DivideByZero => write!(f, "division by zero"),
            ScriptError::BudgetExhausted => write!(f, "step budget exhausted"),
        }
    }
}

impl std::error::Error for ScriptError {}

impl From<ParseError> for ScriptError {
    fn from(e: ParseError) -> Self {
        ScriptError::Parse(e.message)
    }
}

/// Default step budget: generous for fingerprinting loops, tight enough to
/// stop a runaway script within microseconds.
pub const DEFAULT_BUDGET: u64 = 200_000;

/// Parses and runs `src` against `host` with the default budget. Returns the
/// script's `return` value (or `Null`).
pub fn run(src: &str, host: &mut dyn HostApi) -> Result<Value, ScriptError> {
    run_with_budget(src, host, DEFAULT_BUDGET)
}

/// Parses and runs `src` with an explicit step budget.
pub fn run_with_budget(
    src: &str,
    host: &mut dyn HostApi,
    budget: u64,
) -> Result<Value, ScriptError> {
    let program = parse_program(src)?;
    run_program(&program, host, budget)
}

/// Runs an already-parsed program.
pub fn run_program(
    program: &Program,
    host: &mut dyn HostApi,
    budget: u64,
) -> Result<Value, ScriptError> {
    let mut interp = Interp {
        vars: HashMap::new(),
        host,
        steps_left: budget,
    };
    match interp.exec_block(&program.body)? {
        Flow::Return(v) => Ok(v),
        Flow::Normal => Ok(Value::Null),
    }
}

enum Flow {
    Normal,
    Return(Value),
}

struct Interp<'h> {
    vars: HashMap<String, Value>,
    host: &'h mut dyn HostApi,
    steps_left: u64,
}

impl Interp<'_> {
    fn tick(&mut self) -> Result<(), ScriptError> {
        if self.steps_left == 0 {
            return Err(ScriptError::BudgetExhausted);
        }
        self.steps_left -= 1;
        Ok(())
    }

    fn exec_block(&mut self, stmts: &[Stmt]) -> Result<Flow, ScriptError> {
        for stmt in stmts {
            match self.exec_stmt(stmt)? {
                Flow::Normal => {}
                ret => return Ok(ret),
            }
        }
        Ok(Flow::Normal)
    }

    fn exec_stmt(&mut self, stmt: &Stmt) -> Result<Flow, ScriptError> {
        self.tick()?;
        match stmt {
            Stmt::Let { name, value } | Stmt::Assign { name, value } => {
                let v = self.eval(value)?;
                self.vars.insert(name.clone(), v);
                Ok(Flow::Normal)
            }
            Stmt::Expr(e) => {
                self.eval(e)?;
                Ok(Flow::Normal)
            }
            Stmt::If {
                cond,
                then_block,
                else_block,
            } => {
                if self.eval(cond)?.truthy() {
                    self.exec_block(then_block)
                } else {
                    self.exec_block(else_block)
                }
            }
            Stmt::For {
                var,
                start,
                end,
                body,
            } => {
                let s = self
                    .eval(start)?
                    .as_int()
                    .ok_or_else(|| ScriptError::Type("for range start must be int".into()))?;
                let e = self
                    .eval(end)?
                    .as_int()
                    .ok_or_else(|| ScriptError::Type("for range end must be int".into()))?;
                for i in s..e {
                    self.tick()?;
                    self.vars.insert(var.clone(), Value::Int(i));
                    match self.exec_block(body)? {
                        Flow::Normal => {}
                        ret => return Ok(ret),
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::Return(expr) => {
                let v = match expr {
                    Some(e) => self.eval(e)?,
                    None => Value::Null,
                };
                Ok(Flow::Return(v))
            }
        }
    }

    fn eval(&mut self, expr: &Expr) -> Result<Value, ScriptError> {
        self.tick()?;
        match expr {
            Expr::Literal(v) => Ok(v.clone()),
            Expr::Var(name) => self
                .vars
                .get(name)
                .cloned()
                .ok_or_else(|| ScriptError::Undefined(name.clone())),
            Expr::Unary { negate, not, inner } => {
                let v = self.eval(inner)?;
                if *not {
                    return Ok(Value::Bool(!v.truthy()));
                }
                if *negate {
                    return match v {
                        Value::Int(n) => Ok(Value::Int(-n)),
                        other => Err(ScriptError::Type(format!("cannot negate {other}"))),
                    };
                }
                Ok(v)
            }
            Expr::Binary { op, lhs, rhs } => self.eval_binary(*op, lhs, rhs),
            Expr::Call { target, args } => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(a)?);
                }
                self.call(target, &vals)
            }
        }
    }

    fn eval_binary(&mut self, op: BinOp, lhs: &Expr, rhs: &Expr) -> Result<Value, ScriptError> {
        // Short-circuit logic first.
        match op {
            BinOp::And => {
                let l = self.eval(lhs)?;
                if !l.truthy() {
                    return Ok(Value::Bool(false));
                }
                return Ok(Value::Bool(self.eval(rhs)?.truthy()));
            }
            BinOp::Or => {
                let l = self.eval(lhs)?;
                if l.truthy() {
                    return Ok(Value::Bool(true));
                }
                return Ok(Value::Bool(self.eval(rhs)?.truthy()));
            }
            _ => {}
        }
        let l = self.eval(lhs)?;
        let r = self.eval(rhs)?;
        match op {
            BinOp::Add => match (&l, &r) {
                (Value::Int(a), Value::Int(b)) => Ok(Value::Int(a.wrapping_add(*b))),
                // `+` with any string operand concatenates, like JS.
                (Value::Str(_), _) | (_, Value::Str(_)) => Ok(Value::Str(format!("{l}{r}"))),
                _ => Err(ScriptError::Type(format!("cannot add {l} and {r}"))),
            },
            BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => {
                let (a, b) = match (l.as_int(), r.as_int()) {
                    (Some(a), Some(b)) => (a, b),
                    _ => return Err(ScriptError::Type("arithmetic requires integers".into())),
                };
                match op {
                    BinOp::Sub => Ok(Value::Int(a.wrapping_sub(b))),
                    BinOp::Mul => Ok(Value::Int(a.wrapping_mul(b))),
                    BinOp::Div => {
                        if b == 0 {
                            Err(ScriptError::DivideByZero)
                        } else {
                            Ok(Value::Int(a.wrapping_div(b)))
                        }
                    }
                    BinOp::Mod => {
                        if b == 0 {
                            Err(ScriptError::DivideByZero)
                        } else {
                            Ok(Value::Int(a.wrapping_rem(b)))
                        }
                    }
                    _ => unreachable!(),
                }
            }
            BinOp::Eq => Ok(Value::Bool(l == r)),
            BinOp::Ne => Ok(Value::Bool(l != r)),
            BinOp::Lt | BinOp::Gt | BinOp::Le | BinOp::Ge => {
                let ord = match (&l, &r) {
                    (Value::Int(a), Value::Int(b)) => a.cmp(b),
                    (Value::Str(a), Value::Str(b)) => a.cmp(b),
                    _ => return Err(ScriptError::Type(format!("cannot compare {l} and {r}"))),
                };
                Ok(Value::Bool(match op {
                    BinOp::Lt => ord.is_lt(),
                    BinOp::Gt => ord.is_gt(),
                    BinOp::Le => ord.is_le(),
                    BinOp::Ge => ord.is_ge(),
                    _ => unreachable!(),
                }))
            }
            BinOp::And | BinOp::Or => unreachable!("handled above"),
        }
    }

    /// Builtins first, then the host.
    fn call(&mut self, target: &str, args: &[Value]) -> Result<Value, ScriptError> {
        match target {
            "str" => Ok(Value::Str(
                args.first().map(|v| v.to_string()).unwrap_or_default(),
            )),
            "len" => match args.first() {
                Some(Value::Str(s)) => Ok(Value::Int(s.chars().count() as i64)),
                _ => Err(ScriptError::Type("len expects a string".into())),
            },
            "substr" => match (args.first(), args.get(1), args.get(2)) {
                (Some(Value::Str(s)), Some(Value::Int(i)), Some(Value::Int(j))) => {
                    let chars: Vec<char> = s.chars().collect();
                    let i = (*i).clamp(0, chars.len() as i64) as usize;
                    let j = (*j).clamp(i as i64, chars.len() as i64) as usize;
                    Ok(Value::Str(chars[i..j].iter().collect()))
                }
                _ => Err(ScriptError::Type("substr expects (str, int, int)".into())),
            },
            "chr" => match args.first() {
                Some(Value::Int(n)) => Ok(Value::Str(
                    char::from_u32((*n).rem_euclid(0x110000_i64) as u32)
                        .unwrap_or('\u{fffd}')
                        .to_string(),
                )),
                _ => Err(ScriptError::Type("chr expects an int".into())),
            },
            _ => Ok(self.host.call(target, args)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hostapi::CollectingHost;

    fn eval_return(src: &str) -> Value {
        let mut h = CollectingHost::default();
        run(src, &mut h).unwrap()
    }

    #[test]
    fn arithmetic_and_return() {
        assert_eq!(eval_return("return 2 + 3 * 4;"), Value::Int(14));
        assert_eq!(eval_return("return (2 + 3) * 4;"), Value::Int(20));
        assert_eq!(eval_return("return 10 % 3;"), Value::Int(1));
        assert_eq!(eval_return("return -5 + 2;"), Value::Int(-3));
    }

    #[test]
    fn string_concat_like_js() {
        assert_eq!(
            eval_return("return 'uid=' + 42 + '&v=' + true;"),
            Value::Str("uid=42&v=true".into())
        );
    }

    #[test]
    fn loops_accumulate() {
        assert_eq!(
            eval_return("let s = 0; for i in 1..5 { s = s + i; } return s;"),
            Value::Int(10)
        );
    }

    #[test]
    fn if_else_branches() {
        assert_eq!(
            eval_return("let x = 5; if x > 3 { return 'big'; } else { return 'small'; }"),
            Value::Str("big".into())
        );
        assert_eq!(
            eval_return("if 1 > 3 { return 'a'; } else if 2 > 1 { return 'b'; } return 'c';"),
            Value::Str("b".into())
        );
    }

    #[test]
    fn short_circuit_does_not_eval_rhs() {
        // If rhs were evaluated, the undefined variable would error.
        assert_eq!(eval_return("return false && missing;"), Value::Bool(false));
        assert_eq!(eval_return("return true || missing;"), Value::Bool(true));
    }

    #[test]
    fn builtins() {
        assert_eq!(eval_return("return len('abcd');"), Value::Int(4));
        assert_eq!(
            eval_return("return substr('abcdef', 1, 4);"),
            Value::Str("bcd".into())
        );
        assert_eq!(eval_return("return chr(65);"), Value::Str("A".into()));
        assert_eq!(
            eval_return("return str(12) + str(true);"),
            Value::Str("12true".into())
        );
        // substr clamps out-of-range indices.
        assert_eq!(
            eval_return("return substr('ab', 5, 9);"),
            Value::Str("".into())
        );
    }

    #[test]
    fn host_calls_are_recorded_in_order() {
        let mut h = CollectingHost::default();
        run(
            "for i in 0..3 { canvas.measureText('mmmm' + i); } document.setCookie('u', 'x');",
            &mut h,
        )
        .unwrap();
        assert_eq!(h.calls.len(), 4);
        assert_eq!(h.calls[0].0, "canvas.measureText");
        assert_eq!(h.calls[0].1[0], Value::Str("mmmm0".into()));
        assert_eq!(h.calls[3].0, "document.setCookie");
    }

    #[test]
    fn host_return_values_flow_back() {
        let mut h = CollectingHost {
            responses: vec![("document.getCookie".into(), Value::Str("uid=42".into()))],
            ..Default::default()
        };
        let v = run("return document.getCookie('uid');", &mut h).unwrap();
        assert_eq!(v, Value::Str("uid=42".into()));
    }

    #[test]
    fn runtime_errors() {
        let mut h = CollectingHost::default();
        assert_eq!(run("return 1 / 0;", &mut h), Err(ScriptError::DivideByZero));
        assert!(matches!(
            run("return missing;", &mut h),
            Err(ScriptError::Undefined(_))
        ));
        assert!(matches!(
            run("return 'a' - 1;", &mut h),
            Err(ScriptError::Type(_))
        ));
    }

    #[test]
    fn budget_stops_runaway_loops() {
        let mut h = CollectingHost::default();
        let err = run_with_budget(
            "let x = 0; for i in 0..1000000000 { x = x + 1; }",
            &mut h,
            10_000,
        )
        .unwrap_err();
        assert_eq!(err, ScriptError::BudgetExhausted);
    }

    #[test]
    fn early_return_exits_loop() {
        assert_eq!(
            eval_return("for i in 0..100 { if i == 7 { return i; } } return -1;"),
            Value::Int(7)
        );
    }
}
