//! Runtime values.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A script runtime value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// The absent value (also what unknown host calls return).
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// UTF-8 string.
    Str(String),
}

impl Value {
    /// Truthiness: `null`, `false`, `0` and `""` are falsy.
    pub fn truthy(&self) -> bool {
        match self {
            Value::Null => false,
            Value::Bool(b) => *b,
            Value::Int(n) => *n != 0,
            Value::Str(s) => !s.is_empty(),
        }
    }

    /// The integer inside, when this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The string inside, when this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(n) => write!(f, "{n}"),
            Value::Str(s) => f.write_str(s),
        }
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Self {
        Value::Int(n)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truthiness() {
        assert!(!Value::Null.truthy());
        assert!(!Value::Bool(false).truthy());
        assert!(!Value::Int(0).truthy());
        assert!(!Value::Str(String::new()).truthy());
        assert!(Value::Bool(true).truthy());
        assert!(Value::Int(-1).truthy());
        assert!(Value::Str("x".into()).truthy());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Null.to_string(), "null");
        assert_eq!(Value::Int(42).to_string(), "42");
        assert_eq!(Value::Str("uid".into()).to_string(), "uid");
        assert_eq!(Value::Bool(true).to_string(), "true");
    }
}
