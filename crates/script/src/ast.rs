//! Abstract syntax tree.

use crate::value::Value;

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// Addition / string concatenation (`+`).
    Add,
    /// Subtraction (`-`).
    Sub,
    /// Multiplication (`*`).
    Mul,
    /// Integer division (`/`).
    Div,
    /// Remainder (`%`).
    Mod,
    /// Equality (`==`).
    Eq,
    /// Inequality (`!=`).
    Ne,
    /// Less-than (`<`).
    Lt,
    /// Greater-than (`>`).
    Gt,
    /// Less-or-equal (`<=`).
    Le,
    /// Greater-or-equal (`>=`).
    Ge,
    /// Short-circuit conjunction (`&&`).
    And,
    /// Short-circuit disjunction (`||`).
    Or,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal value.
    Literal(Value),
    /// A variable reference.
    Var(String),
    /// Unary negation (`-`) and/or logical not (`!`).
    Unary {
        /// Arithmetic negation requested.
        negate: bool,
        /// Logical not requested.
        not: bool,
        /// The operand.
        inner: Box<Expr>,
    },
    /// A binary operation.
    Binary {
        /// The operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// A call to a dotted host function (`canvas.fillText`) or a builtin
    /// (`str`, `len`, `substr`, `chr`).
    Call {
        /// Dotted host-function or builtin name.
        target: String,
        /// Argument expressions, in order.
        args: Vec<Expr>,
    },
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `let name = value;` — declares (or shadows) a variable.
    Let {
        /// Variable name.
        name: String,
        /// Initializer.
        value: Expr,
    },
    /// `name = value;` — reassignment.
    Assign {
        /// Variable name.
        name: String,
        /// New value.
        value: Expr,
    },
    /// A bare expression statement (usually a host call).
    Expr(Expr),
    /// `if cond { … } else { … }`.
    If {
        /// Branch condition.
        cond: Expr,
        /// Statements when the condition is truthy.
        then_block: Vec<Stmt>,
        /// Statements otherwise (empty when no `else`).
        else_block: Vec<Stmt>,
    },
    /// `for var in start..end { … }` — a bounded integer loop.
    For {
        /// Loop variable.
        var: String,
        /// Inclusive start expression.
        start: Expr,
        /// Exclusive end expression.
        end: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `return expr?;` — ends the program with a value.
    Return(Option<Expr>),
}

/// A whole program.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Top-level statements, in source order.
    pub body: Vec<Stmt>,
}
