//! Lexer for the mini scripting language.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    // literals
    /// Integer literal.
    Int(i64),
    /// String literal (escapes resolved).
    Str(String),
    /// Identifier (variable or call-path segment).
    Ident(String),
    // keywords
    /// `let` keyword.
    Let,
    /// `for` keyword.
    For,
    /// `in` keyword.
    In,
    /// `if` keyword.
    If,
    /// `else` keyword.
    Else,
    /// `return` keyword.
    Return,
    /// `true` literal.
    True,
    /// `false` literal.
    False,
    /// `null` literal.
    Null,
    // punctuation / operators
    /// `(`.
    LParen,
    /// `)`.
    RParen,
    /// `{`.
    LBrace,
    /// `}`.
    RBrace,
    /// `,`.
    Comma,
    /// `;`.
    Semi,
    /// `.` (call-path separator).
    Dot,
    /// `..` (range operator).
    DotDot,
    /// `=`.
    Assign,
    /// `+`.
    Plus,
    /// `-`.
    Minus,
    /// `*`.
    Star,
    /// `/`.
    Slash,
    /// `%`.
    Percent,
    /// `==`.
    Eq,
    /// `!=`.
    Ne,
    /// `<`.
    Lt,
    /// `>`.
    Gt,
    /// `<=`.
    Le,
    /// `>=`.
    Ge,
    /// `&&`.
    AndAnd,
    /// `||`.
    OrOr,
    /// `!`.
    Bang,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// A lexing error with byte offset.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    /// Byte offset of the offending input.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

/// Tokenizes `src`. Line (`//`) comments are skipped.
pub fn lex(src: &str) -> Result<Vec<Tok>, LexError> {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'(' => {
                toks.push(Tok::LParen);
                i += 1;
            }
            b')' => {
                toks.push(Tok::RParen);
                i += 1;
            }
            b'{' => {
                toks.push(Tok::LBrace);
                i += 1;
            }
            b'}' => {
                toks.push(Tok::RBrace);
                i += 1;
            }
            b',' => {
                toks.push(Tok::Comma);
                i += 1;
            }
            b';' => {
                toks.push(Tok::Semi);
                i += 1;
            }
            b'.' => {
                if bytes.get(i + 1) == Some(&b'.') {
                    toks.push(Tok::DotDot);
                    i += 2;
                } else {
                    toks.push(Tok::Dot);
                    i += 1;
                }
            }
            b'+' => {
                toks.push(Tok::Plus);
                i += 1;
            }
            b'-' => {
                toks.push(Tok::Minus);
                i += 1;
            }
            b'*' => {
                toks.push(Tok::Star);
                i += 1;
            }
            b'/' => {
                toks.push(Tok::Slash);
                i += 1;
            }
            b'%' => {
                toks.push(Tok::Percent);
                i += 1;
            }
            b'=' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    toks.push(Tok::Eq);
                    i += 2;
                } else {
                    toks.push(Tok::Assign);
                    i += 1;
                }
            }
            b'!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    toks.push(Tok::Ne);
                    i += 2;
                } else {
                    toks.push(Tok::Bang);
                    i += 1;
                }
            }
            b'<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    toks.push(Tok::Le);
                    i += 2;
                } else {
                    toks.push(Tok::Lt);
                    i += 1;
                }
            }
            b'>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    toks.push(Tok::Ge);
                    i += 2;
                } else {
                    toks.push(Tok::Gt);
                    i += 1;
                }
            }
            b'&' if bytes.get(i + 1) == Some(&b'&') => {
                toks.push(Tok::AndAnd);
                i += 2;
            }
            b'|' if bytes.get(i + 1) == Some(&b'|') => {
                toks.push(Tok::OrOr);
                i += 2;
            }
            b'"' | b'\'' => {
                let quote = b;
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    if i >= bytes.len() {
                        return Err(LexError {
                            offset: start,
                            message: "unterminated string".into(),
                        });
                    }
                    match bytes[i] {
                        q if q == quote => {
                            i += 1;
                            break;
                        }
                        b'\\' => {
                            let esc = src[i + 1..].chars().next().ok_or(LexError {
                                offset: i,
                                message: "dangling escape".into(),
                            })?;
                            s.push(match esc {
                                'n' => '\n',
                                't' => '\t',
                                other => other,
                            });
                            i += 1 + esc.len_utf8();
                        }
                        _ => {
                            // Consume one UTF-8 scalar.
                            let ch_len = utf8_len(bytes[i]);
                            s.push_str(&src[i..i + ch_len]);
                            i += ch_len;
                        }
                    }
                }
                toks.push(Tok::Str(s));
            }
            b'0'..=b'9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let n: i64 = src[start..i].parse().map_err(|_| LexError {
                    offset: start,
                    message: "integer overflow".into(),
                })?;
                toks.push(Tok::Int(n));
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                let word = &src[start..i];
                toks.push(match word {
                    "let" => Tok::Let,
                    "for" => Tok::For,
                    "in" => Tok::In,
                    "if" => Tok::If,
                    "else" => Tok::Else,
                    "return" => Tok::Return,
                    "true" => Tok::True,
                    "false" => Tok::False,
                    "null" => Tok::Null,
                    _ => Tok::Ident(word.to_string()),
                });
            }
            other => {
                return Err(LexError {
                    offset: i,
                    message: format!("unexpected character {:?}", other as char),
                });
            }
        }
    }
    Ok(toks)
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_statement() {
        let toks = lex("let x = 1 + 2;").unwrap();
        assert_eq!(
            toks,
            vec![
                Tok::Let,
                Tok::Ident("x".into()),
                Tok::Assign,
                Tok::Int(1),
                Tok::Plus,
                Tok::Int(2),
                Tok::Semi
            ]
        );
    }

    #[test]
    fn lexes_dotted_call_and_range() {
        let toks = lex("canvas.fillText(\"hi\", 0..5)").unwrap();
        assert!(toks.contains(&Tok::Dot));
        assert!(toks.contains(&Tok::DotDot));
        assert!(toks.contains(&Tok::Str("hi".into())));
    }

    #[test]
    fn string_escapes_and_quotes() {
        let toks = lex(r#"'it\'s' "a\nb""#).unwrap();
        assert_eq!(toks[0], Tok::Str("it's".into()));
        assert_eq!(toks[1], Tok::Str("a\nb".into()));
    }

    #[test]
    fn comments_are_skipped() {
        let toks = lex("let x = 1; // set cookie here\nlet y = 2;").unwrap();
        assert_eq!(toks.iter().filter(|t| **t == Tok::Let).count(), 2);
    }

    #[test]
    fn comparison_operators() {
        let toks = lex("a == b != c <= d >= e < f > g && h || !i").unwrap();
        for t in [
            Tok::Eq,
            Tok::Ne,
            Tok::Le,
            Tok::Ge,
            Tok::Lt,
            Tok::Gt,
            Tok::AndAnd,
            Tok::OrOr,
            Tok::Bang,
        ] {
            assert!(toks.contains(&t), "missing {t}");
        }
    }

    #[test]
    fn errors_carry_offsets() {
        let err = lex("let x = @").unwrap_err();
        assert_eq!(err.offset, 8);
        assert!(lex("\"open").is_err());
    }

    #[test]
    fn unicode_strings_pass_through() {
        let toks = lex("'Cwm fjörd 🦀'").unwrap();
        assert_eq!(toks[0], Tok::Str("Cwm fjörd 🦀".into()));
    }
}
