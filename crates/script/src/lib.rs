//! # redlight-script
//!
//! A miniature JavaScript-like scripting language with an **instrumented
//! host-API surface**. Tracker scripts in the synthetic web ecosystem are
//! written in this language; the instrumented browser interprets them and
//! records every host-API call, exactly as OpenWPM's JavaScript
//! instrumentation records calls to `CanvasRenderingContext2D`,
//! `HTMLCanvasElement`, `measureText`, WebRTC and `document.cookie`
//! (paper §§3.1, 5.1.3, 5.1.4).
//!
//! The language supports variables, arithmetic and string concatenation,
//! comparisons, `if`/`else`, bounded `for` loops, and dotted host calls like
//! `canvas.fillText("Cwm fjordbank", 2, 15)`. The interpreter enforces a
//! step budget so no generated script can hang a crawl.
//!
//! ```
//! use redlight_script::{run, CollectingHost, Value};
//! let mut host = CollectingHost::default();
//! run("let n = 0; for i in 0..3 { n = n + i; } host.note(str(n));", &mut host).unwrap();
//! assert_eq!(host.calls[0].1[0], Value::Str("3".into()));
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod hostapi;
pub mod interp;
pub mod lexer;
pub mod parser;
pub mod value;

pub use hostapi::{CollectingHost, HostApi};
pub use interp::{run, run_with_budget, ScriptError};
pub use parser::parse_program;
pub use value::Value;
