//! The host-API boundary between scripts and the embedding browser.
//!
//! Every dotted call in a script (`document.setCookie`, `canvas.fillText`,
//! `webrtc.createDataChannel`, `http.beacon`, …) is routed through
//! [`HostApi::call`]. The instrumented browser implements this trait and
//! records each call — the direct analog of OpenWPM's `javascript`
//! instrumentation table.

use crate::value::Value;

/// Host functions exposed to scripts.
pub trait HostApi {
    /// Invokes host function `name` with `args`, returning its result.
    ///
    /// Unknown functions should return [`Value::Null`] rather than erroring:
    /// real browsers silently no-op on missing vendor APIs, and tracker
    /// scripts probe for them.
    fn call(&mut self, name: &str, args: &[Value]) -> Value;
}

/// A trivial host that records calls and returns scripted responses; used by
/// tests and by callers that only need the call trace.
#[derive(Debug, Default)]
pub struct CollectingHost {
    /// `(function name, arguments)` in call order.
    pub calls: Vec<(String, Vec<Value>)>,
    /// Optional canned responses: `(function name, value to return)`.
    pub responses: Vec<(String, Value)>,
}

impl HostApi for CollectingHost {
    fn call(&mut self, name: &str, args: &[Value]) -> Value {
        self.calls.push((name.to_string(), args.to_vec()));
        self.responses
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.clone())
            .unwrap_or(Value::Null)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collecting_host_records_and_replays() {
        let mut h = CollectingHost {
            responses: vec![(
                "navigator.userAgent".into(),
                Value::Str("Firefox/52".into()),
            )],
            ..Default::default()
        };
        let ua = h.call("navigator.userAgent", &[]);
        assert_eq!(ua, Value::Str("Firefox/52".into()));
        let missing = h.call("vendor.mystery", &[Value::Int(1)]);
        assert_eq!(missing, Value::Null);
        assert_eq!(h.calls.len(), 2);
        assert_eq!(h.calls[1].1, vec![Value::Int(1)]);
    }
}
