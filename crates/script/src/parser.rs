//! Recursive-descent parser: token stream → [`Program`].

use crate::ast::{BinOp, Expr, Program, Stmt};
use crate::lexer::{lex, LexError, Tok};
use crate::value::Value;

/// A parse error.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Human-readable description with a token position.
    pub message: String,
}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            message: format!("lex error at byte {}: {}", e.offset, e.message),
        }
    }
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error: {}", self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses source text into a program.
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    let mut body = Vec::new();
    while !p.at_end() {
        body.push(p.stmt()?);
    }
    Ok(Program { body })
}

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Result<Tok, ParseError> {
        let t = self
            .toks
            .get(self.pos)
            .cloned()
            .ok_or_else(|| self.err("unexpected end of input"))?;
        self.pos += 1;
        Ok(t)
    }

    fn expect(&mut self, tok: &Tok) -> Result<(), ParseError> {
        let t = self.next()?;
        if &t == tok {
            Ok(())
        } else {
            Err(self.err(&format!("expected {tok}, found {t}")))
        }
    }

    fn eat(&mut self, tok: &Tok) -> bool {
        if self.peek() == Some(tok) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            message: format!("{msg} (token {})", self.pos),
        }
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        match self.peek() {
            Some(Tok::Let) => {
                self.pos += 1;
                let name = self.ident()?;
                self.expect(&Tok::Assign)?;
                let value = self.expr()?;
                self.expect(&Tok::Semi)?;
                Ok(Stmt::Let { name, value })
            }
            Some(Tok::If) => {
                self.pos += 1;
                let cond = self.expr()?;
                let then_block = self.block()?;
                let else_block = if self.eat(&Tok::Else) {
                    if self.peek() == Some(&Tok::If) {
                        vec![self.stmt()?]
                    } else {
                        self.block()?
                    }
                } else {
                    Vec::new()
                };
                Ok(Stmt::If {
                    cond,
                    then_block,
                    else_block,
                })
            }
            Some(Tok::For) => {
                self.pos += 1;
                let var = self.ident()?;
                self.expect(&Tok::In)?;
                let start = self.expr()?;
                self.expect(&Tok::DotDot)?;
                let end = self.expr()?;
                let body = self.block()?;
                Ok(Stmt::For {
                    var,
                    start,
                    end,
                    body,
                })
            }
            Some(Tok::Return) => {
                self.pos += 1;
                if self.eat(&Tok::Semi) {
                    Ok(Stmt::Return(None))
                } else {
                    let e = self.expr()?;
                    self.expect(&Tok::Semi)?;
                    Ok(Stmt::Return(Some(e)))
                }
            }
            // Assignment vs expression statement: IDENT '=' …
            Some(Tok::Ident(_)) if self.toks.get(self.pos + 1) == Some(&Tok::Assign) => {
                let name = self.ident()?;
                self.pos += 1; // '='
                let value = self.expr()?;
                self.expect(&Tok::Semi)?;
                Ok(Stmt::Assign { name, value })
            }
            _ => {
                let e = self.expr()?;
                self.expect(&Tok::Semi)?;
                Ok(Stmt::Expr(e))
            }
        }
    }

    fn block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        self.expect(&Tok::LBrace)?;
        let mut body = Vec::new();
        while self.peek() != Some(&Tok::RBrace) {
            if self.at_end() {
                return Err(self.err("unterminated block"));
            }
            body.push(self.stmt()?);
        }
        self.pos += 1; // '}'
        Ok(body)
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.next()? {
            Tok::Ident(s) => Ok(s),
            other => Err(self.err(&format!("expected identifier, found {other}"))),
        }
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.and_expr()?;
        while self.eat(&Tok::OrOr) {
            let rhs = self.and_expr()?;
            lhs = Expr::Binary {
                op: BinOp::Or,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.cmp_expr()?;
        while self.eat(&Tok::AndAnd) {
            let rhs = self.cmp_expr()?;
            lhs = Expr::Binary {
                op: BinOp::And,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            Some(Tok::Eq) => Some(BinOp::Eq),
            Some(Tok::Ne) => Some(BinOp::Ne),
            Some(Tok::Lt) => Some(BinOp::Lt),
            Some(Tok::Gt) => Some(BinOp::Gt),
            Some(Tok::Le) => Some(BinOp::Le),
            Some(Tok::Ge) => Some(BinOp::Ge),
            _ => None,
        };
        match op {
            Some(op) => {
                self.pos += 1;
                let rhs = self.add_expr()?;
                Ok(Expr::Binary {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                })
            }
            None => Ok(lhs),
        }
    }

    fn add_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Plus) => BinOp::Add,
                Some(Tok::Minus) => BinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.mul_expr()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Star) => BinOp::Mul,
                Some(Tok::Slash) => BinOp::Div,
                Some(Tok::Percent) => BinOp::Mod,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.unary_expr()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, ParseError> {
        if self.eat(&Tok::Minus) {
            let inner = self.unary_expr()?;
            return Ok(Expr::Unary {
                negate: true,
                not: false,
                inner: Box::new(inner),
            });
        }
        if self.eat(&Tok::Bang) {
            let inner = self.unary_expr()?;
            return Ok(Expr::Unary {
                negate: false,
                not: true,
                inner: Box::new(inner),
            });
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        match self.next()? {
            Tok::Int(n) => Ok(Expr::Literal(Value::Int(n))),
            Tok::Str(s) => Ok(Expr::Literal(Value::Str(s))),
            Tok::True => Ok(Expr::Literal(Value::Bool(true))),
            Tok::False => Ok(Expr::Literal(Value::Bool(false))),
            Tok::Null => Ok(Expr::Literal(Value::Null)),
            Tok::LParen => {
                let e = self.expr()?;
                self.expect(&Tok::RParen)?;
                Ok(e)
            }
            Tok::Ident(first) => {
                // Dotted path: ident ('.' ident)*
                let mut path = first;
                while self.eat(&Tok::Dot) {
                    let part = self.ident()?;
                    path.push('.');
                    path.push_str(&part);
                }
                if self.eat(&Tok::LParen) {
                    let mut args = Vec::new();
                    if self.peek() != Some(&Tok::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(&Tok::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(&Tok::RParen)?;
                    Ok(Expr::Call { target: path, args })
                } else if path.contains('.') {
                    Err(self.err(&format!("dotted name {path} must be called")))
                } else {
                    Ok(Expr::Var(path))
                }
            }
            other => Err(self.err(&format!("unexpected token {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_let_and_arith_precedence() {
        let p = parse_program("let x = 1 + 2 * 3;").unwrap();
        match &p.body[0] {
            Stmt::Let { name, value } => {
                assert_eq!(name, "x");
                // 1 + (2*3)
                match value {
                    Expr::Binary {
                        op: BinOp::Add,
                        rhs,
                        ..
                    } => {
                        assert!(matches!(**rhs, Expr::Binary { op: BinOp::Mul, .. }));
                    }
                    other => panic!("wrong tree: {other:?}"),
                }
            }
            other => panic!("expected let: {other:?}"),
        }
    }

    #[test]
    fn parses_host_call() {
        let p = parse_program("canvas.fillText('hi', 2, 15);").unwrap();
        match &p.body[0] {
            Stmt::Expr(Expr::Call { target, args }) => {
                assert_eq!(target, "canvas.fillText");
                assert_eq!(args.len(), 3);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_for_and_if_else() {
        let p = parse_program(
            "for i in 0..50 { if i % 2 == 0 { canvas.measureText('mmm'); } else { noop(); } }",
        )
        .unwrap();
        match &p.body[0] {
            Stmt::For { var, body, .. } => {
                assert_eq!(var, "i");
                assert!(matches!(body[0], Stmt::If { .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_else_if_chain() {
        let p = parse_program("if a { x(); } else if b { y(); } else { z(); }").unwrap();
        match &p.body[0] {
            Stmt::If { else_block, .. } => {
                assert!(matches!(else_block[0], Stmt::If { .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn assignment_vs_expression() {
        let p = parse_program("x = x + 1; f(x);").unwrap();
        assert!(matches!(p.body[0], Stmt::Assign { .. }));
        assert!(matches!(p.body[1], Stmt::Expr(Expr::Call { .. })));
    }

    #[test]
    fn dotted_name_without_call_is_an_error() {
        assert!(parse_program("let x = document.cookie;").is_err());
    }

    #[test]
    fn reports_errors() {
        assert!(parse_program("let = 1;").is_err());
        assert!(parse_program("if x { y();").is_err());
        assert!(parse_program("f(1,;").is_err());
        assert!(parse_program("let x = 1").is_err()); // missing semicolon
    }

    #[test]
    fn return_with_and_without_value() {
        let p = parse_program("return; return 42;").unwrap();
        assert_eq!(p.body[0], Stmt::Return(None));
        assert_eq!(p.body[1], Stmt::Return(Some(Expr::Literal(Value::Int(42)))));
    }
}
