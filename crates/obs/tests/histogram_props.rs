//! Property tests for the log-2 histogram: bucket edges, shard-merge
//! equivalence and quantile monotonicity.

use proptest::prelude::*;
use redlight_obs::{Histogram, HistogramSnapshot, HISTOGRAM_BUCKETS};

proptest! {
    #[test]
    fn bucket_bounds_bracket_every_value(v in any::<u64>()) {
        let i = Histogram::bucket_index(v);
        prop_assert!(i < HISTOGRAM_BUCKETS);
        prop_assert!(v <= Histogram::bucket_bound(i));
        if i > 0 {
            prop_assert!(v > Histogram::bucket_bound(i - 1));
        }
    }

    #[test]
    fn merge_of_shards_equals_single_shard(
        a in proptest::collection::vec(any::<u64>(), 0..64),
        b in proptest::collection::vec(any::<u64>(), 0..64),
    ) {
        let single = Histogram::new();
        for &v in a.iter().chain(&b) {
            single.record(v);
        }

        let shard_a = Histogram::new();
        let shard_b = Histogram::new();
        for &v in &a {
            shard_a.record(v);
        }
        for &v in &b {
            shard_b.record(v);
        }
        let mut merged = shard_a.snapshot();
        merged.merge(&shard_b.snapshot());
        prop_assert_eq!(&merged, &single.snapshot());

        // Registry-style absorption agrees with snapshot merge.
        let absorbed = Histogram::new();
        absorbed.absorb(&shard_a.snapshot());
        absorbed.absorb(&shard_b.snapshot());
        prop_assert_eq!(&absorbed.snapshot(), &single.snapshot());
    }

    #[test]
    fn min_max_are_exact_and_survive_merge(
        a in proptest::collection::vec(any::<u64>(), 0..64),
        b in proptest::collection::vec(any::<u64>(), 0..64),
    ) {
        let shard_a = Histogram::new();
        let shard_b = Histogram::new();
        for &v in &a {
            shard_a.record(v);
        }
        for &v in &b {
            shard_b.record(v);
        }
        let mut merged = shard_a.snapshot();
        merged.merge(&shard_b.snapshot());

        let all: Vec<u64> = a.iter().chain(&b).copied().collect();
        prop_assert_eq!(merged.min(), all.iter().min().copied());
        prop_assert_eq!(merged.max(), all.iter().max().copied());

        // Registry-style absorption tracks the same exact extrema.
        let absorbed = Histogram::new();
        absorbed.absorb(&shard_a.snapshot());
        absorbed.absorb(&shard_b.snapshot());
        prop_assert_eq!(absorbed.snapshot().min(), all.iter().min().copied());
        prop_assert_eq!(absorbed.snapshot().max(), all.iter().max().copied());
    }

    #[test]
    fn min_max_bracket_every_quantile(values in proptest::collection::vec(any::<u64>(), 1..64)) {
        // Exact extrema tighten the bucketed quantiles on both ends: no
        // quantile estimate may exceed the true max's bucket bound, and
        // the recorded min is a floor on the smallest observation.
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let snap = h.snapshot();
        let lo = snap.min().expect("non-empty");
        let hi = snap.max().expect("non-empty");
        prop_assert_eq!(lo, *values.iter().min().unwrap());
        prop_assert_eq!(hi, *values.iter().max().unwrap());
        prop_assert!(lo <= hi);
        for q in [0.0, 0.5, 0.99, 1.0] {
            prop_assert!(snap.quantile(q) <= Histogram::bucket_bound(Histogram::bucket_index(hi)));
        }
    }

    #[test]
    fn quantiles_monotone_in_q(values in proptest::collection::vec(any::<u64>(), 1..64)) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let snap = h.snapshot();
        let quantiles = [0.0, 0.25, 0.5, 0.9, 0.99, 1.0];
        for pair in quantiles.windows(2) {
            prop_assert!(snap.quantile(pair[0]) <= snap.quantile(pair[1]));
        }
    }

    #[test]
    fn quantiles_monotone_under_larger_inserts(
        values in proptest::collection::vec(1u64..1_000_000, 1..48),
        extra in proptest::collection::vec(any::<u64>(), 1..16),
    ) {
        // Inserting values no smaller than everything recorded so far can
        // only move p50/p99 estimates up.
        let max = *values.iter().max().unwrap();
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let before = h.snapshot();
        for &e in &extra {
            h.record(max.saturating_add(e));
        }
        let after = h.snapshot();
        prop_assert!(after.quantile(0.5) >= before.quantile(0.5));
        prop_assert!(after.quantile(0.99) >= before.quantile(0.99));
    }

    #[test]
    fn quantile_brackets_true_percentile(values in proptest::collection::vec(any::<u64>(), 1..64)) {
        // The bucket upper bound is always >= the true order statistic.
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let snap = h.snapshot();
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for (q, rank) in [(0.5, sorted.len().div_ceil(2)), (1.0, sorted.len())] {
            let true_value = sorted[rank - 1];
            prop_assert!(snap.quantile(q) >= true_value);
        }
    }
}

#[test]
fn empty_histogram_quantiles_are_zero() {
    let snap = HistogramSnapshot::default();
    assert_eq!(snap.quantile(0.5), 0);
    assert_eq!(snap.count(), 0);
    assert_eq!(snap.min(), None);
    assert_eq!(snap.max(), None);
}
