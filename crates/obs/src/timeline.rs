//! Windowed metric timelines over logical time, plus SLO burn tracking.
//!
//! A [`Timeline`] turns the registry's end-of-run aggregates into
//! *series*: it holds cloned handles onto explicitly tracked counters,
//! gauges and histograms and, each time the driver crosses a window
//! boundary of the logical clock, closes one fixed-width window — counter
//! deltas, instantaneous gauge values, and per-window histogram stats
//! (count, sum, bucket-resolution p50/p95/p99 computed from the window's
//! bucket deltas). Sampling is driven by the caller (the sim kernel's
//! tick hook), never by wall time, so the recorded series is a pure
//! function of the seed: same seed ⇒ byte-identical [`Timeline::json_lines`]
//! and [`Timeline::csv`] exports.
//!
//! Window semantics: window `k` covers logical `[k·W, (k+1)·W)`. The
//! driver calls [`Timeline::advance_to`] with each event's delivery time
//! *before* dispatching it, so a closed window reflects exactly the events
//! that happened strictly inside it; [`Timeline::finish`] closes the final
//! partial window so the sum of per-window counter deltas always equals
//! the final counter value, whatever the window width.
//!
//! [`SloTracker`] sits on top: fed one `(good, bad, p99)` triple per
//! closed window, it computes the error-budget burn rate over short and
//! long lookback windows (the classic multi-window burn-rate alert) and
//! records an [`SloEvent`] at every transition into or out of violation.

use std::collections::VecDeque;
use std::time::Duration;

use crate::json;
use crate::metrics::{Counter, Gauge, Histogram, HistogramSnapshot, Registry};

/// One tracked counter: its cumulative value at the last closed window is
/// kept so each window stores a delta.
#[derive(Debug, Clone)]
struct TrackedCounter {
    name: String,
    handle: Counter,
    prev: u64,
}

#[derive(Debug, Clone)]
struct TrackedGauge {
    name: String,
    handle: Gauge,
}

#[derive(Debug, Clone)]
struct TrackedHist {
    name: String,
    handle: Histogram,
    prev: HistogramSnapshot,
}

/// Per-window view of one tracked histogram: stats of the observations
/// recorded inside the window (bucket-delta resolution).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WindowHist {
    /// Observations recorded in the window.
    pub count: u64,
    /// Sum of values recorded in the window (wrapping, like the cells).
    pub sum: u64,
    /// Median of the window's observations (inclusive bucket bound).
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
}

/// One closed window of the timeline. Value vectors are parallel to the
/// tracked-metric name lists (see [`Timeline::counter_names`] etc.).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowRow {
    /// Window index (0-based).
    pub index: u64,
    /// Exclusive end of the window in logical nanoseconds. For full
    /// windows this is `(index + 1) · window_ns`; the final partial window
    /// ends at the run's end time instead.
    pub end_ns: u64,
    /// Counter deltas over the window.
    pub counters: Vec<u64>,
    /// Gauge values sampled at the window boundary.
    pub gauges: Vec<i64>,
    /// Per-window histogram stats.
    pub hists: Vec<WindowHist>,
}

/// A windowed recorder of registry metrics over logical time.
#[derive(Debug, Clone)]
pub struct Timeline {
    window_ns: u64,
    next_boundary_ns: u64,
    finished: bool,
    counters: Vec<TrackedCounter>,
    gauges: Vec<TrackedGauge>,
    hists: Vec<TrackedHist>,
    windows: Vec<WindowRow>,
}

impl Timeline {
    /// A timeline with fixed-width windows of `window` logical time
    /// (clamped to ≥ 1 ns).
    pub fn new(window: Duration) -> Timeline {
        let window_ns = (window.as_nanos().min(u64::MAX as u128) as u64).max(1);
        Timeline {
            window_ns,
            next_boundary_ns: window_ns,
            finished: false,
            counters: Vec::new(),
            gauges: Vec::new(),
            hists: Vec::new(),
            windows: Vec::new(),
        }
    }

    /// Window width in logical nanoseconds.
    pub fn window_ns(&self) -> u64 {
        self.window_ns
    }

    /// Tracks the counter named `name` (created in `registry` on first
    /// use). Must be called before the first window closes.
    pub fn track_counter(&mut self, registry: &Registry, name: &str) {
        self.counters.push(TrackedCounter {
            name: name.to_owned(),
            handle: registry.counter(name),
            prev: 0,
        });
    }

    /// Tracks the gauge named `name`.
    pub fn track_gauge(&mut self, registry: &Registry, name: &str) {
        self.gauges.push(TrackedGauge {
            name: name.to_owned(),
            handle: registry.gauge(name),
        });
    }

    /// Tracks the histogram named `name`.
    pub fn track_histogram(&mut self, registry: &Registry, name: &str) {
        self.hists.push(TrackedHist {
            name: name.to_owned(),
            handle: registry.histogram(name),
            prev: HistogramSnapshot::default(),
        });
    }

    /// Names of the tracked counters, in tracking order (parallel to
    /// [`WindowRow::counters`]).
    pub fn counter_names(&self) -> Vec<&str> {
        self.counters.iter().map(|c| c.name.as_str()).collect()
    }

    /// Names of the tracked gauges.
    pub fn gauge_names(&self) -> Vec<&str> {
        self.gauges.iter().map(|g| g.name.as_str()).collect()
    }

    /// Names of the tracked histograms.
    pub fn hist_names(&self) -> Vec<&str> {
        self.hists.iter().map(|h| h.name.as_str()).collect()
    }

    /// Position of a tracked counter inside [`WindowRow::counters`].
    pub fn counter_index(&self, name: &str) -> Option<usize> {
        self.counters.iter().position(|c| c.name == name)
    }

    /// Position of a tracked gauge inside [`WindowRow::gauges`].
    pub fn gauge_index(&self, name: &str) -> Option<usize> {
        self.gauges.iter().position(|g| g.name == name)
    }

    /// Position of a tracked histogram inside [`WindowRow::hists`].
    pub fn hist_index(&self, name: &str) -> Option<usize> {
        self.hists.iter().position(|h| h.name == name)
    }

    /// Logical time at which the next full window closes.
    pub fn next_boundary(&self) -> u64 {
        self.next_boundary_ns
    }

    /// The closed windows so far.
    pub fn windows(&self) -> &[WindowRow] {
        &self.windows
    }

    /// The per-window delta series of a tracked counter.
    pub fn counter_series(&self, name: &str) -> Option<Vec<u64>> {
        let ix = self.counter_index(name)?;
        Some(self.windows.iter().map(|w| w.counters[ix]).collect())
    }

    /// The sampled-value series of a tracked gauge.
    pub fn gauge_series(&self, name: &str) -> Option<Vec<i64>> {
        let ix = self.gauge_index(name)?;
        Some(self.windows.iter().map(|w| w.gauges[ix]).collect())
    }

    /// The per-window stats series of a tracked histogram.
    pub fn hist_series(&self, name: &str) -> Option<Vec<WindowHist>> {
        let ix = self.hist_index(name)?;
        Some(self.windows.iter().map(|w| w.hists[ix]).collect())
    }

    fn snap_row(&mut self, index: u64, end_ns: u64) {
        let counters = self
            .counters
            .iter_mut()
            .map(|c| {
                let cur = c.handle.get();
                let delta = cur.saturating_sub(c.prev);
                c.prev = cur;
                delta
            })
            .collect();
        let gauges = self.gauges.iter().map(|g| g.handle.get()).collect();
        let hists = self
            .hists
            .iter_mut()
            .map(|h| {
                let cur = h.handle.snapshot();
                let delta = cur.delta_since(&h.prev);
                h.prev = cur;
                WindowHist {
                    count: delta.count(),
                    sum: delta.sum,
                    p50: delta.quantile(0.50),
                    p95: delta.quantile(0.95),
                    p99: delta.quantile(0.99),
                }
            })
            .collect();
        self.windows.push(WindowRow {
            index,
            end_ns,
            counters,
            gauges,
            hists,
        });
    }

    /// Closes the next full window (ending at [`Timeline::next_boundary`]).
    pub fn sample_window(&mut self) {
        assert!(!self.finished, "timeline already finished");
        let end = self.next_boundary_ns;
        self.next_boundary_ns = self.next_boundary_ns.saturating_add(self.window_ns);
        self.snap_row(self.windows.len() as u64, end);
    }

    /// Closes every window whose boundary is at or before `now_ns`. Call
    /// with an event's delivery time *before* processing the event, so
    /// each closed window covers exactly the strictly-earlier events.
    pub fn advance_to(&mut self, now_ns: u64) {
        while now_ns >= self.next_boundary_ns {
            self.sample_window();
        }
    }

    /// Closes the final partial window `[last boundary − W, end_ns]` and
    /// seals the timeline. Always emits a row (possibly all-zero deltas)
    /// so the windowed sums cover the whole run.
    pub fn finish(&mut self, end_ns: u64) {
        if self.finished {
            return;
        }
        self.advance_to(end_ns);
        self.snap_row(self.windows.len() as u64, end_ns);
        self.finished = true;
    }

    /// Whether [`Timeline::finish`] has sealed the series.
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// JSON-lines export: a `meta` line (window width, tracked-metric
    /// names, cumulative exact histogram min/max) followed by one `window`
    /// object per closed window. Purely logical — byte-identical across
    /// same-seed runs.
    pub fn json_lines(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"type\":\"meta\",\"window_ns\":");
        out.push_str(&self.window_ns.to_string());
        out.push_str(",\"windows\":");
        out.push_str(&self.windows.len().to_string());
        let push_names = |out: &mut String, key: &str, names: &[&str]| {
            out.push_str(",\"");
            out.push_str(key);
            out.push_str("\":[");
            for (i, n) in names.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                json::push_str_literal(out, n);
            }
            out.push(']');
        };
        push_names(&mut out, "counters", &self.counter_names());
        push_names(&mut out, "gauges", &self.gauge_names());
        push_names(&mut out, "histograms", &self.hist_names());
        out.push_str(",\"histogram_minmax\":{");
        for (i, h) in self.hists.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::push_str_literal(&mut out, &h.name);
            // `prev` is the latest cumulative snapshot once any window has
            // closed; exact observed extremes, not bucket bounds.
            match (h.prev.min(), h.prev.max()) {
                (Some(lo), Some(hi)) => {
                    out.push_str(&format!(":[{lo},{hi}]"));
                }
                _ => out.push_str(":null"),
            }
        }
        out.push_str("}}\n");

        for w in &self.windows {
            out.push_str("{\"type\":\"window\",\"index\":");
            out.push_str(&w.index.to_string());
            out.push_str(",\"end_ns\":");
            out.push_str(&w.end_ns.to_string());
            out.push_str(",\"counters\":{");
            for (i, c) in self.counters.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                json::push_str_literal(&mut out, &c.name);
                out.push(':');
                out.push_str(&w.counters[i].to_string());
            }
            out.push_str("},\"gauges\":{");
            for (i, g) in self.gauges.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                json::push_str_literal(&mut out, &g.name);
                out.push(':');
                out.push_str(&w.gauges[i].to_string());
            }
            out.push_str("},\"histograms\":{");
            for (i, h) in self.hists.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                json::push_str_literal(&mut out, &h.name);
                let s = &w.hists[i];
                out.push_str(&format!(
                    ":{{\"count\":{},\"sum\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}",
                    s.count, s.sum, s.p50, s.p95, s.p99
                ));
            }
            out.push_str("}}\n");
        }
        out
    }

    /// CSV export: one header row, one row per window. Histograms expand
    /// to `<name>.count/.sum/.p50/.p95/.p99` columns.
    pub fn csv(&self) -> String {
        let mut out = String::from("window,end_ns");
        for c in &self.counters {
            out.push(',');
            out.push_str(&c.name);
        }
        for g in &self.gauges {
            out.push(',');
            out.push_str(&g.name);
        }
        for h in &self.hists {
            for suffix in [".count", ".sum", ".p50", ".p95", ".p99"] {
                out.push(',');
                out.push_str(&h.name);
                out.push_str(suffix);
            }
        }
        out.push('\n');
        for w in &self.windows {
            out.push_str(&w.index.to_string());
            out.push(',');
            out.push_str(&w.end_ns.to_string());
            for v in &w.counters {
                out.push(',');
                out.push_str(&v.to_string());
            }
            for v in &w.gauges {
                out.push(',');
                out.push_str(&v.to_string());
            }
            for s in &w.hists {
                out.push_str(&format!(
                    ",{},{},{},{},{}",
                    s.count, s.sum, s.p50, s.p95, s.p99
                ));
            }
            out.push('\n');
        }
        out
    }
}

// ---------------------------------------------------------------------------
// SLO burn tracking
// ---------------------------------------------------------------------------

/// Service-level objectives evaluated per closed window. Plain data so
/// profile crates can mirror it without depending on the tracker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SloPolicy {
    /// Latency objective: a window whose p99 exceeds this is in violation.
    pub latency_p99_us: u64,
    /// Error budget in per-mille of requests (10 = 1% may fail).
    pub error_pm: u32,
    /// Short burn-rate lookback, in windows.
    pub short_windows: usize,
    /// Long burn-rate lookback, in windows.
    pub long_windows: usize,
    /// Burn-rate threshold ×100 (200 = burning budget at 2× the sustainable
    /// rate). Both lookbacks must exceed it to trip the error alert.
    pub burn_threshold_x100: u64,
}

impl Default for SloPolicy {
    fn default() -> Self {
        SloPolicy {
            latency_p99_us: 50_000,
            error_pm: 10,
            short_windows: 5,
            long_windows: 30,
            burn_threshold_x100: 200,
        }
    }
}

/// Which objective an [`SloEvent`] concerns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SloKind {
    /// The per-window latency objective.
    Latency,
    /// The multi-window error-budget burn rate.
    ErrorBudget,
}

impl SloKind {
    /// Stable lowercase label (used in journal span names and JSON).
    pub fn label(self) -> &'static str {
        match self {
            SloKind::Latency => "latency",
            SloKind::ErrorBudget => "error_budget",
        }
    }
}

/// One transition into (`entered`) or out of (`!entered`) violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SloEvent {
    /// Index of the window at which the transition happened.
    pub window: u64,
    /// Objective concerned.
    pub kind: SloKind,
    /// `true` when the violation began, `false` when it cleared.
    pub entered: bool,
    /// Burn rate ×100 at the transition (latency events report
    /// `p99 · 100 / objective`).
    pub burn_x100: u64,
    /// The observed quantity: window p99 (latency) or the window's failed
    /// request count (error budget).
    pub value: u64,
}

/// Multi-window burn-rate SLO tracker, fed one triple per closed window.
#[derive(Debug, Clone)]
pub struct SloTracker {
    policy: SloPolicy,
    /// `(good, bad)` per recent window, newest last, capped at the long
    /// lookback.
    recent: VecDeque<(u64, u64)>,
    latency_violating: bool,
    error_violating: bool,
    events: Vec<SloEvent>,
}

impl SloTracker {
    /// A tracker enforcing `policy` (lookbacks clamped to ≥ 1 window).
    pub fn new(policy: SloPolicy) -> SloTracker {
        SloTracker {
            policy: SloPolicy {
                short_windows: policy.short_windows.max(1),
                long_windows: policy.long_windows.max(policy.short_windows.max(1)),
                ..policy
            },
            recent: VecDeque::new(),
            latency_violating: false,
            error_violating: false,
            events: Vec::new(),
        }
    }

    /// The enforced policy.
    pub fn policy(&self) -> &SloPolicy {
        &self.policy
    }

    fn burn_x100(&self, lookback: usize) -> u64 {
        let take = lookback.min(self.recent.len());
        let mut good = 0u64;
        let mut bad = 0u64;
        for &(g, b) in self.recent.iter().rev().take(take) {
            good += g;
            bad += b;
        }
        let total = good + bad;
        if total == 0 {
            return 0;
        }
        if self.policy.error_pm == 0 {
            // No budget at all: any failure is an infinite burn.
            return if bad > 0 { u64::MAX } else { 0 };
        }
        // burn = (bad/total) / (error_pm/1000); ×100 in integer math.
        bad.saturating_mul(100_000) / (total.saturating_mul(self.policy.error_pm as u64))
    }

    /// Feeds one closed window; records transition events. Returns the
    /// number of events this window generated (0–2).
    pub fn observe(&mut self, window: u64, good: u64, bad: u64, p99_us: u64) -> usize {
        self.recent.push_back((good, bad));
        while self.recent.len() > self.policy.long_windows {
            self.recent.pop_front();
        }
        let before = self.events.len();

        let latency_bad = good + bad > 0 && p99_us > self.policy.latency_p99_us;
        if latency_bad != self.latency_violating {
            self.latency_violating = latency_bad;
            self.events.push(SloEvent {
                window,
                kind: SloKind::Latency,
                entered: latency_bad,
                burn_x100: p99_us.saturating_mul(100) / self.policy.latency_p99_us.max(1),
                value: p99_us,
            });
        }

        let short = self.burn_x100(self.policy.short_windows);
        let long = self.burn_x100(self.policy.long_windows);
        let error_bad =
            short >= self.policy.burn_threshold_x100 && long >= self.policy.burn_threshold_x100;
        if error_bad != self.error_violating {
            self.error_violating = error_bad;
            self.events.push(SloEvent {
                window,
                kind: SloKind::ErrorBudget,
                entered: error_bad,
                burn_x100: short,
                value: bad,
            });
        }
        self.events.len() - before
    }

    /// Every transition recorded so far, in window order.
    pub fn events(&self) -> &[SloEvent] {
        &self.events
    }

    /// Whether either objective is currently in violation.
    pub fn is_violating(&self) -> bool {
        self.latency_violating || self.error_violating
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_hold_deltas_and_finish_covers_the_tail() {
        let registry = Registry::new();
        let c = registry.counter("ev");
        let g = registry.gauge("depth");
        let h = registry.histogram("lat");
        let mut tl = Timeline::new(Duration::from_secs(1));
        tl.track_counter(&registry, "ev");
        tl.track_gauge(&registry, "depth");
        tl.track_histogram(&registry, "lat");

        c.add(3);
        g.set(2);
        h.record(10);
        tl.advance_to(1_500_000_000); // closes window 0
        c.add(5);
        g.set(7);
        h.record(100);
        h.record(200);
        tl.finish(1_800_000_000); // partial window 1

        let w = tl.windows();
        assert_eq!(w.len(), 2);
        assert_eq!(w[0].end_ns, 1_000_000_000);
        assert_eq!(w[0].counters, vec![3]);
        assert_eq!(w[0].gauges, vec![2]);
        assert_eq!(w[0].hists[0].count, 1);
        assert_eq!(w[1].end_ns, 1_800_000_000);
        assert_eq!(w[1].counters, vec![5]);
        assert_eq!(w[1].gauges, vec![7]);
        assert_eq!(w[1].hists[0].count, 2);
        assert_eq!(w[1].hists[0].sum, 300);
        // Window-width invariance: deltas sum to the final counter.
        let total: u64 = tl.counter_series("ev").unwrap().iter().sum();
        assert_eq!(total, c.get());
    }

    #[test]
    fn advance_closes_every_elapsed_window() {
        let registry = Registry::new();
        registry.counter("ev").add(1);
        let mut tl = Timeline::new(Duration::from_millis(100));
        tl.track_counter(&registry, "ev");
        // A 1-second gap crosses ten boundaries at once.
        tl.advance_to(1_000_000_000);
        assert_eq!(tl.windows().len(), 10);
        assert_eq!(tl.windows()[0].counters, vec![1]);
        assert!(tl.windows()[1..].iter().all(|w| w.counters == vec![0]));
        // An event exactly on a boundary belongs to the *next* window.
        assert_eq!(tl.next_boundary(), 1_100_000_000);
    }

    #[test]
    fn exports_are_pure_functions_of_the_samples() {
        let registry = Registry::new();
        let c = registry.counter("ev");
        let build = || {
            let mut tl = Timeline::new(Duration::from_secs(1));
            tl.track_counter(&registry, "ev");
            tl
        };
        c.add(2);
        let mut a = build();
        a.advance_to(2_000_000_000);
        a.finish(2_500_000_000);
        let mut b = build();
        b.advance_to(2_000_000_000);
        b.finish(2_500_000_000);
        // Note: b sees cumulative counts but both deltas start from 0 at
        // construction, so the exports only agree because the counter did
        // not move between builds — which is the point: exports depend
        // only on the sampled values.
        assert_eq!(a.json_lines(), b.json_lines());
        assert_eq!(a.csv(), b.csv());
        assert!(a.json_lines().starts_with("{\"type\":\"meta\""));
        assert_eq!(a.csv().lines().count(), 1 + a.windows().len());
    }

    #[test]
    fn slo_tracker_trips_on_latency_and_recovers() {
        let mut t = SloTracker::new(SloPolicy {
            latency_p99_us: 1_000,
            ..SloPolicy::default()
        });
        assert_eq!(t.observe(0, 10, 0, 500), 0);
        assert_eq!(t.observe(1, 10, 0, 5_000), 1, "entered latency violation");
        assert!(t.is_violating());
        assert_eq!(t.observe(2, 10, 0, 800), 1, "recovered");
        assert!(!t.is_violating());
        let kinds: Vec<(SloKind, bool)> = t.events().iter().map(|e| (e.kind, e.entered)).collect();
        assert_eq!(
            kinds,
            vec![(SloKind::Latency, true), (SloKind::Latency, false)]
        );
        assert_eq!(t.events()[0].burn_x100, 500, "5000µs vs 1000µs objective");
    }

    #[test]
    fn slo_tracker_needs_both_lookbacks_burning() {
        let policy = SloPolicy {
            latency_p99_us: u64::MAX,
            error_pm: 100, // 10% budget
            short_windows: 2,
            long_windows: 4,
            burn_threshold_x100: 200, // 2× burn = 20% failing
        };
        let mut t = SloTracker::new(policy);
        // Two healthy windows, then sustained 50% failures.
        t.observe(0, 100, 0, 0);
        t.observe(1, 100, 0, 0);
        // Short lookback burns immediately; long (4 windows) still diluted
        // by the healthy history: 100 bad / 400 total = 25% = 2.5× burn ≥ 2×
        // only after the second bad window.
        assert_eq!(t.observe(2, 50, 50, 0), 0, "long lookback not burning yet");
        assert_eq!(t.observe(3, 50, 50, 0), 1, "both lookbacks burning");
        assert!(t.is_violating());
        let ev = *t.events().last().unwrap();
        assert_eq!(ev.kind, SloKind::ErrorBudget);
        assert!(ev.entered);
        assert!(ev.burn_x100 >= 200);
        // Recovery once the bad windows age out of the short lookback.
        t.observe(4, 100, 0, 0);
        assert_eq!(t.observe(5, 100, 0, 0), 1, "error violation cleared");
        assert!(!t.is_violating());
    }

    #[test]
    fn zero_error_budget_burns_on_any_failure() {
        let mut t = SloTracker::new(SloPolicy {
            latency_p99_us: u64::MAX,
            error_pm: 0,
            short_windows: 1,
            long_windows: 1,
            burn_threshold_x100: 200,
        });
        assert_eq!(t.observe(0, 10, 0, 0), 0);
        assert_eq!(t.observe(1, 9, 1, 0), 1);
        assert!(t.is_violating());
    }
}
