//! # redlight-obs
//!
//! The platform's telemetry spine: a deterministic, dependency-free
//! tracing + metrics layer shared by the crawler, the transport stack and
//! the analysis stages.
//!
//! Three pieces:
//!
//! * [`Registry`] — named counters / gauges / log-2 [`Histogram`]s over
//!   lock-free atomics. Handles are cheap clones; per-worker registries
//!   fold into the study-wide one with [`Registry::absorb`] in job order,
//!   so aggregate metrics are deterministic.
//! * [`Trace`] / [`Tracer`] — hierarchical spans recorded into per-shard
//!   buffers (one single-threaded [`Tracer`] per worker, shard names from
//!   job indices), merged by [`Trace::journal`] into a [`Journal`] whose
//!   ids and logical clock depend only on the span structure.
//! * Exporters — [`Journal::json_lines`], [`Journal::chrome_trace`]
//!   (Perfetto-loadable) and [`MetricsSnapshot::prometheus`]. All exported
//!   bytes are a pure function of the seed: wall-clock values stay
//!   in-memory (for `--timings`) and never reach an export.
//!
//! Everything is built so the *unobserved* path stays free: a disabled
//! [`Trace`] records nothing, and a standalone [`Counter`] is exactly the
//! `AtomicU64` the bespoke structs used before this crate existed.

#![warn(missing_docs)]

mod journal;
pub mod json;
mod metrics;
mod span;
mod timeline;

pub use journal::{Journal, JournalSpan};
pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricValue, MetricsSnapshot, Registry, Unit,
    HISTOGRAM_BUCKETS,
};
pub use span::{AttrVal, SpanLink, Trace, Tracer, DEFAULT_SHARD_CAP};
pub use timeline::{SloEvent, SloKind, SloPolicy, SloTracker, Timeline, WindowHist, WindowRow};

/// The pair every observed entry point threads through the pipeline: a
/// span collector and a metrics registry.
#[derive(Debug, Clone, Default)]
pub struct ObsContext {
    /// Span collector.
    pub trace: Trace,
    /// Metrics registry.
    pub metrics: Registry,
}

impl ObsContext {
    /// An enabled context: spans recorded, metrics registered.
    pub fn new() -> Self {
        ObsContext {
            trace: Trace::new(),
            metrics: Registry::new(),
        }
    }

    /// The context the unobserved (default) entry points run with: span
    /// recording disabled, metrics land in a throwaway registry.
    pub fn disabled() -> Self {
        ObsContext {
            trace: Trace::disabled(),
            metrics: Registry::new(),
        }
    }

    /// Whether spans are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.trace.is_enabled()
    }
}
