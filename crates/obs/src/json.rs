//! Minimal JSON emission helpers (the crate is dependency-free).

use crate::span::AttrVal;

/// Appends `s` as a JSON string literal (with quotes) to `out`.
pub fn push_str_literal(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends an [`AttrVal`] as a JSON value to `out`.
pub fn push_attr_val(out: &mut String, v: &AttrVal) {
    match v {
        AttrVal::U64(n) => out.push_str(&n.to_string()),
        AttrVal::I64(n) => out.push_str(&n.to_string()),
        AttrVal::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        AttrVal::Str(s) => push_str_literal(out, s),
    }
}

/// Appends an attribute list as a JSON object to `out`.
pub fn push_attrs(out: &mut String, attrs: &[(&'static str, AttrVal)]) {
    out.push('{');
    for (i, (key, value)) in attrs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_str_literal(out, key);
        out.push(':');
        push_attr_val(out, value);
    }
    out.push('}');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_control_and_quote_characters() {
        let mut out = String::new();
        push_str_literal(&mut out, "a\"b\\c\n\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\n\\u0001\"");
    }

    #[test]
    fn renders_attr_objects() {
        let mut out = String::new();
        push_attrs(
            &mut out,
            &[
                ("n", AttrVal::U64(3)),
                ("ok", AttrVal::Bool(true)),
                ("s", AttrVal::Str("x".into())),
            ],
        );
        assert_eq!(out, r#"{"n":3,"ok":true,"s":"x"}"#);
    }
}
