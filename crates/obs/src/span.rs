//! Hierarchical spans recorded into per-shard buffers.
//!
//! Concurrency model: a [`Trace`] is shared (cheap clone, `Sync`), but all
//! span recording goes through a [`Tracer`] — a single-threaded handle that
//! owns one named *shard*. Worker pools give every worker its own tracer
//! (shard names are derived from deterministic job indices, never thread
//! ids), record without any locking, and commit the finished shard into the
//! trace on drop. The journal layer then merges shards **by name**, so the
//! merged output is independent of thread interleaving: same seed ⇒
//! byte-identical journal.
//!
//! Two determinism rules follow from this model:
//!
//! * spans are recorded in *open* (preorder) position, so a shard's buffer
//!   order is itself reproducible;
//! * the bound on journal memory is enforced **per shard** (each shard is
//!   sequential), because any global budget would make the drop decision
//!   depend on which thread got there first.
//!
//! Wall durations are captured per span but live only in memory (for the
//! `--timings` report); exported bytes use the journal's logical clock.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::journal::Journal;

/// Default cap on recorded spans per shard.
pub const DEFAULT_SHARD_CAP: usize = 8_192;

/// Sentinel stack slot for spans dropped by the shard cap.
const DROPPED: usize = usize::MAX;

/// A typed span attribute value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttrVal {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// String.
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl From<u64> for AttrVal {
    fn from(v: u64) -> Self {
        AttrVal::U64(v)
    }
}
impl From<u32> for AttrVal {
    fn from(v: u32) -> Self {
        AttrVal::U64(v as u64)
    }
}
impl From<usize> for AttrVal {
    fn from(v: usize) -> Self {
        AttrVal::U64(v as u64)
    }
}
impl From<i64> for AttrVal {
    fn from(v: i64) -> Self {
        AttrVal::I64(v)
    }
}
impl From<bool> for AttrVal {
    fn from(v: bool) -> Self {
        AttrVal::Bool(v)
    }
}
impl From<&str> for AttrVal {
    fn from(v: &str) -> Self {
        AttrVal::Str(v.to_owned())
    }
}
impl From<String> for AttrVal {
    fn from(v: String) -> Self {
        AttrVal::Str(v)
    }
}

/// A stable reference to a span in a committed-or-pending shard: shard name
/// plus preorder index. Links let a shard opened in one thread (say a
/// per-crawl worker) hang its root spans under a span recorded in another
/// (the study-level `collect` span).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanLink {
    pub(crate) shard: Arc<str>,
    pub(crate) index: usize,
}

/// One recorded span (shard-local).
#[derive(Debug, Clone)]
pub(crate) struct SpanRec {
    pub(crate) name: String,
    /// Preorder index of the parent within the same shard.
    pub(crate) parent: Option<usize>,
    pub(crate) attrs: Vec<(&'static str, AttrVal)>,
    pub(crate) wall: Duration,
}

/// A finished shard inside the trace.
#[derive(Debug, Clone, Default)]
pub(crate) struct Shard {
    /// Where this shard's root spans attach in the global tree.
    pub(crate) link: Option<SpanLink>,
    /// Spans in preorder.
    pub(crate) spans: Vec<SpanRec>,
    /// Spans discarded by the per-shard cap.
    pub(crate) dropped: u64,
}

#[derive(Debug)]
struct TraceInner {
    enabled: bool,
    shard_cap: usize,
    shards: Mutex<BTreeMap<String, Shard>>,
}

/// Shared trace collector. Cloning shares the underlying shard table.
#[derive(Debug, Clone)]
pub struct Trace {
    inner: Arc<TraceInner>,
}

impl Default for Trace {
    fn default() -> Self {
        Trace::new()
    }
}

impl Trace {
    /// An enabled trace with the default per-shard span cap.
    pub fn new() -> Self {
        Trace::with_shard_cap(DEFAULT_SHARD_CAP)
    }

    /// An enabled trace bounding every shard to `cap` spans.
    pub fn with_shard_cap(cap: usize) -> Self {
        Trace {
            inner: Arc::new(TraceInner {
                enabled: true,
                shard_cap: cap,
                shards: Mutex::new(BTreeMap::new()),
            }),
        }
    }

    /// A disabled trace: tracers derived from it record nothing. This is
    /// what the unobserved (default) entry points run with, so adding
    /// spans to a code path costs a few branch instructions when off.
    pub fn disabled() -> Self {
        Trace {
            inner: Arc::new(TraceInner {
                enabled: false,
                shard_cap: 0,
                shards: Mutex::new(BTreeMap::new()),
            }),
        }
    }

    /// Whether tracers derived from this trace record spans.
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled
    }

    /// A tracer recording into the shard named `shard`, rooted at the top
    /// level of the span forest.
    pub fn tracer(&self, shard: &str) -> Tracer {
        self.tracer_inner(shard, None)
    }

    /// A tracer whose root spans become children of `parent`.
    pub fn tracer_under(&self, shard: &str, parent: SpanLink) -> Tracer {
        self.tracer_inner(shard, Some(parent))
    }

    fn tracer_inner(&self, shard: &str, link: Option<SpanLink>) -> Tracer {
        Tracer {
            trace: self.clone(),
            shard: Arc::from(shard),
            link,
            spans: Vec::new(),
            stack: Vec::new(),
            starts: Vec::new(),
            dropped: 0,
            committed: !self.inner.enabled,
        }
    }

    /// Merges every committed shard into a deterministic [`Journal`].
    pub fn journal(&self) -> Journal {
        let shards = self.inner.shards.lock().expect("trace shards poisoned");
        Journal::build(&shards)
    }

    fn commit(&self, name: Arc<str>, link: Option<SpanLink>, spans: Vec<SpanRec>, dropped: u64) {
        if spans.is_empty() && dropped == 0 {
            return;
        }
        let mut shards = self.inner.shards.lock().expect("trace shards poisoned");
        // Shard names are expected to be unique (derived from job indices);
        // a collision gets a deterministic suffix rather than a panic.
        let mut key = name.to_string();
        let mut n = 1;
        while shards.contains_key(&key) {
            n += 1;
            key = format!("{name}#{n}");
        }
        shards.insert(
            key,
            Shard {
                link,
                spans,
                dropped,
            },
        );
    }
}

/// Single-threaded span recorder for one shard. Obtain via
/// [`Trace::tracer`], record with [`open`](Tracer::open) /
/// [`attr`](Tracer::attr) / [`close`](Tracer::close), and either let it
/// drop or call [`finish`](Tracer::finish); both commit the shard.
#[derive(Debug)]
pub struct Tracer {
    trace: Trace,
    shard: Arc<str>,
    link: Option<SpanLink>,
    spans: Vec<SpanRec>,
    /// Preorder indices of currently open spans ([`DROPPED`] = capped).
    stack: Vec<usize>,
    /// Open instants, parallel to `stack`.
    starts: Vec<Instant>,
    dropped: u64,
    committed: bool,
}

impl Tracer {
    /// Opens a span as a child of the innermost open span (or as a shard
    /// root). Spans beyond the per-shard cap — and children of dropped
    /// spans — are counted but not recorded.
    pub fn open(&mut self, name: &str) {
        if self.committed {
            return;
        }
        let parent = self.stack.last().copied();
        let capped = self.spans.len() >= self.trace.inner.shard_cap;
        if capped || parent == Some(DROPPED) {
            self.dropped += 1;
            self.stack.push(DROPPED);
            self.starts.push(Instant::now());
            return;
        }
        self.spans.push(SpanRec {
            name: name.to_owned(),
            parent,
            attrs: Vec::new(),
            wall: Duration::ZERO,
        });
        self.stack.push(self.spans.len() - 1);
        self.starts.push(Instant::now());
    }

    /// Attaches a typed attribute to the innermost open span.
    pub fn attr(&mut self, key: &'static str, value: impl Into<AttrVal>) {
        if self.committed {
            return;
        }
        if let Some(&idx) = self.stack.last() {
            if idx != DROPPED {
                self.spans[idx].attrs.push((key, value.into()));
            }
        }
    }

    /// Closes the innermost open span, fixing its wall duration.
    pub fn close(&mut self) {
        if self.committed {
            return;
        }
        if let (Some(idx), Some(start)) = (self.stack.pop(), self.starts.pop()) {
            if idx != DROPPED {
                self.spans[idx].wall = start.elapsed();
            }
        }
    }

    /// A link to the innermost open span, for parenting another shard
    /// under it. `None` when tracing is disabled or nothing is open.
    pub fn link(&self) -> Option<SpanLink> {
        match self.stack.last() {
            Some(&idx) if idx != DROPPED => Some(SpanLink {
                shard: Arc::clone(&self.shard),
                index: idx,
            }),
            _ => None,
        }
    }

    /// Closes any open spans and commits the shard. Equivalent to drop,
    /// spelled out for call sites where the handoff matters.
    pub fn finish(mut self) {
        self.commit();
    }

    fn commit(&mut self) {
        if self.committed {
            return;
        }
        while !self.stack.is_empty() {
            self.close();
        }
        self.committed = true;
        self.trace.commit(
            Arc::clone(&self.shard),
            self.link.take(),
            std::mem::take(&mut self.spans),
            self.dropped,
        );
    }
}

impl Drop for Tracer {
    fn drop(&mut self) {
        self.commit();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_in_preorder_with_parents() {
        let trace = Trace::new();
        let mut t = trace.tracer("s");
        t.open("a");
        t.open("b");
        t.attr("k", 7u64);
        t.close();
        t.open("c");
        t.close();
        t.close();
        t.finish();

        let journal = trace.journal();
        let names: Vec<&str> = journal.spans.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["a", "b", "c"]);
        assert_eq!(journal.spans[0].parent, 0);
        assert_eq!(journal.spans[1].parent, journal.spans[0].id);
        assert_eq!(journal.spans[2].parent, journal.spans[0].id);
        assert_eq!(journal.spans[1].attrs, [("k", AttrVal::U64(7))]);
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let trace = Trace::disabled();
        let mut t = trace.tracer("s");
        t.open("a");
        t.attr("k", true);
        t.close();
        t.finish();
        assert!(trace.journal().spans.is_empty());
    }

    #[test]
    fn shard_cap_drops_deterministically() {
        let trace = Trace::with_shard_cap(2);
        let mut t = trace.tracer("s");
        t.open("kept"); // span 1
        t.open("kept-child"); // span 2 — at cap now
        t.open("capped"); // dropped
        t.open("capped-child"); // child of dropped → dropped
        t.close();
        t.close();
        t.close();
        t.close();
        t.finish();

        let journal = trace.journal();
        assert_eq!(journal.spans.len(), 2);
        assert_eq!(journal.dropped, 2);
    }

    #[test]
    fn unclosed_spans_are_closed_on_drop() {
        let trace = Trace::new();
        {
            let mut t = trace.tracer("s");
            t.open("left-open");
            t.open("inner");
            // Dropped without closing.
        }
        let journal = trace.journal();
        assert_eq!(journal.spans.len(), 2);
        assert!(journal.spans.iter().all(|s| s.end > s.ts));
    }

    #[test]
    fn colliding_shard_names_get_suffixes() {
        let trace = Trace::new();
        for _ in 0..2 {
            let mut t = trace.tracer("s");
            t.open("a");
            t.close();
            t.finish();
        }
        let journal = trace.journal();
        assert_eq!(journal.spans.len(), 2);
        assert_eq!(journal.shards(), ["s", "s#2"]);
    }
}
