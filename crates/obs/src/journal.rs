//! Deterministic merge of trace shards plus the exporters.
//!
//! [`Journal::build`] walks shards **in name order** (never thread or
//! commit order) and assigns:
//!
//! * global span ids — sequential in (shard, preorder) position;
//! * parents — a span's shard-local parent if it has one, else the shard's
//!   [`SpanLink`](crate::span::SpanLink) target;
//! * a **logical clock** — begin/end ticks reconstructed from preorder +
//!   parent via stack replay, so every exported timestamp is a pure
//!   function of the span structure. Wall durations are kept in memory for
//!   human reports but never serialized: same seed ⇒ byte-identical
//!   exports on any machine.

use std::collections::BTreeMap;
use std::time::Duration;

use crate::json;
use crate::span::{AttrVal, Shard};

/// One span in the merged journal.
#[derive(Debug, Clone)]
pub struct JournalSpan {
    /// Global id (1-based).
    pub id: u64,
    /// Global id of the parent span, 0 for roots.
    pub parent: u64,
    /// Span name (e.g. `stage.organizations`, `visits.003`).
    pub name: String,
    /// Name of the shard that recorded the span.
    pub shard: String,
    /// 1-based shard index — the exported thread id.
    pub tid: u32,
    /// Logical open tick.
    pub ts: u64,
    /// Logical close tick (always > `ts`).
    pub end: u64,
    /// Measured wall duration (in-memory only; not exported).
    pub wall: Duration,
    /// Typed attributes in recording order.
    pub attrs: Vec<(&'static str, AttrVal)>,
}

/// The merged, deterministic view of a [`Trace`](crate::Trace).
#[derive(Debug, Clone, Default)]
pub struct Journal {
    /// Spans ordered by (shard name, preorder position) — equivalently by
    /// ascending id and ascending `ts`.
    pub spans: Vec<JournalSpan>,
    /// Spans discarded by per-shard caps.
    pub dropped: u64,
}

impl Journal {
    pub(crate) fn build(shards: &BTreeMap<String, Shard>) -> Journal {
        // Pass 1: global ids in (shard name, preorder) order.
        let mut first_id = BTreeMap::new();
        let mut next_id = 1u64;
        for (name, shard) in shards {
            first_id.insert(name.as_str(), next_id);
            next_id += shard.spans.len() as u64;
        }

        let resolve_link = |shard_name: &str, index: usize| -> u64 {
            match first_id.get(shard_name) {
                Some(base) => base + index as u64,
                None => 0,
            }
        };

        // Pass 2: parents and the logical clock, shard by shard.
        let mut spans = Vec::new();
        let mut dropped = 0u64;
        let mut clock = 0u64;
        for (tid, (name, shard)) in shards.iter().enumerate() {
            dropped += shard.dropped;
            let base = first_id[name.as_str()];
            let link_parent = shard
                .link
                .as_ref()
                .map(|l| resolve_link(&l.shard, l.index))
                .unwrap_or(0);
            let offset = spans.len();
            let mut stack: Vec<usize> = Vec::new();
            for (i, rec) in shard.spans.iter().enumerate() {
                // Replay the open/close discipline: pop (and end) spans
                // until the top of the stack is this span's parent.
                while let Some(&top) = stack.last() {
                    if rec.parent == Some(top) {
                        break;
                    }
                    stack.pop();
                    let ended: &mut JournalSpan = &mut spans[offset + top];
                    ended.end = clock;
                    clock += 1;
                }
                let parent = match rec.parent {
                    Some(p) => base + p as u64,
                    None => link_parent,
                };
                spans.push(JournalSpan {
                    id: base + i as u64,
                    parent,
                    name: rec.name.clone(),
                    shard: name.clone(),
                    tid: tid as u32 + 1,
                    ts: clock,
                    end: 0,
                    wall: rec.wall,
                    attrs: rec.attrs.clone(),
                });
                clock += 1;
                stack.push(i);
            }
            while let Some(top) = stack.pop() {
                let ended: &mut JournalSpan = &mut spans[offset + top];
                ended.end = clock;
                clock += 1;
            }
        }
        Journal { spans, dropped }
    }

    /// Number of spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether the journal holds no spans.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Shard names in merge (= export) order.
    pub fn shards(&self) -> Vec<String> {
        let mut names: Vec<String> = Vec::new();
        for span in &self.spans {
            if names.last() != Some(&span.shard) {
                names.push(span.shard.clone());
            }
        }
        names
    }

    /// Number of spans with exactly this name.
    pub fn count_named(&self, name: &str) -> usize {
        self.spans.iter().filter(|s| s.name == name).count()
    }

    /// First span with exactly this name.
    pub fn find(&self, name: &str) -> Option<&JournalSpan> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// JSON-lines export: one object per span, in journal order, with
    /// logical ticks only (deterministic across machines).
    pub fn json_lines(&self) -> String {
        let mut out = String::new();
        for span in &self.spans {
            out.push_str("{\"id\":");
            out.push_str(&span.id.to_string());
            out.push_str(",\"parent\":");
            out.push_str(&span.parent.to_string());
            out.push_str(",\"name\":");
            json::push_str_literal(&mut out, &span.name);
            out.push_str(",\"shard\":");
            json::push_str_literal(&mut out, &span.shard);
            out.push_str(",\"ts\":");
            out.push_str(&span.ts.to_string());
            out.push_str(",\"end\":");
            out.push_str(&span.end.to_string());
            out.push_str(",\"attrs\":");
            json::push_attrs(&mut out, &span.attrs);
            out.push_str("}\n");
        }
        out
    }

    /// Chrome `trace_event` export (load in Perfetto / `chrome://tracing`):
    /// paired `B`/`E` duration events on one thread track per shard, plus
    /// `M` metadata events naming the tracks. Timestamps are logical ticks
    /// (the viewer only needs order and nesting).
    pub fn chrome_trace(&self) -> String {
        let mut events: Vec<(u64, bool, &JournalSpan)> = Vec::new();
        for span in &self.spans {
            events.push((span.ts, true, span));
            events.push((span.end, false, span));
        }
        events.sort_by_key(|(tick, _, _)| *tick);

        let mut out = String::from("{\"traceEvents\":[\n");
        out.push_str(
            "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":1,\"tid\":0,\
             \"args\":{\"name\":\"redlight\"}}",
        );
        for name in self.shards() {
            let tid = self
                .spans
                .iter()
                .find(|s| s.shard == name)
                .map(|s| s.tid)
                .unwrap_or(0);
            out.push_str(",\n{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":");
            out.push_str(&tid.to_string());
            out.push_str(",\"args\":{\"name\":");
            json::push_str_literal(&mut out, &name);
            out.push_str("}}");
        }
        for (tick, is_begin, span) in events {
            out.push_str(",\n{\"ph\":\"");
            out.push_str(if is_begin { "B" } else { "E" });
            out.push_str("\",\"pid\":1,\"tid\":");
            out.push_str(&span.tid.to_string());
            out.push_str(",\"ts\":");
            out.push_str(&tick.to_string());
            out.push_str(",\"name\":");
            json::push_str_literal(&mut out, &span.name);
            if is_begin {
                out.push_str(",\"cat\":\"redlight\",\"args\":");
                let mut attrs = vec![("id", AttrVal::U64(span.id))];
                if span.parent != 0 {
                    attrs.push(("parent", AttrVal::U64(span.parent)));
                }
                attrs.extend(span.attrs.iter().cloned());
                json::push_attrs(&mut out, &attrs);
            }
            out.push('}');
        }
        out.push_str("\n]}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Trace;

    fn sample_trace() -> Trace {
        let trace = Trace::new();
        let mut root = trace.tracer("00.root");
        root.open("collect");
        root.open("corpus.compile");
        root.close();
        let link = root.link().expect("collect open");
        let mut worker = trace.tracer_under("01.worker", link);
        worker.open("crawl");
        worker.open("visits.000");
        worker.attr("sites", 25u64);
        worker.close();
        worker.close();
        worker.finish();
        root.close();
        root.finish();
        trace
    }

    #[test]
    fn merge_is_independent_of_commit_order() {
        // Same spans, worker shard committed before the root shard.
        let reordered = Trace::new();
        {
            let mut worker = reordered.tracer("01.worker");
            worker.open("crawl");
            worker.open("visits.000");
            worker.attr("sites", 25u64);
            worker.close();
            worker.close();
            worker.finish();
        }
        let mut root = reordered.tracer("00.root");
        root.open("collect");
        root.open("corpus.compile");
        root.close();
        root.close();
        root.finish();

        let a = sample_trace().journal();
        let b = reordered.journal();
        let ids = |j: &Journal| -> Vec<(u64, String, u64, u64)> {
            j.spans
                .iter()
                .map(|s| (s.id, s.name.clone(), s.ts, s.end))
                .collect()
        };
        // Journals agree on ids, order and clock; only the cross-shard
        // parent differs (the reordered worker shard has no link).
        assert_eq!(ids(&a), ids(&b));
    }

    #[test]
    fn cross_shard_links_become_parents() {
        let journal = sample_trace().journal();
        let collect = journal.find("collect").expect("collect span");
        let crawl = journal.find("crawl").expect("crawl span");
        assert_eq!(crawl.parent, collect.id);
        assert_eq!(journal.find("visits.000").expect("batch").parent, crawl.id);
    }

    #[test]
    fn logical_clock_nests_properly() {
        let journal = sample_trace().journal();
        for span in &journal.spans {
            assert!(span.end > span.ts, "{} must close after opening", span.name);
            if span.parent != 0 {
                // Parents in the same shard must strictly contain children.
                let parent = journal.spans.iter().find(|s| s.id == span.parent).unwrap();
                if parent.shard == span.shard {
                    assert!(parent.ts < span.ts && span.end < parent.end);
                }
            }
        }
    }

    #[test]
    fn chrome_trace_is_balanced() {
        let trace = sample_trace().journal().chrome_trace();
        let begins = trace.matches("\"ph\":\"B\"").count();
        let ends = trace.matches("\"ph\":\"E\"").count();
        assert_eq!(begins, 4);
        assert_eq!(begins, ends);
    }

    #[test]
    fn json_lines_one_object_per_span() {
        let journal = sample_trace().journal();
        let lines = journal.json_lines();
        assert_eq!(lines.lines().count(), journal.len());
        assert!(lines.lines().all(|l| l.starts_with("{\"id\":")));
    }
}
