//! Deterministic merge of trace shards plus the exporters.
//!
//! [`Journal::build`] walks shards **in name order** (never thread or
//! commit order) and assigns:
//!
//! * global span ids — sequential in (shard, preorder) position;
//! * parents — a span's shard-local parent if it has one, else the shard's
//!   [`SpanLink`](crate::span::SpanLink) target;
//! * a **logical clock** — begin/end ticks reconstructed from preorder +
//!   parent via stack replay, so every exported timestamp is a pure
//!   function of the span structure. Wall durations are kept in memory for
//!   human reports but never serialized: same seed ⇒ byte-identical
//!   exports on any machine.

use std::collections::BTreeMap;
use std::time::Duration;

use crate::json;
use crate::metrics::{MetricValue, MetricsSnapshot, Unit};
use crate::span::{AttrVal, Shard};
use crate::timeline::Timeline;

/// One span in the merged journal.
#[derive(Debug, Clone)]
pub struct JournalSpan {
    /// Global id (1-based).
    pub id: u64,
    /// Global id of the parent span, 0 for roots.
    pub parent: u64,
    /// Span name (e.g. `stage.organizations`, `visits.003`).
    pub name: String,
    /// Name of the shard that recorded the span.
    pub shard: String,
    /// 1-based shard index — the exported thread id.
    pub tid: u32,
    /// Logical open tick.
    pub ts: u64,
    /// Logical close tick (always > `ts`).
    pub end: u64,
    /// Measured wall duration (in-memory only; not exported).
    pub wall: Duration,
    /// Typed attributes in recording order.
    pub attrs: Vec<(&'static str, AttrVal)>,
}

/// The merged, deterministic view of a [`Trace`](crate::Trace).
#[derive(Debug, Clone, Default)]
pub struct Journal {
    /// Spans ordered by (shard name, preorder position) — equivalently by
    /// ascending id and ascending `ts`.
    pub spans: Vec<JournalSpan>,
    /// Spans discarded by per-shard caps.
    pub dropped: u64,
}

impl Journal {
    pub(crate) fn build(shards: &BTreeMap<String, Shard>) -> Journal {
        // Shards with no spans (a worker that recorded only metrics, or
        // whose cap swallowed everything) contribute their drop count but
        // must not shift span ids, tids or the logical clock: the journal
        // of `{A, empty, B}` is byte-identical to the journal of `{A, B}`.

        // Pass 1: global ids in (shard name, preorder) order.
        let mut first_id = BTreeMap::new();
        let mut next_id = 1u64;
        for (name, shard) in shards {
            if shard.spans.is_empty() {
                continue;
            }
            first_id.insert(name.as_str(), next_id);
            next_id += shard.spans.len() as u64;
        }

        let resolve_link = |shard_name: &str, index: usize| -> u64 {
            match first_id.get(shard_name) {
                Some(base) => base + index as u64,
                None => 0,
            }
        };

        // Pass 2: parents and the logical clock, shard by shard.
        let mut spans = Vec::new();
        let mut dropped = 0u64;
        let mut clock = 0u64;
        let mut tid = 0usize;
        for (name, shard) in shards {
            dropped += shard.dropped;
            if shard.spans.is_empty() {
                continue;
            }
            tid += 1;
            let base = first_id[name.as_str()];
            let link_parent = shard
                .link
                .as_ref()
                .map(|l| resolve_link(&l.shard, l.index))
                .unwrap_or(0);
            let offset = spans.len();
            let mut stack: Vec<usize> = Vec::new();
            for (i, rec) in shard.spans.iter().enumerate() {
                // Replay the open/close discipline: pop (and end) spans
                // until the top of the stack is this span's parent.
                while let Some(&top) = stack.last() {
                    if rec.parent == Some(top) {
                        break;
                    }
                    stack.pop();
                    let ended: &mut JournalSpan = &mut spans[offset + top];
                    ended.end = clock;
                    clock += 1;
                }
                let parent = match rec.parent {
                    Some(p) => base + p as u64,
                    None => link_parent,
                };
                spans.push(JournalSpan {
                    id: base + i as u64,
                    parent,
                    name: rec.name.clone(),
                    shard: name.clone(),
                    tid: tid as u32,
                    ts: clock,
                    end: 0,
                    wall: rec.wall,
                    attrs: rec.attrs.clone(),
                });
                clock += 1;
                stack.push(i);
            }
            while let Some(top) = stack.pop() {
                let ended: &mut JournalSpan = &mut spans[offset + top];
                ended.end = clock;
                clock += 1;
            }
        }
        Journal { spans, dropped }
    }

    /// Number of spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether the journal holds no spans.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Shard names in merge (= export) order.
    pub fn shards(&self) -> Vec<String> {
        let mut names: Vec<String> = Vec::new();
        for span in &self.spans {
            if names.last() != Some(&span.shard) {
                names.push(span.shard.clone());
            }
        }
        names
    }

    /// Number of spans with exactly this name.
    pub fn count_named(&self, name: &str) -> usize {
        self.spans.iter().filter(|s| s.name == name).count()
    }

    /// First span with exactly this name.
    pub fn find(&self, name: &str) -> Option<&JournalSpan> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// JSON-lines export: one object per span, in journal order, with
    /// logical ticks only (deterministic across machines).
    pub fn json_lines(&self) -> String {
        let mut out = String::new();
        for span in &self.spans {
            out.push_str("{\"id\":");
            out.push_str(&span.id.to_string());
            out.push_str(",\"parent\":");
            out.push_str(&span.parent.to_string());
            out.push_str(",\"name\":");
            json::push_str_literal(&mut out, &span.name);
            out.push_str(",\"shard\":");
            json::push_str_literal(&mut out, &span.shard);
            out.push_str(",\"ts\":");
            out.push_str(&span.ts.to_string());
            out.push_str(",\"end\":");
            out.push_str(&span.end.to_string());
            out.push_str(",\"attrs\":");
            json::push_attrs(&mut out, &span.attrs);
            out.push_str("}\n");
        }
        out
    }

    /// Chrome `trace_event` export (load in Perfetto / `chrome://tracing`):
    /// paired `B`/`E` duration events on one thread track per shard, plus
    /// `M` metadata events naming the tracks. Timestamps are logical ticks
    /// (the viewer only needs order and nesting).
    pub fn chrome_trace(&self) -> String {
        self.chrome_trace_with(None, None)
    }

    /// [`Journal::chrome_trace`] plus counter (`"C"`) tracks.
    ///
    /// With `counters`, every [`Unit::Count`] counter and every gauge in
    /// the snapshot gets a two-point counter track on pid 1 (value 0 at
    /// tick 0, final value at the last span tick) so ordinary study runs
    /// see transport retries, cache hits etc. alongside the spans.
    /// With `timeline`, each closed window emits one counter event per
    /// tracked series on pid 2 (timestamps are the windows' logical ends
    /// in microseconds) — Perfetto renders throughput, queue-depth and
    /// p99 curves next to the span tracks.
    pub fn chrome_trace_with(
        &self,
        counters: Option<&MetricsSnapshot>,
        timeline: Option<&Timeline>,
    ) -> String {
        let mut events: Vec<(u64, bool, &JournalSpan)> = Vec::new();
        for span in &self.spans {
            events.push((span.ts, true, span));
            events.push((span.end, false, span));
        }
        events.sort_by_key(|(tick, _, _)| *tick);
        let last_tick = events.last().map(|(tick, _, _)| *tick).unwrap_or(0);

        let mut out = String::from("{\"traceEvents\":[\n");
        out.push_str(
            "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":1,\"tid\":0,\
             \"args\":{\"name\":\"redlight\"}}",
        );
        for name in self.shards() {
            let tid = self
                .spans
                .iter()
                .find(|s| s.shard == name)
                .map(|s| s.tid)
                .unwrap_or(0);
            out.push_str(",\n{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":");
            out.push_str(&tid.to_string());
            out.push_str(",\"args\":{\"name\":");
            json::push_str_literal(&mut out, &name);
            out.push_str("}}");
        }
        for (tick, is_begin, span) in events {
            out.push_str(",\n{\"ph\":\"");
            out.push_str(if is_begin { "B" } else { "E" });
            out.push_str("\",\"pid\":1,\"tid\":");
            out.push_str(&span.tid.to_string());
            out.push_str(",\"ts\":");
            out.push_str(&tick.to_string());
            out.push_str(",\"name\":");
            json::push_str_literal(&mut out, &span.name);
            if is_begin {
                out.push_str(",\"cat\":\"redlight\",\"args\":");
                let mut attrs = vec![("id", AttrVal::U64(span.id))];
                if span.parent != 0 {
                    attrs.push(("parent", AttrVal::U64(span.parent)));
                }
                attrs.extend(span.attrs.iter().cloned());
                json::push_attrs(&mut out, &attrs);
            }
            out.push('}');
        }
        let push_counter = |out: &mut String, pid: u32, ts: u64, name: &str, value: i64| {
            out.push_str(",\n{\"ph\":\"C\",\"pid\":");
            out.push_str(&pid.to_string());
            out.push_str(",\"tid\":0,\"ts\":");
            out.push_str(&ts.to_string());
            out.push_str(",\"name\":");
            json::push_str_literal(out, name);
            out.push_str(",\"args\":{\"value\":");
            out.push_str(&value.to_string());
            out.push_str("}}");
        };
        if let Some(snap) = counters {
            for (name, value) in &snap.entries {
                let value = match value {
                    MetricValue::Counter {
                        value,
                        unit: Unit::Count,
                    } => *value as i64,
                    MetricValue::Gauge { value } => *value,
                    _ => continue,
                };
                if value == 0 {
                    continue;
                }
                push_counter(&mut out, 1, 0, name, 0);
                push_counter(&mut out, 1, last_tick, name, value);
            }
        }
        if let Some(tl) = timeline {
            out.push_str(
                ",\n{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":2,\"tid\":0,\
                 \"args\":{\"name\":\"timeline (logical \\u00b5s)\"}}",
            );
            for w in tl.windows() {
                let ts = w.end_ns / 1_000;
                for (i, name) in tl.counter_names().iter().enumerate() {
                    push_counter(&mut out, 2, ts, name, w.counters[i] as i64);
                }
                for (i, name) in tl.gauge_names().iter().enumerate() {
                    push_counter(&mut out, 2, ts, name, w.gauges[i]);
                }
                for (i, name) in tl.hist_names().iter().enumerate() {
                    let label = format!("{name}.p99");
                    push_counter(&mut out, 2, ts, &label, w.hists[i].p99 as i64);
                }
            }
        }
        out.push_str("\n]}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Trace;

    fn sample_trace() -> Trace {
        let trace = Trace::new();
        let mut root = trace.tracer("00.root");
        root.open("collect");
        root.open("corpus.compile");
        root.close();
        let link = root.link().expect("collect open");
        let mut worker = trace.tracer_under("01.worker", link);
        worker.open("crawl");
        worker.open("visits.000");
        worker.attr("sites", 25u64);
        worker.close();
        worker.close();
        worker.finish();
        root.close();
        root.finish();
        trace
    }

    #[test]
    fn merge_is_independent_of_commit_order() {
        // Same spans, worker shard committed before the root shard.
        let reordered = Trace::new();
        {
            let mut worker = reordered.tracer("01.worker");
            worker.open("crawl");
            worker.open("visits.000");
            worker.attr("sites", 25u64);
            worker.close();
            worker.close();
            worker.finish();
        }
        let mut root = reordered.tracer("00.root");
        root.open("collect");
        root.open("corpus.compile");
        root.close();
        root.close();
        root.finish();

        let a = sample_trace().journal();
        let b = reordered.journal();
        let ids = |j: &Journal| -> Vec<(u64, String, u64, u64)> {
            j.spans
                .iter()
                .map(|s| (s.id, s.name.clone(), s.ts, s.end))
                .collect()
        };
        // Journals agree on ids, order and clock; only the cross-shard
        // parent differs (the reordered worker shard has no link).
        assert_eq!(ids(&a), ids(&b));
    }

    #[test]
    fn cross_shard_links_become_parents() {
        let journal = sample_trace().journal();
        let collect = journal.find("collect").expect("collect span");
        let crawl = journal.find("crawl").expect("crawl span");
        assert_eq!(crawl.parent, collect.id);
        assert_eq!(journal.find("visits.000").expect("batch").parent, crawl.id);
    }

    #[test]
    fn logical_clock_nests_properly() {
        let journal = sample_trace().journal();
        for span in &journal.spans {
            assert!(span.end > span.ts, "{} must close after opening", span.name);
            if span.parent != 0 {
                // Parents in the same shard must strictly contain children.
                let parent = journal.spans.iter().find(|s| s.id == span.parent).unwrap();
                if parent.shard == span.shard {
                    assert!(parent.ts < span.ts && span.end < parent.end);
                }
            }
        }
    }

    #[test]
    fn chrome_trace_is_balanced() {
        let trace = sample_trace().journal().chrome_trace();
        let begins = trace.matches("\"ph\":\"B\"").count();
        let ends = trace.matches("\"ph\":\"E\"").count();
        assert_eq!(begins, 4);
        assert_eq!(begins, ends);
    }

    #[test]
    fn json_lines_one_object_per_span() {
        let journal = sample_trace().journal();
        let lines = journal.json_lines();
        assert_eq!(lines.lines().count(), journal.len());
        assert!(lines.lines().all(|l| l.starts_with("{\"id\":")));
    }

    #[test]
    fn empty_shards_do_not_shift_ids_ticks_or_tids() {
        fn shard_with(names: &[&str]) -> Shard {
            let mut shard = Shard::default();
            for name in names {
                shard.spans.push(crate::span::SpanRec {
                    name: (*name).to_string(),
                    parent: None,
                    attrs: Vec::new(),
                    wall: Duration::ZERO,
                });
            }
            shard
        }

        let mut with_empty = BTreeMap::new();
        with_empty.insert("00.root".to_string(), shard_with(&["collect"]));
        let quiet = Shard {
            dropped: 3,
            ..Default::default()
        };
        with_empty.insert("01.metrics-only".to_string(), quiet);
        with_empty.insert("02.worker".to_string(), shard_with(&["crawl"]));

        let mut without = BTreeMap::new();
        without.insert("00.root".to_string(), shard_with(&["collect"]));
        without.insert("02.worker".to_string(), shard_with(&["crawl"]));

        let a = Journal::build(&with_empty);
        let b = Journal::build(&without);
        assert_eq!(a.json_lines(), b.json_lines());
        let tids = |j: &Journal| j.spans.iter().map(|s| s.tid).collect::<Vec<_>>();
        assert_eq!(tids(&a), vec![1, 2], "tids stay dense and 1-based");
        assert_eq!(tids(&a), tids(&b));
        assert_eq!(a.dropped, 3, "drop counts still accumulate");
        assert_eq!(b.dropped, 0);
    }

    #[test]
    fn metrics_only_worker_leaves_journal_unchanged() {
        let baseline = sample_trace().journal().json_lines();
        let trace = sample_trace();
        // A worker that records metrics but never opens a span: its tracer
        // finishes empty and must not perturb the merged journal.
        let quiet = trace.tracer("02.metrics-only");
        quiet.finish();
        assert_eq!(trace.journal().json_lines(), baseline);
    }

    #[test]
    fn chrome_trace_with_adds_counter_tracks() {
        let journal = sample_trace().journal();
        assert_eq!(
            journal.chrome_trace(),
            journal.chrome_trace_with(None, None),
            "plain export is the no-extras case"
        );

        let registry = crate::Registry::new();
        registry.counter("transport_retries").add(7);
        registry.counter_with_unit("crawl_ns", Unit::Nanos).add(9);
        registry.gauge("depth").set(2);
        let snap = registry.snapshot();
        let trace = journal.chrome_trace_with(Some(&snap), None);
        assert_eq!(trace.matches("\"ph\":\"C\"").count(), 4);
        assert!(trace.contains("\"name\":\"transport_retries\""));
        assert!(trace.contains("\"name\":\"depth\""));
        assert!(
            !trace.contains("crawl_ns"),
            "wall-time counters stay out of deterministic exports"
        );

        let mut tl = Timeline::new(Duration::from_millis(1));
        let c = registry.counter("transport_retries");
        tl.track_counter(&registry, "transport_retries");
        c.add(5);
        tl.finish(2_000_000);
        let traced = journal.chrome_trace_with(None, Some(&tl));
        assert!(traced.contains("\"pid\":2"));
        assert!(traced.contains("\"name\":\"transport_retries\""));
    }
}
