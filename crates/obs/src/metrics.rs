//! Named counters, gauges and log-2 histograms behind a shared registry.
//!
//! The design splits *cells* from *names*: a [`Counter`], [`Gauge`] or
//! [`Histogram`] is a cheap cloneable handle over lock-free atomics and can
//! live entirely on its own (`Counter::default()` is a private, unregistered
//! cell — existing structs keep deriving `Default` and counting exactly as
//! before). A [`Registry`] is merely a name → cell table: asking it for
//! `"transport.requests"` twice hands back handles over the *same* cell, so
//! producers in different layers aggregate without coordination. The
//! registry lock guards creation only; the hot increment path is a single
//! relaxed `fetch_add`.
//!
//! Snapshots ([`MetricsSnapshot`]) are plain ordered data: diffable,
//! mergeable ([`Registry::absorb`] folds per-worker registries into the
//! study-wide one deterministically) and exportable as Prometheus-style
//! text. Wall-clock metrics (unit [`Unit::Nanos`]) are deliberately
//! excluded from the text exposition and from
//! [`MetricsSnapshot::deterministic`] so that same-seed runs produce
//! byte-identical exports.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// What a metric's value counts; selects export formatting and whether the
/// metric is part of the deterministic (seed-reproducible) surface.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Unit {
    /// Dimensionless event count (the default).
    #[default]
    Count,
    /// Payload sizes.
    Bytes,
    /// Wall-clock nanoseconds — machine-dependent, excluded from
    /// deterministic exports.
    Nanos,
}

/// Monotone counter: a cloneable handle over one lock-free cell.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// A standalone (unregistered) counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// Signed up/down gauge.
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    cell: Arc<AtomicI64>,
}

impl Gauge {
    /// A standalone (unregistered) gauge at zero.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.cell.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.cell.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: one for zero plus one per power of two up
/// to `u64::MAX` (`2^0..2^63`).
pub const HISTOGRAM_BUCKETS: usize = 65;

#[derive(Debug)]
struct HistCells {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
    /// Exact smallest observed value; `u64::MAX` sentinel while empty.
    min: AtomicU64,
    /// Exact largest observed value; only meaningful once non-empty.
    max: AtomicU64,
}

impl Default for HistCells {
    fn default() -> Self {
        HistCells {
            buckets: [(); HISTOGRAM_BUCKETS].map(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

/// Fixed log-2 bucket histogram: bucket 0 holds exact zeros, bucket `i > 0`
/// holds values in `[2^(i-1), 2^i - 1]`. Recording is two relaxed
/// `fetch_add`s; there is no dynamic allocation and merging two histograms
/// is bucket-wise addition, so per-worker shards fold losslessly.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    cells: Arc<HistCells>,
}

impl Histogram {
    /// A standalone (unregistered) empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// The bucket index `v` falls into.
    pub fn bucket_index(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        }
    }

    /// Inclusive upper bound of bucket `i`.
    pub fn bucket_bound(i: usize) -> u64 {
        match i {
            0 => 0,
            1..=63 => (1u64 << i) - 1,
            _ => u64::MAX,
        }
    }

    /// Records one observation.
    pub fn record(&self, v: u64) {
        self.cells.buckets[Self::bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.cells.sum.fetch_add(v, Ordering::Relaxed);
        self.cells.min.fetch_min(v, Ordering::Relaxed);
        self.cells.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Folds a snapshot (e.g. from a worker shard) into this histogram.
    pub fn absorb(&self, snap: &HistogramSnapshot) {
        for (i, &n) in snap.buckets.iter().enumerate() {
            if n > 0 {
                self.cells.buckets[i].fetch_add(n, Ordering::Relaxed);
            }
        }
        self.cells.sum.fetch_add(snap.sum, Ordering::Relaxed);
        // Empty snapshots carry the sentinels (MAX/0), which are identity
        // elements for min/max — no emptiness check needed.
        self.cells.min.fetch_min(snap.min_raw, Ordering::Relaxed);
        self.cells.max.fetch_max(snap.max_raw, Ordering::Relaxed);
    }

    /// Immutable copy of the current buckets.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .cells
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        HistogramSnapshot {
            buckets,
            sum: self.cells.sum.load(Ordering::Relaxed),
            min_raw: self.cells.min.load(Ordering::Relaxed),
            max_raw: self.cells.max.load(Ordering::Relaxed),
        }
    }
}

/// Plain-data copy of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts ([`HISTOGRAM_BUCKETS`] entries).
    pub buckets: Vec<u64>,
    /// Sum of all recorded values.
    pub sum: u64,
    /// Exact smallest observed value (`u64::MAX` sentinel when empty; use
    /// [`HistogramSnapshot::min`]).
    pub min_raw: u64,
    /// Exact largest observed value (0 when empty; use
    /// [`HistogramSnapshot::max`]).
    pub max_raw: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: Vec::new(),
            sum: 0,
            min_raw: u64::MAX,
            max_raw: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Total observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Exact smallest observed value, `None` when empty. Unlike
    /// [`HistogramSnapshot::quantile`], this is not bucket-resolution.
    pub fn min(&self) -> Option<u64> {
        (self.count() > 0).then_some(self.min_raw)
    }

    /// Exact largest observed value, `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.count() > 0).then_some(self.max_raw)
    }

    /// Bucket-wise merge. Min/max fold exactly: the sentinels of an empty
    /// side are identity elements.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if self.buckets.is_empty() {
            self.buckets = vec![0; HISTOGRAM_BUCKETS];
        }
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        // Value sums wrap, matching the atomic `fetch_add` recording path.
        self.sum = self.sum.wrapping_add(other.sum);
        self.min_raw = self.min_raw.min(other.min_raw);
        self.max_raw = self.max_raw.max(other.max_raw);
    }

    /// The bucket-wise difference `self − earlier`, for windowed views of
    /// a monotone histogram (`earlier` must be a previous snapshot of the
    /// same histogram). Min/max cannot be reconstructed per window, so the
    /// delta carries the empty sentinels.
    pub fn delta_since(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let buckets = if earlier.buckets.is_empty() {
            self.buckets.clone()
        } else {
            self.buckets
                .iter()
                .zip(&earlier.buckets)
                .map(|(a, b)| a.saturating_sub(*b))
                .collect()
        };
        HistogramSnapshot {
            buckets,
            sum: self.sum.wrapping_sub(earlier.sum),
            ..HistogramSnapshot::default()
        }
    }

    /// Quantile estimate: the inclusive upper bound of the first bucket at
    /// which the cumulative count reaches `q` of the total (0 when empty).
    /// Upper bounds make the estimate conservative and monotone both in `q`
    /// and under insertion of ever-larger values.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = (q * total as f64).ceil().max(1.0) as u64;
        let mut cumulative = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            cumulative += n;
            if cumulative >= rank {
                return Histogram::bucket_bound(i);
            }
        }
        Histogram::bucket_bound(HISTOGRAM_BUCKETS - 1)
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter, Unit),
    Gauge(Gauge),
    Histogram(Histogram, Unit),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(..) => "counter",
            Metric::Gauge(..) => "gauge",
            Metric::Histogram(..) => "histogram",
        }
    }
}

/// Name → cell table. Cloning shares the table; handles returned for the
/// same name share the cell. The internal lock covers name resolution only
/// — once a handle is out, increments are lock-free.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    metrics: Arc<Mutex<BTreeMap<String, Metric>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn resolve<T>(
        &self,
        name: &str,
        make: impl FnOnce() -> Metric,
        view: impl FnOnce(&Metric) -> Option<T>,
    ) -> T {
        let mut metrics = self.metrics.lock().expect("metrics registry poisoned");
        let metric = metrics.entry(name.to_owned()).or_insert_with(make);
        match view(metric) {
            Some(handle) => handle,
            None => panic!("metric {name:?} already registered as a {}", metric.kind()),
        }
    }

    /// The counter named `name` (created with [`Unit::Count`] on first use).
    pub fn counter(&self, name: &str) -> Counter {
        self.counter_with_unit(name, Unit::Count)
    }

    /// The counter named `name`, created with `unit` on first use.
    pub fn counter_with_unit(&self, name: &str, unit: Unit) -> Counter {
        self.resolve(
            name,
            || Metric::Counter(Counter::new(), unit),
            |m| match m {
                Metric::Counter(c, _) => Some(c.clone()),
                _ => None,
            },
        )
    }

    /// The gauge named `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.resolve(
            name,
            || Metric::Gauge(Gauge::new()),
            |m| match m {
                Metric::Gauge(g) => Some(g.clone()),
                _ => None,
            },
        )
    }

    /// The histogram named `name` (created with [`Unit::Count`] on first use).
    pub fn histogram(&self, name: &str) -> Histogram {
        self.histogram_with_unit(name, Unit::Count)
    }

    /// The histogram named `name`, created with `unit` on first use.
    pub fn histogram_with_unit(&self, name: &str, unit: Unit) -> Histogram {
        self.resolve(
            name,
            || Metric::Histogram(Histogram::new(), unit),
            |m| match m {
                Metric::Histogram(h, _) => Some(h.clone()),
                _ => None,
            },
        )
    }

    /// Current value of a counter, zero if absent.
    pub fn counter_value(&self, name: &str) -> u64 {
        let metrics = self.metrics.lock().expect("metrics registry poisoned");
        match metrics.get(name) {
            Some(Metric::Counter(c, _)) => c.get(),
            _ => 0,
        }
    }

    /// Ordered plain-data copy of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let metrics = self.metrics.lock().expect("metrics registry poisoned");
        let entries = metrics
            .iter()
            .map(|(name, metric)| {
                let value = match metric {
                    Metric::Counter(c, unit) => MetricValue::Counter {
                        value: c.get(),
                        unit: *unit,
                    },
                    Metric::Gauge(g) => MetricValue::Gauge { value: g.get() },
                    Metric::Histogram(h, unit) => MetricValue::Histogram {
                        snap: h.snapshot(),
                        unit: *unit,
                    },
                };
                (name.clone(), value)
            })
            .collect();
        MetricsSnapshot { entries }
    }

    /// Folds a snapshot into this registry: counters and gauges add,
    /// histograms merge bucket-wise. Missing metrics are created with the
    /// snapshot's unit. Used to merge per-worker registries in a
    /// deterministic (caller-chosen) order.
    pub fn absorb(&self, snap: &MetricsSnapshot) {
        for (name, value) in &snap.entries {
            match value {
                MetricValue::Counter { value, unit } => {
                    self.counter_with_unit(name, *unit).add(*value);
                }
                MetricValue::Gauge { value } => {
                    self.gauge(name).add(*value);
                }
                MetricValue::Histogram { snap, unit } => {
                    self.histogram_with_unit(name, *unit).absorb(snap);
                }
            }
        }
    }
}

/// One metric's value inside a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricValue {
    /// Monotone counter.
    Counter {
        /// Accumulated value.
        value: u64,
        /// Declared unit.
        unit: Unit,
    },
    /// Gauge.
    Gauge {
        /// Current value.
        value: i64,
    },
    /// Histogram.
    Histogram {
        /// Bucket copy.
        snap: HistogramSnapshot,
        /// Declared unit.
        unit: Unit,
    },
}

impl MetricValue {
    fn unit(&self) -> Unit {
        match self {
            MetricValue::Counter { unit, .. } | MetricValue::Histogram { unit, .. } => *unit,
            MetricValue::Gauge { .. } => Unit::Count,
        }
    }
}

/// Ordered plain-data copy of a [`Registry`]: comparable across runs,
/// mergeable across workers, exportable as text.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// Name → value, ordered by name.
    pub entries: BTreeMap<String, MetricValue>,
}

impl MetricsSnapshot {
    /// Counter value by name, zero if absent.
    pub fn counter(&self, name: &str) -> u64 {
        match self.entries.get(name) {
            Some(MetricValue::Counter { value, .. }) => *value,
            _ => 0,
        }
    }

    /// The snapshot restricted to seed-reproducible metrics: everything
    /// except wall-clock ([`Unit::Nanos`]) values. Two same-seed runs
    /// compare equal on this view.
    pub fn deterministic(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            entries: self
                .entries
                .iter()
                .filter(|(_, v)| v.unit() != Unit::Nanos)
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
        }
    }

    /// Prometheus-style text exposition of the deterministic view. Metric
    /// names are sanitized (`.` and `-` become `_`), output is ordered by
    /// name, histograms expose cumulative buckets plus `_sum`/`_count`.
    pub fn prometheus(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.entries {
            if value.unit() == Unit::Nanos {
                continue;
            }
            let name = sanitize_metric_name(name);
            match value {
                MetricValue::Counter { value, .. } => {
                    let _ = writeln!(out, "# TYPE {name} counter");
                    let _ = writeln!(out, "{name} {value}");
                }
                MetricValue::Gauge { value } => {
                    let _ = writeln!(out, "# TYPE {name} gauge");
                    let _ = writeln!(out, "{name} {value}");
                }
                MetricValue::Histogram { snap, .. } => {
                    let _ = writeln!(out, "# TYPE {name} histogram");
                    let mut cumulative = 0u64;
                    for (i, &n) in snap.buckets.iter().enumerate() {
                        if n == 0 {
                            continue;
                        }
                        cumulative += n;
                        let bound = Histogram::bucket_bound(i);
                        let _ = writeln!(out, "{name}_bucket{{le=\"{bound}\"}} {cumulative}");
                    }
                    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cumulative}");
                    let _ = writeln!(out, "{name}_sum {}", snap.sum);
                    let _ = writeln!(out, "{name}_count {cumulative}");
                    // Exact observed extremes (the buckets are log-2, so
                    // quantiles alone are bound-resolution only).
                    if let (Some(lo), Some(hi)) = (snap.min(), snap.max()) {
                        let _ = writeln!(out, "{name}_min {lo}");
                        let _ = writeln!(out, "{name}_max {hi}");
                    }
                }
            }
        }
        out
    }
}

fn sanitize_metric_name(name: &str) -> String {
    name.chars()
        .map(|c| match c {
            'a'..='z' | 'A'..='Z' | '0'..='9' | '_' | ':' => c,
            _ => '_',
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_share_cells_by_name() {
        let registry = Registry::new();
        let a = registry.counter("transport.requests");
        let b = registry.counter("transport.requests");
        a.add(3);
        b.inc();
        assert_eq!(a.get(), 4);
        assert_eq!(registry.counter_value("transport.requests"), 4);
        assert_eq!(registry.counter_value("absent"), 0);
    }

    #[test]
    fn standalone_counter_is_independent() {
        let a = Counter::new();
        let b = Counter::new();
        a.add(2);
        assert_eq!(a.get(), 2);
        assert_eq!(b.get(), 0);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let registry = Registry::new();
        registry.counter("x");
        registry.gauge("x");
    }

    #[test]
    fn histogram_bucket_boundaries() {
        // Exact zeros get their own bucket.
        assert_eq!(Histogram::bucket_index(0), 0);
        // Bucket i covers [2^(i-1), 2^i - 1].
        for i in 1..=63usize {
            let lo = 1u64 << (i - 1);
            let hi = (1u64 << i).wrapping_sub(1);
            assert_eq!(Histogram::bucket_index(lo), i, "low edge of bucket {i}");
            assert_eq!(Histogram::bucket_index(hi), i, "high edge of bucket {i}");
        }
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        assert_eq!(Histogram::bucket_bound(0), 0);
        assert_eq!(Histogram::bucket_bound(1), 1);
        assert_eq!(Histogram::bucket_bound(3), 7);
        assert_eq!(Histogram::bucket_bound(64), u64::MAX);
    }

    #[test]
    fn histogram_quantiles_and_merge() {
        let h = Histogram::new();
        for v in [1u64, 2, 3, 4, 100] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count(), 5);
        assert_eq!(snap.sum, 110);
        // p50 rank 3 → value 3 lives in bucket [2,3].
        assert_eq!(snap.quantile(0.5), 3);
        // p99 lands in 100's bucket [64,127].
        assert_eq!(snap.quantile(0.99), 127);
        assert!(snap.quantile(0.5) <= snap.quantile(0.99));

        let other = Histogram::new();
        other.record(0);
        let mut merged = snap.clone();
        merged.merge(&other.snapshot());
        assert_eq!(merged.count(), 6);
        assert_eq!(merged.quantile(0.0), 0);
    }

    #[test]
    fn histogram_tracks_exact_min_and_max() {
        let h = Histogram::new();
        assert_eq!(h.snapshot().min(), None, "empty histogram has no extremes");
        assert_eq!(h.snapshot().max(), None);
        for v in [37u64, 5, 901, 5, 64] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.min(), Some(5));
        assert_eq!(snap.max(), Some(901), "exact, not the bucket bound 1023");
        assert!(snap.max().unwrap() <= snap.quantile(1.0));
    }

    #[test]
    fn min_max_survive_shard_merges() {
        // Three worker shards with disjoint ranges, one empty.
        let a = Histogram::new();
        a.record(100);
        a.record(150);
        let b = Histogram::new();
        b.record(3);
        let empty = Histogram::new();

        // merge() on snapshots…
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        merged.merge(&empty.snapshot());
        assert_eq!(merged.min(), Some(3));
        assert_eq!(merged.max(), Some(150));

        // …and absorb() into a live histogram agree.
        let study = Histogram::new();
        study.absorb(&a.snapshot());
        study.absorb(&empty.snapshot());
        study.absorb(&b.snapshot());
        assert_eq!(study.snapshot().min(), Some(3));
        assert_eq!(study.snapshot().max(), Some(150));
        assert_eq!(study.snapshot(), merged);

        // Absorbing only empties leaves the sentinels (still "no extremes").
        let idle = Histogram::new();
        idle.absorb(&empty.snapshot());
        assert_eq!(idle.snapshot().min(), None);
        assert_eq!(idle.snapshot().max(), None);
    }

    #[test]
    fn delta_since_isolates_a_window() {
        let h = Histogram::new();
        h.record(10);
        let before = h.snapshot();
        h.record(1000);
        h.record(2000);
        let delta = h.snapshot().delta_since(&before);
        assert_eq!(delta.count(), 2);
        assert_eq!(delta.sum, 3000);
        assert_eq!(delta.quantile(0.5), 1023, "only the window's buckets");
        // Against a default (empty) baseline the delta is the snapshot's
        // own buckets.
        let full = h.snapshot().delta_since(&HistogramSnapshot::default());
        assert_eq!(full.count(), 3);
    }

    #[test]
    fn absorb_sums_counters_and_buckets() {
        let worker = Registry::new();
        worker.counter("transport.retries").add(2);
        worker.histogram("crawl.attempts").record(3);
        worker.gauge("depth").set(5);

        let study = Registry::new();
        study.counter("transport.retries").add(1);
        study.absorb(&worker.snapshot());
        study.absorb(&worker.snapshot());

        let snap = study.snapshot();
        assert_eq!(snap.counter("transport.retries"), 5);
        match &snap.entries["crawl.attempts"] {
            MetricValue::Histogram { snap, .. } => assert_eq!(snap.count(), 2),
            other => panic!("unexpected {other:?}"),
        }
        match &snap.entries["depth"] {
            MetricValue::Gauge { value } => assert_eq!(*value, 10),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn prometheus_exposition_is_sanitized_sorted_and_walltime_free() {
        let registry = Registry::new();
        registry.counter("transport.requests").add(7);
        registry
            .counter_with_unit("transport.latency_ns", Unit::Nanos)
            .add(123_456);
        registry.histogram("crawl.attempts").record(1);
        registry.histogram("crawl.attempts").record(2);

        let text = registry.snapshot().prometheus();
        assert!(text.contains("# TYPE transport_requests counter"));
        assert!(text.contains("transport_requests 7"));
        assert!(!text.contains("latency"), "wall-clock metrics excluded");
        assert!(text.contains("crawl_attempts_bucket{le=\"1\"} 1"));
        assert!(text.contains("crawl_attempts_bucket{le=\"3\"} 2"));
        assert!(text.contains("crawl_attempts_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("crawl_attempts_sum 3"));
        assert!(text.contains("crawl_attempts_count 2"));
        assert!(text.contains("crawl_attempts_min 1"));
        assert!(text.contains("crawl_attempts_max 2"));
        // Sorted by name: crawl.* precedes transport.*.
        let crawl_at = text.find("crawl_attempts").unwrap();
        let transport_at = text.find("transport_requests").unwrap();
        assert!(crawl_at < transport_at);
    }

    #[test]
    fn deterministic_view_drops_nanos_only() {
        let registry = Registry::new();
        registry.counter("a").add(1);
        registry
            .counter_with_unit("b.latency_ns", Unit::Nanos)
            .add(999);
        let det = registry.snapshot().deterministic();
        assert_eq!(det.entries.len(), 1);
        assert!(det.entries.contains_key("a"));
    }
}
