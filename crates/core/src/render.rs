//! Human-readable rendering of study results: one printable block per
//! table/figure of the paper.

use redlight_report::figure::{self, Series};
use redlight_report::table::{fmt_count, fmt_pct, Table};

use crate::results::StudyResults;

impl StudyResults {
    /// §3 corpus compilation.
    pub fn render_corpus(&self) -> String {
        let c = &self.corpus;
        let mut t = Table::new("Corpus compilation (paper §3)", &["source", "count"]);
        t.row(&["directory aggregators", &fmt_count(c.from_directories)]);
        t.row(&["Alexa Adult category", &fmt_count(c.from_adult_category)]);
        t.row(&["keyword search (top-1M, 2018)", &fmt_count(c.from_keywords)]);
        t.row(&["candidates (union)", &fmt_count(c.candidates)]);
        t.row(&["false positives removed", &fmt_count(c.false_positives)]);
        t.row(&["sanitized porn corpus", &fmt_count(c.sanitized)]);
        t.row(&["regular reference corpus", &fmt_count(c.regular_reference)]);
        t.row(&["manual inspections spent", &fmt_count(c.manual_inspections)]);
        t.render()
    }

    /// Fig. 1.
    pub fn render_fig1(&self) -> String {
        let best: Vec<f64> = self
            .fig1
            .points
            .iter()
            .filter_map(|p| p.best.map(|b| b as f64))
            .collect();
        let median: Vec<f64> = self
            .fig1
            .points
            .iter()
            .filter_map(|p| p.median.map(|m| m as f64))
            .collect();
        let presence: Vec<f64> = self
            .fig1
            .points
            .iter()
            .map(|p| p.presence * 100.0)
            .collect();
        let mut out = figure::render(
            "Fig. 1 — rank stability (sites ordered by best 2018 rank)",
            &[
                Series::new("best rank", best),
                Series::new("median rank", median),
                Series::new("% days in top-1M", presence),
            ],
            60,
        );
        out.push_str(&format!(
            "always in top-1M: {} ({:.1}%)   always in top-1k: {}\n",
            fmt_count(self.fig1.always_top1m),
            self.fig1.always_top1m_pct,
            self.fig1.always_top1k
        ));
        out
    }

    /// Table 1.
    pub fn render_table1(&self) -> String {
        let mut t = Table::new(
            "Table 1 — largest porn-publisher clusters",
            &["company", "# sites", "most popular site (best rank)"],
        );
        for cluster in self.ownership.clusters.iter().take(15) {
            let popular = cluster
                .most_popular
                .as_ref()
                .map(|(d, r)| format!("{d} ({})", fmt_count(*r as usize)))
                .unwrap_or_else(|| "—".to_string());
            t.row(&[
                cluster.company.clone(),
                cluster.sites.len().to_string(),
                popular,
            ]);
        }
        let mut out = t.render();
        out.push_str(&format!(
            "companies: {}   attributed sites: {}   unattributed: {:.1}% of corpus   template clusters discarded: {}\n",
            self.ownership.companies,
            self.ownership.attributed_sites,
            self.ownership.unattributed_pct,
            self.ownership.template_clusters_discarded,
        ));
        out.push_str(&format!(
            "monetization: {:.1}% offer subscriptions; {:.1}% of those are paid ({} manual overrides)\n",
            self.monetization.with_subscription_pct,
            self.monetization.paid_pct,
            self.monetization.manual_overrides,
        ));
        out
    }

    /// Table 2.
    pub fn render_table2(&self) -> String {
        let t2 = &self.table2;
        let mut t = Table::new(
            "Table 2 — first/third-party domains",
            &["domain category", "porn (P)", "regular (R)", "|P ∩ R|"],
        );
        t.row(&[
            "corpus size".to_string(),
            fmt_count(t2.porn_corpus_size),
            fmt_count(t2.regular_corpus_size),
            "—".to_string(),
        ]);
        t.row(&[
            "first-party".to_string(),
            fmt_count(t2.porn_first_party),
            fmt_count(t2.regular_first_party),
            "—".to_string(),
        ]);
        t.row(&[
            "third-party".to_string(),
            fmt_count(t2.porn_third_party),
            fmt_count(t2.regular_third_party),
            fmt_count(t2.third_party_intersection),
        ]);
        t.row(&[
            "third-party ATS".to_string(),
            fmt_count(t2.porn_ats),
            fmt_count(t2.regular_ats),
            fmt_count(t2.ats_intersection),
        ]);
        t.render()
    }

    /// Table 3.
    pub fn render_table3(&self) -> String {
        let mut t = Table::new(
            "Table 3 — third-party presence by popularity interval",
            &["interval", "porn sites", "third-party (unique)"],
        );
        for row in &self.table3.rows {
            t.row(&[
                row.tier.label().to_string(),
                fmt_count(row.sites),
                format!(
                    "{} ({})",
                    fmt_count(row.third_party_total),
                    fmt_count(row.third_party_unique)
                ),
            ]);
        }
        let mut out = t.render();
        out.push_str(&format!(
            "present in all four tiers: {:.1}%   only on 100k+ sites: {:.1}%\n",
            self.table3.in_all_tiers_pct, self.table3.only_unpopular_pct
        ));
        out
    }

    /// Fig. 3.
    pub fn render_fig3(&self) -> String {
        let mut t = Table::new(
            "Fig. 3 — top third-party organizations",
            &["organization", "porn sites", "porn %", "regular %"],
        );
        for p in self.fig3_porn.iter().take(19) {
            let regular_pct = self
                .fig3_regular
                .iter()
                .find(|r| r.organization == p.organization)
                .map(|r| fmt_pct(r.fraction * 100.0))
                .unwrap_or_else(|| "–".to_string());
            t.row(&[
                p.organization.clone(),
                fmt_count(p.sites),
                fmt_pct(p.fraction * 100.0),
                regular_pct,
            ]);
        }
        let mut out = t.render();
        out.push_str(&format!(
            "attribution: {} of {} third-party FQDNs resolved ({:.1}%); {} via Disconnect alone; {} companies\n",
            fmt_count(self.attribution.resolved_fqdns),
            fmt_count(self.attribution.total_fqdns),
            crate::render::pct(self.attribution.resolved_fqdns, self.attribution.total_fqdns),
            fmt_count(self.attribution.resolved_by_disconnect),
            fmt_count(self.attribution.companies),
        ));
        out
    }

    /// Table 4 + §5.1.1 statistics.
    pub fn render_table4(&self) -> String {
        let s = &self.cookie_stats;
        let mut t = Table::new(
            "Table 4 — top third-party domains delivering ID cookies",
            &[
                "domain",
                "% porn sites",
                "# cookies",
                "ATS",
                "web eco",
                "% with IP",
            ],
        );
        for row in &self.table4 {
            t.row(&[
                row.domain.clone(),
                fmt_pct(row.site_pct),
                fmt_count(row.cookies),
                tick(row.is_ats),
                tick(row.in_web_ecosystem),
                fmt_pct(row.ip_pct),
            ]);
        }
        let mut out = t.render();
        out.push_str(&format!(
            "cookies: {} total on {:.1}% of sites; {} survive the ID filter; {} third-party \
             from {} domains on {:.1}% of sites\n",
            fmt_count(s.total_cookies),
            s.sites_with_cookies_pct,
            fmt_count(s.id_cookies),
            fmt_count(s.third_party_id_cookies),
            fmt_count(s.third_party_domains),
            s.sites_with_third_party_pct,
        ));
        out.push_str(&format!(
            "the 100 most popular name=value cookies cover {:.1}% of sites\n",
            s.top100_cookie_site_pct
        ));
        out.push_str(&format!(
            "encoded payloads: {} cookies embed the client IP ({:.1}% from the top family, \
             {} sites); {} geolocation cookies on {} sites via {:?}; {} values >1k chars \
             (max {})\n",
            fmt_count(s.ip_cookies),
            s.ip_cookies_top_org_pct,
            s.ip_cookie_sites,
            s.geo_cookies,
            s.geo_cookie_sites,
            s.geo_cookie_domains,
            fmt_count(s.long_cookies),
            fmt_count(s.max_value_len),
        ));
        out
    }

    /// Fig. 4 + §5.1.2 statistics.
    pub fn render_fig4(&self, min_exchanges: usize) -> String {
        let mut t = Table::new(
            "Fig. 4 — cookie syncing (heaviest pairs)",
            &["origin", "destination", "# cookies"],
        );
        for (pair, count) in self.sync.heavy_pairs(min_exchanges).into_iter().take(20) {
            t.row(&[
                pair.origin.clone(),
                pair.destination.clone(),
                fmt_count(count),
            ]);
        }
        let mut out = t.render();
        out.push_str(&format!(
            "sites with syncing: {}   pairs: {}   origins: {}   destinations: {}   \
             top-100 sites syncing: {:.1}%\n",
            fmt_count(self.sync.sites_with_sync),
            fmt_count(self.sync.pairs.len()),
            fmt_count(self.sync.origins),
            fmt_count(self.sync.destinations),
            self.sync.top_sites_with_sync_pct,
        ));
        out
    }

    /// Table 5 + §5.1.3/5.1.4 statistics.
    pub fn render_table5(&self) -> String {
        let mut t = Table::new(
            "Table 5 — fingerprinting third parties",
            &[
                "domain",
                "porn sites",
                "ATS",
                "regular web",
                "canvas",
                "webrtc",
            ],
        );
        for row in &self.table5 {
            t.row(&[
                row.domain.clone(),
                fmt_count(row.presence),
                tick(row.is_ats),
                tick(row.in_regular_web),
                row.canvas_scripts.to_string(),
                row.webrtc_scripts.to_string(),
            ]);
        }
        let fp = &self.fingerprint;
        let mut out = t.render();
        out.push_str(&format!(
            "canvas: {} scripts on {} sites from {} third-party services \
             ({:.1}% third-party); {:.1}% not indexed by the lists; decoys rejected: {}\n",
            fmt_count(fp.canvas_scripts.len()),
            fmt_count(fp.canvas_sites.len()),
            fmt_count(fp.canvas_services.len()),
            fp.third_party_script_pct,
            fp.unindexed_pct,
            fp.rejected_executions,
        ));
        out.push_str(&format!(
            "font fingerprinting: {} script(s) on {} site(s)\n",
            fp.font_scripts.len(),
            fp.font_sites.len()
        ));
        let rtc = &self.webrtc;
        out.push_str(&format!(
            "webrtc: {} scripts on {} sites from {} services ({} ATS-listed); \
             {} sites combine it with other tracking\n",
            rtc.scripts.len(),
            rtc.sites.len(),
            rtc.services.len(),
            rtc.ats_services.len(),
            rtc.sites_with_other_tracking,
        ));
        out
    }

    /// Table 6 + §5.2.
    pub fn render_table6(&self) -> String {
        let mut t = Table::new(
            "Table 6 — HTTPS usage",
            &[
                "interval",
                "porn sites",
                "sites HTTPS",
                "3rd-party FQDNs",
                "3rd-party HTTPS",
            ],
        );
        for row in &self.https.rows {
            t.row(&[
                row.tier.label().to_string(),
                fmt_count(row.sites),
                fmt_pct(row.sites_https_pct),
                fmt_count(row.third_party_fqdns),
                fmt_pct(row.third_party_https_pct),
            ]);
        }
        let mut out = t.render();
        out.push_str(&format!(
            "not fully HTTPS: {} sites ({:.1}%); of those, {:.1}% send cookies in clear\n",
            fmt_count(self.https.not_fully_https),
            self.https.not_fully_https_pct,
            self.https.clear_cookie_pct,
        ));
        out
    }

    /// Table 7 + §6.
    pub fn render_table7(&self) -> String {
        let mut t = Table::new(
            "Table 7 — per-country comparison",
            &[
                "country",
                "FQDNs",
                "web eco %",
                "unique",
                "ATS",
                "unique ATS",
            ],
        );
        for row in &self.table7.rows {
            t.row(&[
                row.country.name().to_string(),
                fmt_count(row.fqdns),
                fmt_pct(row.web_ecosystem_pct),
                fmt_count(row.unique_fqdns),
                fmt_count(row.ats),
                fmt_count(row.unique_ats),
            ]);
        }
        let mut out = t.render();
        out.push_str(&format!(
            "totals: {} FQDNs, {} country-unique, {} ATS, {} country-unique ATS\n",
            fmt_count(self.table7.total_fqdns),
            fmt_count(self.table7.total_unique),
            fmt_count(self.table7.total_ats),
            fmt_count(self.table7.total_unique_ats),
        ));
        let gm = &self.geo_malware;
        out.push_str("malware by country:");
        for (country, domains, sites) in &gm.per_country {
            out.push_str(&format!(
                " {}={} dom/{} sites",
                country.code(),
                domains,
                sites
            ));
        }
        out.push_str(&format!(
            "\nstable malicious domains: {}   sites with malware everywhere (lower bound): {}\n",
            gm.stable_domains, gm.stable_sites_lower_bound
        ));
        out
    }

    /// Table 8 + §7.1.
    pub fn render_table8(&self) -> String {
        let mut t = Table::new(
            "Table 8 — cookie banners (EU vs USA)",
            &["type", "EU", "USA"],
        );
        for kind in ["No Option", "Confirmation", "Binary", "Others"] {
            t.row(&[
                kind.to_string(),
                fmt_pct(
                    self.banners_eu
                        .pct_by_type
                        .get(kind)
                        .copied()
                        .unwrap_or(0.0),
                ),
                fmt_pct(
                    self.banners_usa
                        .pct_by_type
                        .get(kind)
                        .copied()
                        .unwrap_or(0.0),
                ),
            ]);
        }
        t.row(&[
            "Total".to_string(),
            fmt_pct(self.banners_eu.total_pct),
            fmt_pct(self.banners_usa.total_pct),
        ]);
        let mut out = t.render();
        out.push_str(&format!(
            "no-option share of bannered sites (EU): {:.1}%   manual rejections: EU {} / USA {}\n",
            self.banners_eu.no_option_share_pct,
            self.banners_eu.rejected,
            self.banners_usa.rejected,
        ));
        out
    }

    /// §7.2 age verification.
    pub fn render_agegates(&self) -> String {
        let mut t = Table::new(
            "Age verification (paper §7.2, top-sites subset)",
            &[
                "country",
                "studied",
                "with gate",
                "%",
                "bypassed",
                "social login",
            ],
        );
        for c in &self.agegates.per_country {
            t.row(&[
                c.country.name().to_string(),
                c.studied.to_string(),
                c.with_gate.to_string(),
                fmt_pct(c.with_gate_pct),
                c.bypassed.to_string(),
                c.social_login.to_string(),
            ]);
        }
        let mut out = t.render();
        out.push_str(&format!(
            "russia-only gates: {:.1}%   gates everywhere-but-russia: {:.1}%   bypass rate: {:.1}%\n",
            self.agegates.russia_only_pct,
            self.agegates.not_in_russia_pct,
            self.agegates.bypass_rate_pct,
        ));
        out
    }

    /// §7.3 privacy policies.
    pub fn render_policies(&self) -> String {
        let p = &self.policies;
        let (checked, disclosing, full) = self.disclosure_check;
        format!(
            "== Privacy policies (paper §7.3) ==\n\
             with policy: {} ({:.1}% of corpus)   sanitized out: {}\n\
             GDPR mentions: {} ({:.1}%)\n\
             letters: mean {:.0}, min {}, max {}\n\
             pairs with TF-IDF ≥ 0.5: {:.1}% (of {} pairs examined)\n\
             top tracker-heavy sites: {}/{} disclose cookies+data+third parties; {} name the full list\n",
            fmt_count(p.with_policy),
            p.with_policy_pct,
            p.sanitized_out,
            p.gdpr_mentions,
            p.gdpr_pct,
            p.mean_letters,
            fmt_count(p.min_letters),
            fmt_count(p.max_letters),
            p.similar_pairs_pct,
            fmt_count(p.pairs_examined),
            disclosing,
            checked,
            full,
        )
    }

    /// Everything, in paper order.
    pub fn render_summary(&self) -> String {
        [
            self.render_corpus(),
            self.render_fig1(),
            self.render_table1(),
            self.render_table2(),
            self.render_table3(),
            self.render_fig3(),
            self.render_table4(),
            self.render_fig4(2),
            self.render_table5(),
            self.render_table6(),
            self.render_table7(),
            self.render_table8(),
            self.render_agegates(),
            self.render_policies(),
        ]
        .join("\n")
    }

    /// Pipeline instrumentation: per-crawl and per-stage wall times with
    /// record counts (`reproduce --timings`). Kept out of
    /// [`render_summary`](Self::render_summary) so the summary stays
    /// byte-identical across runs of the same seed.
    pub fn render_timings(&self) -> String {
        self.stage_report.render()
    }
}

impl crate::results::StageReport {
    /// Renders the crawl and stage timing tables. Numeric columns are
    /// right-aligned and every duration prints with fixed precision
    /// (`ms` to 3 decimals, `µs` to 1), so columns line up run to run.
    pub fn render(&self) -> String {
        let ms = fmt_ms;

        let mut crawls = Table::new(
            "Collection layer — one row per crawl",
            &[
                "crawler",
                "country",
                "corpus",
                "sites",
                "attempts",
                "retries",
                "failed",
                "wall (ms)",
            ],
        )
        .align_right(&[3, 4, 5, 6, 7]);
        for c in &self.crawls {
            let corpus = c
                .corpus
                .map(|l| format!("{l:?}").to_lowercase())
                .unwrap_or_else(|| "interaction".to_string());
            crawls.row(&[
                c.crawler.to_string(),
                format!("{:?}", c.country),
                corpus,
                fmt_count(c.sites),
                fmt_count(c.attempts as usize),
                fmt_count(c.retries as usize),
                fmt_count(c.failures as usize),
                ms(c.wall),
            ]);
        }
        let crawl_total: std::time::Duration = self.crawls.iter().map(|c| c.wall).sum();
        let (visits, retries, failures) = self.crawls.iter().fold((0u64, 0u64, 0u64), |acc, c| {
            (
                acc.0 + c.sites as u64,
                acc.1 + c.retries,
                acc.2 + c.failures,
            )
        });

        let mut stages = Table::new(
            "Analysis layer — one row per stage",
            &["stage", "input records", "output records", "wall (ms)"],
        )
        .align_right(&[1, 2, 3]);
        for s in &self.stages {
            stages.row(&[
                s.name.to_string(),
                fmt_count(s.input_records),
                fmt_count(s.output_records),
                ms(s.wall),
            ]);
        }
        let stage_total: std::time::Duration = self.stages.iter().map(|s| s.wall).sum();

        let mut out = format!(
            "{}visits: {}   retries: {}   failed visits: {}\n\
             total crawl wall time: {} ms\n\n{}total stage wall time: {} ms\n",
            crawls.render(),
            fmt_count(visits as usize),
            fmt_count(retries as usize),
            fmt_count(failures as usize),
            ms(crawl_total),
            stages.render(),
            ms(stage_total),
        );

        if self.crawls.iter().any(|c| c.net.is_some()) {
            let us = |d: std::time::Duration| format!("{:.1}", d.as_secs_f64() * 1e6);
            let mut transport = Table::new(
                "Transport layer — per-crawl wire counters",
                &[
                    "crawler", "country", "corpus", "requests", "ok", "unreach", "timeout", "5xx",
                    "KiB", "µs/req",
                ],
            )
            .align_right(&[3, 4, 5, 6, 7, 8, 9]);
            let mut total = redlight_net::transport::TransportStats::default();
            for c in self.crawls.iter().filter(|c| c.net.is_some()) {
                let stats = c.net.as_ref().expect("filtered");
                let corpus = c
                    .corpus
                    .map(|l| format!("{l:?}").to_lowercase())
                    .unwrap_or_else(|| "interaction".to_string());
                transport.row(&[
                    c.crawler.to_string(),
                    format!("{:?}", c.country),
                    corpus,
                    fmt_count(stats.requests as usize),
                    fmt_count(stats.responses as usize),
                    fmt_count(stats.unreachable as usize),
                    fmt_count(stats.timeouts as usize),
                    fmt_count(stats.server_errors as usize),
                    fmt_count((stats.body_bytes / 1024) as usize),
                    us(stats.mean_latency()),
                ]);
                total.merge(stats);
            }
            let t = total;
            out.push('\n');
            out.push_str(&transport.render());
            out.push_str(&format!(
                "transport totals: {} requests, {} answered, {} unreachable, {} timed out, \
                 {} KiB over the wire\n",
                fmt_count(t.requests as usize),
                fmt_count(t.responses as usize),
                fmt_count(t.unreachable as usize),
                fmt_count(t.timeouts as usize),
                fmt_count((t.body_bytes / 1024) as usize),
            ));
        }

        if !self.shards.is_empty() {
            let mut shards = Table::new(
                "Sharded store — one row per crawl",
                &[
                    "country",
                    "corpus",
                    "visits",
                    "shards",
                    "shard sizes",
                    "symbols",
                    "interned KiB",
                ],
            )
            .align_right(&[2, 3, 4, 5, 6]);
            for s in &self.shards {
                shards.row(&[
                    format!("{:?}", s.country),
                    format!("{:?}", s.corpus).to_lowercase(),
                    fmt_count(s.visits),
                    fmt_count(s.shards),
                    format!("{}–{}", s.min_shard, s.max_shard),
                    fmt_count(s.symbols),
                    format!("{:.1}", s.interned_bytes as f64 / 1024.0),
                ]);
            }
            let total_bytes: usize = self.shards.iter().map(|s| s.interned_bytes).sum();
            let total_visits: usize = self.shards.iter().map(|s| s.visits).sum();
            out.push('\n');
            out.push_str(&shards.render());
            out.push_str(&format!(
                "interned string data: {:.1} KiB over {} visits ({:.1} B/visit)\n",
                total_bytes as f64 / 1024.0,
                fmt_count(total_visits),
                total_bytes as f64 / total_visits.max(1) as f64,
            ));
        }

        if !self.caches.is_empty() {
            let mut caches = Table::new(
                "Shared caches — hit/miss counters",
                &["cache", "hits", "misses", "hit rate"],
            )
            .align_right(&[1, 2, 3]);
            for c in &self.caches {
                let total = c.hits + c.misses;
                let rate = if total == 0 {
                    "-".to_string()
                } else {
                    format!("{:.1}%", c.hits as f64 * 100.0 / total as f64)
                };
                caches.row(&[
                    c.name.to_string(),
                    fmt_count(c.hits as usize),
                    fmt_count(c.misses as usize),
                    rate,
                ]);
            }
            out.push('\n');
            out.push_str(&caches.render());
        }
        out
    }
}

impl crate::results::StageReport {
    /// Serializes the report as JSON (`reproduce --timings --json`):
    /// `{"crawls": [...], "stages": [...], "caches": [...]}` with wall
    /// times as fixed-precision `wall_ms` floats. Hand-rolled on the
    /// [`redlight_obs::json`] helpers — no serde in the pipeline.
    pub fn to_json(&self) -> String {
        use redlight_obs::json::push_str_literal;

        let mut out = String::from("{\"crawls\":[");
        for (i, c) in self.crawls.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"crawler\":");
            push_str_literal(&mut out, c.crawler);
            out.push_str(",\"country\":");
            push_str_literal(&mut out, c.country.code());
            out.push_str(",\"corpus\":");
            match c.corpus {
                Some(l) => push_str_literal(&mut out, &format!("{l:?}").to_lowercase()),
                None => out.push_str("null"),
            }
            out.push_str(&format!(
                ",\"sites\":{},\"attempts\":{},\"retries\":{},\"failures\":{},\"wall_ms\":{:.3}",
                c.sites,
                c.attempts,
                c.retries,
                c.failures,
                c.wall.as_secs_f64() * 1e3
            ));
            out.push_str(",\"net\":");
            match &c.net {
                Some(n) => out.push_str(&format!(
                    "{{\"requests\":{},\"responses\":{},\"unreachable\":{},\"timeouts\":{},\
                     \"server_errors\":{},\"redirects\":{},\"body_bytes\":{}}}",
                    n.requests,
                    n.responses,
                    n.unreachable,
                    n.timeouts,
                    n.server_errors,
                    n.redirects,
                    n.body_bytes
                )),
                None => out.push_str("null"),
            }
            out.push('}');
        }
        out.push_str("],\"stages\":[");
        for (i, s) in self.stages.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            push_str_literal(&mut out, s.name);
            out.push_str(&format!(
                ",\"input_records\":{},\"output_records\":{},\"wall_ms\":{:.3}}}",
                s.input_records,
                s.output_records,
                s.wall.as_secs_f64() * 1e3
            ));
        }
        out.push_str("],\"caches\":[");
        for (i, c) in self.caches.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            push_str_literal(&mut out, c.name);
            out.push_str(&format!(",\"hits\":{},\"misses\":{}}}", c.hits, c.misses));
        }
        out.push(']');
        // Shard stats exist only on sharded runs; unsharded JSON is
        // byte-identical to what earlier revisions emitted.
        if !self.shards.is_empty() {
            out.push_str(",\"shards\":[");
            for (i, s) in self.shards.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str("{\"country\":");
                push_str_literal(&mut out, s.country.code());
                out.push_str(",\"corpus\":");
                push_str_literal(&mut out, &format!("{:?}", s.corpus).to_lowercase());
                out.push_str(&format!(
                    ",\"visits\":{},\"shards\":{},\"min_shard\":{},\"max_shard\":{},\
                     \"symbols\":{},\"interned_bytes\":{}}}",
                    s.visits, s.shards, s.min_shard, s.max_shard, s.symbols, s.interned_bytes
                ));
            }
            out.push(']');
        }
        out.push('}');
        out
    }
}

/// Fixed-precision milliseconds (3 decimals) for the timing tables.
fn fmt_ms(d: std::time::Duration) -> String {
    format!("{:.3}", d.as_secs_f64() * 1e3)
}

fn tick(b: bool) -> String {
    if b {
        "✓".to_string()
    } else {
        "-".to_string()
    }
}

/// Local percentage helper.
pub(crate) fn pct(part: usize, whole: usize) -> f64 {
    if whole == 0 {
        0.0
    } else {
        part as f64 / whole as f64 * 100.0
    }
}
