//! # redlight-core
//!
//! The study façade: one call runs the complete IMC'19 reproduction —
//! corpus compilation, the OpenWPM-style crawls from six countries, the
//! Selenium-style interaction crawls, and every analysis — returning a
//! [`results::StudyResults`] with every table and figure.
//!
//! ```no_run
//! use redlight_core::{Study, StudyConfig};
//!
//! let results = Study::run(StudyConfig::small(42));
//! println!("{}", results.render_summary());
//! ```

#![warn(missing_docs)]

pub mod render;
pub mod results;
pub mod stages;
pub mod study;

pub use results::StudyResults;
pub use study::{Study, StudyConfig};

/// Adapter exposing the simulated VirusTotal ensemble as an analysis-side
/// threat feed: the analysis sees only detection counts per domain.
pub struct WorldThreatFeed<'w>(pub &'w redlight_websim::World);

impl redlight_analysis::ThreatFeed for WorldThreatFeed<'_> {
    fn detections(&self, domain: &str) -> u8 {
        self.0
            .scanners
            .detections(domain, self.0.truly_malicious(domain))
    }
}
