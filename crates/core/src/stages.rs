//! The analysis layer: named stages over the measurement database.
//!
//! Every analysis of the paper is a *stage* — a named unit that consumes
//! only the [`MeasurementDb`] plus the shared [`AnalysisContext`] and
//! produces one table/figure bundle. Stages with no dependency on another
//! stage's output run concurrently on a crossbeam scope (wave A); the
//! three dependent stages run in two follow-up waves:
//!
//! * `fingerprinting` needs `webrtc` (Table 5 merges both script sets);
//! * `ownership` needs `policies` (clusters are built from policy texts);
//! * `disclosure` needs `fingerprinting` + `policies` (the Polisis pass
//!   ranks sites by observed tracking and reads their policies).
//!
//! Each stage reports wall time and input/output record counts through a
//! [`StageTiming`], and a subset of stages can be run with
//! [`run`] + [`expand_selection`] (dependencies are pulled in
//! automatically) — this is what `reproduce --stage <name>` drives.

use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use redlight_analysis::agegate::AgeGateComparison;
use redlight_analysis::ats::{AtsClassifier, AtsVerdicts, BatchVerdicts};
use redlight_analysis::consent::BannerBreakdown;
use redlight_analysis::cookies::{CookieRow, CookieStats, Table4Row};
use redlight_analysis::fingerprint::{FingerprintReport, Table5Row};
use redlight_analysis::geo::{GeoMalware, Table7};
use redlight_analysis::https::HttpsReport;
use redlight_analysis::malware::MalwareReport;
use redlight_analysis::monetization::MonetizationReport;
use redlight_analysis::orgs::{AttributionStats, CertHarvest, OrgPrevalence};
use redlight_analysis::owners::OwnershipReport;
use redlight_analysis::policies::{PolicyDoc, PolicyReport};
use redlight_analysis::popularity::{Fig1, Table3};
use redlight_analysis::sync::{SyncOptions, SyncReport};
use redlight_analysis::thirdparty::{ExtractMemo, ThirdPartyExtract};
use redlight_analysis::webrtc::WebRtcReport;
use redlight_analysis::{
    agegate, ats, consent, cookies, fingerprint, geo, https, malware, monetization, orgs, owners,
    policies, popularity, sync, webrtc,
};
use redlight_crawler::corpus::{CorpusCompiler, CorpusReport};
use redlight_crawler::db::{CorpusLabel, CrawlRecord, InteractionRecord, MeasurementDb};
use redlight_crawler::store::{shard_ranges, CrawlSlice};
use redlight_net::geoip::Country;
use redlight_net::psl::HostCache;
use redlight_obs::{Registry, SpanLink, Trace};
use redlight_rankings::{PopularityTier, RankHistory};
use redlight_websim::oracle::InspectionOracle;
use redlight_websim::World;

use crate::results::{CacheCounter, CorpusSummary, StageReport, StageTiming, StudyResults};
use crate::study::StudyConfig;
use crate::WorldThreatFeed;

/// §3 corpus-compilation summary.
pub const CORPUS_SUMMARY: &str = "corpus-summary";
/// Fig. 1 + Table 3 (rank stability and tier presence).
pub const POPULARITY: &str = "popularity";
/// Table 2 (first/third-party domains).
pub const THIRD_PARTIES: &str = "third-parties";
/// Fig. 3 + §4.2(3) attribution.
pub const ORGANIZATIONS: &str = "organizations";
/// §5.1.1 + Table 4.
pub const COOKIES: &str = "cookies";
/// §5.1.2 / Fig. 4.
pub const COOKIE_SYNC: &str = "cookie-sync";
/// §5.1.4.
pub const WEBRTC: &str = "webrtc";
/// §5.1.3 + Table 5.
pub const FINGERPRINTING: &str = "fingerprinting";
/// §5.2 / Table 6.
pub const HTTPS: &str = "https";
/// §5.3.
pub const MALWARE: &str = "malware";
/// §6 / Table 7 (geo sweep comparison).
pub const GEO: &str = "geo";
/// §7.1 / Table 8.
pub const CONSENT_BANNERS: &str = "consent-banners";
/// §7.3 policy collection + similarity sweep.
pub const POLICIES: &str = "policies";
/// §4.1 / Table 1.
pub const OWNERSHIP: &str = "ownership";
/// §4.1 monetization.
pub const MONETIZATION: &str = "monetization";
/// §7.2 age verification.
pub const AGE_GATES: &str = "age-gates";
/// §7.3 Polisis-style disclosure check.
pub const DISCLOSURE: &str = "disclosure";

/// Every stage, in paper order.
pub const STAGES: [&str; 17] = [
    CORPUS_SUMMARY,
    POPULARITY,
    THIRD_PARTIES,
    ORGANIZATIONS,
    COOKIES,
    COOKIE_SYNC,
    WEBRTC,
    FINGERPRINTING,
    HTTPS,
    MALWARE,
    GEO,
    CONSENT_BANNERS,
    POLICIES,
    OWNERSHIP,
    MONETIZATION,
    AGE_GATES,
    DISCLOSURE,
];

/// The countries whose interaction crawls feed the §7.2 age-gate
/// comparison (fixed by the paper, independent of the geo-sweep list).
pub const GATE_COUNTRIES: [Country; 4] =
    [Country::Usa, Country::Uk, Country::Spain, Country::Russia];

/// Stages whose outputs `stage` consumes.
pub fn dependencies(stage: &str) -> &'static [&'static str] {
    match stage {
        FINGERPRINTING => &[WEBRTC],
        OWNERSHIP => &[POLICIES],
        DISCLOSURE => &[FINGERPRINTING, POLICIES],
        _ => &[],
    }
}

/// Resolves user-requested stage names to the closed set including every
/// transitive dependency. Errors on unknown names.
pub fn expand_selection(requested: &[String]) -> Result<BTreeSet<&'static str>, String> {
    let mut queue: Vec<&'static str> = Vec::new();
    for name in requested {
        let canon = STAGES.iter().copied().find(|s| s == name).ok_or_else(|| {
            format!(
                "unknown stage '{name}'; expected one of: {}",
                STAGES.join(", ")
            )
        })?;
        queue.push(canon);
    }
    let mut selected = BTreeSet::new();
    while let Some(stage) = queue.pop() {
        if selected.insert(stage) {
            queue.extend(dependencies(stage));
        }
    }
    Ok(selected)
}

/// The full stage set.
pub fn all_stages() -> BTreeSet<&'static str> {
    STAGES.iter().copied().collect()
}

/// Per-crawl shard statistics for a run fanning over `shards` shards: how
/// each crawl's visit range splits and how much interned string data its
/// symbol table carries. Surfaced through [`StageReport`] under
/// `reproduce --timings`, never through the deterministic summary.
pub fn shard_stats(db: &MeasurementDb, shards: usize) -> Vec<crate::results::ShardStat> {
    db.crawls()
        .iter()
        .map(|crawl| {
            let ranges = shard_ranges(crawl.visits.len(), shards);
            let sizes = ranges.iter().map(|(lo, hi)| hi - lo);
            crate::results::ShardStat {
                country: crawl.country,
                corpus: crawl.corpus,
                visits: crawl.visits.len(),
                shards: ranges.len(),
                min_shard: sizes.clone().min().unwrap_or(0),
                max_shard: sizes.max().unwrap_or(0),
                symbols: crawl.names().len(),
                interned_bytes: crawl.names().arena_bytes(),
            }
        })
        .collect()
}

/// Longitudinal rank artifacts for the porn corpus: per-domain histories,
/// best ranks, and the corpus sorted by best rank.
pub(crate) fn ranked_corpus(
    world: &World,
    sanitized: &[String],
) -> (
    BTreeMap<String, RankHistory>,
    BTreeMap<String, u32>,
    Vec<String>,
) {
    let histories_all = world.rank_histories();
    let porn_histories: BTreeMap<String, RankHistory> = sanitized
        .iter()
        .filter_map(|d| histories_all.get(d).map(|h| (d.clone(), h.clone())))
        .collect();
    let best_ranks: BTreeMap<String, u32> = porn_histories
        .iter()
        .filter_map(|(d, h)| h.best().map(|b| (d.clone(), b)))
        .collect();
    let mut ranked: Vec<String> = sanitized.to_vec();
    ranked.sort_by_key(|d| best_ranks.get(d).copied().unwrap_or(u32::MAX));
    (porn_histories, best_ranks, ranked)
}

/// Shared derived artifacts every stage can read. Built once per run from
/// the world and the measurement DB; stages receive `(&MeasurementDb,
/// &AnalysisContext)` and nothing else.
pub struct AnalysisContext<'a> {
    /// The simulated web (ground-truth oracles, blocklists, WHOIS…).
    pub world: &'a World,
    /// Geo-sweep countries, Spain first (Table 7 row order).
    pub countries: Vec<Country>,
    /// Size of the §7.2 manually studied most-popular subset.
    pub agegate_top_n: usize,
    /// Cap on §7.3 policy pairs.
    pub max_policy_pairs: usize,
    /// §3 corpus compilation.
    pub corpus: CorpusReport,
    /// Rank histories of the sanitized corpus.
    pub porn_histories: BTreeMap<String, RankHistory>,
    /// Per-domain popularity tier.
    pub tier_of: BTreeMap<String, PopularityTier>,
    /// Per-domain best 2018 rank.
    pub best_ranks: BTreeMap<String, u32>,
    /// The sanitized corpus sorted by best rank.
    pub ranked: Vec<String>,
    /// The top-N most popular porn sites (§7.2 subset).
    pub top: Vec<String>,
    /// EasyList + EasyPrivacy classifier (memoized; shares [`Self::hosts`]).
    pub classifier: AtsClassifier,
    /// Per-crawl Sym-keyed batch verdict columns, computed up front when
    /// [`StudyConfig::batch_classify`] is on (empty otherwise). Stages view
    /// them through [`Self::ats_for`].
    pub ats_batches: BTreeMap<(Country, CorpusLabel), BatchVerdicts>,
    /// Pipeline-wide host → eTLD+1 memo, shared by the classifier, the
    /// extraction memo and every stage that resolves registrable domains.
    pub hosts: Arc<HostCache>,
    /// Memo of third-party extractions keyed by `(country, corpus,
    /// include_chained)` — stages needing "the third parties of crawl X"
    /// fetch from here instead of re-extracting.
    pub extracts: ExtractMemo,
    /// Certificates harvested once from the main crawls (plus the
    /// out-of-band TLS probe), shared by the organizations stage.
    pub cert_harvest: CertHarvest,
    /// The main Spanish porn crawl.
    pub porn_es: &'a CrawlRecord,
    /// The Spanish regular-corpus reference crawl.
    pub regular_es: &'a CrawlRecord,
    /// Third-party extraction of the Spanish porn crawl.
    pub porn_extract: Arc<ThirdPartyExtract>,
    /// Third-party extraction of the regular reference crawl.
    pub regular_extract: Arc<ThirdPartyExtract>,
    /// All cookie rows of the Spanish porn crawl.
    pub cookie_rows: Vec<CookieRow>,
    /// The Spanish interaction crawl (full corpus).
    pub interactions_es: Vec<InteractionRecord>,
    /// The Spanish vantage point's public IP, as recorded by the crawl —
    /// what server-side trackers embed in cookies.
    pub client_ip: Ipv4Addr,
    /// How many contiguous visit-range shards the decomposable stages fan
    /// their scans over. `1` (the default) is the monolithic path: every
    /// stage consumes whole crawls exactly as before, and no shard spans
    /// are recorded.
    pub shards: usize,
}

impl<'a> AnalysisContext<'a> {
    /// Derives the shared artifacts from a collected DB.
    ///
    /// Panics if the DB lacks the Spanish porn/regular crawls — the plan
    /// produced by [`StudyConfig::crawl_plan`] always records them.
    pub fn build(world: &'a World, config: &StudyConfig, db: &'a MeasurementDb) -> Self {
        Self::build_in(world, config, db, &Registry::new())
    }

    /// [`build`](Self::build) with the shared artifacts that scan whole
    /// crawls (third-party extracts, cookie rows) computed as `shards`
    /// per-shard partials merged in shard order. The artifacts — and
    /// therefore everything derived from them — are byte-identical to
    /// [`build`]; only peak memory and parallelism change.
    pub fn build_sharded(
        world: &'a World,
        config: &StudyConfig,
        db: &'a MeasurementDb,
        shards: usize,
    ) -> Self {
        Self::build_sharded_in(world, config, db, &Registry::new(), shards)
    }

    /// [`build`](Self::build) with every shared cache (eTLD+1 hosts, ATS
    /// verdicts, third-party extracts, the cert harvest) publishing its
    /// hit/miss counters as `cache.<name>.{hits,misses}` into `registry`.
    /// The derived artifacts are identical to [`build`].
    pub fn build_in(
        world: &'a World,
        config: &StudyConfig,
        db: &'a MeasurementDb,
        registry: &Registry,
    ) -> Self {
        Self::build_sharded_in(world, config, db, registry, 1)
    }

    /// [`build_in`](Self::build_in) + [`build_sharded`](Self::build_sharded)
    /// combined: registry-published caches and sharded artifact derivation.
    pub fn build_sharded_in(
        world: &'a World,
        config: &StudyConfig,
        db: &'a MeasurementDb,
        registry: &Registry,
        shards: usize,
    ) -> Self {
        let corpus = CorpusCompiler::new(world).compile();
        let (porn_histories, best_ranks, ranked) = ranked_corpus(world, &corpus.sanitized);
        let tier_of = popularity::tiers_from_histories(&porn_histories);
        let top: Vec<String> = ranked.iter().take(config.agegate_top_n).cloned().collect();

        let porn_es = db
            .crawl(Country::Spain, CorpusLabel::Porn)
            .expect("Spanish porn crawl recorded");
        let regular_es = db
            .crawl(Country::Spain, CorpusLabel::Regular)
            .expect("Spanish regular crawl recorded");
        let hosts = Arc::new(HostCache::in_registry(registry));
        let classifier = ats::AtsClassifier::with_hosts_in(
            &world.easylist,
            &world.easyprivacy,
            Arc::clone(&hosts),
            registry,
        );
        // Batch classification up front: every crawl's answered requests,
        // deduplicated per distinct interned key and FQDN-grouped. The
        // shared verdict memo ends up in the same state the per-request
        // path would produce, so stages read identical verdicts either way.
        let mut ats_batches: BTreeMap<(Country, CorpusLabel), BatchVerdicts> = BTreeMap::new();
        if config.batch_classify {
            for crawl in db.crawls() {
                ats_batches
                    .entry((crawl.country, crawl.corpus))
                    .or_insert_with(|| classifier.classify_batch(crawl.full()));
            }
        }
        let extracts = ExtractMemo::in_registry(Arc::clone(&hosts), registry);
        let porn_extract = extracts.get_sharded(porn_es, true, shards);
        let regular_extract = extracts.get_sharded(regular_es, true, shards);
        // Out-of-band TLS probe: connect to port 443 of any contacted FQDN
        // and read its certificate (what the paper's §4.2(3) pipeline did).
        let probe = |host: &str| -> Option<redlight_net::tls::CertSummary> {
            world.resolve_host(host)?;
            Some((&world.cert_for_host(host)).into())
        };
        let cert_harvest = CertHarvest::collect_in(&[porn_es, regular_es], Some(&probe), registry);
        let cookie_rows = if shards <= 1 {
            cookies::collect(porn_es)
        } else {
            cookies::merge(porn_es.shards(shards).into_iter().map(cookies::scan))
        };
        let interactions_es: Vec<InteractionRecord> =
            db.interactions_in(Country::Spain).cloned().collect();
        let client_ip = porn_es.client_ip;

        AnalysisContext {
            world,
            countries: config.countries.clone(),
            agegate_top_n: config.agegate_top_n,
            max_policy_pairs: config.max_policy_pairs,
            corpus,
            porn_histories,
            tier_of,
            best_ranks,
            ranked,
            top,
            classifier,
            ats_batches,
            hosts,
            extracts,
            cert_harvest,
            porn_es,
            regular_es,
            porn_extract,
            regular_extract,
            cookie_rows,
            interactions_es,
            client_ip,
            shards: shards.max(1),
        }
    }

    /// A classification view with no batch column (corpus-independent
    /// consumers like Table 2's extract filtering).
    pub fn ats(&self) -> AtsVerdicts<'_> {
        AtsVerdicts::new(&self.classifier)
    }

    /// The classification view for one crawl: batch-backed when
    /// [`StudyConfig::batch_classify`] precomputed that crawl's column,
    /// plain delegation otherwise.
    pub fn ats_for(&self, crawl: &CrawlRecord) -> AtsVerdicts<'_> {
        match self.ats_batches.get(&(crawl.country, crawl.corpus)) {
            Some(batch) => AtsVerdicts::with_batch(&self.classifier, batch),
            None => AtsVerdicts::new(&self.classifier),
        }
    }

    /// Snapshot of every shared cache's hit/miss counters, in render order.
    /// Surfaced through [`StageReport`] and `reproduce --timings`, never
    /// through the deterministic summary.
    pub fn cache_counters(&self) -> Vec<CacheCounter> {
        let host_stats = self.hosts.stats();
        let (url, fqdn) = self.classifier.cache_stats();
        let prefilter = self.classifier.prefilter_stats();
        let batch = self.classifier.batch_stats();
        let extract_stats = self.extracts.stats();
        vec![
            CacheCounter {
                name: "etld1-hosts",
                hits: host_stats.hits,
                misses: host_stats.misses,
            },
            CacheCounter {
                name: "ats-url-verdicts",
                hits: url.hits,
                misses: url.misses,
            },
            CacheCounter {
                name: "ats-fqdn-verdicts",
                hits: fqdn.hits,
                misses: fqdn.misses,
            },
            CacheCounter {
                name: "ats-prefilter",
                hits: prefilter.hits,
                misses: prefilter.misses,
            },
            CacheCounter {
                name: "ats-batch-dedup",
                hits: batch.hits,
                misses: batch.misses,
            },
            CacheCounter {
                name: "thirdparty-extracts",
                hits: extract_stats.hits,
                misses: extract_stats.misses,
            },
        ]
    }
}

/// Stage outputs, one optional slot per stage — `None` when the stage was
/// not selected. A full run fills every slot.
#[derive(Debug, Default)]
pub struct StageOutputs {
    /// [`CORPUS_SUMMARY`].
    pub corpus_summary: Option<CorpusSummary>,
    /// [`POPULARITY`]: Fig. 1 + Table 3.
    pub popularity: Option<(Fig1, Table3)>,
    /// [`THIRD_PARTIES`]: Table 2.
    pub third_parties: Option<ats::Table2>,
    /// [`ORGANIZATIONS`]: attribution coverage + both Fig. 3 sides.
    pub organizations: Option<(AttributionStats, Vec<OrgPrevalence>, Vec<OrgPrevalence>)>,
    /// [`COOKIES`]: §5.1.1 stats + Table 4.
    pub cookies: Option<(CookieStats, Vec<Table4Row>)>,
    /// [`COOKIE_SYNC`].
    pub cookie_sync: Option<SyncReport>,
    /// [`WEBRTC`].
    pub webrtc: Option<WebRtcReport>,
    /// [`FINGERPRINTING`]: §5.1.3 report + Table 5.
    pub fingerprinting: Option<(FingerprintReport, Vec<Table5Row>)>,
    /// [`HTTPS`]: Table 6.
    pub https: Option<HttpsReport>,
    /// [`MALWARE`].
    pub malware: Option<MalwareReport>,
    /// [`GEO`]: Table 7 + §6.2 malware comparison.
    pub geo: Option<(Table7, GeoMalware)>,
    /// [`CONSENT_BANNERS`]: EU and USA breakdowns.
    pub consent_banners: Option<(BannerBreakdown, BannerBreakdown)>,
    /// [`POLICIES`]: fetched docs + §7.3 report.
    pub policies: Option<(Vec<PolicyDoc>, PolicyReport)>,
    /// [`OWNERSHIP`]: Table 1.
    pub ownership: Option<OwnershipReport>,
    /// [`MONETIZATION`].
    pub monetization: Option<MonetizationReport>,
    /// [`AGE_GATES`].
    pub age_gates: Option<AgeGateComparison>,
    /// [`DISCLOSURE`]: `(checked, disclosing, full list)`.
    pub disclosure: Option<(usize, usize, usize)>,
}

impl StageOutputs {
    /// Assembles a full run into [`StudyResults`]. Panics if any stage was
    /// skipped — only call after running [`all_stages`].
    pub fn into_results(
        self,
        best_ranks: BTreeMap<String, u32>,
        stage_report: StageReport,
    ) -> StudyResults {
        let (fig1, table3) = self.popularity.expect("popularity stage ran");
        let (attribution, fig3_porn, fig3_regular) =
            self.organizations.expect("organizations stage ran");
        let (cookie_stats, table4) = self.cookies.expect("cookies stage ran");
        let (fingerprint, table5) = self.fingerprinting.expect("fingerprinting stage ran");
        let (table7, geo_malware) = self.geo.expect("geo stage ran");
        let (banners_eu, banners_usa) = self.consent_banners.expect("consent-banners stage ran");
        let (_docs, policy_report) = self.policies.expect("policies stage ran");
        StudyResults {
            corpus: self.corpus_summary.expect("corpus-summary stage ran"),
            fig1,
            ownership: self.ownership.expect("ownership stage ran"),
            monetization: self.monetization.expect("monetization stage ran"),
            table2: self.third_parties.expect("third-parties stage ran"),
            table3,
            fig3_porn,
            fig3_regular,
            attribution,
            cookie_stats,
            table4,
            sync: self.cookie_sync.expect("cookie-sync stage ran"),
            fingerprint,
            webrtc: self.webrtc.expect("webrtc stage ran"),
            table5,
            https: self.https.expect("https stage ran"),
            malware: self.malware.expect("malware stage ran"),
            table7,
            geo_malware,
            banners_eu,
            banners_usa,
            agegates: self.age_gates.expect("age-gates stage ran"),
            policies: policy_report,
            disclosure_check: self.disclosure.expect("disclosure stage ran"),
            best_ranks,
            stage_report,
        }
    }

    /// One-line summaries of every stage that ran, in paper order (what
    /// `reproduce --stage` prints).
    pub fn summaries(&self) -> Vec<(&'static str, String)> {
        let mut out = Vec::new();
        if let Some(c) = &self.corpus_summary {
            out.push((
                CORPUS_SUMMARY,
                format!("{} sanitized of {} candidates", c.sanitized, c.candidates),
            ));
        }
        if let Some((fig1, t3)) = &self.popularity {
            out.push((
                POPULARITY,
                format!(
                    "{} fig. 1 points, {} tier rows",
                    fig1.points.len(),
                    t3.rows.len()
                ),
            ));
        }
        if let Some(t2) = &self.third_parties {
            out.push((
                THIRD_PARTIES,
                format!(
                    "{} porn / {} regular third parties",
                    t2.porn_third_party, t2.regular_third_party
                ),
            ));
        }
        if let Some((stats, porn, _)) = &self.organizations {
            out.push((
                ORGANIZATIONS,
                format!(
                    "{} organizations, {} prevalence rows",
                    stats.companies,
                    porn.len()
                ),
            ));
        }
        if let Some((stats, t4)) = &self.cookies {
            out.push((
                COOKIES,
                format!("{} cookies, {} Table 4 rows", stats.total_cookies, t4.len()),
            ));
        }
        if let Some(s) = &self.cookie_sync {
            out.push((
                COOKIE_SYNC,
                format!("{} pairs on {} sites", s.pairs.len(), s.sites_with_sync),
            ));
        }
        if let Some(r) = &self.webrtc {
            out.push((
                WEBRTC,
                format!("{} scripts on {} sites", r.scripts.len(), r.sites.len()),
            ));
        }
        if let Some((fp, t5)) = &self.fingerprinting {
            out.push((
                FINGERPRINTING,
                format!(
                    "{} canvas scripts on {} sites, {} Table 5 rows",
                    fp.canvas_scripts.len(),
                    fp.canvas_sites.len(),
                    t5.len()
                ),
            ));
        }
        if let Some(h) = &self.https {
            out.push((
                HTTPS,
                format!("{} sites not fully HTTPS", h.not_fully_https),
            ));
        }
        if let Some(m) = &self.malware {
            out.push((
                MALWARE,
                format!(
                    "{} flagged sites, {} mining sites",
                    m.flagged_sites.len(),
                    m.mining_sites.len()
                ),
            ));
        }
        if let Some((t7, gm)) = &self.geo {
            out.push((
                GEO,
                format!(
                    "{} countries, {} stable malicious domains",
                    t7.rows.len(),
                    gm.stable_domains
                ),
            ));
        }
        if let Some((eu, usa)) = &self.consent_banners {
            out.push((
                CONSENT_BANNERS,
                format!(
                    "EU {:.1}% / USA {:.1}% bannered",
                    eu.total_pct, usa.total_pct
                ),
            ));
        }
        if let Some((docs, report)) = &self.policies {
            out.push((
                POLICIES,
                format!(
                    "{} policies fetched ({:.1}% of corpus)",
                    docs.len(),
                    report.with_policy_pct
                ),
            ));
        }
        if let Some(o) = &self.ownership {
            out.push((
                OWNERSHIP,
                format!(
                    "{} companies over {} sites",
                    o.companies, o.attributed_sites
                ),
            ));
        }
        if let Some(m) = &self.monetization {
            out.push((
                MONETIZATION,
                format!(
                    "{:.1}% with subscriptions, {:.1}% paid",
                    m.with_subscription_pct, m.paid_pct
                ),
            ));
        }
        if let Some(a) = &self.age_gates {
            out.push((
                AGE_GATES,
                format!("{} countries compared", a.per_country.len()),
            ));
        }
        if let Some((checked, disclosing, full)) = &self.disclosure {
            out.push((
                DISCLOSURE,
                format!("{disclosing}/{checked} disclosing, {full} with full list"),
            ));
        }
        out
    }
}

/// Times one stage body; the body returns `(output, inputs, outputs)`.
fn timed<T>(name: &'static str, body: impl FnOnce() -> (T, usize, usize)) -> (T, StageTiming) {
    let start = Instant::now();
    let (out, input_records, output_records) = body();
    (
        out,
        StageTiming {
            name,
            wall: start.elapsed(),
            input_records,
            output_records,
        },
    )
}

/// Telemetry sinks for an analysis run: stage spans go into `trace` (one
/// `analyze/<stage>` shard per stage, so concurrent wave-A stages never
/// contend), stage counters into `metrics`.
pub struct StageObs<'t> {
    /// Journal the per-stage spans are recorded into.
    pub trace: &'t Trace,
    /// Registry the per-stage record counters are published into.
    pub metrics: &'t Registry,
    /// Parent span every stage span hangs under (the `analyze` span).
    pub parent: Option<SpanLink>,
}

/// [`timed`], plus a `stage.<name>` span in a dedicated `analyze/<name>`
/// shard and `stage.<name>.{input,output}_records` counters. Safe to call
/// concurrently from wave threads: each stage owns its shard, and the
/// registry is lock-protected.
fn observed<T>(
    obs: &StageObs<'_>,
    name: &'static str,
    body: impl FnOnce() -> (T, usize, usize),
) -> (T, StageTiming) {
    let shard = format!("analyze/{name}");
    let mut tracer = match &obs.parent {
        Some(link) => obs.trace.tracer_under(&shard, link.clone()),
        None => obs.trace.tracer(&shard),
    };
    tracer.open(&format!("stage.{name}"));
    let (out, timing) = timed(name, body);
    tracer.attr("input_records", timing.input_records);
    tracer.attr("output_records", timing.output_records);
    tracer.close();
    tracer.finish();
    obs.metrics
        .counter(&format!("stage.{name}.input_records"))
        .add(timing.input_records as u64);
    obs.metrics
        .counter(&format!("stage.{name}.output_records"))
        .add(timing.output_records as u64);
    obs.metrics
        .histogram("stage.output_records")
        .record(timing.output_records as u64);
    (out, timing)
}

/// Bound on concurrent per-shard scan workers within one stage. The wave
/// threads already parallelize across stages; this caps the multiplicative
/// blow-up when a stage fans out over many shards.
const MAX_SHARD_WORKERS: usize = 8;

/// Fans a stage's per-shard scan over `crawl.shards(shards)` on a bounded
/// work queue: at most [`MAX_SHARD_WORKERS`] workers pull shard indices off
/// a shared counter, so peak memory stays O(workers × shard) rather than
/// O(crawl). Shard `i` records a `stage.<name>.shard.NNN` span (with a
/// `visits` attribute) in its own `analyze/<name>/shard.NNN` journal shard,
/// parented on the same `analyze` root as the stage spans. Partials return
/// in shard order, so a deterministic merge downstream sees the same
/// sequence a serial scan would.
fn scan_shards<'c, P: Send>(
    obs: &StageObs<'_>,
    name: &str,
    crawl: &'c CrawlRecord,
    shards: usize,
    scan: impl Fn(CrawlSlice<'c>) -> P + Sync,
) -> Vec<P> {
    let slices = crawl.shards(shards);
    let next = AtomicUsize::new(0);
    let done: Mutex<Vec<(usize, P)>> = Mutex::new(Vec::with_capacity(slices.len()));
    let workers = slices.len().clamp(1, MAX_SHARD_WORKERS);
    crossbeam::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(&slice) = slices.get(i) else { break };
                let journal = format!("analyze/{name}/shard.{i:03}");
                let mut tracer = match &obs.parent {
                    Some(link) => obs.trace.tracer_under(&journal, link.clone()),
                    None => obs.trace.tracer(&journal),
                };
                tracer.open(&format!("stage.{name}.shard.{i:03}"));
                tracer.attr("visits", slice.len());
                let part = scan(slice);
                tracer.close();
                tracer.finish();
                done.lock().expect("shard partials").push((i, part));
            });
        }
    })
    .expect("shard scan scope");
    obs.metrics
        .counter(&format!("stage.{name}.shard_scans"))
        .add(slices.len() as u64);
    let mut parts = done.into_inner().expect("shard partials");
    parts.sort_by_key(|&(i, _)| i);
    parts.into_iter().map(|(_, p)| p).collect()
}

/// Runs the selected stages (a set produced by [`expand_selection`] or
/// [`all_stages`]) in dependency waves, independent stages concurrently.
/// Returns the outputs plus one timing per executed stage, in paper order.
pub fn run(
    db: &MeasurementDb,
    ctx: &AnalysisContext<'_>,
    selected: &BTreeSet<&'static str>,
) -> (StageOutputs, Vec<StageTiming>) {
    let trace = Trace::disabled();
    let registry = Registry::new();
    run_observed(
        db,
        ctx,
        selected,
        &StageObs {
            trace: &trace,
            metrics: &registry,
            parent: None,
        },
    )
}

/// [`run`] with telemetry: every executed stage records a `stage.<name>`
/// span (with record-count attributes) and publishes
/// `stage.<name>.{input,output}_records` counters plus a shared
/// `stage.output_records` histogram. Outputs and timings are identical to
/// [`run`].
pub fn run_observed(
    db: &MeasurementDb,
    ctx: &AnalysisContext<'_>,
    selected: &BTreeSet<&'static str>,
    obs: &StageObs<'_>,
) -> (StageOutputs, Vec<StageTiming>) {
    let mut outputs = StageOutputs::default();
    let mut timings: Vec<StageTiming> = Vec::new();
    let want = |name: &'static str| selected.contains(name);

    // ---- Wave A: the 14 independent stages. ----
    crossbeam::thread::scope(|s| {
        let h_corpus = want(CORPUS_SUMMARY)
            .then(|| s.spawn(|_| observed(obs, CORPUS_SUMMARY, || stage_corpus_summary(ctx))));
        let h_popularity = want(POPULARITY)
            .then(|| s.spawn(|_| observed(obs, POPULARITY, || stage_popularity(ctx))));
        let h_third = want(THIRD_PARTIES)
            .then(|| s.spawn(|_| observed(obs, THIRD_PARTIES, || stage_third_parties(ctx))));
        let h_orgs = want(ORGANIZATIONS)
            .then(|| s.spawn(|_| observed(obs, ORGANIZATIONS, || stage_organizations(ctx))));
        let h_cookies =
            want(COOKIES).then(|| s.spawn(|_| observed(obs, COOKIES, || stage_cookies(ctx))));
        let h_sync = want(COOKIE_SYNC)
            .then(|| s.spawn(|_| observed(obs, COOKIE_SYNC, || stage_cookie_sync(ctx, obs))));
        let h_webrtc =
            want(WEBRTC).then(|| s.spawn(|_| observed(obs, WEBRTC, || stage_webrtc(ctx, obs))));
        let h_https =
            want(HTTPS).then(|| s.spawn(|_| observed(obs, HTTPS, || stage_https(ctx, obs))));
        let h_malware =
            want(MALWARE).then(|| s.spawn(|_| observed(obs, MALWARE, || stage_malware(ctx, obs))));
        let h_geo = want(GEO).then(|| s.spawn(|_| observed(obs, GEO, || stage_geo(db, ctx))));
        let h_banners = want(CONSENT_BANNERS).then(|| {
            s.spawn(|_| observed(obs, CONSENT_BANNERS, || stage_consent_banners(db, ctx, obs)))
        });
        let h_policies =
            want(POLICIES).then(|| s.spawn(|_| observed(obs, POLICIES, || stage_policies(ctx))));
        let h_monetization = want(MONETIZATION)
            .then(|| s.spawn(|_| observed(obs, MONETIZATION, || stage_monetization(ctx))));
        let h_gates = want(AGE_GATES)
            .then(|| s.spawn(|_| observed(obs, AGE_GATES, || stage_age_gates(db, ctx))));

        let join = "stage thread panicked";
        if let Some(h) = h_corpus {
            let (out, t) = h.join().expect(join);
            outputs.corpus_summary = Some(out);
            timings.push(t);
        }
        if let Some(h) = h_popularity {
            let (out, t) = h.join().expect(join);
            outputs.popularity = Some(out);
            timings.push(t);
        }
        if let Some(h) = h_third {
            let (out, t) = h.join().expect(join);
            outputs.third_parties = Some(out);
            timings.push(t);
        }
        if let Some(h) = h_orgs {
            let (out, t) = h.join().expect(join);
            outputs.organizations = Some(out);
            timings.push(t);
        }
        if let Some(h) = h_cookies {
            let (out, t) = h.join().expect(join);
            outputs.cookies = Some(out);
            timings.push(t);
        }
        if let Some(h) = h_sync {
            let (out, t) = h.join().expect(join);
            outputs.cookie_sync = Some(out);
            timings.push(t);
        }
        if let Some(h) = h_webrtc {
            let (out, t) = h.join().expect(join);
            outputs.webrtc = Some(out);
            timings.push(t);
        }
        if let Some(h) = h_https {
            let (out, t) = h.join().expect(join);
            outputs.https = Some(out);
            timings.push(t);
        }
        if let Some(h) = h_malware {
            let (out, t) = h.join().expect(join);
            outputs.malware = Some(out);
            timings.push(t);
        }
        if let Some(h) = h_geo {
            let (out, t) = h.join().expect(join);
            outputs.geo = Some(out);
            timings.push(t);
        }
        if let Some(h) = h_banners {
            let (out, t) = h.join().expect(join);
            outputs.consent_banners = Some(out);
            timings.push(t);
        }
        if let Some(h) = h_policies {
            let (out, t) = h.join().expect(join);
            outputs.policies = Some(out);
            timings.push(t);
        }
        if let Some(h) = h_monetization {
            let (out, t) = h.join().expect(join);
            outputs.monetization = Some(out);
            timings.push(t);
        }
        if let Some(h) = h_gates {
            let (out, t) = h.join().expect(join);
            outputs.age_gates = Some(out);
            timings.push(t);
        }
    })
    .expect("crossbeam scope");

    // ---- Wave B: stages reading wave-A outputs. ----
    crossbeam::thread::scope(|s| {
        let rtc = &outputs.webrtc;
        let docs = &outputs.policies;
        let h_fp = want(FINGERPRINTING).then(|| {
            s.spawn(move |_| {
                let rtc = rtc.as_ref().expect("webrtc ran (dependency)");
                observed(obs, FINGERPRINTING, || stage_fingerprinting(ctx, rtc, obs))
            })
        });
        let h_owners = want(OWNERSHIP).then(|| {
            s.spawn(move |_| {
                let (docs, _) = docs.as_ref().expect("policies ran (dependency)");
                observed(obs, OWNERSHIP, || stage_ownership(ctx, docs))
            })
        });

        let mut wave_b = Vec::new();
        if let Some(h) = h_fp {
            let (out, t) = h.join().expect("stage thread panicked");
            wave_b.push((Some(out), None, t));
        }
        if let Some(h) = h_owners {
            let (out, t) = h.join().expect("stage thread panicked");
            wave_b.push((None, Some(out), t));
        }
        wave_b
    })
    .expect("crossbeam scope")
    .into_iter()
    .for_each(|(fp, owners_out, t)| {
        if let Some(fp) = fp {
            outputs.fingerprinting = Some(fp);
        }
        if let Some(o) = owners_out {
            outputs.ownership = Some(o);
        }
        timings.push(t);
    });

    // ---- Wave C: the disclosure check (needs fingerprinting + policies). ----
    if want(DISCLOSURE) {
        let (fp, _) = outputs.fingerprinting.as_ref().expect("fingerprinting ran");
        let (docs, _) = outputs.policies.as_ref().expect("policies ran");
        let (out, t) = observed(obs, DISCLOSURE, || stage_disclosure(ctx, fp, docs));
        outputs.disclosure = Some(out);
        timings.push(t);
    }

    // Report timings in paper order regardless of join order.
    timings.sort_by_key(|t| STAGES.iter().position(|s| *s == t.name));
    (outputs, timings)
}

// ---- Stage bodies. Each returns (output, input records, output records). ----

fn stage_corpus_summary(ctx: &AnalysisContext<'_>) -> (CorpusSummary, usize, usize) {
    let c = &ctx.corpus;
    let summary = CorpusSummary {
        from_directories: c.from_directories.len(),
        from_adult_category: c.from_adult_category.len(),
        from_keywords: c.from_keywords.len(),
        candidates: c.candidates.len(),
        false_positives: c.false_positives.len(),
        sanitized: c.sanitized.len(),
        regular_reference: c.reference_regular.len(),
        manual_inspections: c.manual_inspections,
    };
    (summary, c.candidates.len(), c.sanitized.len())
}

fn stage_popularity(ctx: &AnalysisContext<'_>) -> ((Fig1, Table3), usize, usize) {
    let fig1 = popularity::fig1(&ctx.porn_histories);
    let table3 = popularity::table3(&ctx.porn_extract, &ctx.tier_of);
    let produced = fig1.points.len() + table3.rows.len();
    ((fig1, table3), ctx.porn_histories.len(), produced)
}

fn stage_third_parties(ctx: &AnalysisContext<'_>) -> (ats::Table2, usize, usize) {
    let table2 = ats::table2(
        ctx.porn_es,
        &ctx.porn_extract,
        ctx.regular_es,
        &ctx.regular_extract,
        ctx.ats(),
    );
    let input = ctx.porn_es.visits.len() + ctx.regular_es.visits.len();
    let produced = table2.porn_third_party + table2.regular_third_party;
    (table2, input, produced)
}

fn stage_organizations(
    ctx: &AnalysisContext<'_>,
) -> (
    (AttributionStats, Vec<OrgPrevalence>, Vec<OrgPrevalence>),
    usize,
    usize,
) {
    // The cert harvest (crawl traffic + out-of-band TLS probe) is collected
    // once in `AnalysisContext::build` and borrowed here.
    let attributor = orgs::OrgAttributor::from_harvest(&ctx.world.disconnect, &ctx.cert_harvest);
    let attribution = attributor.coverage(&ctx.porn_extract);
    let fig3_porn = attributor.prevalence(&ctx.porn_extract, ctx.porn_es.success_count());
    let fig3_regular = attributor.prevalence(&ctx.regular_extract, ctx.regular_es.success_count());
    let input = ctx.porn_extract.third_party_fqdns.len();
    let produced = fig3_porn.len() + fig3_regular.len();
    ((attribution, fig3_porn, fig3_regular), input, produced)
}

fn stage_cookies(ctx: &AnalysisContext<'_>) -> ((CookieStats, Vec<Table4Row>), usize, usize) {
    let stats = cookies::stats(ctx.porn_es, &ctx.cookie_rows, ctx.client_ip);
    let table4 = cookies::table4(
        ctx.porn_es,
        &ctx.cookie_rows,
        ctx.ats(),
        &ctx.regular_extract.third_party_fqdns,
        ctx.client_ip,
        5,
    );
    let produced = table4.len();
    ((stats, table4), ctx.cookie_rows.len(), produced)
}

fn stage_cookie_sync(ctx: &AnalysisContext<'_>, obs: &StageObs<'_>) -> (SyncReport, usize, usize) {
    let top_k = 100.min(ctx.ranked.len());
    let options = SyncOptions::default();
    let report = if ctx.shards <= 1 {
        sync::detect_cached(ctx.porn_es, &ctx.ranked, top_k, options, &ctx.hosts)
    } else {
        // Two sharded passes: register every cookie value with its globally
        // earliest setter, then match request parameters against the merged
        // registrations (session order is honoured via the first-set index).
        let regs = sync::merge_registrations(scan_shards(
            obs,
            "cookie-sync.registrations",
            ctx.porn_es,
            ctx.shards,
            |slice| sync::scan_registrations(slice, options, &ctx.hosts),
        ));
        let matches = sync::merge_matches(scan_shards(
            obs,
            "cookie-sync.matches",
            ctx.porn_es,
            ctx.shards,
            |slice| sync::scan_matches(slice, &regs, options, &ctx.hosts),
        ));
        sync::finalize(matches, &ctx.ranked, top_k)
    };
    let produced = report.pairs.len();
    (report, ctx.porn_es.success_count(), produced)
}

fn stage_webrtc(ctx: &AnalysisContext<'_>, obs: &StageObs<'_>) -> (WebRtcReport, usize, usize) {
    let ats = ctx.ats_for(ctx.porn_es);
    let report = if ctx.shards <= 1 {
        webrtc::detect(ctx.porn_es, ats)
    } else {
        let parts = scan_shards(obs, WEBRTC, ctx.porn_es, ctx.shards, |slice| {
            webrtc::scan(slice, ats)
        });
        webrtc::finalize(webrtc::merge(parts), ats)
    };
    let produced = report.scripts.len();
    (report, ctx.porn_es.success_count(), produced)
}

fn stage_fingerprinting(
    ctx: &AnalysisContext<'_>,
    rtc: &WebRtcReport,
    obs: &StageObs<'_>,
) -> ((FingerprintReport, Vec<Table5Row>), usize, usize) {
    let ats = ctx.ats_for(ctx.porn_es);
    let fp = if ctx.shards <= 1 {
        fingerprint::detect(ctx.porn_es, ats)
    } else {
        let parts = scan_shards(obs, FINGERPRINTING, ctx.porn_es, ctx.shards, |slice| {
            fingerprint::scan(slice, ats)
        });
        fingerprint::finalize(fingerprint::merge(parts))
    };
    let table5 = fingerprint::table5(
        &fp,
        rtc,
        &ctx.porn_extract,
        &ctx.regular_extract,
        ctx.ats(),
        10,
    );
    let produced = fp.canvas_scripts.len() + table5.len();
    ((fp, table5), ctx.porn_es.success_count(), produced)
}

fn stage_https(ctx: &AnalysisContext<'_>, obs: &StageObs<'_>) -> (HttpsReport, usize, usize) {
    let report = if ctx.shards <= 1 {
        https::report(ctx.porn_es, &ctx.tier_of, ctx.client_ip)
    } else {
        let parts = scan_shards(obs, HTTPS, ctx.porn_es, ctx.shards, |slice| {
            https::scan(slice, &ctx.tier_of, ctx.client_ip)
        });
        https::finalize(https::merge(parts))
    };
    let produced = report.rows.len();
    (report, ctx.porn_es.visits.len(), produced)
}

fn stage_malware(ctx: &AnalysisContext<'_>, obs: &StageObs<'_>) -> (MalwareReport, usize, usize) {
    let threat = WorldThreatFeed(ctx.world);
    let report = if ctx.shards <= 1 {
        malware::detect(ctx.porn_es, &threat)
    } else {
        let parts = scan_shards(obs, MALWARE, ctx.porn_es, ctx.shards, |slice| {
            malware::scan(slice, &threat)
        });
        malware::merge(parts)
    };
    let produced = report.flagged_sites.len() + report.mining_sites.len();
    (report, ctx.porn_es.success_count(), produced)
}

fn stage_geo(
    db: &MeasurementDb,
    ctx: &AnalysisContext<'_>,
) -> ((Table7, GeoMalware), usize, usize) {
    let threat = WorldThreatFeed(ctx.world);
    let mut order = vec![Country::Spain];
    order.extend(
        ctx.countries
            .iter()
            .copied()
            .filter(|c| *c != Country::Spain),
    );
    let mut input = 0usize;
    let summaries: Vec<geo::GeoSummary> = order
        .iter()
        .map(|&country| {
            let crawl = db
                .crawl(country, CorpusLabel::Porn)
                .expect("per-country porn crawl recorded");
            input += crawl.visits.len();
            let extract = ctx.extracts.get_sharded(crawl, false, ctx.shards);
            geo::summarize_extracted(crawl, &extract, ctx.ats_for(crawl), &threat)
        })
        .collect();
    let table7 = geo::table7(&summaries, &ctx.regular_extract.third_party_fqdns);
    let geo_malware = geo::geo_malware(&summaries);
    let produced = table7.rows.len();
    ((table7, geo_malware), input, produced)
}

fn stage_consent_banners(
    db: &MeasurementDb,
    ctx: &AnalysisContext<'_>,
    obs: &StageObs<'_>,
) -> ((BannerBreakdown, BannerBreakdown), usize, usize) {
    let oracle = InspectionOracle::new(&ctx.world.sites);
    let verify = |domain: &str| oracle.confirm_banner(domain);
    let breakdown = |crawl: &CrawlRecord, tag: &str| {
        if ctx.shards <= 1 {
            let (b, _) = consent::breakdown(crawl, &verify);
            b
        } else {
            // Each worker gets its own oracle: the shared one counts its
            // queries in a `Cell`, which must not cross shard threads.
            let parts = scan_shards(obs, tag, crawl, ctx.shards, |slice| {
                let oracle = InspectionOracle::new(&ctx.world.sites);
                let verify = |domain: &str| oracle.confirm_banner(domain);
                consent::scan(slice, &verify)
            });
            let mut observations = Vec::new();
            let mut rejected = 0usize;
            for (part, part_rejected) in parts {
                observations.extend(part);
                rejected += part_rejected;
            }
            let (b, _) =
                consent::finalize(crawl.country, crawl.success_count(), observations, rejected);
            b
        }
    };
    let banners_eu = breakdown(ctx.porn_es, "consent-banners.eu");
    // The paper's Table 8 contrasts the EU with the USA; without a USA
    // crawl the comparison degrades to EU-vs-EU.
    let usa_crawl = db
        .crawl(Country::Usa, CorpusLabel::Porn)
        .unwrap_or(ctx.porn_es);
    let banners_usa = breakdown(usa_crawl, "consent-banners.usa");
    let input = ctx.porn_es.success_count() + usa_crawl.success_count();
    ((banners_eu, banners_usa), input, 2)
}

fn stage_policies(ctx: &AnalysisContext<'_>) -> ((Vec<PolicyDoc>, PolicyReport), usize, usize) {
    let (docs, sanitized_out) = policies::collect(&ctx.interactions_es);
    let report = policies::report(
        &docs,
        sanitized_out,
        ctx.corpus.sanitized.len(),
        ctx.max_policy_pairs,
    );
    let produced = docs.len();
    ((docs, report), ctx.interactions_es.len(), produced)
}

fn stage_ownership(
    ctx: &AnalysisContext<'_>,
    docs: &[PolicyDoc],
) -> (OwnershipReport, usize, usize) {
    let report = owners::discover(
        docs,
        ctx.porn_es,
        &ctx.world.whois,
        &ctx.porn_histories,
        ctx.corpus.sanitized.len(),
    );
    let input = docs.len() + ctx.porn_es.success_count();
    let produced = report.clusters.len();
    (report, input, produced)
}

fn stage_monetization(ctx: &AnalysisContext<'_>) -> (MonetizationReport, usize, usize) {
    let oracle = InspectionOracle::new(&ctx.world.sites);
    let label = |domain: &str| {
        oracle.label_subscription(domain).map(|l| match l {
            redlight_websim::oracle::SubscriptionLabel::Free => monetization::Subscription::Free,
            redlight_websim::oracle::SubscriptionLabel::Paid => monetization::Subscription::Paid,
        })
    };
    let report = monetization::report(&ctx.interactions_es, Some(&label));
    (report, ctx.interactions_es.len(), 1)
}

fn stage_age_gates(
    db: &MeasurementDb,
    ctx: &AnalysisContext<'_>,
) -> (AgeGateComparison, usize, usize) {
    let mut per_country = Vec::with_capacity(GATE_COUNTRIES.len());
    let mut input = 0usize;
    for country in GATE_COUNTRIES {
        // Spain's records come from the full-corpus interaction crawl,
        // filtered to the §7.2 top set; the other countries were crawled on
        // the top set directly.
        let records: Vec<InteractionRecord> = db
            .interactions_in(country)
            .filter(|r| ctx.top.contains(&r.domain))
            .cloned()
            .collect();
        input += records.len();
        per_country.push(records);
    }
    let comparison = agegate::compare(&per_country);
    let produced = comparison.per_country.len();
    (comparison, input, produced)
}

/// §7.3's Polisis pass: over the `top_n` porn sites with the heaviest
/// observed tracking (canvas fingerprinting weighs heaviest, then
/// third-party ID cookies), how many carry a policy disclosing cookies +
/// data types + third parties, and how many name the complete embedded
/// third-party list. Returns `(checked, disclosing, full list)`.
fn stage_disclosure(
    ctx: &AnalysisContext<'_>,
    fp: &FingerprintReport,
    docs: &[PolicyDoc],
) -> ((usize, usize, usize), usize, usize) {
    const TOP_N: usize = 25;
    let mut score: BTreeMap<&str, usize> = BTreeMap::new();
    for row in ctx
        .cookie_rows
        .iter()
        .filter(|r| r.third_party && cookies::is_id_cookie(r))
    {
        *score.entry(row.site.as_str()).or_default() += 1;
    }
    for site in &fp.canvas_sites {
        *score.entry(site.as_str()).or_default() += 50;
    }
    let mut ranked: Vec<(&str, usize)> = score.into_iter().collect();
    ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));

    let checked = ranked.len().min(TOP_N);
    let mut disclosing = 0usize;
    let mut full_list = 0usize;
    for (site, _) in ranked.into_iter().take(TOP_N) {
        let Some(doc) = docs.iter().find(|d| d.site == site) else {
            continue; // no policy at all: counted as non-disclosing
        };
        let ann = policies::annotate(&doc.text);
        if ann.discloses_cookies && ann.discloses_data_types && ann.discloses_third_parties {
            disclosing += 1;
        }
        let observed: Vec<String> = ctx
            .porn_extract
            .per_site
            .get(site)
            .map(|p| {
                p.third
                    .iter()
                    .map(|f| ctx.hosts.registrable(f).to_string())
                    .collect()
            })
            .unwrap_or_default();
        if policies::discloses_full_list(&doc.text, &observed) {
            full_list += 1;
        }
    }
    let input = ctx.cookie_rows.len() + fp.canvas_sites.len();
    ((checked, disclosing, full_list), input, checked)
}
