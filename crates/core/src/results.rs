//! The assembled outputs of one study run: every table and figure of the
//! paper, in structured form.

use std::collections::BTreeMap;
use std::time::Duration;

use redlight_analysis::agegate::AgeGateComparison;
use redlight_analysis::ats::Table2;
use redlight_analysis::consent::BannerBreakdown;
use redlight_analysis::cookies::{CookieStats, Table4Row};
use redlight_analysis::fingerprint::{FingerprintReport, Table5Row};
use redlight_analysis::geo::{GeoMalware, Table7};
use redlight_analysis::https::HttpsReport;
use redlight_analysis::malware::MalwareReport;
use redlight_analysis::monetization::MonetizationReport;
use redlight_analysis::orgs::{AttributionStats, OrgPrevalence};
use redlight_analysis::owners::OwnershipReport;
use redlight_analysis::policies::PolicyReport;
use redlight_analysis::popularity::{Fig1, Table3};
use redlight_analysis::sync::SyncReport;
use redlight_analysis::webrtc::WebRtcReport;
use redlight_crawler::db::CorpusLabel;
use redlight_crawler::plan::CrawlTiming;
use redlight_net::geoip::Country;

/// Wall time and record counts for one named analysis stage.
#[derive(Debug, Clone)]
pub struct StageTiming {
    /// The stage's registered name (one of [`crate::stages::STAGES`]).
    pub name: &'static str,
    /// Wall-clock duration of the stage.
    pub wall: Duration,
    /// Records the stage read (visits, cookie rows, interaction records…).
    pub input_records: usize,
    /// Records the stage produced (table rows, detections, clusters…).
    pub output_records: usize,
}

/// Final hit/miss counters of one shared analysis cache.
#[derive(Debug, Clone)]
pub struct CacheCounter {
    /// Cache name (e.g. `etld1-hosts`, `ats-url-verdicts`).
    pub name: &'static str,
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that computed (and populated) an entry.
    pub misses: u64,
}

/// Per-crawl shard statistics of a sharded analysis run: how the crawl's
/// visit range splits into contiguous shards and how much interned string
/// data its symbol table holds (hosts, URLs and domains are interned once
/// at record time; a shard's working set is its visit range plus this
/// shared read-only table).
#[derive(Debug, Clone)]
pub struct ShardStat {
    /// Vantage-point country of the crawl.
    pub country: Country,
    /// Which corpus the crawl visited.
    pub corpus: CorpusLabel,
    /// Total visits recorded by the crawl.
    pub visits: usize,
    /// Number of contiguous visit-range shards.
    pub shards: usize,
    /// Smallest shard's visit count.
    pub min_shard: usize,
    /// Largest shard's visit count.
    pub max_shard: usize,
    /// Interned symbols (distinct hosts/domains) in the crawl's table.
    pub symbols: usize,
    /// Bytes of interned string data backing those symbols.
    pub interned_bytes: usize,
}

/// Instrumentation for one pipeline run: every crawl's wall time plus every
/// analysis stage's wall time and record counts, and the shared caches'
/// final hit/miss counters. Carried by [`StudyResults`] and rendered by
/// [`render_timings`](StudyResults::render_timings).
#[derive(Debug, Clone, Default)]
pub struct StageReport {
    /// Collection-layer timings, one per executed crawl.
    pub crawls: Vec<CrawlTiming>,
    /// Analysis-layer timings, one per stage that ran.
    pub stages: Vec<StageTiming>,
    /// Shared-cache counters at the end of the run (empty when the caches
    /// were never exercised, e.g. a collection-only run).
    pub caches: Vec<CacheCounter>,
    /// Per-crawl shard statistics — populated only on sharded runs
    /// (`--shards > 1`), so unsharded reports render unchanged.
    pub shards: Vec<ShardStat>,
}

/// Corpus-compilation outcome (stringified from the crawler report).
#[derive(Debug, Clone)]
pub struct CorpusSummary {
    /// Domains found via the porn-directory aggregators (§3 source 1).
    pub from_directories: usize,
    /// Domains from the Alexa-style Adult category (§3 source 2).
    pub from_adult_category: usize,
    /// Domains matching the keyword bag in the 2018 top-1M (§3 source 3).
    pub from_keywords: usize,
    /// Union of the three sources (the paper's 8,099).
    pub candidates: usize,
    /// Candidates removed by sanitization (the paper's 1,256).
    pub false_positives: usize,
    /// The sanitized porn corpus (the paper's 6,843).
    pub sanitized: usize,
    /// The popular non-porn reference corpus (the paper's 9,688).
    pub regular_reference: usize,
    /// Oracle queries consumed (the stand-in for human review effort).
    pub manual_inspections: usize,
}

/// Everything one study run produces.
#[derive(Debug, Clone)]
pub struct StudyResults {
    /// §3 corpus compilation outcome.
    pub corpus: CorpusSummary,
    /// Fig. 1: rank stability of the porn corpus.
    pub fig1: Fig1,
    /// Table 1 + §4.1 headline ownership numbers.
    pub ownership: OwnershipReport,
    /// §4.1 monetization.
    pub monetization: MonetizationReport,
    /// Table 2.
    pub table2: Table2,
    /// Table 3 + §4.2.2 extras.
    pub table3: Table3,
    /// Fig. 3 organization prevalence (porn side).
    pub fig3_porn: Vec<OrgPrevalence>,
    /// Fig. 3 organization prevalence (regular side, for comparison).
    pub fig3_regular: Vec<OrgPrevalence>,
    /// §4.2(3) attribution coverage.
    pub attribution: AttributionStats,
    /// §5.1.1 cookies.
    pub cookie_stats: CookieStats,
    /// Table 4.
    pub table4: Vec<Table4Row>,
    /// §5.1.2 / Fig. 4.
    pub sync: SyncReport,
    /// §5.1.3.
    pub fingerprint: FingerprintReport,
    /// §5.1.4.
    pub webrtc: WebRtcReport,
    /// Table 5.
    pub table5: Vec<Table5Row>,
    /// §5.2 / Table 6.
    pub https: HttpsReport,
    /// §5.3 malware (Spain crawl).
    pub malware: MalwareReport,
    /// §6 / Table 7.
    pub table7: Table7,
    /// §6.2.
    pub geo_malware: GeoMalware,
    /// Table 8: Spain (EU) and USA breakdowns.
    pub banners_eu: BannerBreakdown,
    /// Table 8's USA column.
    pub banners_usa: BannerBreakdown,
    /// §7.2.
    pub agegates: AgeGateComparison,
    /// §7.3.
    pub policies: PolicyReport,
    /// Polisis-style disclosure check over the top tracker-heavy sites:
    /// `(sites checked, sites disclosing cookies+data+third parties,
    /// sites naming the complete third-party list)`.
    pub disclosure_check: (usize, usize, usize),
    /// Per-domain best ranks (for downstream rendering).
    pub best_ranks: BTreeMap<String, u32>,
    /// Pipeline instrumentation: crawl and stage timings with record counts.
    pub stage_report: StageReport,
}
