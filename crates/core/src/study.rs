//! The end-to-end pipeline.

use std::collections::BTreeMap;

use redlight_analysis::{
    agegate, ats, consent, cookies, fingerprint, geo, https, malware, monetization, orgs, owners,
    policies, popularity, sync, thirdparty, webrtc,
};
use redlight_crawler::corpus::CorpusCompiler;
use redlight_crawler::db::CorpusLabel;
use redlight_crawler::openwpm::{CrawlConfig, OpenWpmCrawler};
use redlight_crawler::selenium::SeleniumCrawler;
use redlight_net::geoip::Country;
use redlight_websim::oracle::InspectionOracle;
use redlight_websim::{World, WorldConfig};

use crate::results::{CorpusSummary, StudyResults};
use crate::WorldThreatFeed;

/// Study parameters.
#[derive(Debug, Clone)]
pub struct StudyConfig {
    /// World.
    pub world: WorldConfig,
    /// Countries to crawl (Spain is mandatory; the paper uses six).
    pub countries: Vec<Country>,
    /// Size of the manually studied most-popular subset for age gates
    /// (50 in the paper; scaled for smaller worlds).
    pub agegate_top_n: usize,
    /// Cap on policy pairs examined for the §7.3 similarity sweep.
    pub max_policy_pairs: usize,
}

impl StudyConfig {
    /// Paper-scale study (slow: six full crawls).
    pub fn paper_scale(seed: u64) -> Self {
        StudyConfig {
            world: WorldConfig::paper_scale(seed),
            countries: Country::ALL.to_vec(),
            agegate_top_n: 50,
            max_policy_pairs: 1_300_000,
        }
    }

    /// A ~20× smaller study for tests, examples and benches.
    pub fn small(seed: u64) -> Self {
        StudyConfig {
            world: WorldConfig::small(seed),
            countries: Country::ALL.to_vec(),
            agegate_top_n: 12,
            max_policy_pairs: 40_000,
        }
    }

    /// Tiny smoke-test study.
    pub fn tiny(seed: u64) -> Self {
        StudyConfig {
            world: WorldConfig::tiny(seed),
            countries: vec![Country::Spain, Country::Usa, Country::Russia],
            agegate_top_n: 8,
            max_policy_pairs: 5_000,
        }
    }
}

/// The study driver.
pub struct Study;

impl Study {
    /// Collects the raw measurement database (the OpenWPM-SQLite stand-in)
    /// without running the analyses: the Spanish porn + regular crawls and
    /// the Spanish interaction crawl. Useful for downstream consumers that
    /// want to run their own analyses over the recorded tables.
    pub fn collect_db(world: &World, store_dom: bool) -> redlight_crawler::MeasurementDb {
        let corpus = CorpusCompiler::new(world).compile();
        let mut db = redlight_crawler::MeasurementDb::new();
        db.crawls.push(
            OpenWpmCrawler::new(
                world,
                CrawlConfig {
                    country: Country::Spain,
                    corpus: CorpusLabel::Porn,
                    store_dom,
                },
            )
            .crawl(&corpus.sanitized),
        );
        db.crawls.push(
            OpenWpmCrawler::new(
                world,
                CrawlConfig {
                    country: Country::Spain,
                    corpus: CorpusLabel::Regular,
                    store_dom: false,
                },
            )
            .crawl(&corpus.reference_regular),
        );
        db.interactions =
            SeleniumCrawler::new(world, Country::Spain).crawl(&corpus.sanitized);
        db
    }

    /// Runs the full pipeline and returns every table/figure.
    pub fn run(config: StudyConfig) -> StudyResults {
        let world = World::build(config.world.clone());
        Self::run_on(&world, &config)
    }

    /// Runs the pipeline on an existing world (lets callers keep the world
    /// for validation against ground truth).
    pub fn run_on(world: &World, config: &StudyConfig) -> StudyResults {
        // ---- §3: corpus compilation. ----
        let corpus = CorpusCompiler::new(world).compile();

        // ---- Longitudinal rank data (public dataset). ----
        let histories_all = world.rank_histories();
        let porn_histories: BTreeMap<String, redlight_rankings::RankHistory> = corpus
            .sanitized
            .iter()
            .filter_map(|d| histories_all.get(d).map(|h| (d.clone(), h.clone())))
            .collect();
        let tier_of = popularity::tiers_from_histories(&porn_histories);
        let best_ranks: BTreeMap<String, u32> = porn_histories
            .iter()
            .filter_map(|(d, h)| h.best().map(|b| (d.clone(), b)))
            .collect();

        // ---- Main OpenWPM crawls from Spain (porn + regular). ----
        let porn_es = OpenWpmCrawler::new(
            world,
            CrawlConfig {
                country: Country::Spain,
                corpus: CorpusLabel::Porn,
                store_dom: true,
            },
        )
        .crawl(&corpus.sanitized);
        let regular_es = OpenWpmCrawler::new(
            world,
            CrawlConfig {
                country: Country::Spain,
                corpus: CorpusLabel::Regular,
                store_dom: false,
            },
        )
        .crawl(&corpus.reference_regular);

        // ---- Third-party extraction + ATS classification. ----
        let porn_extract = thirdparty::extract(&porn_es, true);
        let regular_extract = thirdparty::extract(&regular_es, true);
        let classifier = ats::AtsClassifier::from_lists(&world.easylist, &world.easyprivacy);
        let table2 = ats::table2(
            &porn_es,
            &porn_extract,
            &regular_es,
            &regular_extract,
            &classifier,
        );

        // ---- Organization attribution (Fig. 3). ----
        // Out-of-band TLS probe: connect to port 443 of any contacted FQDN
        // and read its certificate (what the paper's §4.2(3) pipeline did).
        let probe = |host: &str| -> Option<redlight_net::tls::CertSummary> {
            world.resolve_host(host)?;
            Some((&world.cert_for_host(host)).into())
        };
        let attributor =
            orgs::OrgAttributor::new(&world.disconnect, &[&porn_es, &regular_es], Some(&probe));
        let attribution = attributor.coverage(&porn_extract);
        let fig3_porn = attributor.prevalence(&porn_extract, porn_es.success_count());
        let fig3_regular = attributor.prevalence(&regular_extract, regular_es.success_count());

        // ---- Cookies (§5.1.1, Table 4). ----
        let client_ip = porn_es_client_ip(world);
        let cookie_rows = cookies::collect(&porn_es);
        let cookie_stats = cookies::stats(&porn_es, &cookie_rows, client_ip);
        let table4 = cookies::table4(
            &porn_es,
            &cookie_rows,
            &classifier,
            &regular_extract.third_party_fqdns,
            client_ip,
            5,
        );

        // ---- Cookie syncing (§5.1.2). ----
        let mut ranked: Vec<String> = corpus.sanitized.clone();
        ranked.sort_by_key(|d| best_ranks.get(d).copied().unwrap_or(u32::MAX));
        let sync = sync::detect(&porn_es, &ranked, 100.min(ranked.len()));

        // ---- Fingerprinting (§5.1.3/5.1.4, Table 5). ----
        let fp = fingerprint::detect(&porn_es, &classifier);
        let rtc = webrtc::detect(&porn_es, &classifier);
        let table5 = fingerprint::table5(&fp, &rtc, &porn_extract, &regular_extract, &classifier, 10);

        // ---- HTTPS (§5.2, Table 6). ----
        let https_report = https::report(&porn_es, &tier_of, client_ip);

        // ---- Popularity (Fig. 1, Table 3). ----
        let fig1 = popularity::fig1(&porn_histories);
        let table3 = popularity::table3(&porn_extract, &tier_of);

        // ---- Malware (§5.3). ----
        let threat = WorldThreatFeed(world);
        let malware_report = malware::detect(&porn_es, &threat);

        // ---- Geo sweep (§6, Table 7): the USA crawl keeps its DOM for
        //      Table 8; other countries are summarized in parallel and
        //      dropped immediately. ----
        let es_summary = geo::summarize(&porn_es, &classifier, &threat);
        let mut summaries: Vec<geo::GeoSummary> = vec![es_summary];
        let mut usa_crawl = None;
        let others: Vec<Country> = config
            .countries
            .iter()
            .copied()
            .filter(|c| *c != Country::Spain)
            .collect();
        crossbeam::thread::scope(|scope| {
            let mut handles = Vec::new();
            for &country in &others {
                let sanitized = &corpus.sanitized;
                let classifier = &classifier;
                let threat = &threat;
                handles.push(scope.spawn(move |_| {
                    let crawl = OpenWpmCrawler::new(
                        world,
                        CrawlConfig {
                            country,
                            corpus: CorpusLabel::Porn,
                            store_dom: country == Country::Usa,
                        },
                    )
                    .crawl(sanitized);
                    let summary = geo::summarize(&crawl, classifier, threat);
                    let keep = if country == Country::Usa {
                        Some(crawl)
                    } else {
                        None
                    };
                    (summary, keep)
                }));
            }
            for handle in handles {
                let (summary, keep) = handle.join().expect("geo crawl thread");
                if let Some(crawl) = keep {
                    usa_crawl = Some(crawl);
                }
                summaries.push(summary);
            }
        })
        .expect("crossbeam scope");
        let table7 = geo::table7(&summaries, &regular_extract.third_party_fqdns);
        let geo_malware = geo::geo_malware(&summaries);

        // ---- Consent banners (§7.1, Table 8): EU (Spain) vs USA. ----
        let oracle = InspectionOracle::new(&world.sites);
        let verify = |domain: &str| oracle.confirm_banner(domain);
        let (banners_eu, _) = consent::breakdown(&porn_es, &verify);
        let banners_usa = match &usa_crawl {
            Some(crawl) => consent::breakdown(crawl, &verify).0,
            None => consent::breakdown(&porn_es, &verify).0,
        };

        // ---- Interaction crawl from Spain (§7.2/§7.3/§4.1). ----
        let interactions_es = SeleniumCrawler::new(world, Country::Spain).crawl(&corpus.sanitized);

        // ---- Policies (§7.3). ----
        let (docs, sanitized_out) = policies::collect(&interactions_es);
        let policy_report = policies::report(
            &docs,
            sanitized_out,
            corpus.sanitized.len(),
            config.max_policy_pairs,
        );

        // Polisis-style disclosure check over the top tracking sites
        // (canvas fingerprinting + third-party ID cookies, §7.3).
        let disclosure_check =
            disclosure_check(&porn_extract, &cookie_rows, &fp, &docs, 25);

        // ---- Ownership (§4.1, Table 1). ----
        let ownership = owners::discover(
            &docs,
            &porn_es,
            &world.whois,
            &porn_histories,
            corpus.sanitized.len(),
        );

        // ---- Monetization (§4.1) with the manual-labeling oracle. ----
        let label = |domain: &str| {
            oracle.label_subscription(domain).map(|l| match l {
                redlight_websim::oracle::SubscriptionLabel::Free => {
                    monetization::Subscription::Free
                }
                redlight_websim::oracle::SubscriptionLabel::Paid => {
                    monetization::Subscription::Paid
                }
            })
        };
        let monetization_report = monetization::report(&interactions_es, Some(&label));

        // ---- Age gates (§7.2): top-N from four countries. ----
        let top: Vec<String> = ranked
            .iter()
            .take(config.agegate_top_n)
            .cloned()
            .collect();
        let gate_countries = [Country::Usa, Country::Uk, Country::Spain, Country::Russia];
        let mut per_country = Vec::new();
        for country in gate_countries {
            if country == Country::Spain {
                // Reuse the Spanish interaction crawl, filtered to the top set.
                per_country.push(
                    interactions_es
                        .iter()
                        .filter(|r| top.contains(&r.domain))
                        .cloned()
                        .collect(),
                );
            } else {
                per_country.push(SeleniumCrawler::new(world, country).crawl(&top));
            }
        }
        let agegates = agegate::compare(&per_country);

        StudyResults {
            corpus: CorpusSummary {
                from_directories: corpus.from_directories.len(),
                from_adult_category: corpus.from_adult_category.len(),
                from_keywords: corpus.from_keywords.len(),
                candidates: corpus.candidates.len(),
                false_positives: corpus.false_positives.len(),
                sanitized: corpus.sanitized.len(),
                regular_reference: corpus.reference_regular.len(),
                manual_inspections: corpus.manual_inspections,
            },
            fig1,
            ownership,
            monetization: monetization_report,
            table2,
            table3,
            fig3_porn,
            fig3_regular,
            attribution,
            cookie_stats,
            table4,
            sync,
            fingerprint: fp,
            webrtc: rtc,
            table5,
            https: https_report,
            malware: malware_report,
            table7,
            geo_malware,
            banners_eu,
            banners_usa,
            agegates,
            policies: policy_report,
            disclosure_check,
            best_ranks,
        }
    }
}

/// The Spanish vantage point's public IP (what trackers embed in cookies).
fn porn_es_client_ip(world: &World) -> std::net::Ipv4Addr {
    let _ = world;
    redlight_net::geoip::VantagePoint::study_default()
        .into_iter()
        .find(|v| v.country == Country::Spain)
        .expect("Spain vantage point")
        .client_ip
}

/// §7.3's Polisis pass: over the `top_n` porn sites with the heaviest
/// observed tracking (canvas fingerprinting weighs heaviest, then
/// third-party ID cookies), how many carry a policy disclosing cookies +
/// data types + third parties, and how many name the complete embedded
/// third-party list. Returns `(checked, disclosing, full list)`.
fn disclosure_check(
    extract: &thirdparty::ThirdPartyExtract,
    cookie_rows: &[cookies::CookieRow],
    fp: &redlight_analysis::fingerprint::FingerprintReport,
    docs: &[policies::PolicyDoc],
    top_n: usize,
) -> (usize, usize, usize) {
    let mut score: BTreeMap<&str, usize> = BTreeMap::new();
    for row in cookie_rows.iter().filter(|r| r.third_party && cookies::is_id_cookie(r)) {
        *score.entry(row.site.as_str()).or_default() += 1;
    }
    for site in &fp.canvas_sites {
        *score.entry(site.as_str()).or_default() += 50;
    }
    let mut ranked: Vec<(&str, usize)> = score.into_iter().collect();
    ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));

    let checked = ranked.len().min(top_n);
    let mut disclosing = 0usize;
    let mut full_list = 0usize;
    for (site, _) in ranked.into_iter().take(top_n) {
        let Some(doc) = docs.iter().find(|d| d.site == site) else {
            continue; // no policy at all: counted as non-disclosing
        };
        let ann = policies::annotate(&doc.text);
        if ann.discloses_cookies && ann.discloses_data_types && ann.discloses_third_parties {
            disclosing += 1;
        }
        let observed: Vec<String> = extract
            .per_site
            .get(site)
            .map(|p| {
                p.third
                    .iter()
                    .map(|f| redlight_net::psl::registrable_domain(f).to_string())
                    .collect()
            })
            .unwrap_or_default();
        if policies::discloses_full_list(&doc.text, &observed) {
            full_list += 1;
        }
    }
    (checked, disclosing, full_list)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collect_db_gathers_both_crawls_and_interactions() {
        let world = World::build(WorldConfig::tiny(5));
        let db = Study::collect_db(&world, false);
        assert_eq!(db.crawls.len(), 2);
        assert!(db
            .crawl(Country::Spain, CorpusLabel::Porn)
            .is_some_and(|c| c.success_count() > 0));
        assert!(db
            .crawl(Country::Spain, CorpusLabel::Regular)
            .is_some_and(|c| c.success_count() > 0));
        assert!(!db.interactions.is_empty());
        assert!(db.interactions_in(Country::Spain).count() > 0);
    }

    #[test]
    fn tiny_study_runs_end_to_end() {
        let results = Study::run(StudyConfig::tiny(2024));
        assert!(results.corpus.sanitized > 0);
        assert!(results.table2.porn_third_party > 0);
        assert!(!results.fig3_porn.is_empty());
        assert!(results.cookie_stats.total_cookies > 0);
        assert_eq!(results.table7.rows.len(), 3);
        assert!(results.policies.with_policy > 0);
    }
}
