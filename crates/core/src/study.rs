//! The end-to-end pipeline driver: plan the crawls, collect the
//! measurement database, run the analysis stages, assemble the results.
//!
//! The pipeline has three layers:
//!
//! 1. **Collection** — [`StudyConfig::crawl_plan`] derives a
//!    [`CrawlPlan`] (countries × corpora × store-DOM flags plus the
//!    Selenium interaction crawls) and [`Study::collect_db`] executes it,
//!    recording *every* crawl into a [`MeasurementDb`].
//! 2. **Analysis** — [`crate::stages`] derives the shared
//!    [`AnalysisContext`](crate::stages::AnalysisContext) and runs the
//!    named stages over the DB, independent stages concurrently.
//! 3. **Reporting** — per-crawl and per-stage timings land in a
//!    [`StageReport`](crate::results::StageReport) inside
//!    [`StudyResults`].
//!
//! [`Study::collect_db`] is the literal first half of [`Study::run_on`]:
//! downstream consumers that only want the raw tables call it and stop.

use redlight_crawler::corpus::CorpusCompiler;
use redlight_crawler::db::{CorpusLabel, MeasurementDb};
use redlight_crawler::openwpm::CrawlConfig;
use redlight_crawler::parallel::CrawlObs;
use redlight_crawler::plan::{
    CrawlPlan, CrawlSpec, CrawlTiming, DomainSel, InteractionSpec, PlanDomains,
};
use redlight_net::geoip::Country;
use redlight_net::transport::NetProfile;
use redlight_obs::ObsContext;
use redlight_websim::{World, WorldConfig};

use crate::results::{StageReport, StudyResults};
use crate::stages::{self, AnalysisContext, StageObs, GATE_COUNTRIES};

/// Study parameters.
#[derive(Debug, Clone)]
pub struct StudyConfig {
    /// World.
    pub world: WorldConfig,
    /// Countries to crawl (Spain is mandatory; the paper uses six).
    pub countries: Vec<Country>,
    /// Size of the manually studied most-popular subset for age gates
    /// (50 in the paper; scaled for smaller worlds).
    pub agegate_top_n: usize,
    /// Cap on policy pairs examined for the §7.3 similarity sweep.
    pub max_policy_pairs: usize,
    /// Network profile every crawl runs over: transport stack (direct /
    /// metered / fault-injecting) plus the visit retry policy. The default
    /// injects nothing, so results stay byte-identical to a direct run.
    pub net: NetProfile,
    /// Classify each crawl's requests in one batched pass (grouped by host,
    /// deduped per distinct interned URL) instead of per request. Verdicts
    /// are byte-identical either way; batching only changes the walk order
    /// and lets every duplicate request hit the precomputed column.
    pub batch_classify: bool,
}

impl StudyConfig {
    /// Paper-scale study (slow: six full crawls).
    pub fn paper_scale(seed: u64) -> Self {
        StudyConfig {
            world: WorldConfig::paper_scale(seed),
            countries: Country::ALL.to_vec(),
            agegate_top_n: 50,
            max_policy_pairs: 1_300_000,
            net: NetProfile::default(),
            batch_classify: true,
        }
    }

    /// A ~20× smaller study for tests, examples and benches.
    pub fn small(seed: u64) -> Self {
        StudyConfig {
            world: WorldConfig::small(seed),
            countries: Country::ALL.to_vec(),
            agegate_top_n: 12,
            max_policy_pairs: 40_000,
            net: NetProfile::default(),
            batch_classify: true,
        }
    }

    /// Tiny smoke-test study.
    pub fn tiny(seed: u64) -> Self {
        StudyConfig {
            world: WorldConfig::tiny(seed),
            countries: vec![Country::Spain, Country::Usa, Country::Russia],
            agegate_top_n: 8,
            max_policy_pairs: 5_000,
            net: NetProfile::default(),
            batch_classify: true,
        }
    }

    /// Every crawl the study performs, as data.
    ///
    /// * OpenWPM: the main Spanish porn crawl (DOM retained for banner
    ///   analysis) + the Spanish regular reference crawl, then one porn
    ///   crawl per remaining geo-sweep country — the USA keeps its DOM
    ///   for Table 8's EU-vs-USA comparison, the rest are summary-only.
    /// * Selenium: the full-corpus Spanish interaction crawl (§7.3/§4.1)
    ///   plus the §7.2 age-gate crawls of the top-N set from the other
    ///   [`GATE_COUNTRIES`].
    pub fn crawl_plan(&self) -> CrawlPlan {
        let mut openwpm = vec![
            CrawlSpec {
                config: CrawlConfig {
                    country: Country::Spain,
                    corpus: CorpusLabel::Porn,
                    store_dom: true,
                },
                domains: DomainSel::Porn,
                net: self.net.clone(),
            },
            CrawlSpec {
                config: CrawlConfig {
                    country: Country::Spain,
                    corpus: CorpusLabel::Regular,
                    store_dom: false,
                },
                domains: DomainSel::Regular,
                net: self.net.clone(),
            },
        ];
        for &country in self.countries.iter().filter(|c| **c != Country::Spain) {
            openwpm.push(CrawlSpec {
                config: CrawlConfig {
                    country,
                    corpus: CorpusLabel::Porn,
                    store_dom: country == Country::Usa,
                },
                domains: DomainSel::Porn,
                net: self.net.clone(),
            });
        }

        let mut interactions = vec![InteractionSpec {
            country: Country::Spain,
            domains: DomainSel::Porn,
            net: self.net.clone(),
        }];
        for country in GATE_COUNTRIES {
            if country != Country::Spain {
                interactions.push(InteractionSpec {
                    country,
                    domains: DomainSel::AgeGateTop,
                    net: self.net.clone(),
                });
            }
        }

        CrawlPlan {
            openwpm,
            interactions,
        }
    }
}

/// The study driver.
pub struct Study;

impl Study {
    /// The collection layer: compiles the corpus, derives the crawl plan
    /// and executes it, recording every OpenWPM and Selenium crawl (the
    /// OpenWPM-SQLite stand-in) with per-crawl wall times. This is the
    /// literal first half of [`Study::run_on`]; downstream consumers that
    /// want to run their own analyses call it and read the tables.
    pub fn collect_db(world: &World, config: &StudyConfig) -> (MeasurementDb, Vec<CrawlTiming>) {
        Self::collect_db_observed(world, config, &ObsContext::disabled())
    }

    /// [`collect_db`](Self::collect_db) with telemetry: records a `collect`
    /// root span (one `corpus.compile` child, then per-crawl subtrees in
    /// per-worker shards) into `obs.trace` and publishes every transport
    /// and crawl counter into `obs.metrics`. The db and timings are
    /// byte-identical to the unobserved path.
    pub fn collect_db_observed(
        world: &World,
        config: &StudyConfig,
        obs: &ObsContext,
    ) -> (MeasurementDb, Vec<CrawlTiming>) {
        let mut tracer = obs.trace.tracer("collect");
        tracer.open("collect");

        tracer.open("corpus.compile");
        let corpus = CorpusCompiler::new(world).compile();
        let (_, _, ranked) = stages::ranked_corpus(world, &corpus.sanitized);
        let top: Vec<String> = ranked.into_iter().take(config.agegate_top_n).collect();
        tracer.attr("candidates", corpus.candidates.len());
        tracer.attr("sanitized", corpus.sanitized.len());
        tracer.close();

        let crawl_obs = CrawlObs {
            trace: obs.trace.clone(),
            metrics: obs.metrics.clone(),
            parent: tracer.link(),
        };
        let (db, timings) = config.crawl_plan().execute_observed(
            world,
            PlanDomains {
                porn: &corpus.sanitized,
                regular: &corpus.reference_regular,
                agegate_top: &top,
            },
            &crawl_obs,
        );
        tracer.attr("crawls", timings.len());
        tracer.close();
        tracer.finish();
        (db, timings)
    }

    /// Runs the full pipeline and returns every table/figure.
    pub fn run(config: StudyConfig) -> StudyResults {
        let world = World::build(config.world.clone());
        Self::run_on(&world, &config)
    }

    /// Runs the pipeline on an existing world (lets callers keep the world
    /// for validation against ground truth).
    pub fn run_on(world: &World, config: &StudyConfig) -> StudyResults {
        Self::run_on_observed(world, config, &ObsContext::disabled())
    }

    /// [`run_on`](Self::run_on) with the analysis layer fanned over
    /// `shards` contiguous visit-range shards: the decomposable stages scan
    /// per-shard partials off a bounded work queue and merge them in shard
    /// order, so peak per-stage memory is O(shard) instead of O(crawl).
    /// Results are byte-identical to [`run_on`] for every shard count; the
    /// [`StageReport`] additionally carries per-crawl [`ShardStat`] rows
    /// when `shards > 1`.
    ///
    /// [`ShardStat`]: crate::results::ShardStat
    pub fn run_on_sharded(world: &World, config: &StudyConfig, shards: usize) -> StudyResults {
        Self::run_on_sharded_observed(world, config, &ObsContext::disabled(), shards)
    }

    /// [`run_on`](Self::run_on) with telemetry: the collection layer
    /// journals under a `collect` root span, the analysis layer under an
    /// `analyze` root (one `context.build` child plus a `stage.<name>`
    /// span per stage), and every transport/cache/stage counter lands in
    /// `obs.metrics`. Results are byte-identical to [`run_on`].
    pub fn run_on_observed(world: &World, config: &StudyConfig, obs: &ObsContext) -> StudyResults {
        Self::run_on_sharded_observed(world, config, obs, 1)
    }

    /// [`run_on_sharded`](Self::run_on_sharded) with telemetry: sharded
    /// stages additionally record one `stage.<name>.shard.NNN` span per
    /// shard scan. At `shards == 1` the span layout, metrics and results
    /// are byte-identical to [`run_on_observed`](Self::run_on_observed).
    pub fn run_on_sharded_observed(
        world: &World,
        config: &StudyConfig,
        obs: &ObsContext,
        shards: usize,
    ) -> StudyResults {
        // Layer 1: collect every crawl into the measurement DB.
        let (db, crawl_timings) = Self::collect_db_observed(world, config, obs);

        // Layer 2: derive shared artifacts, then run all analysis stages.
        let mut tracer = obs.trace.tracer("analyze");
        tracer.open("analyze");
        tracer.open("context.build");
        let ctx = AnalysisContext::build_sharded_in(world, config, &db, &obs.metrics, shards);
        tracer.attr("corpus_sanitized", ctx.corpus.sanitized.len());
        tracer.close();
        let stage_obs = StageObs {
            trace: &obs.trace,
            metrics: &obs.metrics,
            parent: tracer.link(),
        };
        let (outputs, stage_timings) =
            stages::run_observed(&db, &ctx, &stages::all_stages(), &stage_obs);
        tracer.attr("stages", stage_timings.len());
        tracer.close();
        tracer.finish();

        // Layer 3: assemble results with the instrumentation report.
        let best_ranks = ctx.best_ranks.clone();
        let caches = ctx.cache_counters();
        let shard_rows = if shards > 1 {
            stages::shard_stats(&db, shards)
        } else {
            Vec::new()
        };
        outputs.into_results(
            best_ranks,
            StageReport {
                crawls: crawl_timings,
                stages: stage_timings,
                caches,
                shards: shard_rows,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collect_db_gathers_every_planned_crawl() {
        let world = World::build(WorldConfig::tiny(5));
        let config = StudyConfig::tiny(5);
        let (db, timings) = Study::collect_db(&world, &config);

        // tiny plan: Spain porn+regular, USA porn, Russia porn.
        assert_eq!(db.crawls().len(), 4);
        assert_eq!(
            db.countries(),
            vec![Country::Usa, Country::Spain, Country::Russia]
        );
        assert!(db
            .crawl(Country::Spain, CorpusLabel::Porn)
            .is_some_and(|c| c.success_count() > 0 && !c.visits[0].visit.dom_html.is_empty()));
        assert!(db
            .crawl(Country::Spain, CorpusLabel::Regular)
            .is_some_and(|c| c.success_count() > 0));
        assert!(db
            .crawl(Country::Russia, CorpusLabel::Porn)
            .is_some_and(|c| c.visits[0].visit.dom_html.is_empty()));

        // Interaction crawls: Spain full corpus + the other gate countries.
        assert!(!db.interactions().is_empty());
        for country in GATE_COUNTRIES {
            assert!(
                db.interactions_in(country).count() > 0,
                "{country:?} gate crawl recorded"
            );
        }

        // One timing per crawl: 4 OpenWPM + 4 Selenium.
        assert_eq!(timings.len(), 8);
        assert!(timings.iter().all(|t| t.sites > 0));
    }

    #[test]
    fn tiny_study_runs_end_to_end() {
        let results = Study::run(StudyConfig::tiny(2024));
        assert!(results.corpus.sanitized > 0);
        assert!(results.table2.porn_third_party > 0);
        assert!(!results.fig3_porn.is_empty());
        assert!(results.cookie_stats.total_cookies > 0);
        assert_eq!(results.table7.rows.len(), 3);
        assert!(results.policies.with_policy > 0);
        // The instrumentation rides along: every crawl and stage timed.
        assert_eq!(results.stage_report.crawls.len(), 8);
        assert_eq!(results.stage_report.stages.len(), stages::STAGES.len());
    }
}
