//! Error type shared by the network object model.

use std::fmt;

/// Errors produced while parsing or validating network objects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// The URL string could not be parsed.
    InvalidUrl(String),
    /// The hostname is not a valid FQDN.
    InvalidHost(String),
    /// A Set-Cookie header could not be parsed.
    InvalidCookie(String),
    /// Base64 / percent-encoding decode failure.
    Decode(String),
    /// An HTTP message was malformed.
    InvalidHttp(String),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::InvalidUrl(s) => write!(f, "invalid url: {s}"),
            NetError::InvalidHost(s) => write!(f, "invalid host: {s}"),
            NetError::InvalidCookie(s) => write!(f, "invalid cookie: {s}"),
            NetError::Decode(s) => write!(f, "decode error: {s}"),
            NetError::InvalidHttp(s) => write!(f, "invalid http message: {s}"),
        }
    }
}

impl std::error::Error for NetError {}
