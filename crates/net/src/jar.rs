//! A browser cookie jar with RFC 6265 domain- and path-matching.
//!
//! The OpenWPM-style crawler keeps **one jar alive for the whole crawl
//! session** (the paper never restarts the browser between visits, §3.1), so
//! cookies set while visiting site A are re-sent to the same trackers when
//! embedded by site B — that is what makes cookie synchronization observable.
//!
//! Cookies are bucketed by registrable domain: a session accumulates tens of
//! thousands of cookies across a corpus crawl, and a cookie can only ever
//! match a request whose host shares its registrable domain, so lookups stay
//! O(cookies-per-site) instead of O(all cookies in the session).

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::cookie::Cookie;
use crate::http::Scheme;
use crate::psl;
use crate::url::Url;

/// A cookie as stored in the jar, with its effective domain/path and origin
/// bookkeeping.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoredCookie {
    /// Cookie.
    pub cookie: Cookie,
    /// Effective domain the cookie is scoped to.
    pub domain: String,
    /// `true` ⇒ exact host match required (no `Domain` attribute was given).
    pub host_only: bool,
    /// Effective path.
    pub path: String,
    /// Hostname of the response that set the cookie.
    pub set_by: String,
}

impl StoredCookie {
    fn matches_domain(&self, host: &str) -> bool {
        if self.host_only {
            host == self.domain
        } else {
            host == self.domain
                || (host.len() > self.domain.len()
                    && host.ends_with(&self.domain)
                    && host.as_bytes()[host.len() - self.domain.len() - 1] == b'.')
        }
    }

    fn matches_path(&self, path: &str) -> bool {
        if path == self.path {
            return true;
        }
        if path.starts_with(&self.path) {
            return self.path.ends_with('/') || path.as_bytes().get(self.path.len()) == Some(&b'/');
        }
        false
    }
}

/// The jar.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CookieJar {
    /// registrable domain → cookies scoped within it.
    buckets: HashMap<String, Vec<StoredCookie>>,
    count: usize,
}

/// Default path per RFC 6265 §5.1.4: directory of the request path.
fn default_path(url: &Url) -> String {
    let p = url.path();
    match p.rfind('/') {
        Some(0) | None => "/".to_string(),
        Some(idx) => p[..idx].to_string(),
    }
}

impl CookieJar {
    /// Empty jar.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stores `cookie` as set by a response from `origin`.
    ///
    /// Enforces the domain-match rule: a response may only set a cookie for
    /// its own host or a superdomain of it (not an unrelated domain, and not
    /// a bare public suffix). Returns `false` when the cookie was rejected.
    pub fn store(&mut self, cookie: Cookie, origin: &Url) -> bool {
        let host = origin.host().as_str().to_string();
        let (domain, host_only) = match &cookie.domain {
            None => (host.clone(), true),
            Some(d) => {
                let dom_ok = host == *d
                    || (host.len() > d.len()
                        && host.ends_with(d.as_str())
                        && host.as_bytes()[host.len() - d.len() - 1] == b'.');
                if !dom_ok || psl::is_public_suffix(d) {
                    return false;
                }
                (d.clone(), false)
            }
        };
        let path = cookie.path.clone().unwrap_or_else(|| default_path(origin));

        let key = psl::registrable_domain(&domain).to_string();
        let bucket = self.buckets.entry(key).or_default();

        // Replace an existing cookie with the same (name, domain, path).
        let before = bucket.len();
        bucket.retain(|sc| {
            !(sc.cookie.name == cookie.name && sc.domain == domain && sc.path == path)
        });
        self.count -= before - bucket.len();

        // Max-Age <= 0 is a deletion.
        if cookie.max_age.is_some_and(|a| a <= 0) {
            return true;
        }
        bucket.push(StoredCookie {
            cookie,
            domain,
            host_only,
            path,
            set_by: host,
        });
        self.count += 1;
        true
    }

    /// The `(name, value)` pairs to send with a request to `url`, honoring
    /// domain match, path match and the `Secure` flag.
    pub fn cookies_for(&self, url: &Url) -> Vec<(String, String)> {
        let host = url.host().as_str();
        let path = url.path();
        let secure = url.scheme() == Scheme::Https;
        let key = psl::registrable_domain(host);
        let Some(bucket) = self.buckets.get(key) else {
            return Vec::new();
        };
        bucket
            .iter()
            .filter(|sc| sc.matches_domain(host))
            .filter(|sc| sc.matches_path(path))
            .filter(|sc| secure || !sc.cookie.secure)
            .map(|sc| (sc.cookie.name.clone(), sc.cookie.value.clone()))
            .collect()
    }

    /// Iterates over all stored cookies.
    pub fn all(&self) -> impl Iterator<Item = &StoredCookie> {
        self.buckets.values().flatten()
    }

    /// Number of stored cookies.
    pub fn len(&self) -> usize {
        self.count
    }

    /// `true` when the jar is empty.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Drops every cookie (used between independent crawl configurations).
    pub fn clear(&mut self) {
        self.buckets.clear();
        self.count = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn url(s: &str) -> Url {
        Url::parse(s).unwrap()
    }

    #[test]
    fn host_only_cookie_not_sent_to_subdomain() {
        let mut jar = CookieJar::new();
        jar.store(Cookie::new("sid", "1"), &url("https://example.com/"));
        assert_eq!(jar.cookies_for(&url("https://example.com/x")).len(), 1);
        assert_eq!(jar.cookies_for(&url("https://sub.example.com/")).len(), 0);
    }

    #[test]
    fn domain_cookie_sent_to_subdomains() {
        let mut jar = CookieJar::new();
        jar.store(
            Cookie::new("uid", "x").with_domain("tracker.com"),
            &url("https://sync.tracker.com/"),
        );
        assert_eq!(jar.cookies_for(&url("https://tracker.com/")).len(), 1);
        assert_eq!(jar.cookies_for(&url("https://ads.tracker.com/")).len(), 1);
        assert_eq!(jar.cookies_for(&url("https://nottracker.com/")).len(), 0);
    }

    #[test]
    fn cross_domain_set_is_rejected() {
        let mut jar = CookieJar::new();
        let ok = jar.store(
            Cookie::new("evil", "1").with_domain("victim.com"),
            &url("https://attacker.net/"),
        );
        assert!(!ok);
        assert!(jar.is_empty());
    }

    #[test]
    fn public_suffix_domain_is_rejected() {
        let mut jar = CookieJar::new();
        let ok = jar.store(
            Cookie::new("super", "1").with_domain("com"),
            &url("https://example.com/"),
        );
        assert!(!ok);
    }

    #[test]
    fn secure_cookie_not_sent_over_http() {
        let mut jar = CookieJar::new();
        jar.store(Cookie::new("s", "1").secure(), &url("https://example.com/"));
        assert_eq!(jar.cookies_for(&url("https://example.com/")).len(), 1);
        assert_eq!(jar.cookies_for(&url("http://example.com/")).len(), 0);
    }

    #[test]
    fn path_matching_rules() {
        let mut jar = CookieJar::new();
        jar.store(
            Cookie::new("p", "1").with_path("/videos"),
            &url("https://site.com/videos/page"),
        );
        assert_eq!(jar.cookies_for(&url("https://site.com/videos")).len(), 1);
        assert_eq!(jar.cookies_for(&url("https://site.com/videos/x")).len(), 1);
        assert_eq!(jar.cookies_for(&url("https://site.com/videosX")).len(), 0);
        assert_eq!(jar.cookies_for(&url("https://site.com/other")).len(), 0);
    }

    #[test]
    fn default_path_is_request_directory() {
        let mut jar = CookieJar::new();
        jar.store(
            Cookie::new("d", "1"),
            &url("https://site.com/a/b/page.html"),
        );
        assert_eq!(jar.all().next().unwrap().path, "/a/b");
        let mut jar2 = CookieJar::new();
        jar2.store(Cookie::new("d", "1"), &url("https://site.com/"));
        assert_eq!(jar2.all().next().unwrap().path, "/");
    }

    #[test]
    fn same_name_domain_path_replaces() {
        let mut jar = CookieJar::new();
        jar.store(Cookie::new("uid", "old"), &url("https://t.com/"));
        jar.store(Cookie::new("uid", "new"), &url("https://t.com/"));
        assert_eq!(jar.len(), 1);
        assert_eq!(jar.cookies_for(&url("https://t.com/"))[0].1, "new");
    }

    #[test]
    fn zero_max_age_deletes() {
        let mut jar = CookieJar::new();
        jar.store(Cookie::new("uid", "x"), &url("https://t.com/"));
        jar.store(
            Cookie::new("uid", "x").with_max_age(0),
            &url("https://t.com/"),
        );
        assert!(jar.is_empty());
    }

    #[test]
    fn buckets_isolate_unrelated_domains() {
        let mut jar = CookieJar::new();
        for i in 0..50 {
            jar.store(
                Cookie::new("uid", format!("v{i}")),
                &url(&format!("https://site{i}.com/")),
            );
        }
        assert_eq!(jar.len(), 50);
        // A lookup touches only its own bucket.
        assert_eq!(jar.cookies_for(&url("https://site7.com/")).len(), 1);
        assert_eq!(jar.cookies_for(&url("https://unrelated.net/")).len(), 0);
        assert_eq!(jar.all().count(), 50);
    }
}
