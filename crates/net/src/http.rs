//! HTTP message model: methods, status codes, headers, requests, responses.
//!
//! This is the wire-object layer the instrumented browser and the synthetic
//! web server exchange. It mirrors what OpenWPM's `http_requests` /
//! `http_responses` tables record: URL, method, referrer, headers,
//! status, content type and body.

use std::fmt;

use bytes::Bytes;
use serde::{Deserialize, Serialize};

use crate::cookie::Cookie;
use crate::tls::Certificate;
use crate::url::Url;

/// URL scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Scheme {
    /// Plain HTTP.
    Http,
    /// HTTP over TLS.
    Https,
}

impl Scheme {
    /// `true` for HTTPS.
    pub fn is_secure(self) -> bool {
        matches!(self, Scheme::Https)
    }
}

impl fmt::Display for Scheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Scheme::Http => "http",
            Scheme::Https => "https",
        })
    }
}

/// HTTP request method (the subset a page load uses).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Method {
    /// `GET`.
    Get,
    /// `POST`.
    Post,
    /// `HEAD`.
    Head,
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Method::Get => "GET",
            Method::Post => "POST",
            Method::Head => "HEAD",
        })
    }
}

/// HTTP status code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct StatusCode(pub u16);

impl StatusCode {
    /// Ok.
    pub const OK: StatusCode = StatusCode(200);
    /// Found.
    pub const FOUND: StatusCode = StatusCode(302);
    /// Not found.
    pub const NOT_FOUND: StatusCode = StatusCode(404);
    /// Gone.
    pub const GONE: StatusCode = StatusCode(410);
    /// Forbidden.
    pub const FORBIDDEN: StatusCode = StatusCode(403);
    /// Server error.
    pub const SERVER_ERROR: StatusCode = StatusCode(500);
    /// Gateway timeout.
    pub const GATEWAY_TIMEOUT: StatusCode = StatusCode(504);

    /// 2xx.
    pub fn is_success(self) -> bool {
        (200..300).contains(&self.0)
    }

    /// 3xx.
    pub fn is_redirect(self) -> bool {
        (300..400).contains(&self.0)
    }

    /// 4xx or 5xx.
    pub fn is_error(self) -> bool {
        self.0 >= 400
    }
}

impl fmt::Display for StatusCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// An ordered, case-insensitive multimap of HTTP headers.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HeaderMap {
    entries: Vec<(String, String)>,
}

impl HeaderMap {
    /// Empty header map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a header (names are stored lowercase).
    pub fn append(&mut self, name: &str, value: impl Into<String>) {
        self.entries.push((name.to_ascii_lowercase(), value.into()));
    }

    /// First value for `name` (case-insensitive).
    pub fn get(&self, name: &str) -> Option<&str> {
        let lower = name.to_ascii_lowercase();
        self.entries
            .iter()
            .find(|(n, _)| *n == lower)
            .map(|(_, v)| v.as_str())
    }

    /// All values for `name`.
    pub fn get_all<'a>(&'a self, name: &str) -> impl Iterator<Item = &'a str> {
        let lower = name.to_ascii_lowercase();
        self.entries
            .iter()
            .filter(move |(n, _)| *n == lower)
            .map(|(_, v)| v.as_str())
    }

    /// Replaces all values of `name` with a single value.
    pub fn set(&mut self, name: &str, value: impl Into<String>) {
        let lower = name.to_ascii_lowercase();
        self.entries.retain(|(n, _)| *n != lower);
        self.entries.push((lower, value.into()));
    }

    /// All `(name, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.entries.iter().map(|(n, v)| (n.as_str(), v.as_str()))
    }

    /// Number of header entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no headers are present.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// The resource type a request loads, as a browser would classify it
/// (blocklist rules use this for `$script` / `$image` options).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ResourceKind {
    /// Document.
    Document,
    /// Script.
    Script,
    /// Image.
    Image,
    /// Stylesheet.
    Stylesheet,
    /// Frame.
    Frame,
    /// Xhr.
    Xhr,
    /// Beacon.
    Beacon,
    /// Other.
    Other,
}

impl ResourceKind {
    /// Name used by blocklist options (`$script`, `$image`, …).
    pub fn option_name(self) -> &'static str {
        match self {
            ResourceKind::Document => "document",
            ResourceKind::Script => "script",
            ResourceKind::Image => "image",
            ResourceKind::Stylesheet => "stylesheet",
            ResourceKind::Frame => "subdocument",
            ResourceKind::Xhr => "xmlhttprequest",
            ResourceKind::Beacon => "ping",
            ResourceKind::Other => "other",
        }
    }
}

/// An outgoing HTTP request.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Request {
    /// Method.
    pub method: Method,
    /// URL.
    pub url: Url,
    /// Headers.
    pub headers: HeaderMap,
    /// The `Referer` header as a parsed URL, when present.
    pub referrer: Option<Url>,
    /// What kind of resource the browser is loading.
    pub kind: ResourceKind,
}

impl Request {
    /// A plain GET for `url` with resource kind `kind`.
    pub fn get(url: Url, kind: ResourceKind) -> Request {
        Request {
            method: Method::Get,
            url,
            headers: HeaderMap::new(),
            referrer: None,
            kind,
        }
    }

    /// Sets the referrer (both the typed field and the wire header).
    pub fn with_referrer(mut self, referrer: &Url) -> Request {
        self.headers.set("referer", referrer.without_fragment());
        self.referrer = Some(referrer.clone());
        self
    }

    /// Attaches a `Cookie` header built from `pairs`.
    pub fn with_cookie_header(mut self, pairs: &[(String, String)]) -> Request {
        if !pairs.is_empty() {
            let value = pairs
                .iter()
                .map(|(k, v)| format!("{k}={v}"))
                .collect::<Vec<_>>()
                .join("; ");
            self.headers.set("cookie", value);
        }
        self
    }
}

/// An HTTP response.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Response {
    /// Status.
    pub status: StatusCode,
    /// Headers.
    pub headers: HeaderMap,
    /// MIME type (shortcut for the `content-type` header).
    pub content_type: String,
    #[serde(with = "serde_bytes_b64")]
    /// Body.
    pub body: Bytes,
    /// Certificate presented by the server (HTTPS only).
    pub certificate: Option<Certificate>,
}

impl Response {
    /// A 200 response with the given content type and body.
    pub fn ok(content_type: &str, body: impl Into<Bytes>) -> Response {
        let body = body.into();
        let mut headers = HeaderMap::new();
        headers.set("content-type", content_type);
        Response {
            status: StatusCode::OK,
            headers,
            content_type: content_type.to_string(),
            body,
            certificate: None,
        }
    }

    /// A 302 redirect to `location`.
    pub fn redirect(location: &Url) -> Response {
        let mut headers = HeaderMap::new();
        headers.set("location", location.without_fragment());
        Response {
            status: StatusCode::FOUND,
            headers,
            content_type: String::new(),
            body: Bytes::new(),
            certificate: None,
        }
    }

    /// An error response with the given status.
    pub fn error(status: StatusCode) -> Response {
        Response {
            status,
            headers: HeaderMap::new(),
            content_type: "text/html".to_string(),
            body: Bytes::from_static(b"<html><body>error</body></html>"),
            certificate: None,
        }
    }

    /// Appends a `Set-Cookie` header.
    pub fn add_cookie(&mut self, cookie: &Cookie) {
        self.headers.append("set-cookie", cookie.to_set_cookie());
    }

    /// Parses every `Set-Cookie` header into cookies; malformed headers are
    /// skipped (as browsers do).
    pub fn cookies(&self) -> Vec<Cookie> {
        self.headers
            .get_all("set-cookie")
            .filter_map(|v| Cookie::parse_set_cookie(v).ok())
            .collect()
    }

    /// The redirect target, when this is a 3xx with a `Location` header.
    pub fn location(&self) -> Option<&str> {
        if self.status.is_redirect() {
            self.headers.get("location")
        } else {
            None
        }
    }

    /// Body interpreted as UTF-8 text.
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }

    /// Sets the presented certificate (builder style).
    pub fn with_certificate(mut self, cert: Certificate) -> Response {
        self.certificate = Some(cert);
        self
    }
}

/// Serialize `Bytes` as base64 text for the measurement DB.
///
/// Wired through `#[serde(with = "...")]` on `Response::body`; the vendored
/// serde derive keeps that attribute inert, so these helpers are only
/// reachable once a real data format is linked in.
#[allow(dead_code)]
mod serde_bytes_b64 {
    use bytes::Bytes;
    use serde::{Deserialize, Deserializer, Serializer};

    pub fn serialize<S: Serializer>(b: &Bytes, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_str(&crate::codec::base64_encode(b))
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<Bytes, D::Error> {
        let s = String::deserialize(d)?;
        crate::codec::base64_decode(&s)
            .map(Bytes::from)
            .map_err(serde::de::Error::custom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_map_is_case_insensitive_multimap() {
        let mut h = HeaderMap::new();
        h.append("Set-Cookie", "a=1");
        h.append("set-cookie", "b=2");
        assert_eq!(h.get("SET-COOKIE"), Some("a=1"));
        assert_eq!(h.get_all("set-cookie").count(), 2);
        h.set("set-cookie", "c=3");
        assert_eq!(h.get_all("set-cookie").count(), 1);
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn status_classification() {
        assert!(StatusCode::OK.is_success());
        assert!(StatusCode::FOUND.is_redirect());
        assert!(StatusCode::NOT_FOUND.is_error());
        assert!(!StatusCode::OK.is_error());
    }

    #[test]
    fn request_builders() {
        let url = Url::parse("https://site.com/").unwrap();
        let refr = Url::parse("https://origin.com/page").unwrap();
        let req = Request::get(url, ResourceKind::Script)
            .with_referrer(&refr)
            .with_cookie_header(&[("uid".into(), "42".into()), ("s".into(), "x".into())]);
        assert_eq!(req.headers.get("referer"), Some("https://origin.com/page"));
        assert_eq!(req.headers.get("cookie"), Some("uid=42; s=x"));
        assert_eq!(req.referrer.as_ref().unwrap().host().as_str(), "origin.com");
    }

    #[test]
    fn response_roundtrips_cookies() {
        let mut resp = Response::ok("text/html", "<html></html>");
        let c = Cookie::new("uid", "abc123").with_domain("tracker.com");
        resp.add_cookie(&c);
        let parsed = resp.cookies();
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].name, "uid");
        assert_eq!(parsed[0].domain.as_deref(), Some("tracker.com"));
    }

    #[test]
    fn redirect_location() {
        let target = Url::parse("https://sync.partner.com/s?uid=1").unwrap();
        let resp = Response::redirect(&target);
        assert_eq!(resp.location(), Some("https://sync.partner.com/s?uid=1"));
        assert_eq!(Response::ok("text/plain", "x").location(), None);
    }

    #[test]
    fn response_text_and_error_helpers() {
        assert_eq!(Response::ok("text/plain", "hello").text(), "hello");
        let err = Response::error(StatusCode::GATEWAY_TIMEOUT);
        assert!(err.status.is_error());
        assert!(err.cookies().is_empty());
    }
}
