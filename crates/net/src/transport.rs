//! The transport seam between the browser and whatever serves its
//! requests.
//!
//! [`Transport`] is the one interface the measurement pipeline fetches
//! through: the synthetic [`WebServer`] implements it directly (the
//! `DirectTransport`), and two composable decorators ride on top —
//! [`MeteredTransport`] (per-request latency/byte/status counters for the
//! stage report) and [`FaultTransport`] (seeded, deterministic injection
//! of DNS failures, connection resets, stalls, transient 5xx responses
//! and truncated bodies). [`NetProfile`] describes a whole stack as data
//! and [`NetProfile::stack`] assembles it, so crawl plans can carry their
//! network conditions the same way they carry countries and corpora.
//!
//! Determinism rules:
//!
//! * the default profile injects nothing and the stack degenerates to the
//!   direct server call — behavior is byte-identical to no seam at all;
//! * fault decisions are pure functions of `(fault seed, session nonce,
//!   request URL, resource kind, attempt number)` — no wall clock, no
//!   global RNG — so the same seed replays the same faults, and two runs
//!   of a study produce identical results;
//! * meters and retry backoff are *recorded*, never slept on: the
//!   simulated network has no latency to wait out, so the schedule is
//!   bookkeeping for the report, not a delay. Profiles carrying a
//!   [`SimSpec`] upgrade the schedule to *consumed* logical time on a
//!   simulated clock (the `redlight-sim` kernel) — still never a real
//!   sleep.
//!
//! [`WebServer`]: https://docs.rs/redlight-websim

use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use redlight_obs::{Counter, Histogram, Registry, Unit};
use serde::{Deserialize, Serialize};

use crate::geoip::Country;
use crate::http::{Request, Response, StatusCode};

/// Which crawler stack is driving the browser (the OpenWPM crawl obeys the
/// 120 s page timeout; the Selenium crawl in the paper ran separately and
/// reached sites the OpenWPM crawl lost to timeouts).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BrowserKind {
    /// The OpenWPM-style measurement crawler (Firefox 52 profile).
    OpenWpm,
    /// The Selenium-style interaction crawler (Chrome profile).
    Selenium,
}

/// Per-session client context the server sees.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClientContext {
    /// Country.
    pub country: Country,
    /// Client ip.
    pub client_ip: Ipv4Addr,
    /// Browser-session nonce: tracker uids are stable per session.
    pub session: u64,
    /// Browser.
    pub browser: BrowserKind,
}

/// Outcome of a fetch attempt.
#[derive(Debug, Clone)]
#[allow(clippy::large_enum_variant)] // responses dominate; boxing buys nothing on this hot path
pub enum FetchOutcome {
    /// Response.
    Response(Response),
    /// DNS failure / connection refused (unknown host, geo-block,
    /// unresponsive site, HTTPS to an HTTP-only server).
    Unreachable,
    /// The page load exceeded the crawler's timeout.
    Timeout,
}

/// The network boundary: everything the browser sends goes through one of
/// these. Implementations must be deterministic for a fixed `(request,
/// context)` sequence — the whole study is a pure function of its seeds.
pub trait Transport {
    /// Performs one request.
    fn fetch(&self, req: &Request, ctx: &ClientContext) -> FetchOutcome;

    /// DNS-ish reachability: does `host` resolve to anything at all?
    /// (Independent of per-country blocking and scheme support.)
    fn resolvable(&self, host: &str) -> bool;
}

impl<T: Transport + ?Sized> Transport for &T {
    fn fetch(&self, req: &Request, ctx: &ClientContext) -> FetchOutcome {
        (**self).fetch(req, ctx)
    }
    fn resolvable(&self, host: &str) -> bool {
        (**self).resolvable(host)
    }
}

impl<T: Transport + ?Sized> Transport for Box<T> {
    fn fetch(&self, req: &Request, ctx: &ClientContext) -> FetchOutcome {
        (**self).fetch(req, ctx)
    }
    fn resolvable(&self, host: &str) -> bool {
        (**self).resolvable(host)
    }
}

// ---------------------------------------------------------------------------
// Metering
// ---------------------------------------------------------------------------

/// A point-in-time snapshot of one transport stack's counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Requests issued.
    pub requests: u64,
    /// Requests answered with a response (any status).
    pub responses: u64,
    /// Requests that died with a DNS failure / connection reset.
    pub unreachable: u64,
    /// Requests that exceeded the crawler timeout.
    pub timeouts: u64,
    /// Responses with a 5xx status.
    pub server_errors: u64,
    /// Responses that were redirects.
    pub redirects: u64,
    /// Response body bytes delivered.
    pub body_bytes: u64,
    /// Wall time spent inside the wrapped transport.
    pub total_latency: Duration,
}

impl TransportStats {
    /// Mean per-request latency, or zero when nothing was fetched.
    pub fn mean_latency(&self) -> Duration {
        if self.requests == 0 {
            Duration::ZERO
        } else {
            self.total_latency / self.requests as u32
        }
    }

    /// Folds another snapshot into this one (for whole-study totals).
    pub fn merge(&mut self, other: &TransportStats) {
        self.requests += other.requests;
        self.responses += other.responses;
        self.unreachable += other.unreachable;
        self.timeouts += other.timeouts;
        self.server_errors += other.server_errors;
        self.redirects += other.redirects;
        self.body_bytes += other.body_bytes;
        self.total_latency += other.total_latency;
    }
}

/// A shared handle onto a [`MeteredTransport`]'s counters: the crawler
/// keeps one after boxing the stack into the browser, then snapshots it
/// when the crawl finishes. The cells are `obs` metric handles — a plain
/// [`TransportMeter::new`] meter counts into private cells exactly as
/// before, while [`TransportMeter::in_registry`] shares its cells with a
/// [`Registry`] so the same counts surface in metrics exports. Either way
/// [`TransportMeter::snapshot`] renders the familiar [`TransportStats`]
/// view.
#[derive(Clone, Default)]
pub struct TransportMeter {
    requests: Counter,
    responses: Counter,
    unreachable: Counter,
    timeouts: Counter,
    server_errors: Counter,
    redirects: Counter,
    body_bytes: Counter,
    latency_nanos: Counter,
    body_hist: Histogram,
}

impl TransportMeter {
    /// Fresh meter with all counters at zero (private, unregistered cells).
    pub fn new() -> Self {
        Self::default()
    }

    /// A meter whose cells are the registry's `transport.*` metrics:
    /// `transport.requests`, `transport.responses`, `transport.unreachable`,
    /// `transport.timeouts`, `transport.server_errors`,
    /// `transport.redirects`, `transport.body_bytes`,
    /// `transport.latency_ns` plus the `transport.body_bytes_hist`
    /// size histogram.
    pub fn in_registry(registry: &Registry) -> Self {
        TransportMeter {
            requests: registry.counter("transport.requests"),
            responses: registry.counter("transport.responses"),
            unreachable: registry.counter("transport.unreachable"),
            timeouts: registry.counter("transport.timeouts"),
            server_errors: registry.counter("transport.server_errors"),
            redirects: registry.counter("transport.redirects"),
            body_bytes: registry.counter_with_unit("transport.body_bytes", Unit::Bytes),
            latency_nanos: registry.counter_with_unit("transport.latency_ns", Unit::Nanos),
            body_hist: registry.histogram_with_unit("transport.body_bytes_hist", Unit::Bytes),
        }
    }

    /// Reads the counters.
    pub fn snapshot(&self) -> TransportStats {
        TransportStats {
            requests: self.requests.get(),
            responses: self.responses.get(),
            unreachable: self.unreachable.get(),
            timeouts: self.timeouts.get(),
            server_errors: self.server_errors.get(),
            redirects: self.redirects.get(),
            body_bytes: self.body_bytes.get(),
            total_latency: Duration::from_nanos(self.latency_nanos.get()),
        }
    }
}

impl std::fmt::Debug for TransportMeter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TransportMeter")
            .field("stats", &self.snapshot())
            .finish()
    }
}

/// Counts every request flowing through the wrapped transport. Purely
/// observational: outcomes pass through untouched, so a metered stack is
/// behavior-identical to an unmetered one.
pub struct MeteredTransport<T> {
    inner: T,
    meter: TransportMeter,
}

impl<T: Transport> MeteredTransport<T> {
    /// Wraps `inner`, recording into `meter`.
    pub fn new(inner: T, meter: TransportMeter) -> Self {
        MeteredTransport { inner, meter }
    }
}

impl<T: Transport> Transport for MeteredTransport<T> {
    fn fetch(&self, req: &Request, ctx: &ClientContext) -> FetchOutcome {
        let m = &self.meter;
        m.requests.inc();
        let start = Instant::now();
        let outcome = self.inner.fetch(req, ctx);
        m.latency_nanos.add(start.elapsed().as_nanos() as u64);
        match &outcome {
            FetchOutcome::Response(resp) => {
                m.responses.inc();
                m.body_bytes.add(resp.body.len() as u64);
                m.body_hist.record(resp.body.len() as u64);
                if resp.status.is_redirect() {
                    m.redirects.inc();
                }
                if resp.status.0 >= 500 {
                    m.server_errors.inc();
                }
            }
            FetchOutcome::Unreachable => {
                m.unreachable.inc();
            }
            FetchOutcome::Timeout => {
                m.timeouts.inc();
            }
        }
        outcome
    }

    fn resolvable(&self, host: &str) -> bool {
        self.inner.resolvable(host)
    }
}

// ---------------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------------

/// The fault classes the injector can produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Name never resolves / SYN never answered → `Unreachable`.
    Dns,
    /// Connection reset mid-handshake → `Unreachable`.
    Reset,
    /// The response arrives slower than the crawler budget → `Timeout`.
    Stall,
    /// The origin answers `503 Service Unavailable`.
    ServerError,
    /// The body is cut off halfway through the transfer.
    Truncate,
}

/// Per-mille fault rates for a [`FaultTransport`]. Rates are cumulative —
/// their sum must stay ≤ 1000 — and each request draws once.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// ‰ of requests whose host fails to resolve.
    pub dns_pm: u16,
    /// ‰ of requests reset mid-connection.
    pub reset_pm: u16,
    /// ‰ of requests that stall past the crawler timeout.
    pub stall_pm: u16,
    /// ‰ of requests answered with a transient 503.
    pub server_error_pm: u16,
    /// ‰ of requests whose body is truncated to half its length.
    pub truncate_pm: u16,
    /// Faults on a given request clear after at most this many attempts
    /// (each faulted request draws its own persistence in
    /// `1..=transient_attempts`); `0` makes every fault permanent.
    pub transient_attempts: u32,
}

impl FaultSpec {
    /// The "flaky" preset: ~10% of requests fault, everything transient —
    /// a crawl with a retry budget of 3 recovers nearly all of it.
    pub fn flaky() -> Self {
        FaultSpec {
            dns_pm: 15,
            reset_pm: 20,
            stall_pm: 25,
            server_error_pm: 30,
            truncate_pm: 10,
            transient_attempts: 2,
        }
    }

    /// The "lossy" preset: ~24% of requests fault and faults persist
    /// longer, so even retried crawls visibly lose sites.
    pub fn lossy() -> Self {
        FaultSpec {
            dns_pm: 40,
            reset_pm: 50,
            stall_pm: 60,
            server_error_pm: 60,
            truncate_pm: 30,
            transient_attempts: 3,
        }
    }

    /// Total fault probability in per-mille.
    pub fn total_pm(&self) -> u16 {
        self.dns_pm + self.reset_pm + self.stall_pm + self.server_error_pm + self.truncate_pm
    }

    /// Maps a 0..1000 draw onto a fault, `None` for the healthy majority.
    /// Public so simulated workloads (the traffic generator) can draw from
    /// the same cumulative fault distribution a [`FaultTransport`] uses.
    pub fn classify(&self, draw: u16) -> Option<Fault> {
        debug_assert!(self.total_pm() <= 1000, "fault rates exceed 100%");
        let mut edge = self.dns_pm;
        if draw < edge {
            return Some(Fault::Dns);
        }
        edge += self.reset_pm;
        if draw < edge {
            return Some(Fault::Reset);
        }
        edge += self.stall_pm;
        if draw < edge {
            return Some(Fault::Stall);
        }
        edge += self.server_error_pm;
        if draw < edge {
            return Some(Fault::ServerError);
        }
        edge += self.truncate_pm;
        if draw < edge {
            return Some(Fault::Truncate);
        }
        None
    }
}

/// Deterministic fault injector.
///
/// Whether a request faults — and for how many attempts the fault persists
/// — is a pure hash of `(fault seed, session nonce, request URL, resource
/// kind)`; the attempt counter lives in the transport so a retried fetch
/// of the same URL eventually clears a transient fault. One instance
/// serves one crawl session, and visits within a crawl are sequential, so
/// the injected sequence never depends on thread interleaving.
pub struct FaultTransport<T> {
    inner: T,
    spec: FaultSpec,
    seed: u64,
    attempts: Mutex<HashMap<u64, u32>>,
    injected: Counter,
}

impl<T: Transport> FaultTransport<T> {
    /// Wraps `inner` with the given fault plan.
    pub fn new(inner: T, spec: FaultSpec, seed: u64) -> Self {
        FaultTransport {
            inner,
            spec,
            seed,
            attempts: Mutex::new(HashMap::new()),
            injected: Counter::new(),
        }
    }

    /// Counts injected faults into `counter` (e.g. a registry's
    /// `transport.faults_injected`) instead of a private cell.
    pub fn with_injected_counter(mut self, counter: Counter) -> Self {
        self.injected = counter;
        self
    }

    /// How many faults have been injected so far.
    pub fn injected(&self) -> u64 {
        self.injected.get()
    }

    /// The per-request decision key.
    fn key(&self, req: &Request, ctx: &ClientContext) -> u64 {
        let url_hash = fnv1a(req.url.without_fragment().as_bytes());
        mix(self.seed ^ ctx.session, url_hash ^ (req.kind as u64))
    }

    /// The fault drawn for this key, if any.
    fn fault_for(&self, key: u64) -> Option<Fault> {
        let draw = (mix(key, 0x9e37_79b9) % 1000) as u16;
        self.spec.classify(draw)
    }

    /// How many attempts the fault on `key` persists for (`u32::MAX` when
    /// faults are configured permanent).
    fn persistence(&self, key: u64) -> u32 {
        if self.spec.transient_attempts == 0 {
            u32::MAX
        } else {
            1 + (mix(key, 0x85eb_ca6b) % self.spec.transient_attempts as u64) as u32
        }
    }
}

impl<T: Transport> Transport for FaultTransport<T> {
    fn fetch(&self, req: &Request, ctx: &ClientContext) -> FetchOutcome {
        let key = self.key(req, ctx);
        if let Some(fault) = self.fault_for(key) {
            let attempt = {
                let mut attempts = self.attempts.lock().expect("fault map");
                let n = attempts.entry(key).or_insert(0);
                *n += 1;
                *n
            };
            if attempt <= self.persistence(key) {
                self.injected.inc();
                return match fault {
                    Fault::Dns | Fault::Reset => FetchOutcome::Unreachable,
                    Fault::Stall => FetchOutcome::Timeout,
                    Fault::ServerError => FetchOutcome::Response(Response::error(StatusCode(503))),
                    Fault::Truncate => match self.inner.fetch(req, ctx) {
                        FetchOutcome::Response(mut resp) => {
                            let keep = resp.body.len() / 2;
                            resp.body = bytes::Bytes::copy_from_slice(&resp.body[..keep]);
                            FetchOutcome::Response(resp)
                        }
                        other => other,
                    },
                };
            }
        }
        self.inner.fetch(req, ctx)
    }

    fn resolvable(&self, host: &str) -> bool {
        self.inner.resolvable(host)
    }
}

// ---------------------------------------------------------------------------
// Retry policy
// ---------------------------------------------------------------------------

/// Bounded visit retries with a deterministic backoff schedule.
///
/// The backoff is never slept on a real wire. On legacy runs (profiles
/// with `sim: None`) it is purely *recorded* — the synthetic web answers
/// instantly, so the schedule exists to be reported and to stay stable
/// across runs. Under a [`SimSpec`] profile the same schedule is *charged*
/// to a logical clock between attempts, and the crawler asserts the time
/// consumed equals [`RetryPolicy::total_backoff`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total visit attempts (1 = no retries).
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub base_backoff: Duration,
    /// Multiplier applied per further retry.
    pub backoff_factor: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::none()
    }
}

impl RetryPolicy {
    /// Single attempt, no retries — the paper's crawls.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_backoff: Duration::ZERO,
            backoff_factor: 1,
        }
    }

    /// `max_attempts` total tries with exponential backoff from `base`.
    pub fn retries(max_attempts: u32, base: Duration, factor: u32) -> Self {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            base_backoff: base,
            backoff_factor: factor.max(1),
        }
    }

    /// The (simulated) backoff before attempt `n` (1-based; attempt 1 has
    /// none).
    pub fn backoff_before(&self, attempt: u32) -> Duration {
        if attempt <= 1 {
            return Duration::ZERO;
        }
        let mut d = self.base_backoff;
        for _ in 2..attempt {
            d *= self.backoff_factor;
        }
        d
    }

    /// Total backoff a visit that spent `attempts` attempts schedules: the
    /// sum of [`backoff_before`](Self::backoff_before) over every attempt.
    ///
    /// Under a simulated clock ([`SimSpec`]) the crawler *consumes* exactly
    /// this much logical time between retries and asserts the equality, so
    /// the recorded schedule can never silently diverge from the time the
    /// clock actually advanced. On legacy non-sim runs (`sim: None`) the
    /// schedule stays recorded-only: there is no clock to consume it.
    pub fn total_backoff(&self, attempts: u32) -> Duration {
        (1..=attempts).map(|a| self.backoff_before(a)).sum()
    }
}

// ---------------------------------------------------------------------------
// Simulated time
// ---------------------------------------------------------------------------

/// Parameters of the simulated-time service model, as data.
///
/// When a [`NetProfile`] carries a `SimSpec`, the crawl wraps its transport
/// stack in the `redlight-sim` crate's `SimTransport`: every fetch charges
/// a modeled service time to a logical clock — a base cost plus a per-KiB
/// transfer cost with deterministic ±jitter — unreachable hosts charge the
/// connect-fail cost, stalls charge the full timeout budget, and retry
/// backoff advances the same clock. The spec itself is plain data so `net`
/// needs no dependency on the kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimSpec {
    /// Base per-request service time (connection + server think time).
    pub base_service: Duration,
    /// Added transfer time per KiB of response body.
    pub per_kbyte: Duration,
    /// Time burned learning that a host is unreachable.
    pub connect_fail: Duration,
    /// Logical time a stalled (timed-out) request holds the client.
    pub timeout: Duration,
    /// ± jitter on the service time, in per-mille of its value.
    pub jitter_pm: u16,
    /// Concurrent connections one host serves before requests queue FIFO.
    pub conn_limit: u32,
    /// Seed of the deterministic jitter draws.
    pub seed: u64,
}

impl Default for SimSpec {
    fn default() -> Self {
        SimSpec {
            base_service: Duration::from_millis(2),
            per_kbyte: Duration::from_micros(20),
            connect_fail: Duration::from_millis(1),
            timeout: Duration::from_secs(10),
            jitter_pm: 100,
            conn_limit: 8,
            seed: 0,
        }
    }
}

/// Service-level objectives declared on a [`NetProfile`], as plain data.
///
/// Consumers (the traffic simulator's timeline telemetry) evaluate the
/// objectives per logical-time window: the latency objective compares the
/// window's request p99 against `latency_p99_us`, and the error objective
/// computes a burn rate — observed failure fraction over the allowed
/// `error_pm` — across a short and a long lookback, alerting only when
/// **both** burn (the classic multi-window page rule, which ignores
/// one-window blips and long-faded incidents alike).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SloSpec {
    /// Latency objective: windowed request p99 must stay at or under this
    /// many (logical) microseconds.
    pub latency_p99_us: u64,
    /// Error budget: allowed failed requests per mille.
    pub error_pm: u32,
    /// Short burn lookback, in windows.
    pub short_windows: usize,
    /// Long burn lookback, in windows.
    pub long_windows: usize,
    /// Burn-rate alert threshold, ×100 (200 = burning budget at 2×).
    pub burn_threshold_x100: u64,
}

impl Default for SloSpec {
    fn default() -> Self {
        SloSpec {
            latency_p99_us: 50_000,
            error_pm: 10,
            short_windows: 5,
            long_windows: 30,
            burn_threshold_x100: 200,
        }
    }
}

impl SloSpec {
    /// The equivalent `obs`-layer policy, for feeding an
    /// [`SloTracker`](redlight_obs::SloTracker).
    pub fn policy(&self) -> redlight_obs::SloPolicy {
        redlight_obs::SloPolicy {
            latency_p99_us: self.latency_p99_us,
            error_pm: self.error_pm,
            short_windows: self.short_windows,
            long_windows: self.long_windows,
            burn_threshold_x100: self.burn_threshold_x100,
        }
    }
}

// ---------------------------------------------------------------------------
// Profiles
// ---------------------------------------------------------------------------

/// A whole transport stack plus crawl retry behavior, as data. Carried on
/// crawl specs so a plan fully describes the network it runs over.
#[derive(Debug, Clone, PartialEq)]
pub struct NetProfile {
    /// Fault plan, `None` for a healthy network.
    pub faults: Option<FaultSpec>,
    /// Seed for the fault injector (independent of the world seed so the
    /// same web can be crawled under different weather).
    pub fault_seed: u64,
    /// Wrap the stack in a [`MeteredTransport`] and report its counters.
    pub metered: bool,
    /// Visit retry policy.
    pub retry: RetryPolicy,
    /// Simulated-time service model; `None` runs the legacy call-and-return
    /// pipeline where backoff stays recorded-only.
    pub sim: Option<SimSpec>,
    /// Service-level objectives, `None` when the run declares no SLOs
    /// (timeline consumers then fall back to [`SloSpec::default`]).
    pub slo: Option<SloSpec>,
}

impl Default for NetProfile {
    fn default() -> Self {
        NetProfile {
            faults: None,
            fault_seed: 0,
            metered: true,
            retry: RetryPolicy::none(),
            sim: None,
            slo: None,
        }
    }
}

impl NetProfile {
    /// The profile names [`NetProfile::named`] accepts.
    pub const NAMES: [&'static str; 5] = ["default", "direct", "flaky", "lossy", "sim"];

    /// Completely bare stack: no faults, no meter — the pre-seam pipeline.
    pub fn direct() -> Self {
        NetProfile {
            metered: false,
            ..NetProfile::default()
        }
    }

    /// Looks up a named profile (`default`, `direct`, `flaky`, `lossy`,
    /// `sim`).
    pub fn named(name: &str) -> Option<Self> {
        match name {
            "default" => Some(NetProfile::default()),
            "direct" => Some(NetProfile::direct()),
            "flaky" => Some(NetProfile {
                faults: Some(FaultSpec::flaky()),
                fault_seed: 1,
                retry: RetryPolicy::retries(3, Duration::from_millis(250), 4),
                slo: Some(SloSpec::default()),
                ..NetProfile::default()
            }),
            "lossy" => Some(NetProfile {
                faults: Some(FaultSpec::lossy()),
                fault_seed: 1,
                retry: RetryPolicy::retries(4, Duration::from_millis(250), 4),
                slo: Some(SloSpec::default()),
                ..NetProfile::default()
            }),
            // The default healthy network under a simulated clock: outcomes
            // are byte-identical to `default`, but every fetch and every
            // backoff advances logical time.
            "sim" => Some(NetProfile::default().with_sim(SimSpec::default())),
            _ => None,
        }
    }

    /// Replaces the fault seed (no-op for fault-free profiles' behavior).
    pub fn with_fault_seed(mut self, seed: u64) -> Self {
        self.fault_seed = seed;
        self
    }

    /// Runs the profile under a simulated clock with the given service
    /// model. Outcomes are unchanged; only time accounting differs.
    pub fn with_sim(mut self, spec: SimSpec) -> Self {
        self.sim = Some(spec);
        self
    }

    /// Assembles the decorator stack over `inner`: faults first (closest
    /// to the wire), then the meter, so the meter observes what the
    /// browser observes.
    pub fn stack<'a, T: Transport + 'a>(
        &self,
        inner: T,
        meter: &TransportMeter,
    ) -> Box<dyn Transport + 'a> {
        match (self.faults, self.metered) {
            (Some(spec), true) => Box::new(MeteredTransport::new(
                FaultTransport::new(inner, spec, self.fault_seed),
                meter.clone(),
            )),
            (Some(spec), false) => Box::new(FaultTransport::new(inner, spec, self.fault_seed)),
            (None, true) => Box::new(MeteredTransport::new(inner, meter.clone())),
            (None, false) => Box::new(inner),
        }
    }

    /// [`NetProfile::stack`] with registered telemetry: the meter should
    /// come from [`TransportMeter::in_registry`], and injected faults
    /// additionally publish the registry's `transport.faults_injected`
    /// counter. Stack shape and behavior are identical to
    /// [`NetProfile::stack`].
    pub fn stack_in<'a, T: Transport + 'a>(
        &self,
        inner: T,
        meter: &TransportMeter,
        registry: &Registry,
    ) -> Box<dyn Transport + 'a> {
        match (self.faults, self.metered) {
            (Some(spec), true) => Box::new(MeteredTransport::new(
                FaultTransport::new(inner, spec, self.fault_seed)
                    .with_injected_counter(registry.counter("transport.faults_injected")),
                meter.clone(),
            )),
            (Some(spec), false) => Box::new(
                FaultTransport::new(inner, spec, self.fault_seed)
                    .with_injected_counter(registry.counter("transport.faults_injected")),
            ),
            (None, true) => Box::new(MeteredTransport::new(inner, meter.clone())),
            (None, false) => Box::new(inner),
        }
    }
}

// ---------------------------------------------------------------------------
// Hashing (splitmix64 finalizer + FNV-1a, local so the seam has no deps)
// ---------------------------------------------------------------------------

/// splitmix64-style mixer: uniform, seedable, and stable across platforms.
fn mix(a: u64, b: u64) -> u64 {
    let mut z = a ^ b.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// FNV-1a over bytes.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::ResourceKind;
    use crate::url::Url;

    /// A transport that always answers 200 with a fixed body.
    struct Always;

    impl Transport for Always {
        fn fetch(&self, _req: &Request, _ctx: &ClientContext) -> FetchOutcome {
            FetchOutcome::Response(Response::ok("text/html", "<html>0123456789</html>"))
        }
        fn resolvable(&self, _host: &str) -> bool {
            true
        }
    }

    fn ctx() -> ClientContext {
        ClientContext {
            country: Country::Spain,
            client_ip: Ipv4Addr::new(203, 0, 113, 9),
            session: 42,
            browser: BrowserKind::OpenWpm,
        }
    }

    fn req(url: &str) -> Request {
        Request::get(Url::parse(url).unwrap(), ResourceKind::Document)
    }

    #[test]
    fn meter_counts_outcomes_and_bytes() {
        let meter = TransportMeter::new();
        let t = MeteredTransport::new(Always, meter.clone());
        for i in 0..5 {
            t.fetch(&req(&format!("https://a{i}.example/")), &ctx());
        }
        let stats = meter.snapshot();
        assert_eq!(stats.requests, 5);
        assert_eq!(stats.responses, 5);
        assert_eq!(stats.unreachable, 0);
        assert_eq!(stats.body_bytes, 5 * 23);
        assert!(stats.total_latency >= stats.mean_latency());
    }

    #[test]
    fn fault_decisions_replay_exactly() {
        let spec = FaultSpec::lossy();
        let urls: Vec<String> = (0..400).map(|i| format!("https://s{i}.example/")).collect();
        let run = |seed: u64| -> Vec<bool> {
            let t = FaultTransport::new(Always, spec, seed);
            urls.iter()
                .map(|u| matches!(t.fetch(&req(u), &ctx()), FetchOutcome::Response(r) if r.status.is_success()))
                .collect()
        };
        let a = run(7);
        let b = run(7);
        assert_eq!(a, b, "same seed must replay the same faults");
        let c = run(8);
        assert_ne!(a, c, "a different seed must fault differently");
        // Sanity on the rate: ~24% of 400 requests should fault.
        let faulted = a.iter().filter(|ok| !**ok).count();
        assert!((40..200).contains(&faulted), "faulted {faulted}/400");
    }

    #[test]
    fn transient_faults_clear_within_budget() {
        let spec = FaultSpec {
            dns_pm: 1000,
            reset_pm: 0,
            stall_pm: 0,
            server_error_pm: 0,
            truncate_pm: 0,
            transient_attempts: 2,
        };
        let t = FaultTransport::new(Always, spec, 3);
        let r = req("https://flappy.example/");
        let mut outcomes = Vec::new();
        for _ in 0..4 {
            outcomes.push(matches!(t.fetch(&r, &ctx()), FetchOutcome::Response(_)));
        }
        // First 1–2 attempts fault, everything after succeeds forever.
        assert!(!outcomes[0]);
        assert!(outcomes[2] && outcomes[3]);
        let first_ok = outcomes.iter().position(|ok| *ok).unwrap();
        assert!(first_ok <= 2);
    }

    #[test]
    fn permanent_faults_never_clear() {
        let spec = FaultSpec {
            dns_pm: 1000,
            reset_pm: 0,
            stall_pm: 0,
            server_error_pm: 0,
            truncate_pm: 0,
            transient_attempts: 0,
        };
        let t = FaultTransport::new(Always, spec, 3);
        let r = req("https://gone.example/");
        for _ in 0..6 {
            assert!(matches!(t.fetch(&r, &ctx()), FetchOutcome::Unreachable));
        }
        assert_eq!(t.injected(), 6);
    }

    #[test]
    fn truncation_halves_bodies() {
        let spec = FaultSpec {
            dns_pm: 0,
            reset_pm: 0,
            stall_pm: 0,
            server_error_pm: 0,
            truncate_pm: 1000,
            transient_attempts: 0,
        };
        let t = FaultTransport::new(Always, spec, 1);
        let FetchOutcome::Response(resp) = t.fetch(&req("https://cut.example/"), &ctx()) else {
            panic!("truncation still responds");
        };
        assert_eq!(resp.body.len(), 23 / 2);
    }

    #[test]
    fn default_profile_stack_is_passthrough() {
        let meter = TransportMeter::new();
        let stack = NetProfile::default().stack(Always, &meter);
        let out = stack.fetch(&req("https://ok.example/"), &ctx());
        assert!(matches!(out, FetchOutcome::Response(r) if r.status.is_success()));
        assert!(stack.resolvable("ok.example"));
        assert_eq!(meter.snapshot().requests, 1);
        // The bare profile skips even the meter.
        let bare_meter = TransportMeter::new();
        let bare = NetProfile::direct().stack(Always, &bare_meter);
        bare.fetch(&req("https://ok.example/"), &ctx());
        assert_eq!(bare_meter.snapshot().requests, 0);
    }

    #[test]
    fn named_profiles_resolve() {
        for name in NetProfile::NAMES {
            assert!(NetProfile::named(name).is_some(), "{name} must resolve");
        }
        assert!(NetProfile::named("underwater").is_none());
        assert!(NetProfile::named("flaky").unwrap().faults.is_some());
        assert_eq!(NetProfile::named("default").unwrap(), NetProfile::default());
    }

    #[test]
    fn backoff_schedule_is_exponential_and_bounded() {
        let p = RetryPolicy::retries(4, Duration::from_millis(100), 3);
        assert_eq!(p.backoff_before(1), Duration::ZERO);
        assert_eq!(p.backoff_before(2), Duration::from_millis(100));
        assert_eq!(p.backoff_before(3), Duration::from_millis(300));
        assert_eq!(p.backoff_before(4), Duration::from_millis(900));
        assert_eq!(RetryPolicy::none().max_attempts, 1);
    }

    #[test]
    fn total_backoff_sums_the_schedule() {
        let p = RetryPolicy::retries(4, Duration::from_millis(100), 3);
        assert_eq!(p.total_backoff(0), Duration::ZERO);
        assert_eq!(p.total_backoff(1), Duration::ZERO);
        assert_eq!(p.total_backoff(2), Duration::from_millis(100));
        assert_eq!(p.total_backoff(3), Duration::from_millis(400));
        assert_eq!(p.total_backoff(4), Duration::from_millis(1300));
        // The sum is exactly the per-attempt schedule, term by term.
        let by_terms: Duration = (1..=4).map(|a| p.backoff_before(a)).sum();
        assert_eq!(p.total_backoff(4), by_terms);
    }

    #[test]
    fn sim_profile_only_changes_time_accounting() {
        let sim = NetProfile::named("sim").unwrap();
        assert!(sim.sim.is_some());
        // Same stack shape as the default profile: metered, fault-free.
        assert!(sim.faults.is_none());
        assert!(sim.metered);
        assert_eq!(sim.retry, RetryPolicy::none());
        assert!(NetProfile::default().sim.is_none());
    }
}
