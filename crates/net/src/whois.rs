//! WHOIS registration records.
//!
//! The paper reports that reliable organization-level information could not
//! be found for 96 % of pornographic websites — mostly because WHOIS records
//! are privacy-protected. The model captures exactly that: a registrant that
//! is either a real organization or a redaction placeholder.

use serde::{Deserialize, Serialize};

/// The registrant identity exposed by a WHOIS lookup.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Registrant {
    /// A usable organization name.
    Organization(String),
    /// Privacy-proxy redaction ("REDACTED FOR PRIVACY", WhoisGuard, …).
    Redacted,
    /// Only a postal address, no company name (the paper observes this on
    /// many sites' imprint pages too).
    AddressOnly(String),
}

/// A WHOIS record for a registrable domain.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WhoisRecord {
    /// Domain.
    pub domain: String,
    /// Registrant.
    pub registrant: Registrant,
    /// Registrar.
    pub registrar: String,
    /// Registration year (coarse; enough for longitudinal reasoning).
    pub created_year: u16,
}

impl WhoisRecord {
    /// The organization name when the record is usable for attribution.
    pub fn organization(&self) -> Option<&str> {
        match &self.registrant {
            Registrant::Organization(o) => Some(o),
            _ => None,
        }
    }
}

/// An in-memory WHOIS database.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct WhoisDb {
    records: std::collections::HashMap<String, WhoisRecord>,
}

impl WhoisDb {
    /// Empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a record, keyed by lowercase domain.
    pub fn insert(&mut self, record: WhoisRecord) {
        self.records
            .insert(record.domain.to_ascii_lowercase(), record);
    }

    /// Looks up the record for `domain`.
    pub fn lookup(&self, domain: &str) -> Option<&WhoisRecord> {
        self.records.get(&domain.to_ascii_lowercase())
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn organization_extraction() {
        let rec = WhoisRecord {
            domain: "evilangel.com".into(),
            registrant: Registrant::Organization("Gamma Entertainment".into()),
            registrar: "ExampleRegistrar".into(),
            created_year: 2003,
        };
        assert_eq!(rec.organization(), Some("Gamma Entertainment"));

        let redacted = WhoisRecord {
            domain: "shady.party".into(),
            registrant: Registrant::Redacted,
            registrar: "PrivacyRegistrar".into(),
            created_year: 2017,
        };
        assert_eq!(redacted.organization(), None);

        let addr = WhoisRecord {
            domain: "postal.com".into(),
            registrant: Registrant::AddressOnly("PO Box 1, Limassol".into()),
            registrar: "R".into(),
            created_year: 2010,
        };
        assert_eq!(addr.organization(), None);
    }

    #[test]
    fn db_lookup_is_case_insensitive() {
        let mut db = WhoisDb::new();
        db.insert(WhoisRecord {
            domain: "Pornhub.COM".into(),
            registrant: Registrant::Organization("MindGeek".into()),
            registrar: "R".into(),
            created_year: 2007,
        });
        assert!(db.lookup("pornhub.com").is_some());
        assert!(db.lookup("missing.com").is_none());
    }
}
