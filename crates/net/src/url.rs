//! URL parsing and manipulation (the subset browsers and trackers use).
//!
//! Supports `http`/`https` absolute URLs, scheme-relative (`//host/…`) and
//! path-relative resolution against a base, query-parameter access and
//! mutation (needed to build and detect cookie-synchronization redirects).

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::codec::{percent_decode, percent_encode};
use crate::error::NetError;
use crate::host::Fqdn;
use crate::http::Scheme;

/// A parsed absolute URL.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Url {
    scheme: Scheme,
    host: Fqdn,
    port: Option<u16>,
    path: String,
    query: Option<String>,
    fragment: Option<String>,
}

impl Url {
    /// Parses an absolute `http(s)` URL.
    pub fn parse(input: &str) -> Result<Url, NetError> {
        let (scheme, rest) = if let Some(r) = input.strip_prefix("https://") {
            (Scheme::Https, r)
        } else if let Some(r) = input.strip_prefix("http://") {
            (Scheme::Http, r)
        } else {
            return Err(NetError::InvalidUrl(input.to_string()));
        };

        let (authority, after) = match rest.find(['/', '?', '#']) {
            Some(idx) => (&rest[..idx], &rest[idx..]),
            None => (rest, ""),
        };
        if authority.is_empty() {
            return Err(NetError::InvalidUrl(input.to_string()));
        }
        // No userinfo support; trackers don't use it and browsers deprecate it.
        let (host_str, port) = match authority.rsplit_once(':') {
            Some((h, p)) if p.chars().all(|c| c.is_ascii_digit()) && !p.is_empty() => {
                let port: u16 = p
                    .parse()
                    .map_err(|_| NetError::InvalidUrl(input.to_string()))?;
                (h, Some(port))
            }
            _ => (authority, None),
        };
        let host = Fqdn::parse(host_str)?;

        let (before_frag, fragment) = match after.split_once('#') {
            Some((b, f)) => (b, Some(f.to_string())),
            None => (after, None),
        };
        let (path_raw, query) = match before_frag.split_once('?') {
            Some((p, q)) => (p, Some(q.to_string())),
            None => (before_frag, None),
        };
        let path = if path_raw.is_empty() {
            "/".to_string()
        } else {
            path_raw.to_string()
        };

        Ok(Url {
            scheme,
            host,
            port,
            path,
            query,
            fragment,
        })
    }

    /// Builds a URL from parts; `path` must start with `/`.
    pub fn from_parts(scheme: Scheme, host: Fqdn, path: &str, query: Option<&str>) -> Url {
        debug_assert!(path.starts_with('/'));
        Url {
            scheme,
            host,
            port: None,
            path: path.to_string(),
            query: query.map(str::to_string),
            fragment: None,
        }
    }

    /// Resolves `reference` against `self`: absolute URLs pass through,
    /// `//host/path` inherits the scheme, `/path` inherits scheme+host, and
    /// other strings are treated as relative paths.
    pub fn join(&self, reference: &str) -> Result<Url, NetError> {
        if reference.starts_with("http://") || reference.starts_with("https://") {
            return Url::parse(reference);
        }
        if let Some(rest) = reference.strip_prefix("//") {
            return Url::parse(&format!("{}://{}", self.scheme, rest));
        }
        if reference.starts_with('/') {
            return Url::parse(&format!(
                "{}://{}{}",
                self.scheme,
                self.authority(),
                reference
            ));
        }
        // Relative path: replace everything after the final '/'.
        let base = match self.path.rfind('/') {
            Some(idx) => &self.path[..=idx],
            None => "/",
        };
        Url::parse(&format!(
            "{}://{}{}{}",
            self.scheme,
            self.authority(),
            base,
            reference
        ))
    }

    /// The authority (`host` or `host:port`) as a borrowing [`fmt::Display`]
    /// view — no `String` is built until the caller actually formats it,
    /// so hot paths can compare or hash without allocating.
    pub fn authority(&self) -> Authority<'_> {
        Authority {
            host: &self.host,
            port: self.port,
        }
    }

    /// The URL scheme.
    pub fn scheme(&self) -> Scheme {
        self.scheme
    }

    /// Returns a copy with the scheme replaced (used for HTTPS→HTTP
    /// downgrade probing).
    pub fn with_scheme(&self, scheme: Scheme) -> Url {
        let mut u = self.clone();
        u.scheme = scheme;
        u
    }

    /// The host.
    pub fn host(&self) -> &Fqdn {
        &self.host
    }

    /// The path (always begins with `/`).
    pub fn path(&self) -> &str {
        &self.path
    }

    /// The raw query string (without `?`), if any.
    pub fn query(&self) -> Option<&str> {
        self.query.as_deref()
    }

    /// The fragment (without `#`), if any.
    pub fn fragment(&self) -> Option<&str> {
        self.fragment.as_deref()
    }

    /// Decoded `(key, value)` query pairs in order.
    pub fn query_pairs(&self) -> Vec<(String, String)> {
        match &self.query {
            None => Vec::new(),
            Some(q) => q
                .split('&')
                .filter(|kv| !kv.is_empty())
                .map(|kv| match kv.split_once('=') {
                    Some((k, v)) => (percent_decode(k), percent_decode(v)),
                    None => (percent_decode(kv), String::new()),
                })
                .collect(),
        }
    }

    /// First decoded value for query key `key`.
    pub fn query_param(&self, key: &str) -> Option<String> {
        self.query_pairs()
            .into_iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Returns a copy with `key=value` appended to the query
    /// (percent-encoding both).
    pub fn with_query_param(&self, key: &str, value: &str) -> Url {
        let pair = format!("{}={}", percent_encode(key), percent_encode(value));
        let mut u = self.clone();
        u.query = Some(match &self.query {
            Some(q) if !q.is_empty() => format!("{q}&{pair}"),
            _ => pair,
        });
        u
    }

    /// Scheme + host + path + query, without the fragment: what a server
    /// (and a blocklist) sees.
    pub fn without_fragment(&self) -> String {
        let mut s = format!("{}://{}{}", self.scheme, self.authority(), self.path);
        if let Some(q) = &self.query {
            s.push('?');
            s.push_str(q);
        }
        s
    }

    /// `host + path (+ ?query)` — the form EasyList rules match against when
    /// the scheme is irrelevant.
    pub fn host_and_path(&self) -> String {
        let mut s = format!("{}{}", self.host, self.path);
        if let Some(q) = &self.query {
            s.push('?');
            s.push_str(q);
        }
        s
    }

    /// Returns `true` when both URLs share a registrable domain (same-site in
    /// the cookie sense).
    pub fn same_site(&self, other: &Url) -> bool {
        self.host.registrable() == other.host.registrable()
    }
}

/// Borrowing view of a URL's authority component, created by
/// [`Url::authority`]. Formats as `host` or `host:port`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Authority<'a> {
    host: &'a Fqdn,
    port: Option<u16>,
}

impl fmt::Display for Authority<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.port {
            Some(p) => write!(f, "{}:{}", self.host, p),
            None => write!(f, "{}", self.host),
        }
    }
}

impl fmt::Display for Url {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.without_fragment())?;
        if let Some(frag) = &self.fragment {
            write!(f, "#{frag}")?;
        }
        Ok(())
    }
}

impl std::str::FromStr for Url {
    type Err = NetError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Url::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_url() {
        let u = Url::parse("https://sync.exosrv.com:8443/pixel?uid=abc#frag").unwrap();
        assert_eq!(u.scheme(), Scheme::Https);
        assert_eq!(u.host().as_str(), "sync.exosrv.com");
        assert_eq!(u.path(), "/pixel");
        assert_eq!(u.query(), Some("uid=abc"));
        assert_eq!(u.fragment(), Some("frag"));
        assert_eq!(
            u.to_string(),
            "https://sync.exosrv.com:8443/pixel?uid=abc#frag"
        );
    }

    #[test]
    fn bare_host_gets_root_path() {
        let u = Url::parse("http://example.com").unwrap();
        assert_eq!(u.path(), "/");
        assert_eq!(u.to_string(), "http://example.com/");
    }

    #[test]
    fn authority_formats_port_and_no_port_without_owning() {
        let with_port = Url::parse("https://sync.exosrv.com:8443/pixel").unwrap();
        assert_eq!(with_port.authority().to_string(), "sync.exosrv.com:8443");
        let no_port = Url::parse("https://sync.exosrv.com/pixel").unwrap();
        assert_eq!(no_port.authority().to_string(), "sync.exosrv.com");
        // The view is Copy and borrows the URL: formatting twice agrees and
        // composed renderings (without_fragment) keep the same shape.
        let a = no_port.authority();
        let b = a;
        assert_eq!(a.to_string(), b.to_string());
        assert_eq!(
            with_port.without_fragment(),
            "https://sync.exosrv.com:8443/pixel"
        );
    }

    #[test]
    fn rejects_bad_urls() {
        assert!(Url::parse("ftp://example.com/").is_err());
        assert!(Url::parse("https:///path").is_err());
        assert!(Url::parse("not a url").is_err());
    }

    #[test]
    fn join_resolves_all_reference_kinds() {
        let base = Url::parse("https://site.com/videos/page.html?x=1").unwrap();
        assert_eq!(
            base.join("https://other.net/a").unwrap().to_string(),
            "https://other.net/a"
        );
        assert_eq!(
            base.join("//cdn.com/lib.js").unwrap().to_string(),
            "https://cdn.com/lib.js"
        );
        assert_eq!(
            base.join("/root.js").unwrap().to_string(),
            "https://site.com/root.js"
        );
        assert_eq!(
            base.join("rel.js").unwrap().to_string(),
            "https://site.com/videos/rel.js"
        );
    }

    #[test]
    fn query_pairs_decode() {
        let u = Url::parse("http://t.co/p?a=1&b=hello%20world&flag").unwrap();
        assert_eq!(
            u.query_pairs(),
            vec![
                ("a".into(), "1".into()),
                ("b".into(), "hello world".into()),
                ("flag".into(), String::new())
            ]
        );
        assert_eq!(u.query_param("b").as_deref(), Some("hello world"));
        assert_eq!(u.query_param("zzz"), None);
    }

    #[test]
    fn with_query_param_appends_encoded() {
        let u = Url::parse("https://sync.net/s").unwrap();
        let u2 = u.with_query_param("sync", "uid=42&x");
        assert_eq!(u2.query(), Some("sync=uid%3D42%26x"));
        assert_eq!(u2.query_param("sync").as_deref(), Some("uid=42&x"));
        let u3 = u2.with_query_param("p", "2");
        assert_eq!(u3.query_pairs().len(), 2);
    }

    #[test]
    fn same_site_uses_registrable_domain() {
        let a = Url::parse("https://www.pornhub.com/").unwrap();
        let b = Url::parse("https://cdn.pornhub.com/x.js").unwrap();
        let c = Url::parse("https://exoclick.com/t").unwrap();
        assert!(a.same_site(&b));
        assert!(!a.same_site(&c));
    }

    #[test]
    fn scheme_swap() {
        let u = Url::parse("https://site.com/a").unwrap();
        assert_eq!(u.with_scheme(Scheme::Http).to_string(), "http://site.com/a");
    }
}
