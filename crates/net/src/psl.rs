//! A compact public-suffix list and registrable-domain (eTLD+1) extraction.
//!
//! The third-party attribution pipeline constantly maps FQDNs to their
//! registrable domain (`img100-589.xvideos.com` → `xvideos.com`,
//! `stats.g.doubleclick.net` → `doubleclick.net`). A full Mozilla PSL is not
//! needed for the synthetic ecosystem; this embedded list covers every suffix
//! the simulator generates plus the common multi-label suffixes that make the
//! algorithm non-trivial (`co.uk`, `com.ru`, `xxx`, …).
//!
//! Because the analysis stages resolve the same hosts millions of times, the
//! module also provides [`HostCache`] — a thread-safe host → eTLD+1 memo
//! with hit/miss counters that the stage pipeline surfaces through
//! `reproduce --timings`.

use std::collections::HashMap;
use std::sync::RwLock;

use redlight_obs::{Counter, Registry};

/// Multi-label public suffixes known to the embedded list, each expressed as
/// the suffix string *without* a leading dot.
const MULTI_LABEL_SUFFIXES: &[&str] = &[
    "co.uk", "org.uk", "ac.uk", "gov.uk", "com.ru", "com.br", "com.au", "co.jp", "co.in", "com.sg",
    "com.es", "com.mx", "co.za", "com.tr", "com.ar", "net.ru", "org.ru", "in.ua", "com.ua",
    "com.cn",
];

/// Single-label suffixes (TLDs) recognized by the embedded list. Unknown
/// TLDs are still treated as suffixes (the PSL `*` fallback rule), so the
/// list only needs to exist for documentation and tests.
const KNOWN_TLDS: &[&str] = &[
    "com", "net", "org", "info", "biz", "xxx", "sex", "porn", "adult", "tv", "cc", "io", "me",
    "ru", "uk", "de", "fr", "es", "it", "nl", "eu", "us", "ca", "in", "sg", "jp", "br", "pl", "ro",
    "pt", "top", "party", "club", "online", "site", "live", "pro", "vip", "red",
];

/// Returns `true` when `domain` (normalized, lowercase) is exactly a public
/// suffix.
pub fn is_public_suffix(domain: &str) -> bool {
    if MULTI_LABEL_SUFFIXES.contains(&domain) {
        return true;
    }
    !domain.contains('.')
}

/// Extracts the registrable domain (eTLD+1) from a normalized hostname.
///
/// Falls back to the wildcard rule — last label is the public suffix — for
/// TLDs not in the embedded list, which matches how the Mozilla PSL treats
/// unknown TLDs. Malformed hosts with empty labels (leading, trailing or
/// doubled dots) are handled defensively: surrounding dots are trimmed and
/// empty labels never count toward the suffix, so `"example.com."` resolves
/// to `"example.com"` and `".com"` to `"com"` instead of mis-sliced text.
///
/// ```
/// assert_eq!(redlight_net::psl::registrable_domain("a.b.example.co.uk"), "example.co.uk");
/// assert_eq!(redlight_net::psl::registrable_domain("stats.g.doubleclick.net"), "doubleclick.net");
/// assert_eq!(redlight_net::psl::registrable_domain("xvideos.com"), "xvideos.com");
/// assert_eq!(redlight_net::psl::registrable_domain("example.com."), "example.com");
/// ```
pub fn registrable_domain(host: &str) -> &str {
    let trimmed = host.trim_matches('.');
    if trimmed.is_empty() {
        // "." / ".." / "": nothing but separators. The empty subslice keeps
        // the result borrowed from `host` (callers may cache byte offsets).
        return trimmed;
    }
    // Byte offsets of the last three *non-empty* label starts, most recent
    // first. Walking with `rfind` avoids the per-call `Vec<&str>` the old
    // implementation allocated.
    let mut starts = [0usize; 3];
    let mut found = 0usize;
    let mut end = trimmed.len();
    loop {
        let start = match trimmed[..end].rfind('.') {
            Some(dot) => dot + 1,
            None => 0,
        };
        if start < end {
            starts[found] = start;
            found += 1;
            if found == 3 {
                break;
            }
        }
        if start == 0 {
            break;
        }
        end = start - 1;
    }
    if found == 1 {
        return trimmed; // single label: the host is (treated as) a suffix
    }
    let last_two = &trimmed[starts[1]..];
    if MULTI_LABEL_SUFFIXES.contains(&last_two) {
        if found == 2 {
            return trimmed; // the host *is* a suffix (e.g. "co.uk")
        }
        return &trimmed[starts[2]..];
    }
    // Wildcard rule: last label is the suffix, registrable = last two labels.
    last_two
}

/// Whether the last label of `host` is a TLD the embedded list knows about.
/// Purely informational; extraction works for unknown TLDs too.
pub fn has_known_tld(host: &str) -> bool {
    host.rsplit('.')
        .next()
        .is_some_and(|tld| KNOWN_TLDS.contains(&tld))
}

/// A snapshot of one memo's hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compute (and then populate) an entry.
    pub misses: u64,
}

/// A thread-safe host → registrable-domain memo.
///
/// [`registrable_domain`] is pure but runs a suffix walk per call; the
/// analysis stages resolve the same few thousand hosts over and over, so one
/// shared `HostCache` per pipeline run turns almost every resolution into a
/// hash lookup. The cache stores `(start, end)` byte offsets of the eTLD+1
/// slice — valid because the result is always a subslice of the queried
/// host — which lets [`HostCache::registrable`] hand back a borrow of the
/// *caller's* string without allocating.
///
/// Hit/miss counters are `obs` cells: private by default, shared with a
/// metrics registry when built via [`HostCache::in_registry`].
#[derive(Debug, Default)]
pub struct HostCache {
    offsets: RwLock<HashMap<String, (u32, u32)>>,
    hits: Counter,
    misses: Counter,
}

impl HostCache {
    /// Empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty cache publishing `cache.etld1-hosts.hits` / `.misses` into
    /// `registry` (the [`HostCache::stats`] view reads the same cells).
    pub fn in_registry(registry: &Registry) -> Self {
        HostCache {
            offsets: RwLock::default(),
            hits: registry.counter("cache.etld1-hosts.hits"),
            misses: registry.counter("cache.etld1-hosts.misses"),
        }
    }

    /// Cached [`registrable_domain`]: identical result, amortized O(1).
    pub fn registrable<'a>(&self, host: &'a str) -> &'a str {
        if let Some(&(start, end)) = self.offsets.read().expect("host cache lock").get(host) {
            self.hits.inc();
            return &host[start as usize..end as usize];
        }
        self.misses.inc();
        let rd = registrable_domain(host);
        let start = rd.as_ptr() as usize - host.as_ptr() as usize;
        let end = start + rd.len();
        self.offsets
            .write()
            .expect("host cache lock")
            .insert(host.to_string(), (start as u32, end as u32));
        rd
    }

    /// `true` when both hosts share a registrable domain (cached).
    pub fn same_site(&self, a: &str, b: &str) -> bool {
        self.registrable(a) == self.registrable(b)
    }

    /// Number of distinct hosts interned so far.
    pub fn len(&self) -> usize {
        self.offsets.read().expect("host cache lock").len()
    }

    /// `true` when no host has been resolved yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Hit/miss counters so far.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_label_hosts_are_registrable() {
        assert_eq!(registrable_domain("pornhub.com"), "pornhub.com");
        assert_eq!(registrable_domain("sexmex.xxx"), "sexmex.xxx");
    }

    #[test]
    fn subdomains_collapse() {
        assert_eq!(registrable_domain("www.pornhub.com"), "pornhub.com");
        assert_eq!(registrable_domain("a.b.c.tracker.net"), "tracker.net");
    }

    #[test]
    fn multi_label_suffixes() {
        assert_eq!(registrable_domain("www.bbc.co.uk"), "bbc.co.uk");
        assert_eq!(registrable_domain("adx.com.ru"), "adx.com.ru");
        assert_eq!(registrable_domain("deep.sub.adx.com.ru"), "adx.com.ru");
    }

    #[test]
    fn suffix_itself_is_returned_verbatim() {
        assert_eq!(registrable_domain("co.uk"), "co.uk");
        assert_eq!(registrable_domain("com"), "com");
    }

    #[test]
    fn unknown_tld_falls_back_to_wildcard_rule() {
        assert_eq!(registrable_domain("tracker.weirdtld"), "tracker.weirdtld");
        assert_eq!(registrable_domain("a.tracker.weirdtld"), "tracker.weirdtld");
    }

    #[test]
    fn empty_labels_are_handled() {
        // Trailing dot (FQDN root form): trimmed, not mis-sliced to "com.".
        assert_eq!(registrable_domain("example.com."), "example.com");
        assert_eq!(registrable_domain("www.example.com."), "example.com");
        // Leading dot: trimmed, not returned verbatim.
        assert_eq!(registrable_domain(".com"), "com");
        assert_eq!(registrable_domain(".example.com"), "example.com");
        // Doubled interior dot: the empty label never counts as a label, so
        // the multi-label walk still lands on a non-empty start.
        assert_eq!(registrable_domain("a..b"), "a..b");
        assert_eq!(registrable_domain("x.a..b"), "a..b");
        // Nothing but separators.
        assert_eq!(registrable_domain("."), "");
        assert_eq!(registrable_domain(".."), "");
        assert_eq!(registrable_domain(""), "");
    }

    #[test]
    fn suffix_predicates() {
        assert!(is_public_suffix("com"));
        assert!(is_public_suffix("co.uk"));
        assert!(!is_public_suffix("example.com"));
        assert!(has_known_tld("x.party"));
        assert!(!has_known_tld("x.weirdtld"));
    }

    #[test]
    fn host_cache_agrees_and_counts() {
        let cache = HostCache::new();
        assert!(cache.is_empty());
        for host in [
            "www.pornhub.com",
            "a.b.example.co.uk",
            "example.com.",
            ".com",
            "co.uk",
            "tracker.weirdtld",
        ] {
            assert_eq!(cache.registrable(host), registrable_domain(host));
            // Second resolution hits the memo and returns the same slice.
            assert_eq!(cache.registrable(host), registrable_domain(host));
        }
        let stats = cache.stats();
        assert_eq!(stats.misses, 6);
        assert_eq!(stats.hits, 6);
        assert_eq!(cache.len(), 6);
        assert!(cache.same_site("www.pornhub.com", "cdn.pornhub.com"));
        assert!(!cache.same_site("pornhub.com", "exoclick.com"));
    }
}
