//! A compact public-suffix list and registrable-domain (eTLD+1) extraction.
//!
//! The third-party attribution pipeline constantly maps FQDNs to their
//! registrable domain (`img100-589.xvideos.com` → `xvideos.com`,
//! `stats.g.doubleclick.net` → `doubleclick.net`). A full Mozilla PSL is not
//! needed for the synthetic ecosystem; this embedded list covers every suffix
//! the simulator generates plus the common multi-label suffixes that make the
//! algorithm non-trivial (`co.uk`, `com.ru`, `xxx`, …).

/// Multi-label public suffixes known to the embedded list, each expressed as
/// the suffix string *without* a leading dot.
const MULTI_LABEL_SUFFIXES: &[&str] = &[
    "co.uk", "org.uk", "ac.uk", "gov.uk", "com.ru", "com.br", "com.au", "co.jp", "co.in", "com.sg",
    "com.es", "com.mx", "co.za", "com.tr", "com.ar", "net.ru", "org.ru", "in.ua", "com.ua",
    "com.cn",
];

/// Single-label suffixes (TLDs) recognized by the embedded list. Unknown
/// TLDs are still treated as suffixes (the PSL `*` fallback rule), so the
/// list only needs to exist for documentation and tests.
const KNOWN_TLDS: &[&str] = &[
    "com", "net", "org", "info", "biz", "xxx", "sex", "porn", "adult", "tv", "cc", "io", "me",
    "ru", "uk", "de", "fr", "es", "it", "nl", "eu", "us", "ca", "in", "sg", "jp", "br", "pl", "ro",
    "pt", "top", "party", "club", "online", "site", "live", "pro", "vip", "red",
];

/// Returns `true` when `domain` (normalized, lowercase) is exactly a public
/// suffix.
pub fn is_public_suffix(domain: &str) -> bool {
    if MULTI_LABEL_SUFFIXES.contains(&domain) {
        return true;
    }
    !domain.contains('.')
}

/// Extracts the registrable domain (eTLD+1) from a normalized hostname.
///
/// Falls back to the wildcard rule — last label is the public suffix — for
/// TLDs not in the embedded list, which matches how the Mozilla PSL treats
/// unknown TLDs.
///
/// ```
/// assert_eq!(redlight_net::psl::registrable_domain("a.b.example.co.uk"), "example.co.uk");
/// assert_eq!(redlight_net::psl::registrable_domain("stats.g.doubleclick.net"), "doubleclick.net");
/// assert_eq!(redlight_net::psl::registrable_domain("xvideos.com"), "xvideos.com");
/// ```
pub fn registrable_domain(host: &str) -> &str {
    let labels: Vec<&str> = host.split('.').collect();
    if labels.len() <= 1 {
        return host;
    }
    // Try the longest matching public suffix first (2 labels, then 1).
    if labels.len() >= 2 {
        let two = &host
            [host.len() - labels[labels.len() - 2].len() - 1 - labels[labels.len() - 1].len()..];
        if MULTI_LABEL_SUFFIXES.contains(&two) {
            if labels.len() == 2 {
                // The host *is* a suffix (e.g. "co.uk").
                return host;
            }
            let start = host.len() - labels[labels.len() - 3].len() - 1 - two.len();
            return &host[start..];
        }
    }
    // Single-label suffix: registrable = last two labels.
    let start = host.len() - labels[labels.len() - 2].len() - 1 - labels[labels.len() - 1].len();
    &host[start..]
}

/// Whether the last label of `host` is a TLD the embedded list knows about.
/// Purely informational; extraction works for unknown TLDs too.
pub fn has_known_tld(host: &str) -> bool {
    host.rsplit('.')
        .next()
        .is_some_and(|tld| KNOWN_TLDS.contains(&tld))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_label_hosts_are_registrable() {
        assert_eq!(registrable_domain("pornhub.com"), "pornhub.com");
        assert_eq!(registrable_domain("sexmex.xxx"), "sexmex.xxx");
    }

    #[test]
    fn subdomains_collapse() {
        assert_eq!(registrable_domain("www.pornhub.com"), "pornhub.com");
        assert_eq!(registrable_domain("a.b.c.tracker.net"), "tracker.net");
    }

    #[test]
    fn multi_label_suffixes() {
        assert_eq!(registrable_domain("www.bbc.co.uk"), "bbc.co.uk");
        assert_eq!(registrable_domain("adx.com.ru"), "adx.com.ru");
        assert_eq!(registrable_domain("deep.sub.adx.com.ru"), "adx.com.ru");
    }

    #[test]
    fn suffix_itself_is_returned_verbatim() {
        assert_eq!(registrable_domain("co.uk"), "co.uk");
        assert_eq!(registrable_domain("com"), "com");
    }

    #[test]
    fn unknown_tld_falls_back_to_wildcard_rule() {
        assert_eq!(registrable_domain("tracker.weirdtld"), "tracker.weirdtld");
        assert_eq!(registrable_domain("a.tracker.weirdtld"), "tracker.weirdtld");
    }

    #[test]
    fn suffix_predicates() {
        assert!(is_public_suffix("com"));
        assert!(is_public_suffix("co.uk"));
        assert!(!is_public_suffix("example.com"));
        assert!(has_known_tld("x.party"));
        assert!(!has_known_tld("x.weirdtld"));
    }
}
