//! Countries, vantage points and a geo-IP table.
//!
//! The study crawls from a physical vantage point in Spain plus VPN exits in
//! other EU states, the USA, the UK, Russia, India and Singapore (§3.1).
//! Trackers on the server side use geo-IP databases to embed approximate
//! coordinates in cookies (§5.1.1); [`GeoIpDb`] plays that role.

use std::net::Ipv4Addr;

use serde::{Deserialize, Serialize};

/// Countries the study measures from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Country {
    /// United States vantage point.
    Usa,
    /// United Kingdom.
    Uk,
    /// Spain (the physical vantage point).
    Spain,
    /// Russia.
    Russia,
    /// India.
    India,
    /// Singapore.
    Singapore,
}

impl Country {
    /// All six vantage-point countries, in the paper's Table 7 order.
    pub const ALL: [Country; 6] = [
        Country::Usa,
        Country::Uk,
        Country::Spain,
        Country::Russia,
        Country::India,
        Country::Singapore,
    ];

    /// Display name as used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Country::Usa => "USA",
            Country::Uk => "UK",
            Country::Spain => "Spain",
            Country::Russia => "Russia",
            Country::India => "India",
            Country::Singapore => "Singapore",
        }
    }

    /// ISO 3166-1 alpha-2 code.
    pub fn code(self) -> &'static str {
        match self {
            Country::Usa => "US",
            Country::Uk => "GB",
            Country::Spain => "ES",
            Country::Russia => "RU",
            Country::India => "IN",
            Country::Singapore => "SG",
        }
    }

    /// Whether the GDPR applies to visitors from this country (EU member —
    /// Spain — or the UK, which transposed it in 2018).
    pub fn gdpr_applies(self) -> bool {
        matches!(self, Country::Spain | Country::Uk)
    }
}

/// How the crawler reaches a country: the physical machine or a commercial
/// VPN exit (the study used NordVPN and PrivateVPN).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum AccessMethod {
    /// The physical vantage point (Spain in the paper).
    Physical,
    /// A commercial VPN exit node, with the provider name.
    Vpn(String),
}

/// A crawl vantage point.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VantagePoint {
    /// Country.
    pub country: Country,
    /// Access.
    pub access: AccessMethod,
    /// The public IPv4 address servers see.
    pub client_ip: Ipv4Addr,
}

impl VantagePoint {
    /// The study's six vantage points: physical Spain + five VPN exits.
    pub fn study_default() -> Vec<VantagePoint> {
        Country::ALL
            .into_iter()
            .map(|country| {
                let access = if country == Country::Spain {
                    AccessMethod::Physical
                } else if matches!(country, Country::Usa | Country::Uk) {
                    AccessMethod::Vpn("NordVPN".to_string())
                } else {
                    AccessMethod::Vpn("PrivateVPN".to_string())
                };
                VantagePoint {
                    country,
                    access,
                    client_ip: default_ip(country),
                }
            })
            .collect()
    }
}

/// Documentation-range IPs, one per country.
fn default_ip(country: Country) -> Ipv4Addr {
    match country {
        Country::Usa => Ipv4Addr::new(198, 51, 100, 10),
        Country::Uk => Ipv4Addr::new(198, 51, 100, 20),
        Country::Spain => Ipv4Addr::new(203, 0, 113, 77),
        Country::Russia => Ipv4Addr::new(198, 51, 100, 40),
        Country::India => Ipv4Addr::new(198, 51, 100, 50),
        Country::Singapore => Ipv4Addr::new(198, 51, 100, 60),
    }
}

/// Approximate coordinates + network metadata a geo-IP database returns.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GeoInfo {
    /// Latitude.
    pub latitude: f64,
    /// Longitude.
    pub longitude: f64,
    /// Country.
    pub country: Country,
    /// The access-network provider name, when the database knows it.
    pub isp: Option<String>,
}

/// A geo-IP lookup table (MaxMind stand-in).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct GeoIpDb {
    entries: Vec<(Ipv4Addr, GeoInfo)>,
}

impl GeoIpDb {
    /// A database pre-loaded with the study's vantage-point IPs.
    pub fn study_default() -> Self {
        let mut db = GeoIpDb::default();
        for vp in VantagePoint::study_default() {
            db.insert(vp.client_ip, geo_for(vp.country));
        }
        db
    }

    /// Inserts a mapping.
    pub fn insert(&mut self, ip: Ipv4Addr, info: GeoInfo) {
        self.entries.retain(|(a, _)| *a != ip);
        self.entries.push((ip, info));
    }

    /// Exact-IP lookup.
    pub fn lookup(&self, ip: Ipv4Addr) -> Option<&GeoInfo> {
        self.entries.iter().find(|(a, _)| *a == ip).map(|(_, g)| g)
    }
}

/// Capital-city coordinates per country (coarse, as geo-IP is).
fn geo_for(country: Country) -> GeoInfo {
    let (latitude, longitude) = match country {
        Country::Usa => (38.9, -77.0),
        Country::Uk => (51.5, -0.1),
        Country::Spain => (40.4, -3.7),
        Country::Russia => (55.7, 37.6),
        Country::India => (28.6, 77.2),
        Country::Singapore => (1.35, 103.8),
    };
    GeoInfo {
        latitude,
        longitude,
        country,
        isp: Some("Example Networks".to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_vantage_points_with_spain_physical() {
        let vps = VantagePoint::study_default();
        assert_eq!(vps.len(), 6);
        let spain = vps.iter().find(|v| v.country == Country::Spain).unwrap();
        assert_eq!(spain.access, AccessMethod::Physical);
        let others = vps.iter().filter(|v| v.country != Country::Spain);
        for vp in others {
            assert!(matches!(vp.access, AccessMethod::Vpn(_)));
        }
    }

    #[test]
    fn country_metadata() {
        assert_eq!(Country::Spain.code(), "ES");
        assert!(Country::Spain.gdpr_applies());
        assert!(Country::Uk.gdpr_applies());
        assert!(!Country::Usa.gdpr_applies());
        assert_eq!(Country::ALL.len(), 6);
    }

    #[test]
    fn geoip_lookup_finds_vantage_ips() {
        let db = GeoIpDb::study_default();
        let vp = &VantagePoint::study_default()[0];
        let info = db.lookup(vp.client_ip).unwrap();
        assert_eq!(info.country, vp.country);
        assert!(db.lookup(Ipv4Addr::new(10, 0, 0, 1)).is_none());
    }

    #[test]
    fn geoip_insert_replaces() {
        let mut db = GeoIpDb::default();
        let ip = Ipv4Addr::new(1, 2, 3, 4);
        db.insert(ip, geo_for(Country::Usa));
        db.insert(ip, geo_for(Country::Russia));
        assert_eq!(db.lookup(ip).unwrap().country, Country::Russia);
    }
}
