//! Simplified X.509 certificate model.
//!
//! The study leverages certificate metadata twice:
//!
//! * §4.2(1) — comparing the certificate of a host website with the
//!   certificate of an embedded service to decide first- vs third-party;
//! * §4.2(3) — extracting the `Subject` **organization** to complement the
//!   Disconnect list for parent-company attribution (raising coverage from
//!   142 to 4,477 FQDNs). Certificates whose subject only repeats the domain
//!   name are deliberately *not* used for attribution (paper footnote 7).

use serde::{Deserialize, Serialize};

/// A distinguished name: the fields the analyses read.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DistinguishedName {
    /// Common Name (usually the domain, possibly wildcarded).
    pub common_name: String,
    /// Organization (`O=`), when the certificate carries one (OV/EV certs).
    pub organization: Option<String>,
    /// Country (`C=`).
    pub country: Option<String>,
}

impl DistinguishedName {
    /// A DV-style subject: only a common name.
    pub fn domain_only(cn: impl Into<String>) -> Self {
        DistinguishedName {
            common_name: cn.into(),
            organization: None,
            country: None,
        }
    }

    /// An OV/EV-style subject with an organization.
    pub fn with_org(cn: impl Into<String>, org: impl Into<String>) -> Self {
        DistinguishedName {
            common_name: cn.into(),
            organization: Some(org.into()),
            country: None,
        }
    }
}

/// A simplified X.509 certificate.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Certificate {
    /// Subject.
    pub subject: DistinguishedName,
    /// Issuer.
    pub issuer: DistinguishedName,
    /// Subject Alternative Names (DNS entries, possibly wildcards).
    pub san: Vec<String>,
    /// Serial, for identity comparisons.
    pub serial: u64,
}

impl Certificate {
    /// Builds a leaf certificate for `cn` with optional organization, SAN
    /// list and serial.
    pub fn leaf(cn: &str, organization: Option<&str>, san: Vec<String>, serial: u64) -> Self {
        let subject = match organization {
            Some(org) => DistinguishedName::with_org(cn, org),
            None => DistinguishedName::domain_only(cn),
        };
        Certificate {
            subject,
            issuer: DistinguishedName::with_org("Redlight Root CA", "Redlight Trust Services"),
            san,
            serial,
        }
    }

    /// Whether `host` is covered by this certificate (CN or SAN, with
    /// single-label wildcard support: `*.example.com` matches
    /// `a.example.com` but not `a.b.example.com` nor `example.com`).
    pub fn covers(&self, host: &str) -> bool {
        std::iter::once(self.subject.common_name.as_str())
            .chain(self.san.iter().map(String::as_str))
            .any(|pat| wildcard_match(pat, host))
    }

    /// The attributable organization: the subject `O=` value, unless it is
    /// missing or merely repeats a domain name (paper footnote 7: such
    /// subjects are not taken into account).
    pub fn attributable_organization(&self) -> Option<&str> {
        let org = self.subject.organization.as_deref()?;
        let looks_like_domain = org.contains('.') && !org.contains(' ');
        if looks_like_domain || org.is_empty() {
            None
        } else {
            Some(org)
        }
    }

    /// `true` when both certificates belong to the same identity:
    /// same serial, or same attributable organization, or either covers the
    /// other's common name.
    pub fn same_identity(&self, other: &Certificate) -> bool {
        if self.serial == other.serial {
            return true;
        }
        if let (Some(a), Some(b)) = (
            self.attributable_organization(),
            other.attributable_organization(),
        ) {
            if a.eq_ignore_ascii_case(b) {
                return true;
            }
        }
        self.covers(&other.subject.common_name) || other.covers(&self.subject.common_name)
    }
}

fn wildcard_match(pattern: &str, host: &str) -> bool {
    if let Some(suffix) = pattern.strip_prefix("*.") {
        match host.split_once('.') {
            Some((first_label, rest)) => !first_label.is_empty() && rest == suffix,
            None => false,
        }
    } else {
        pattern.eq_ignore_ascii_case(host)
    }
}

/// A compact certificate digest stored in measurement records (the full
/// chain is too heavy to keep for every request at crawl scale).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CertSummary {
    /// Subject common name.
    pub cn: String,
    /// Attributable subject organization (post footnote-7 filtering).
    pub org: Option<String>,
    /// Serial.
    pub serial: u64,
}

impl From<&Certificate> for CertSummary {
    fn from(cert: &Certificate) -> Self {
        CertSummary {
            cn: cert.subject.common_name.clone(),
            org: cert.attributable_organization().map(str::to_string),
            serial: cert.serial,
        }
    }
}

impl CertSummary {
    /// Conservative same-identity check on digests: shared serial, shared
    /// attributable organization, or same registrable CN domain.
    pub fn same_identity(&self, other: &CertSummary) -> bool {
        if self.serial == other.serial {
            return true;
        }
        if let (Some(a), Some(b)) = (&self.org, &other.org) {
            if a.eq_ignore_ascii_case(b) {
                return true;
            }
        }
        let reg = |cn: &str| {
            let cn = cn.trim_start_matches("*.");
            crate::psl::registrable_domain(cn).to_string()
        };
        reg(&self.cn) == reg(&other.cn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wildcard_semantics() {
        let c = Certificate::leaf("*.exosrv.com", None, vec!["exosrv.com".into()], 1);
        assert!(c.covers("sync.exosrv.com"));
        assert!(c.covers("exosrv.com")); // via SAN
        assert!(!c.covers("a.b.exosrv.com"));
        assert!(!c.covers("otherdomain.com"));
    }

    #[test]
    fn organization_attribution_rules() {
        let ov = Certificate::leaf("addthis.com", Some("Oracle Corporation"), vec![], 2);
        assert_eq!(ov.attributable_organization(), Some("Oracle Corporation"));
        // Footnote 7: subject that just repeats a domain is not attributable.
        let dv_like = Certificate::leaf("shady.party", Some("shady.party"), vec![], 3);
        assert_eq!(dv_like.attributable_organization(), None);
        let dv = Certificate::leaf("plain.com", None, vec![], 4);
        assert_eq!(dv.attributable_organization(), None);
    }

    #[test]
    fn summary_same_identity() {
        let a = CertSummary::from(&Certificate::leaf(
            "hd100546b.com",
            Some("HProfits Group"),
            vec![],
            10,
        ));
        let b = CertSummary::from(&Certificate::leaf(
            "bd202457b.com",
            Some("HProfits Group"),
            vec![],
            11,
        ));
        assert!(a.same_identity(&b));
        let c = CertSummary::from(&Certificate::leaf("*.site.com", None, vec![], 30));
        let d = CertSummary::from(&Certificate::leaf("cdn.site.com", None, vec![], 31));
        assert!(c.same_identity(&d));
        let e = CertSummary::from(&Certificate::leaf("a.com", None, vec![], 1));
        let f = CertSummary::from(&Certificate::leaf("b.net", None, vec![], 2));
        assert!(!e.same_identity(&f));
    }

    #[test]
    fn same_identity_via_org_and_serial_and_coverage() {
        let a = Certificate::leaf("hd100546b.com", Some("HProfits Group"), vec![], 10);
        let b = Certificate::leaf("bd202457b.com", Some("HProfits Group"), vec![], 11);
        assert!(a.same_identity(&b));

        let c = Certificate::leaf("x.com", None, vec![], 20);
        let c2 = Certificate::leaf("y.com", None, vec![], 20);
        assert!(c.same_identity(&c2)); // same serial (shared cert)

        let wild = Certificate::leaf("*.site.com", None, vec![], 30);
        let sub = Certificate::leaf("cdn.site.com", None, vec![], 31);
        assert!(wild.same_identity(&sub));

        let unrelated = Certificate::leaf("a.com", None, vec![], 40);
        let unrelated2 = Certificate::leaf("b.net", None, vec![], 41);
        assert!(!unrelated.same_identity(&unrelated2));
    }
}
