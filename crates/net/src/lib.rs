//! # redlight-net
//!
//! The network-object model underpinning the measurement platform: URLs,
//! hostnames and registrable domains (eTLD+1), HTTP messages, RFC 6265
//! cookies and a cookie jar, a simplified X.509 certificate model, DNS and
//! WHOIS records, wire codecs (base64, percent-encoding), a geo-IP table,
//! and the [`transport`] seam (the [`Transport`] trait plus its metering
//! and fault-injection decorators) every fetch flows through.
//!
//! Everything here is implemented from scratch — no external URL/HTTP/base64
//! crates — so the repository is a self-contained reproduction substrate.

#![warn(missing_docs)]

pub mod codec;
pub mod cookie;
pub mod dns;
pub mod error;
pub mod geoip;
pub mod host;
pub mod http;
pub mod jar;
pub mod psl;
pub mod tls;
pub mod transport;
pub mod url;
pub mod whois;

pub use cookie::{Cookie, SameSite};
pub use error::NetError;
pub use host::Fqdn;
pub use http::{HeaderMap, Method, Request, Response, Scheme, StatusCode};
pub use jar::CookieJar;
pub use tls::Certificate;
pub use transport::{
    BrowserKind, ClientContext, FetchOutcome, NetProfile, RetryPolicy, Transport, TransportMeter,
    TransportStats,
};
pub use url::{Authority, Url};
