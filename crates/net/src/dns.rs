//! Minimal DNS model: a zone database mapping FQDNs to addresses and
//! infrastructure metadata.
//!
//! The owner-discovery analysis (§4.1) "leverages DNS, WHOIS and X.509
//! certificate information": shared nameservers across websites are one of
//! the weak signals used to group sites under one operator.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use serde::{Deserialize, Serialize};

/// One DNS zone entry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ZoneRecord {
    /// `A` record.
    pub address: Ipv4Addr,
    /// Authoritative nameservers (`NS`).
    pub nameservers: Vec<String>,
    /// `CNAME` target, when the name is an alias (e.g. a tracker hiding
    /// behind a first-party subdomain).
    pub cname: Option<String>,
}

/// An in-memory DNS database with CNAME chasing.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DnsDb {
    records: HashMap<String, ZoneRecord>,
}

impl DnsDb {
    /// Empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a record for `fqdn` (normalized to lowercase).
    pub fn insert(&mut self, fqdn: &str, record: ZoneRecord) {
        self.records.insert(fqdn.to_ascii_lowercase(), record);
    }

    /// Looks up `fqdn`, following at most 8 CNAME hops.
    pub fn resolve(&self, fqdn: &str) -> Option<&ZoneRecord> {
        let mut name = fqdn.to_ascii_lowercase();
        for _ in 0..8 {
            let rec = self.records.get(&name)?;
            match &rec.cname {
                Some(target) => name = target.to_ascii_lowercase(),
                None => return Some(rec),
            }
        }
        None
    }

    /// The terminal canonical name for `fqdn` after chasing CNAMEs (itself
    /// when no alias exists or the name is unknown).
    pub fn canonical_name(&self, fqdn: &str) -> String {
        let mut name = fqdn.to_ascii_lowercase();
        for _ in 0..8 {
            match self.records.get(&name).and_then(|r| r.cname.clone()) {
                Some(target) => name = target.to_ascii_lowercase(),
                None => break,
            }
        }
        name
    }

    /// Nameservers of `fqdn`, empty when unknown.
    pub fn nameservers(&self, fqdn: &str) -> &[String] {
        self.resolve(fqdn)
            .map(|r| r.nameservers.as_slice())
            .unwrap_or(&[])
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when the database is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(ip: [u8; 4], ns: &[&str]) -> ZoneRecord {
        ZoneRecord {
            address: Ipv4Addr::new(ip[0], ip[1], ip[2], ip[3]),
            nameservers: ns.iter().map(|s| s.to_string()).collect(),
            cname: None,
        }
    }

    #[test]
    fn resolves_direct_records() {
        let mut db = DnsDb::new();
        db.insert("pornhub.com", rec([203, 0, 113, 1], &["ns1.mindgeek.com"]));
        let r = db.resolve("PORNHUB.com").unwrap();
        assert_eq!(r.address, Ipv4Addr::new(203, 0, 113, 1));
        assert_eq!(db.nameservers("pornhub.com"), ["ns1.mindgeek.com"]);
    }

    #[test]
    fn chases_cnames() {
        let mut db = DnsDb::new();
        db.insert(
            "metrics.site.com",
            ZoneRecord {
                address: Ipv4Addr::UNSPECIFIED,
                nameservers: vec![],
                cname: Some("collect.tracker.net".into()),
            },
        );
        db.insert(
            "collect.tracker.net",
            rec([198, 51, 100, 7], &["ns.tracker.net"]),
        );
        assert_eq!(
            db.resolve("metrics.site.com").unwrap().address,
            Ipv4Addr::new(198, 51, 100, 7)
        );
        assert_eq!(db.canonical_name("metrics.site.com"), "collect.tracker.net");
    }

    #[test]
    fn cname_loops_terminate() {
        let mut db = DnsDb::new();
        db.insert(
            "a.com",
            ZoneRecord {
                address: Ipv4Addr::UNSPECIFIED,
                nameservers: vec![],
                cname: Some("b.com".into()),
            },
        );
        db.insert(
            "b.com",
            ZoneRecord {
                address: Ipv4Addr::UNSPECIFIED,
                nameservers: vec![],
                cname: Some("a.com".into()),
            },
        );
        assert!(db.resolve("a.com").is_none());
    }

    #[test]
    fn unknown_names_resolve_to_none() {
        let db = DnsDb::new();
        assert!(db.resolve("missing.example").is_none());
        assert!(db.nameservers("missing.example").is_empty());
        assert_eq!(db.canonical_name("missing.example"), "missing.example");
    }
}
