//! Fully-qualified domain names.
//!
//! The study reasons about *FQDNs* (e.g. `sync.exosrv.com`) and their
//! *registrable domains* / eTLD+1 (e.g. `exosrv.com`). [`Fqdn`] stores the
//! normalized (lowercase, no trailing dot) name and offers label access;
//! registrable-domain extraction lives in [`crate::psl`].

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::NetError;

/// A validated, normalized fully-qualified domain name.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Fqdn(String);

impl Fqdn {
    /// Parses and normalizes a hostname: lowercases, strips one trailing dot,
    /// validates label syntax (LDH rule, 1–63 chars per label, ≤ 253 total).
    pub fn parse(input: &str) -> Result<Fqdn, NetError> {
        let trimmed = input.strip_suffix('.').unwrap_or(input);
        if trimmed.is_empty() || trimmed.len() > 253 {
            return Err(NetError::InvalidHost(input.to_string()));
        }
        let lower = trimmed.to_ascii_lowercase();
        for label in lower.split('.') {
            if label.is_empty() || label.len() > 63 {
                return Err(NetError::InvalidHost(input.to_string()));
            }
            let bytes = label.as_bytes();
            if bytes[0] == b'-' || bytes[bytes.len() - 1] == b'-' {
                return Err(NetError::InvalidHost(input.to_string()));
            }
            if !bytes
                .iter()
                .all(|b| b.is_ascii_alphanumeric() || *b == b'-' || *b == b'_')
            {
                return Err(NetError::InvalidHost(input.to_string()));
            }
        }
        Ok(Fqdn(lower))
    }

    /// The normalized hostname.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Labels from left (most specific) to right (TLD).
    pub fn labels(&self) -> impl Iterator<Item = &str> {
        self.0.split('.')
    }

    /// Number of labels.
    pub fn label_count(&self) -> usize {
        self.0.split('.').count()
    }

    /// Returns `true` when `self` equals `other` or is a subdomain of it
    /// (`sync.exosrv.com` is within `exosrv.com`).
    pub fn is_subdomain_of(&self, other: &Fqdn) -> bool {
        self.0 == other.0
            || (self.0.len() > other.0.len()
                && self.0.ends_with(other.0.as_str())
                && self.0.as_bytes()[self.0.len() - other.0.len() - 1] == b'.')
    }

    /// The registrable domain (eTLD+1) of this host, per the embedded public
    /// suffix list. Returns the host itself when it is already a suffix or
    /// has a single label.
    pub fn registrable(&self) -> Fqdn {
        Fqdn(crate::psl::registrable_domain(&self.0).to_string())
    }
}

impl fmt::Display for Fqdn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::str::FromStr for Fqdn {
    type Err = NetError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Fqdn::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_normalizes() {
        let h = Fqdn::parse("WWW.Example.COM.").unwrap();
        assert_eq!(h.as_str(), "www.example.com");
        assert_eq!(h.label_count(), 3);
    }

    #[test]
    fn rejects_invalid_hosts() {
        assert!(Fqdn::parse("").is_err());
        assert!(Fqdn::parse(".").is_err());
        assert!(Fqdn::parse("a..b").is_err());
        assert!(Fqdn::parse("-leading.com").is_err());
        assert!(Fqdn::parse("trailing-.com").is_err());
        assert!(Fqdn::parse("sp ace.com").is_err());
        assert!(Fqdn::parse(&"a".repeat(64)).is_err());
        assert!(Fqdn::parse(&format!("{}.com", "a.".repeat(130))).is_err());
    }

    #[test]
    fn accepts_underscore_labels() {
        // Seen in the wild for tracking beacons; browsers tolerate them.
        assert!(Fqdn::parse("_dmarc.example.com").is_ok());
    }

    #[test]
    fn subdomain_relation() {
        let parent = Fqdn::parse("exosrv.com").unwrap();
        let child = Fqdn::parse("sync.exosrv.com").unwrap();
        let other = Fqdn::parse("notexosrv.com").unwrap();
        assert!(child.is_subdomain_of(&parent));
        assert!(parent.is_subdomain_of(&parent));
        assert!(!parent.is_subdomain_of(&child));
        assert!(!other.is_subdomain_of(&parent));
    }

    #[test]
    fn registrable_domain_shortcut() {
        let h = Fqdn::parse("img100-589.xvideos.com").unwrap();
        assert_eq!(h.registrable().as_str(), "xvideos.com");
    }
}
