//! Wire codecs implemented from scratch: base64 (standard and URL-safe
//! alphabets, RFC 4648) and percent-encoding (RFC 3986).
//!
//! The cookie analysis (paper §5.1.1, “Encoded Information in HTTP Cookies”)
//! decodes cookie values with exactly these two encodings to surface IP
//! addresses and geolocation data smuggled inside tracking cookies.

use crate::error::NetError;

const STD_ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";
const URL_ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789-_";

fn b64_encode_with(data: &[u8], alphabet: &[u8; 64], pad: bool) -> String {
    let mut out = String::with_capacity(data.len().div_ceil(3) * 4);
    for chunk in data.chunks(3) {
        let b0 = chunk[0] as u32;
        let b1 = chunk.get(1).copied().unwrap_or(0) as u32;
        let b2 = chunk.get(2).copied().unwrap_or(0) as u32;
        let triple = (b0 << 16) | (b1 << 8) | b2;
        out.push(alphabet[(triple >> 18) as usize & 63] as char);
        out.push(alphabet[(triple >> 12) as usize & 63] as char);
        if chunk.len() > 1 {
            out.push(alphabet[(triple >> 6) as usize & 63] as char);
        } else if pad {
            out.push('=');
        }
        if chunk.len() > 2 {
            out.push(alphabet[triple as usize & 63] as char);
        } else if pad {
            out.push('=');
        }
    }
    out
}

fn b64_decode_with(input: &str, alphabet: &[u8; 64]) -> Result<Vec<u8>, NetError> {
    let mut rev = [255u8; 256];
    for (i, &c) in alphabet.iter().enumerate() {
        rev[c as usize] = i as u8;
    }
    let bytes: Vec<u8> = input.bytes().filter(|&b| b != b'=').collect();
    if bytes.len() % 4 == 1 {
        return Err(NetError::Decode(format!(
            "base64 input has invalid length {}",
            input.len()
        )));
    }
    let mut out = Vec::with_capacity(bytes.len() * 3 / 4);
    let mut buf: u32 = 0;
    let mut bits = 0u8;
    for &b in &bytes {
        let v = rev[b as usize];
        if v == 255 {
            return Err(NetError::Decode(format!(
                "invalid base64 character {:?}",
                b as char
            )));
        }
        buf = (buf << 6) | v as u32;
        bits += 6;
        if bits >= 8 {
            bits -= 8;
            out.push((buf >> bits) as u8);
        }
    }
    Ok(out)
}

/// Encodes `data` as standard base64 with padding.
pub fn base64_encode(data: &[u8]) -> String {
    b64_encode_with(data, STD_ALPHABET, true)
}

/// Decodes standard base64 (padding optional).
pub fn base64_decode(input: &str) -> Result<Vec<u8>, NetError> {
    b64_decode_with(input, STD_ALPHABET)
}

/// Encodes `data` as URL-safe base64 without padding.
pub fn base64url_encode(data: &[u8]) -> String {
    b64_encode_with(data, URL_ALPHABET, false)
}

/// Decodes URL-safe base64 (padding optional).
pub fn base64url_decode(input: &str) -> Result<Vec<u8>, NetError> {
    b64_decode_with(input, URL_ALPHABET)
}

/// Attempts base64 decoding with either alphabet and returns the decoded
/// bytes as a UTF-8 string when the result is printable text.
///
/// This is the permissive decoder the cookie analysis uses: tracking cookies
/// mix alphabets and frequently omit padding.
pub fn base64_decode_lossy_text(input: &str) -> Option<String> {
    if input.len() < 4 {
        return None;
    }
    let decoded = base64_decode(input)
        .or_else(|_| base64url_decode(input))
        .ok()?;
    let text = String::from_utf8(decoded).ok()?;
    if !text.is_empty()
        && text
            .chars()
            .all(|c| !c.is_control() || c == '\n' || c == '\t')
    {
        Some(text)
    } else {
        None
    }
}

/// Characters that do not require percent-encoding inside a URL query
/// component (RFC 3986 unreserved characters).
fn is_unreserved(b: u8) -> bool {
    b.is_ascii_alphanumeric() || matches!(b, b'-' | b'_' | b'.' | b'~')
}

/// Percent-encodes `input` so it can be embedded in a URL query component.
pub fn percent_encode(input: &str) -> String {
    let mut out = String::with_capacity(input.len());
    for &b in input.as_bytes() {
        if is_unreserved(b) {
            out.push(b as char);
        } else {
            out.push('%');
            out.push(
                char::from_digit((b >> 4) as u32, 16)
                    .unwrap()
                    .to_ascii_uppercase(),
            );
            out.push(
                char::from_digit((b & 15) as u32, 16)
                    .unwrap()
                    .to_ascii_uppercase(),
            );
        }
    }
    out
}

/// Decodes percent-encoding; `+` is additionally decoded to a space, as in
/// `application/x-www-form-urlencoded` query strings. Invalid escapes are
/// passed through verbatim (browsers are lenient here and so must the
/// measurement pipeline be).
pub fn percent_decode(input: &str) -> String {
    let bytes = input.as_bytes();
    let mut out: Vec<u8> = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes.get(i + 1).zip(bytes.get(i + 2));
                if let Some((&h, &l)) = hex {
                    let hv = (h as char).to_digit(16);
                    let lv = (l as char).to_digit(16);
                    if let (Some(hv), Some(lv)) = (hv, lv) {
                        out.push((hv * 16 + lv) as u8);
                        i += 3;
                        continue;
                    }
                }
                out.push(b'%');
                i += 1;
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base64_known_vectors() {
        // RFC 4648 test vectors.
        assert_eq!(base64_encode(b""), "");
        assert_eq!(base64_encode(b"f"), "Zg==");
        assert_eq!(base64_encode(b"fo"), "Zm8=");
        assert_eq!(base64_encode(b"foo"), "Zm9v");
        assert_eq!(base64_encode(b"foob"), "Zm9vYg==");
        assert_eq!(base64_encode(b"fooba"), "Zm9vYmE=");
        assert_eq!(base64_encode(b"foobar"), "Zm9vYmFy");
    }

    #[test]
    fn base64_roundtrip() {
        for data in [
            &b""[..],
            b"a",
            b"ab",
            b"abc",
            b"\x00\xff\x7f",
            b"192.168.1.1|uid=42",
        ] {
            assert_eq!(base64_decode(&base64_encode(data)).unwrap(), data);
        }
    }

    #[test]
    fn base64url_roundtrip_no_padding() {
        let data = b"\xfb\xff\xfe special?";
        let enc = base64url_encode(data);
        assert!(!enc.contains('='));
        assert!(!enc.contains('+'));
        assert!(!enc.contains('/'));
        assert_eq!(base64url_decode(&enc).unwrap(), data);
    }

    #[test]
    fn base64_rejects_garbage() {
        assert!(base64_decode("!!!!").is_err());
        assert!(base64_decode("abcde").is_err()); // len % 4 == 1
    }

    #[test]
    fn lossy_text_decoder_finds_embedded_ip() {
        let enc = base64_encode(b"ip=203.0.113.9;uid=abc123");
        let dec = base64_decode_lossy_text(&enc).unwrap();
        assert!(dec.contains("203.0.113.9"));
        // Binary payloads are rejected.
        assert_eq!(
            base64_decode_lossy_text(&base64_encode(&[0, 1, 2, 3])),
            None
        );
        // Too-short inputs are rejected.
        assert_eq!(base64_decode_lossy_text("ab"), None);
    }

    #[test]
    fn percent_roundtrip() {
        let raw = "id=42&loc=40.4168,-3.7038 city/Madrid";
        let enc = percent_encode(raw);
        assert!(!enc.contains(' '));
        assert!(!enc.contains(','));
        assert_eq!(percent_decode(&enc), raw);
    }

    #[test]
    fn percent_decode_is_lenient() {
        assert_eq!(percent_decode("100%"), "100%");
        assert_eq!(percent_decode("a%2"), "a%2");
        assert_eq!(percent_decode("a%zzb"), "a%zzb");
        assert_eq!(percent_decode("a+b"), "a b");
    }

    #[test]
    fn percent_encode_keeps_unreserved() {
        assert_eq!(percent_encode("AZaz09-_.~"), "AZaz09-_.~");
        assert_eq!(percent_encode("a b"), "a%20b");
        assert_eq!(percent_encode("100%"), "100%25");
    }
}
