//! RFC 6265 cookies (the subset trackers exercise).
//!
//! A [`Cookie`] models one `Set-Cookie` header: name, value, and the
//! attributes the study's analyses care about — `Domain` (host-only vs
//! domain cookie), `Path`, `Expires`/`Max-Age` (session vs persistent, the
//! §5.1.1 ID-cookie filter discards session cookies), `Secure` and
//! `HttpOnly`.

use serde::{Deserialize, Serialize};

use crate::error::NetError;

/// `SameSite` attribute values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SameSite {
    /// `SameSite=Strict`.
    Strict,
    /// `SameSite=Lax`.
    Lax,
    /// `SameSite=None`.
    None,
}

/// A parsed cookie.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cookie {
    /// Name.
    pub name: String,
    /// Value.
    pub value: String,
    /// `Domain` attribute (without leading dot); `None` ⇒ host-only cookie.
    pub domain: Option<String>,
    /// `Path` attribute; `None` ⇒ default path of the request URL.
    pub path: Option<String>,
    /// Lifetime in seconds from `Max-Age` (or converted `Expires`);
    /// `None` ⇒ session cookie.
    pub max_age: Option<i64>,
    /// Secure.
    pub secure: bool,
    /// HTTP only.
    pub http_only: bool,
    /// Same site.
    pub same_site: Option<SameSite>,
}

impl Cookie {
    /// A session cookie with just a name and value.
    pub fn new(name: impl Into<String>, value: impl Into<String>) -> Cookie {
        Cookie {
            name: name.into(),
            value: value.into(),
            domain: None,
            path: None,
            max_age: None,
            secure: false,
            http_only: false,
            same_site: None,
        }
    }

    /// Sets the `Domain` attribute (builder).
    pub fn with_domain(mut self, domain: impl Into<String>) -> Cookie {
        let d: String = domain.into();
        self.domain = Some(d.trim_start_matches('.').to_ascii_lowercase());
        self
    }

    /// Sets the `Path` attribute (builder).
    pub fn with_path(mut self, path: impl Into<String>) -> Cookie {
        self.path = Some(path.into());
        self
    }

    /// Sets `Max-Age` in seconds (builder); makes the cookie persistent.
    pub fn with_max_age(mut self, seconds: i64) -> Cookie {
        self.max_age = Some(seconds);
        self
    }

    /// Sets the `Secure` flag (builder).
    pub fn secure(mut self) -> Cookie {
        self.secure = true;
        self
    }

    /// Sets the `HttpOnly` flag (builder).
    pub fn http_only(mut self) -> Cookie {
        self.http_only = true;
        self
    }

    /// `true` when the cookie has no expiry — a session cookie, discarded by
    /// the ID-cookie filter (§5.1.1).
    pub fn is_session(&self) -> bool {
        self.max_age.is_none()
    }

    /// Parses one `Set-Cookie` header value.
    ///
    /// Unknown attributes are ignored; `Expires` is accepted and treated as a
    /// persistent marker with a synthetic max-age when `Max-Age` is absent
    /// (the measurement pipeline only needs session vs persistent).
    pub fn parse_set_cookie(header: &str) -> Result<Cookie, NetError> {
        let mut parts = header.split(';');
        let first = parts
            .next()
            .ok_or_else(|| NetError::InvalidCookie(header.to_string()))?;
        let (name, value) = first
            .split_once('=')
            .ok_or_else(|| NetError::InvalidCookie(header.to_string()))?;
        let name = name.trim();
        if name.is_empty() {
            return Err(NetError::InvalidCookie(header.to_string()));
        }
        let mut cookie = Cookie::new(name, value.trim());
        for attr in parts {
            let attr = attr.trim();
            let (key, val) = match attr.split_once('=') {
                Some((k, v)) => (k.trim().to_ascii_lowercase(), v.trim()),
                None => (attr.to_ascii_lowercase(), ""),
            };
            match key.as_str() {
                "domain" if !val.is_empty() => {
                    cookie.domain = Some(val.trim_start_matches('.').to_ascii_lowercase());
                }
                "path" if !val.is_empty() => cookie.path = Some(val.to_string()),
                "max-age" => {
                    if let Ok(secs) = val.parse::<i64>() {
                        cookie.max_age = Some(secs);
                    }
                }
                "expires" if cookie.max_age.is_none() && !val.is_empty() => {
                    // Keep it simple: any parseable-looking Expires makes the
                    // cookie persistent for one synthetic year.
                    cookie.max_age = Some(365 * 24 * 3600);
                }
                "secure" => cookie.secure = true,
                "httponly" => cookie.http_only = true,
                "samesite" => {
                    cookie.same_site = match val.to_ascii_lowercase().as_str() {
                        "strict" => Some(SameSite::Strict),
                        "lax" => Some(SameSite::Lax),
                        "none" => Some(SameSite::None),
                        _ => None,
                    };
                }
                _ => {}
            }
        }
        Ok(cookie)
    }

    /// Serializes to a `Set-Cookie` header value.
    pub fn to_set_cookie(&self) -> String {
        let mut s = format!("{}={}", self.name, self.value);
        if let Some(d) = &self.domain {
            s.push_str("; Domain=");
            s.push_str(d);
        }
        if let Some(p) = &self.path {
            s.push_str("; Path=");
            s.push_str(p);
        }
        if let Some(age) = self.max_age {
            s.push_str(&format!("; Max-Age={age}"));
        }
        if self.secure {
            s.push_str("; Secure");
        }
        if self.http_only {
            s.push_str("; HttpOnly");
        }
        if let Some(ss) = self.same_site {
            s.push_str(match ss {
                SameSite::Strict => "; SameSite=Strict",
                SameSite::Lax => "; SameSite=Lax",
                SameSite::None => "; SameSite=None",
            });
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_cookie() {
        let c = Cookie::parse_set_cookie("sid=abc123").unwrap();
        assert_eq!(c.name, "sid");
        assert_eq!(c.value, "abc123");
        assert!(c.is_session());
        assert!(c.domain.is_none());
    }

    #[test]
    fn parses_full_attribute_set() {
        let c = Cookie::parse_set_cookie(
            "uid=x1y2; Domain=.exosrv.com; Path=/; Max-Age=31536000; Secure; HttpOnly; SameSite=None",
        )
        .unwrap();
        assert_eq!(c.domain.as_deref(), Some("exosrv.com"));
        assert_eq!(c.path.as_deref(), Some("/"));
        assert_eq!(c.max_age, Some(31536000));
        assert!(c.secure && c.http_only);
        assert_eq!(c.same_site, Some(SameSite::None));
        assert!(!c.is_session());
    }

    #[test]
    fn expires_makes_cookie_persistent() {
        let c = Cookie::parse_set_cookie("a=b; Expires=Wed, 21 Oct 2026 07:28:00 GMT").unwrap();
        assert!(!c.is_session());
    }

    #[test]
    fn max_age_wins_over_expires() {
        let c = Cookie::parse_set_cookie("a=b; Max-Age=60; Expires=Wed, 21 Oct 2026 07:28:00 GMT")
            .unwrap();
        assert_eq!(c.max_age, Some(60));
    }

    #[test]
    fn rejects_nameless() {
        assert!(Cookie::parse_set_cookie("").is_err());
        assert!(Cookie::parse_set_cookie("=value").is_err());
        assert!(Cookie::parse_set_cookie("novalue").is_err());
    }

    #[test]
    fn value_may_contain_equals() {
        let c = Cookie::parse_set_cookie("data=a=b=c").unwrap();
        assert_eq!(c.value, "a=b=c");
    }

    #[test]
    fn roundtrip() {
        let c = Cookie::new("uid", "42")
            .with_domain(".Tracker.COM")
            .with_path("/sync")
            .with_max_age(3600)
            .secure();
        let parsed = Cookie::parse_set_cookie(&c.to_set_cookie()).unwrap();
        assert_eq!(parsed, c);
        assert_eq!(parsed.domain.as_deref(), Some("tracker.com"));
    }

    #[test]
    fn unknown_attributes_are_ignored() {
        let c = Cookie::parse_set_cookie("a=b; Priority=High; Partitioned").unwrap();
        assert_eq!(c.name, "a");
    }
}
