//! # redlight-report
//!
//! Rendering of study results: ASCII tables matching the paper's layout,
//! textual figure series, and side-by-side comparison against the values
//! the paper reports (for EXPERIMENTS.md).

#![warn(missing_docs)]

pub mod figure;
pub mod paper;
pub mod table;

pub use table::Table;
