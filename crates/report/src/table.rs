//! ASCII table rendering.

/// Horizontal alignment of one column's cells.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Align {
    /// Left-aligned (the default for every column).
    #[default]
    Left,
    /// Right-aligned — what numeric columns want.
    Right,
}

/// A simple column-aligned table builder.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
    aligns: Vec<Align>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, header: &[&str]) -> Table {
        Table {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            aligns: Vec::new(),
        }
    }

    /// Right-aligns the columns at `indices` (0-based). Columns not named
    /// stay left-aligned, so existing tables render unchanged.
    pub fn align_right(mut self, indices: &[usize]) -> Table {
        let max = indices.iter().copied().max().map_or(0, |m| m + 1);
        if self.aligns.len() < max {
            self.aligns.resize(max, Align::Left);
        }
        for &i in indices {
            self.aligns[i] = Align::Right;
        }
        self
    }

    /// Appends one row (stringified cells).
    pub fn row<S: ToString>(&mut self, cells: &[S]) -> &mut Table {
        self.rows
            .push(cells.iter().map(|c| c.to_string()).collect());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with column alignment.
    pub fn render(&self) -> String {
        let ncols = self
            .header
            .len()
            .max(self.rows.iter().map(|r| r.len()).max().unwrap_or(0));
        let mut widths = vec![0usize; ncols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let sep: String = widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("+");

        let fmt_row = |cells: &[String]| -> String {
            (0..ncols)
                .map(|i| {
                    let cell = cells.get(i).map(String::as_str).unwrap_or("");
                    match self.aligns.get(i).copied().unwrap_or_default() {
                        Align::Left => format!(" {cell:<width$} ", width = widths[i]),
                        Align::Right => format!(" {cell:>width$} ", width = widths[i]),
                    }
                })
                .collect::<Vec<_>>()
                .join("|")
        };

        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

impl Table {
    /// Renders as a GitHub-flavored markdown table.
    pub fn render_markdown(&self) -> String {
        let ncols = self
            .header
            .len()
            .max(self.rows.iter().map(|r| r.len()).max().unwrap_or(0));
        let cell = |cells: &[String]| -> String {
            let body = (0..ncols)
                .map(|i| {
                    cells
                        .get(i)
                        .map(String::as_str)
                        .unwrap_or("")
                        .replace('|', "\\|")
                })
                .collect::<Vec<_>>()
                .join(" | ");
            format!("| {body} |")
        };
        let mut out = format!("### {}\n\n", self.title);
        out.push_str(&cell(&self.header));
        out.push('\n');
        out.push_str(&format!("|{}\n", "---|".repeat(ncols)));
        for row in &self.rows {
            out.push_str(&cell(row));
            out.push('\n');
        }
        out
    }
}

/// Formats a percentage with one decimal.
pub fn fmt_pct(value: f64) -> String {
    format!("{value:.1}%")
}

/// Formats a count with thousands separators.
pub fn fmt_count(n: usize) -> String {
    let s = n.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("Demo", &["Domain", "Sites"]);
        t.row(&["exoclick.com", "2709"]);
        t.row(&["x.party", "18"]);
        let s = t.render();
        assert!(s.contains("== Demo =="));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
        // Column alignment: all rows same display width.
        assert_eq!(lines[1].len(), lines[3].len());
        assert_eq!(lines[3].len(), lines[4].len());
    }

    #[test]
    fn right_aligned_columns_pad_on_the_left() {
        let mut t = Table::new("Demo", &["Domain", "Sites"]).align_right(&[1]);
        t.row(&["exoclick.com", "2,709"]);
        t.row(&["x.party", "18"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        // Narrow numbers shift right: "18" ends where "2,709" ends.
        assert!(lines[3].ends_with("2,709 "));
        assert!(lines[4].ends_with("   18 "));
        // Width alignment is preserved.
        assert_eq!(lines[3].len(), lines[4].len());
    }

    #[test]
    fn count_formatting() {
        assert_eq!(fmt_count(5), "5");
        assert_eq!(fmt_count(6843), "6,843");
        assert_eq!(fmt_count(1202312), "1,202,312");
        assert_eq!(fmt_pct(43.21), "43.2%");
    }

    #[test]
    fn markdown_rendering_escapes_pipes() {
        let mut t = Table::new("MD", &["a", "b"]);
        t.row(&["x|y", "2"]);
        let md = t.render_markdown();
        assert!(md.starts_with("### MD"));
        assert!(md.contains("| a | b |"));
        assert!(md.contains("|---|---|"));
        assert!(md.contains("x\\|y"));
    }

    #[test]
    fn ragged_rows_are_padded() {
        let mut t = Table::new("R", &["a", "b", "c"]);
        t.row(&["1"]);
        t.row(&["1", "2", "3"]);
        let s = t.render();
        assert_eq!(s.lines().count(), 5);
        assert!(!t.is_empty());
        assert_eq!(t.len(), 2);
    }
}
