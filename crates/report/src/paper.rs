//! The paper's reported values, for side-by-side comparison.
//!
//! Every constant carries the table/figure/section it comes from, so
//! EXPERIMENTS.md can print *paper vs measured* rows mechanically. Values
//! are the published aggregates of Vallina et al., IMC'19.

/// One expected value with provenance.
#[derive(Debug, Clone, Copy)]
pub struct Expected {
    /// Identifier, e.g. `"table2.porn_third_party"`.
    pub key: &'static str,
    /// Where the paper states it.
    pub source: &'static str,
    /// The published value.
    pub value: f64,
    /// Acceptable relative deviation for a "shape holds" verdict (the
    /// substrate is a simulator, not the authors' testbed).
    pub tolerance: f64,
    /// The paper states this value as a lower bound ("over 30 %"): any
    /// measurement at or above `value · (1 − tolerance)` keeps the shape.
    pub lower_bound: bool,
}

/// The full expectations registry.
pub const EXPECTED: &[Expected] = &[
    // §3 corpus compilation.
    Expected {
        key: "corpus.candidates",
        source: "§3",
        value: 8_099.0,
        tolerance: 0.02,
        lower_bound: false,
    },
    Expected {
        key: "corpus.false_positives",
        source: "§3",
        value: 1_256.0,
        tolerance: 0.02,
        lower_bound: false,
    },
    Expected {
        key: "corpus.sanitized",
        source: "§3",
        value: 6_843.0,
        tolerance: 0.02,
        lower_bound: false,
    },
    Expected {
        key: "corpus.regular_reference",
        source: "§3",
        value: 9_688.0,
        tolerance: 0.10,
        lower_bound: false,
    },
    // Fig. 1.
    Expected {
        key: "fig1.always_top1m_pct",
        source: "Fig. 1 / §3",
        value: 16.0,
        tolerance: 0.25,
        lower_bound: false,
    },
    Expected {
        key: "fig1.always_top1k",
        source: "§3",
        value: 16.0,
        tolerance: 0.60,
        lower_bound: false,
    },
    // §4.1 ownership.
    Expected {
        key: "owners.companies",
        source: "§4.1",
        value: 24.0,
        tolerance: 0.30,
        lower_bound: false,
    },
    Expected {
        key: "owners.attributed_sites",
        source: "§4.1",
        value: 286.0,
        tolerance: 0.30,
        lower_bound: false,
    },
    Expected {
        key: "owners.unattributed_pct",
        source: "§4.1",
        value: 96.0,
        tolerance: 0.05,
        lower_bound: false,
    },
    Expected {
        key: "monetization.subscription_pct",
        source: "§4.1",
        value: 14.0,
        tolerance: 0.30,
        lower_bound: false,
    },
    Expected {
        key: "monetization.paid_pct",
        source: "§4.1",
        value: 23.0,
        tolerance: 0.35,
        lower_bound: false,
    },
    // Table 2.
    Expected {
        key: "table2.porn_crawled",
        source: "Table 2",
        value: 6_346.0,
        tolerance: 0.03,
        lower_bound: false,
    },
    Expected {
        key: "table2.regular_crawled",
        source: "Table 2",
        value: 8_511.0,
        tolerance: 0.06,
        lower_bound: false,
    },
    Expected {
        key: "table2.porn_third_party",
        source: "Table 2",
        value: 5_457.0,
        tolerance: 0.30,
        lower_bound: false,
    },
    Expected {
        key: "table2.regular_third_party",
        source: "Table 2",
        value: 21_128.0,
        tolerance: 0.35,
        lower_bound: false,
    },
    Expected {
        key: "table2.porn_ats",
        source: "Table 2",
        value: 663.0,
        tolerance: 0.30,
        lower_bound: false,
    },
    Expected {
        key: "table2.regular_ats",
        source: "Table 2",
        value: 196.0,
        tolerance: 0.35,
        lower_bound: false,
    },
    Expected {
        key: "table2.ats_intersection",
        source: "Table 2",
        value: 86.0,
        tolerance: 0.60,
        lower_bound: false,
    },
    // §4.2 attribution.
    Expected {
        key: "orgs.resolved_pct",
        source: "§4.2(3)",
        value: 74.0,
        tolerance: 0.25,
        lower_bound: false,
    },
    Expected {
        key: "orgs.companies",
        source: "§4.2(3)",
        value: 1_014.0,
        tolerance: 0.90,
        lower_bound: false,
    },
    Expected {
        key: "fig3.alphabet_pct",
        source: "Fig. 3",
        value: 74.0,
        tolerance: 0.15,
        lower_bound: false,
    },
    Expected {
        key: "fig3.exoclick_pct",
        source: "§4.2.1/Fig. 3",
        value: 43.0,
        tolerance: 0.20,
        lower_bound: false,
    },
    Expected {
        key: "fig3.cloudflare_pct",
        source: "Fig. 3",
        value: 35.0,
        tolerance: 0.25,
        lower_bound: false,
    },
    // §5.1.1 cookies.
    Expected {
        key: "cookies.total",
        source: "§5.1.1",
        value: 89_009.0,
        tolerance: 0.40,
        lower_bound: false,
    },
    Expected {
        key: "cookies.sites_pct",
        source: "§5.1.1",
        value: 92.0,
        tolerance: 0.10,
        lower_bound: false,
    },
    Expected {
        key: "cookies.id_cookies",
        source: "§5.1.1",
        value: 51_648.0,
        tolerance: 0.45,
        lower_bound: false,
    },
    Expected {
        key: "cookies.third_party_id",
        source: "§5.1.1",
        value: 30_247.0,
        tolerance: 0.45,
        lower_bound: false,
    },
    Expected {
        key: "cookies.third_party_domains",
        source: "§5.1.1",
        value: 3_343.0,
        tolerance: 0.30,
        lower_bound: false,
    },
    Expected {
        key: "cookies.third_party_sites_pct",
        source: "§5.1.1",
        value: 72.0,
        tolerance: 0.15,
        lower_bound: false,
    },
    Expected {
        key: "cookies.ip_cookies",
        source: "§5.1.1",
        value: 2_183.0,
        tolerance: 0.45,
        lower_bound: false,
    },
    Expected {
        key: "cookies.ip_top_org_pct",
        source: "§5.1.1",
        value: 97.0,
        tolerance: 0.10,
        lower_bound: false,
    },
    Expected {
        key: "cookies.geo_cookies",
        source: "§5.1.1",
        value: 28.0,
        tolerance: 0.60,
        lower_bound: false,
    },
    Expected {
        key: "cookies.top100_site_pct",
        source: "§5.1.1",
        value: 30.0,
        tolerance: 0.05,
        lower_bound: true,
    },
    Expected {
        key: "table4.exosrv_pct",
        source: "Table 4",
        value: 21.0,
        tolerance: 0.20,
        lower_bound: false,
    },
    Expected {
        key: "table4.exosrv_ip_pct",
        source: "Table 4",
        value: 85.0,
        tolerance: 0.12,
        lower_bound: false,
    },
    Expected {
        key: "table4.exoclick_pct",
        source: "Table 4",
        value: 14.0,
        tolerance: 0.25,
        lower_bound: false,
    },
    Expected {
        key: "table4.exoclick_ip_pct",
        source: "Table 4",
        value: 29.0,
        tolerance: 0.30,
        lower_bound: false,
    },
    Expected {
        key: "table4.addthis_pct",
        source: "Table 4",
        value: 17.0,
        tolerance: 0.25,
        lower_bound: false,
    },
    // §5.1.2 syncing.
    Expected {
        key: "sync.sites",
        source: "§5.1.2",
        value: 2_867.0,
        tolerance: 0.35,
        lower_bound: false,
    },
    Expected {
        key: "sync.pairs",
        source: "§5.1.2",
        value: 4_675.0,
        tolerance: 0.45,
        lower_bound: false,
    },
    Expected {
        key: "sync.origins",
        source: "§5.1.2",
        value: 1_120.0,
        tolerance: 0.45,
        lower_bound: false,
    },
    Expected {
        key: "sync.destinations",
        source: "§5.1.2",
        value: 727.0,
        tolerance: 0.45,
        lower_bound: false,
    },
    Expected {
        key: "sync.top100_pct",
        source: "§5.1.2",
        value: 58.0,
        tolerance: 0.30,
        lower_bound: false,
    },
    // §5.1.3 fingerprinting.
    Expected {
        key: "fp.canvas_scripts",
        source: "§5.1.3",
        value: 245.0,
        tolerance: 0.30,
        lower_bound: false,
    },
    Expected {
        key: "fp.canvas_sites",
        source: "§5.1.3",
        value: 315.0,
        tolerance: 0.30,
        lower_bound: false,
    },
    Expected {
        key: "fp.canvas_services",
        source: "§5.1.3",
        value: 49.0,
        tolerance: 0.30,
        lower_bound: false,
    },
    Expected {
        key: "fp.third_party_script_pct",
        source: "§5.1.3",
        value: 74.0,
        tolerance: 0.15,
        lower_bound: false,
    },
    Expected {
        key: "fp.unindexed_pct",
        source: "§5.1.3",
        value: 91.0,
        tolerance: 0.08,
        lower_bound: false,
    },
    Expected {
        key: "fp.font_scripts",
        source: "§5.1.3",
        value: 1.0,
        tolerance: 0.0,
        lower_bound: false,
    },
    // §5.1.4 WebRTC.
    Expected {
        key: "webrtc.scripts",
        source: "§5.1.4",
        value: 27.0,
        tolerance: 0.40,
        lower_bound: false,
    },
    Expected {
        key: "webrtc.sites",
        source: "§5.1.4",
        value: 177.0,
        tolerance: 0.35,
        lower_bound: false,
    },
    Expected {
        key: "webrtc.services",
        source: "§5.1.4",
        value: 13.0,
        tolerance: 0.40,
        lower_bound: false,
    },
    Expected {
        key: "webrtc.ats_services",
        source: "§5.1.4",
        value: 2.0,
        tolerance: 0.55,
        lower_bound: false,
    },
    // §5.2 / Table 6. The Top1k stratum is tiny (75 of 6,843 sites at paper
    // scale, ~10 at the reduced test scale), so one site moves the
    // percentage by whole points: the tolerance must cover single-site
    // binomial noise at reduced scale.
    Expected {
        key: "table6.top1k_sites_pct",
        source: "Table 6",
        value: 92.0,
        tolerance: 0.15,
        lower_bound: false,
    },
    Expected {
        key: "table6.to10k_sites_pct",
        source: "Table 6",
        value: 63.0,
        tolerance: 0.25,
        lower_bound: false,
    },
    Expected {
        key: "table6.to100k_sites_pct",
        source: "Table 6",
        value: 32.0,
        tolerance: 0.25,
        lower_bound: false,
    },
    Expected {
        key: "table6.beyond_sites_pct",
        source: "Table 6",
        value: 22.0,
        tolerance: 0.30,
        lower_bound: false,
    },
    Expected {
        key: "https.not_fully_pct",
        source: "§5.2",
        value: 68.0,
        tolerance: 0.20,
        lower_bound: false,
    },
    // §5.3 malware.
    Expected {
        key: "malware.flagged_sites",
        source: "§5.3",
        value: 7.0,
        tolerance: 0.60,
        lower_bound: false,
    },
    Expected {
        key: "malware.flagged_services",
        source: "§5.3",
        value: 16.0,
        tolerance: 0.45,
        lower_bound: false,
    },
    Expected {
        key: "malware.sites_with_flagged",
        source: "§5.3",
        value: 41.0,
        tolerance: 0.50,
        lower_bound: false,
    },
    Expected {
        key: "malware.mining_sites",
        source: "§5.3",
        value: 8.0,
        tolerance: 0.50,
        lower_bound: false,
    },
    Expected {
        key: "malware.mining_services",
        source: "§5.3",
        value: 3.0,
        tolerance: 0.35,
        lower_bound: false,
    },
    // §6 / Table 7.
    Expected {
        key: "table7.spain_fqdns",
        source: "Table 7",
        value: 5_494.0,
        tolerance: 0.30,
        lower_bound: false,
    },
    Expected {
        key: "table7.russia_fqdns",
        source: "Table 7",
        value: 4_750.0,
        tolerance: 0.30,
        lower_bound: false,
    },
    Expected {
        key: "table7.russia_unique_ats",
        source: "Table 7",
        value: 27.0,
        tolerance: 0.40,
        lower_bound: false,
    },
    Expected {
        key: "table7.total_ats",
        source: "Table 7",
        value: 816.0,
        tolerance: 0.35,
        lower_bound: false,
    },
    // §7.1 / Table 8.
    Expected {
        key: "table8.eu_total_pct",
        source: "Table 8",
        value: 4.41,
        tolerance: 0.30,
        lower_bound: false,
    },
    Expected {
        key: "table8.usa_total_pct",
        source: "Table 8",
        value: 3.76,
        tolerance: 0.30,
        lower_bound: false,
    },
    Expected {
        key: "table8.no_option_share_pct",
        source: "§7.1",
        value: 32.0,
        tolerance: 0.35,
        lower_bound: false,
    },
    // §7.2 age verification.
    Expected {
        key: "agegate.west_pct",
        source: "§7.2",
        value: 20.0,
        tolerance: 0.30,
        lower_bound: false,
    },
    Expected {
        key: "agegate.russia_pct",
        source: "§7.2",
        value: 14.0,
        tolerance: 0.40,
        lower_bound: false,
    },
    Expected {
        key: "agegate.russia_only_pct",
        source: "§7.2",
        value: 8.0,
        tolerance: 0.60,
        lower_bound: false,
    },
    Expected {
        key: "agegate.not_in_russia_pct",
        source: "§7.2",
        value: 12.0,
        tolerance: 0.60,
        lower_bound: false,
    },
    // §7.3 policies.
    Expected {
        key: "policies.with_policy_pct",
        source: "§7.3",
        value: 16.0,
        tolerance: 0.20,
        lower_bound: false,
    },
    Expected {
        key: "policies.gdpr_pct",
        source: "§7.3",
        value: 20.0,
        tolerance: 0.30,
        lower_bound: false,
    },
    Expected {
        key: "policies.mean_letters",
        source: "§7.3",
        value: 17_159.0,
        tolerance: 0.40,
        lower_bound: false,
    },
    Expected {
        key: "policies.similar_pairs_pct",
        source: "§7.3",
        value: 76.0,
        tolerance: 0.20,
        lower_bound: false,
    },
];

/// Looks up an expectation.
pub fn expected(key: &str) -> Option<&'static Expected> {
    EXPECTED.iter().find(|e| e.key == key)
}

/// One measured-vs-paper comparison row.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Key.
    pub key: &'static str,
    /// Source.
    pub source: &'static str,
    /// Paper.
    pub paper: f64,
    /// Measured.
    pub measured: f64,
    /// Within tolerance.
    pub within_tolerance: bool,
}

/// Compares a measurement against the registry. Unknown keys panic: every
/// reported number must trace back to the paper.
pub fn compare(key: &str, measured: f64) -> Comparison {
    let exp = expected(key).unwrap_or_else(|| panic!("no expectation registered for {key}"));
    let within = if exp.lower_bound {
        measured >= exp.value * (1.0 - exp.tolerance)
    } else if exp.value == 0.0 {
        measured.abs() < 1e-9
    } else {
        ((measured - exp.value) / exp.value).abs() <= exp.tolerance
    };
    Comparison {
        key: exp.key,
        source: exp.source,
        paper: exp.value,
        measured,
        within_tolerance: within,
    }
}

/// Renders comparison rows as a markdown table (EXPERIMENTS.md format).
pub fn render_comparisons(title: &str, rows: &[Comparison]) -> String {
    let mut out =
        format!("### {title}\n\n| metric | paper | measured | shape |\n|---|---|---|---|\n");
    for c in rows {
        out.push_str(&format!(
            "| `{}` ({}) | {:.5} | {:.5} | {} |\n",
            c.key,
            c.source,
            c.paper,
            c.measured,
            if c.within_tolerance {
                "✓"
            } else {
                "✗ drift"
            }
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_lookup_and_tolerance() {
        let c = compare("corpus.sanitized", 6_843.0);
        assert!(c.within_tolerance);
        let c2 = compare("corpus.sanitized", 5_000.0);
        assert!(!c2.within_tolerance);
        assert!(expected("nope").is_none());
        // Lower-bound metrics accept anything at/above the stated floor.
        assert!(compare("cookies.top100_site_pct", 64.0).within_tolerance);
        assert!(compare("cookies.top100_site_pct", 31.0).within_tolerance);
        assert!(!compare("cookies.top100_site_pct", 20.0).within_tolerance);
    }

    #[test]
    fn all_keys_are_unique() {
        let mut keys: Vec<&str> = EXPECTED.iter().map(|e| e.key).collect();
        let n = keys.len();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), n, "duplicate expectation keys");
    }

    #[test]
    fn markdown_rendering() {
        let rows = vec![compare("fig1.always_top1m_pct", 15.5)];
        let md = render_comparisons("Fig. 1", &rows);
        assert!(md.contains("| `fig1.always_top1m_pct`"));
        assert!(md.contains("✓"));
    }
}
