//! Textual figure rendering: downsampled series and sparkline-style output
//! for the paper's figures.

/// A named numeric series.
#[derive(Debug, Clone)]
pub struct Series {
    /// Name.
    pub name: String,
    /// Values.
    pub values: Vec<f64>,
}

impl Series {
    /// Creates a series.
    pub fn new(name: &str, values: Vec<f64>) -> Series {
        Series {
            name: name.to_string(),
            values,
        }
    }

    /// Downsamples to at most `n` points (mean-pooled buckets).
    pub fn downsample(&self, n: usize) -> Vec<f64> {
        if self.values.is_empty() || n == 0 {
            return Vec::new();
        }
        if self.values.len() <= n {
            return self.values.clone();
        }
        let bucket = self.values.len() as f64 / n as f64;
        (0..n)
            .map(|i| {
                let start = (i as f64 * bucket) as usize;
                let end = (((i + 1) as f64 * bucket) as usize).min(self.values.len());
                let slice = &self.values[start..end.max(start + 1)];
                slice.iter().sum::<f64>() / slice.len() as f64
            })
            .collect()
    }

    /// Unicode sparkline over ≤ `width` buckets.
    pub fn sparkline(&self, width: usize) -> String {
        const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
        let pts = self.downsample(width);
        if pts.is_empty() {
            return String::new();
        }
        let (min, max) = pts
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
                (lo.min(v), hi.max(v))
            });
        let span = (max - min).max(f64::EPSILON);
        pts.iter()
            .map(|&v| {
                let idx = (((v - min) / span) * 7.0).round() as usize;
                BARS[idx.min(7)]
            })
            .collect()
    }
}

/// Renders a figure: one sparkline per series, labeled with min/max.
pub fn render(title: &str, series: &[Series], width: usize) -> String {
    let mut out = format!("== {title} ==\n");
    for s in series {
        let (min, max) = s
            .values
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
                (lo.min(v), hi.max(v))
            });
        if s.values.is_empty() {
            out.push_str(&format!("{:<24} (empty)\n", s.name));
        } else {
            out.push_str(&format!(
                "{:<24} {}  [{:.3e} .. {:.3e}]\n",
                s.name,
                s.sparkline(width),
                min,
                max
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn downsampling_preserves_mean_shape() {
        let s = Series::new("ramp", (0..100).map(|i| i as f64).collect());
        let d = s.downsample(10);
        assert_eq!(d.len(), 10);
        assert!(d.windows(2).all(|w| w[0] < w[1]), "monotonic ramp survives");
        // Short series pass through.
        let short = Series::new("s", vec![1.0, 2.0]);
        assert_eq!(short.downsample(10), vec![1.0, 2.0]);
    }

    #[test]
    fn sparkline_spans_the_alphabet() {
        let s = Series::new("ramp", (0..64).map(|i| i as f64).collect());
        let line = s.sparkline(16);
        assert_eq!(line.chars().count(), 16);
        assert!(line.starts_with('▁'));
        assert!(line.ends_with('█'));
    }

    #[test]
    fn render_includes_labels() {
        let fig = render(
            "Figure 1",
            &[Series::new("best rank", vec![22.0, 500.0, 900000.0])],
            8,
        );
        assert!(fig.contains("Figure 1"));
        assert!(fig.contains("best rank"));
        let empty = render("E", &[Series::new("none", vec![])], 8);
        assert!(empty.contains("(empty)"));
    }
}
