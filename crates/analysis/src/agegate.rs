//! Age-verification analysis (§7.2).
//!
//! The paper studies the top-50 most popular porn sites manually across
//! four countries (US, UK, Spain, Russia): which sites gate at all, how the
//! set differs in Russia, and whether any gate is *verifiable* (the crawler
//! failing to bypass it is the bar — "if our automatic crawler manages to
//! bypass the mechanism, a child could do it as well").

use std::collections::BTreeSet;

use redlight_net::geoip::Country;
use serde::{Deserialize, Serialize};

use crate::util::pct;
use redlight_crawler::db::{CrawlRecord, InteractionRecord};

/// Per-country gate statistics over the studied site set.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CountryGates {
    /// Vantage-point country of these records.
    pub country: Country,
    /// Sites studied (the paper's top-50 subset).
    pub studied: usize,
    /// Sites showing an age-verification mechanism.
    pub with_gate: usize,
    /// Share of studied sites with a gate.
    pub with_gate_pct: f64,
    /// Gates the crawler clicked through (trivially bypassable).
    pub bypassed: usize,
    /// Gates requiring a social-network login (verifiable).
    pub social_login: usize,
}

/// Cross-country comparison (the §7.2 narrative numbers).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AgeGateComparison {
    /// Per country.
    pub per_country: Vec<CountryGates>,
    /// Sites gating in Russia but nowhere else (% of studied).
    pub russia_only_pct: f64,
    /// Sites gating everywhere except Russia (% of studied).
    pub not_in_russia_pct: f64,
    /// Every bypassable gate is unverifiable; this is the share of gates
    /// (outside social-login ones) the crawler defeated.
    pub bypass_rate_pct: f64,
}

/// Summarizes one country's interaction records.
pub fn country_stats(records: &[&InteractionRecord]) -> CountryGates {
    let country = records.first().map(|r| r.country).unwrap_or(Country::Spain);
    let studied = records.len();
    let gated: Vec<&&InteractionRecord> = records.iter().filter(|r| r.age_gate_detected).collect();
    CountryGates {
        country,
        studied,
        with_gate: gated.len(),
        with_gate_pct: pct(gated.len(), studied.max(1)),
        bypassed: gated.iter().filter(|r| r.age_gate_bypassed).count(),
        social_login: gated.iter().filter(|r| r.social_login_gate).count(),
    }
}

/// Compares countries over the same studied domains.
pub fn compare(per_country: &[Vec<InteractionRecord>]) -> AgeGateComparison {
    let stats: Vec<CountryGates> = per_country
        .iter()
        .map(|records| country_stats(&records.iter().collect::<Vec<_>>()))
        .collect();

    let gated_in = |country: Country| -> BTreeSet<&str> {
        per_country
            .iter()
            .flatten()
            .filter(|r| r.country == country && r.age_gate_detected)
            .map(|r| r.domain.as_str())
            .collect()
    };
    let russia = gated_in(Country::Russia);
    let elsewhere: BTreeSet<&str> = [Country::Usa, Country::Uk, Country::Spain]
        .into_iter()
        .flat_map(gated_in)
        .collect();
    let studied = per_country.first().map(|v| v.len()).unwrap_or(0);

    let total_gates: usize = stats.iter().map(|s| s.with_gate).sum();
    let total_social: usize = stats.iter().map(|s| s.social_login).sum();
    let total_bypassed: usize = stats.iter().map(|s| s.bypassed).sum();

    AgeGateComparison {
        russia_only_pct: pct(russia.difference(&elsewhere).count(), studied.max(1)),
        not_in_russia_pct: pct(elsewhere.difference(&russia).count(), studied.max(1)),
        bypass_rate_pct: pct(
            total_bypassed,
            total_gates.saturating_sub(total_social).max(1),
        ),
        per_country: stats,
    }
}

/// RTA (Restricted-To-Adults) label prevalence (§2.1): the ASACP meta tag
/// parents' filters key on. Detected from the crawled markup.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RtaReport {
    /// Sites checked.
    pub sites_checked: usize,
    /// With rta label.
    pub with_rta_label: usize,
    /// With rta percentage.
    pub with_rta_pct: f64,
}

/// Scans a crawl (with stored DOM) for the RTA meta tag.
pub fn rta_prevalence(crawl: &CrawlRecord) -> RtaReport {
    let mut checked = 0usize;
    let mut with_label = 0usize;
    for record in crawl.successful() {
        if record.visit.dom_html.is_empty() {
            continue;
        }
        checked += 1;
        let doc = redlight_html::parser::parse(&record.visit.dom_html);
        let labeled = redlight_html::query::by_tag(&doc, "meta")
            .into_iter()
            .any(|id| {
                doc.element(id).is_some_and(|e| {
                    e.attr("name")
                        .is_some_and(|n| n.eq_ignore_ascii_case("rating"))
                        && e.attr("content").is_some_and(|c| c.contains("RTA-"))
                })
            });
        if labeled {
            with_label += 1;
        }
    }
    RtaReport {
        sites_checked: checked,
        with_rta_label: with_label,
        with_rta_pct: pct(with_label, checked.max(1)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(
        domain: &str,
        country: Country,
        gate: bool,
        bypassed: bool,
        social: bool,
    ) -> InteractionRecord {
        InteractionRecord {
            domain: domain.into(),
            country,
            reachable: true,
            age_gate_detected: gate,
            age_gate_bypassed: bypassed,
            social_login_gate: social,
            policy_url: None,
            policy_text: None,
            login_signal: false,
            premium_signal: false,
            premium_page: None,
        }
    }

    #[test]
    fn comparison_detects_regional_differences() {
        let es = vec![
            rec("a.com", Country::Spain, true, true, false),
            rec("b.com", Country::Spain, true, true, false),
            rec("c.com", Country::Spain, false, false, false),
            rec("d.com", Country::Spain, false, false, false),
        ];
        let ru = vec![
            rec("a.com", Country::Russia, true, false, true), // social login
            rec("b.com", Country::Russia, false, false, false), // gate dropped in RU
            rec("c.com", Country::Russia, true, true, false), // RU-only gate
            rec("d.com", Country::Russia, false, false, false),
        ];
        let cmp = compare(&[es, ru]);
        assert_eq!(cmp.per_country[0].with_gate, 2);
        assert_eq!(cmp.per_country[1].with_gate, 2);
        assert_eq!(cmp.per_country[1].social_login, 1);
        // c.com gates only in Russia; b.com gates everywhere but Russia.
        assert!((cmp.russia_only_pct - 25.0).abs() < 1e-9);
        assert!((cmp.not_in_russia_pct - 25.0).abs() < 1e-9);
        // 4 gates total, 1 social ⇒ 3 bypassable, 3 bypassed.
        assert!((cmp.bypass_rate_pct - 100.0).abs() < 1e-9);
    }
}
