//! Shared helpers for the analysis modules.

use redlight_net::psl;

/// Registrable domain (eTLD+1) of a hostname.
pub fn reg(host: &str) -> &str {
    psl::registrable_domain(host)
}

/// `true` when two hosts share a registrable domain.
pub fn same_site(a: &str, b: &str) -> bool {
    reg(a) == reg(b)
}

/// Percentage helper.
pub fn pct(part: usize, whole: usize) -> f64 {
    redlight_text::stats::pct(part, whole)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_site_collapses_subdomains() {
        assert!(same_site("www.pornhub.com", "cdn.pornhub.com"));
        assert!(!same_site("pornhub.com", "exoclick.com"));
    }
}
