//! Geographical comparison (§6, Table 7).
//!
//! Per-country crawls are summarized into compact per-country digests so the
//! raw request logs of six crawls never need to coexist in memory; the
//! comparison then computes country-unique sets and the overlap with the
//! regular web. Table 7 deliberately excludes dynamically loaded domains
//! (RTB frame chains), so extraction runs with `include_chained = false`.

use std::collections::BTreeSet;

use redlight_net::geoip::Country;
use serde::{Deserialize, Serialize};

use crate::ats::AtsVerdicts;
use crate::thirdparty::{self, ThirdPartyExtract};
use crate::ThreatFeed;
use redlight_crawler::db::CrawlRecord;

/// Per-country digest.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GeoSummary {
    /// Vantage-point country.
    pub country: Country,
    /// Sites that could be crawled from this country.
    pub crawled_sites: usize,
    /// Sites unreachable from this country (censorship or geo-blocking —
    /// indistinguishable from outside, §3.1).
    pub unreachable_sites: usize,
    /// Directly included FQDNs (frame-chained excluded).
    pub fqdns: BTreeSet<String>,
    /// ATS FQDNs among them (relaxed matching).
    pub ats: BTreeSet<String>,
    /// Malicious FQDNs per the threat feed (≥ 4 detections).
    pub malicious_fqdns: BTreeSet<String>,
    /// Porn sites carrying at least one malicious domain.
    pub sites_with_malware: usize,
}

/// Summarizes one country's crawl.
pub fn summarize(crawl: &CrawlRecord, ats: AtsVerdicts<'_>, threat: &dyn ThreatFeed) -> GeoSummary {
    let extract = thirdparty::extract(crawl, false);
    summarize_extracted(crawl, &extract, ats, threat)
}

/// [`summarize`] over an extraction computed elsewhere (the stage pipeline
/// shares one memoized extraction per crawl across stages). The `extract`
/// must come from `crawl` with `include_chained = false`.
pub fn summarize_extracted(
    crawl: &CrawlRecord,
    extract: &ThirdPartyExtract,
    ats: AtsVerdicts<'_>,
    threat: &dyn ThreatFeed,
) -> GeoSummary {
    let mut fqdns: BTreeSet<String> = BTreeSet::new();
    for parties in extract.per_site.values() {
        fqdns.extend(parties.third.iter().cloned());
        fqdns.extend(parties.first.iter().cloned());
    }
    let ats: BTreeSet<String> = fqdns
        .iter()
        .filter(|f| ats.is_ats_fqdn(f))
        .cloned()
        .collect();
    let malicious: BTreeSet<String> = fqdns
        .iter()
        .filter(|f| threat.detections(f) >= 4)
        .cloned()
        .collect();
    let sites_with_malware = extract
        .per_site
        .values()
        .filter(|p| {
            p.third
                .iter()
                .chain(p.first.iter())
                .any(|f| malicious.contains(f))
        })
        .count();

    GeoSummary {
        country: crawl.country,
        crawled_sites: crawl.success_count(),
        unreachable_sites: crawl
            .visits
            .iter()
            .filter(|v| !v.visit.success && !v.visit.timeout)
            .count(),
        fqdns,
        ats,
        malicious_fqdns: malicious,
        sites_with_malware,
    }
}

/// One Table 7 row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table7Row {
    /// Vantage-point country of the row.
    pub country: Country,
    /// Distinct FQDNs observed (directly included only).
    pub fqdns: usize,
    /// Share of this country's FQDNs also present in the regular web.
    pub web_ecosystem_pct: f64,
    /// FQDNs seen from this country only.
    pub unique_fqdns: usize,
    /// ATS FQDNs among them.
    pub ats: usize,
    /// ATS seen from this country only.
    pub unique_ats: usize,
}

/// The assembled Table 7.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table7 {
    /// Rows.
    pub rows: Vec<Table7Row>,
    /// Union across countries.
    pub total_fqdns: usize,
    /// Total unique.
    pub total_unique: usize,
    /// Total ATS.
    pub total_ats: usize,
    /// Total unique ATS.
    pub total_unique_ats: usize,
}

/// Compares the per-country digests (Table 7). `regular_fqdns` is the
/// third-party set of the regular-web reference crawl.
pub fn table7(summaries: &[GeoSummary], regular_fqdns: &BTreeSet<String>) -> Table7 {
    let count_in = |fqdn: &str| summaries.iter().filter(|s| s.fqdns.contains(fqdn)).count();
    let rows: Vec<Table7Row> = summaries
        .iter()
        .map(|s| {
            let unique = s.fqdns.iter().filter(|f| count_in(f) == 1).count();
            let unique_ats = s.ats.iter().filter(|f| count_in(f) == 1).count();
            let in_regular = s
                .fqdns
                .iter()
                .filter(|f| regular_fqdns.contains(*f))
                .count();
            Table7Row {
                country: s.country,
                fqdns: s.fqdns.len(),
                web_ecosystem_pct: crate::util::pct(in_regular, s.fqdns.len().max(1)),
                unique_fqdns: unique,
                ats: s.ats.len(),
                unique_ats,
            }
        })
        .collect();

    let mut all: BTreeSet<&str> = BTreeSet::new();
    let mut all_ats: BTreeSet<&str> = BTreeSet::new();
    for s in summaries {
        all.extend(s.fqdns.iter().map(String::as_str));
        all_ats.extend(s.ats.iter().map(String::as_str));
    }
    Table7 {
        total_unique: rows.iter().map(|r| r.unique_fqdns).sum(),
        total_unique_ats: rows.iter().map(|r| r.unique_ats).sum(),
        total_fqdns: all.len(),
        total_ats: all_ats.len(),
        rows,
    }
}

/// §6.2: malicious-domain presence across countries.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GeoMalware {
    /// Per country: (malicious domains, porn sites with malware).
    pub per_country: Vec<(Country, usize, usize)>,
    /// Malicious domains present from every country.
    pub stable_domains: usize,
    /// Porn sites carrying malware from every country.
    pub stable_sites_lower_bound: usize,
}

/// Compares malware presence across countries.
pub fn geo_malware(summaries: &[GeoSummary]) -> GeoMalware {
    let mut stable: Option<BTreeSet<&str>> = None;
    for s in summaries {
        let set: BTreeSet<&str> = s.malicious_fqdns.iter().map(String::as_str).collect();
        stable = Some(match stable {
            None => set,
            Some(prev) => prev.intersection(&set).copied().collect(),
        });
    }
    GeoMalware {
        per_country: summaries
            .iter()
            .map(|s| (s.country, s.malicious_fqdns.len(), s.sites_with_malware))
            .collect(),
        stable_domains: stable.map(|s| s.len()).unwrap_or(0),
        stable_sites_lower_bound: summaries
            .iter()
            .map(|s| s.sites_with_malware)
            .min()
            .unwrap_or(0),
    }
}
