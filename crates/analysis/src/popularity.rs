//! Popularity analyses: the Fig. 1 rank-stability series and the Table 3
//! third-party-by-tier breakdown.

use std::collections::{BTreeMap, BTreeSet};

use redlight_rankings::{PopularityTier, RankHistory, RankStats};
use serde::{Deserialize, Serialize};

use crate::thirdparty::ThirdPartyExtract;

/// One Fig. 1 point: a site with its longitudinal rank summary.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig1Point {
    /// Domain.
    pub domain: String,
    /// Best.
    pub best: Option<u32>,
    /// Median.
    pub median: Option<u32>,
    /// Fraction of 2018 days inside the top-1M.
    pub presence: f64,
}

/// The Fig. 1 series plus its headline statistics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig1 {
    /// Points ordered by best rank (the paper's x-axis).
    pub points: Vec<Fig1Point>,
    /// Sites present in the top-1M on every day of 2018.
    pub always_top1m: usize,
    /// Always top1m percentage.
    pub always_top1m_pct: f64,
    /// Sites never leaving the top-1k.
    pub always_top1k: usize,
}

/// Builds Fig. 1 from per-domain rank histories (the longitudinal toplist
/// dataset of §3).
pub fn fig1(histories: &BTreeMap<String, RankHistory>) -> Fig1 {
    let mut points: Vec<Fig1Point> = histories
        .iter()
        .map(|(domain, h)| {
            let stats = RankStats::from_history(h);
            Fig1Point {
                domain: domain.clone(),
                best: stats.best,
                median: stats.median,
                presence: stats.presence,
            }
        })
        .collect();
    points.sort_by_key(|p| p.best.unwrap_or(u32::MAX));
    let always_top1m = histories.values().filter(|h| h.always_present()).count();
    let always_top1k = histories
        .values()
        .filter(|h| h.always_within(1_000))
        .count();
    Fig1 {
        always_top1m_pct: crate::util::pct(always_top1m, histories.len().max(1)),
        always_top1m,
        always_top1k,
        points,
    }
}

/// One Table 3 band.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table3Row {
    /// Tier.
    pub tier: PopularityTier,
    /// Sites.
    pub sites: usize,
    /// Third-party FQDNs observed on sites of this tier.
    pub third_party_total: usize,
    /// FQDNs appearing on this tier only.
    pub third_party_unique: usize,
}

/// §4.2.2 extras accompanying Table 3.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table3 {
    /// Rows.
    pub rows: Vec<Table3Row>,
    /// Third-party FQDNs present in all four tiers.
    pub in_all_tiers: usize,
    /// In all tiers percentage.
    pub in_all_tiers_pct: f64,
    /// Third-party FQDNs appearing only on 100k+ sites.
    pub only_unpopular_pct: f64,
}

/// Builds Table 3.
pub fn table3(extract: &ThirdPartyExtract, tier_of: &BTreeMap<String, PopularityTier>) -> Table3 {
    let mut per_tier: BTreeMap<PopularityTier, BTreeSet<&str>> = BTreeMap::new();
    let mut site_count: BTreeMap<PopularityTier, usize> = BTreeMap::new();
    for (site, parties) in &extract.per_site {
        let tier = tier_of
            .get(site)
            .copied()
            .unwrap_or(PopularityTier::Beyond100k);
        *site_count.entry(tier).or_default() += 1;
        let set = per_tier.entry(tier).or_default();
        for f in &parties.third {
            set.insert(f.as_str());
        }
    }

    let tier_count_of = |fqdn: &str| {
        PopularityTier::ALL
            .iter()
            .filter(|t| per_tier.get(t).is_some_and(|s| s.contains(fqdn)))
            .count()
    };

    let rows: Vec<Table3Row> = PopularityTier::ALL
        .into_iter()
        .map(|tier| {
            let fqdns = per_tier.get(&tier).cloned().unwrap_or_default();
            let unique = fqdns.iter().filter(|f| tier_count_of(f) == 1).count();
            Table3Row {
                tier,
                sites: site_count.get(&tier).copied().unwrap_or(0),
                third_party_total: fqdns.len(),
                third_party_unique: unique,
            }
        })
        .collect();

    let all_fqdns = &extract.third_party_fqdns;
    let in_all = all_fqdns.iter().filter(|f| tier_count_of(f) == 4).count();
    let only_unpopular = all_fqdns
        .iter()
        .filter(|f| {
            tier_count_of(f) == 1
                && per_tier
                    .get(&PopularityTier::Beyond100k)
                    .is_some_and(|s| s.contains(f.as_str()))
        })
        .count();

    Table3 {
        rows,
        in_all_tiers: in_all,
        in_all_tiers_pct: crate::util::pct(in_all, all_fqdns.len().max(1)),
        only_unpopular_pct: crate::util::pct(only_unpopular, all_fqdns.len().max(1)),
    }
}

/// Derives each crawled domain's tier from the toplist histories — the
/// observable mapping the other analyses key on.
pub fn tiers_from_histories(
    histories: &BTreeMap<String, RankHistory>,
) -> BTreeMap<String, PopularityTier> {
    histories
        .iter()
        .map(|(d, h)| (d.clone(), PopularityTier::from_best_rank(h.best())))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_orders_and_counts() {
        let mut hist = BTreeMap::new();
        hist.insert(
            "always.com".to_string(),
            RankHistory {
                daily: vec![Some(10); 5],
            },
        );
        hist.insert(
            "flaky.com".to_string(),
            RankHistory {
                daily: vec![Some(900_000), None, None, Some(800_000), None],
            },
        );
        let fig = fig1(&hist);
        assert_eq!(fig.points[0].domain, "always.com");
        assert_eq!(fig.always_top1m, 1);
        assert_eq!(fig.always_top1k, 1);
        assert!((fig.points[1].presence - 0.4).abs() < 1e-9);
    }
}
