//! Cookie-consent banner detection and classification (§7.1, Table 8).
//!
//! Detection inspects the DOM for banner-shaped elements (floating, with
//! cookie vocabulary), extracts their rendered text, and classifies them
//! into the Degeling taxonomy by their controls: no controls ⇒ *No Option*;
//! a single affirmative button ⇒ *Confirmation*; accept + reject ⇒
//! *Binary*; sliders/checkboxes ⇒ *Others*. Every candidate is confirmed
//! through the manual-verification callback (the screenshot check).

use std::collections::BTreeMap;

use redlight_html::{parser, style};
use redlight_net::geoip::Country;
use redlight_text::lang;
use serde::{Deserialize, Serialize};

use crate::util::pct;
use redlight_crawler::db::CrawlRecord;
use redlight_crawler::store::CrawlSlice;

/// The Degeling et al. banner taxonomy as the detector can distinguish it
/// (Slider and Checkbox require interaction, so they fold into `Others`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum BannerType {
    /// Informs without offering any choice.
    NoOption,
    /// A single affirmative button.
    Confirmation,
    /// Accept and reject buttons.
    Binary,
    /// Sliders/checkboxes (needs interaction to classify further).
    Others,
}

/// One detected banner.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BannerObservation {
    /// The crawled domain showing the banner.
    pub site: String,
    /// Taxonomy class of the banner.
    pub kind: BannerType,
    /// Text rendered to the user.
    pub text: String,
}

/// Detects and classifies the banner on one page's markup.
pub fn classify_page(html: &str) -> Option<(BannerType, String)> {
    let doc = parser::parse(html);
    for id in style::floating_elements(&doc) {
        let text = doc.text_content(id);
        if !lang::matches_cookie(&text) {
            continue;
        }
        // Skip age gates that merely mention cookies.
        if lang::matches_age_warning(&text) && !text.to_lowercase().contains("cookie") {
            continue;
        }
        // Classify by controls inside the banner subtree.
        let mut affirm_buttons = 0usize;
        let mut other_buttons = 0usize;
        let mut sliders = 0usize;
        let mut checkboxes = 0usize;
        for node in doc.subtree(id) {
            let Some(el) = doc.element(node) else {
                continue;
            };
            match el.tag.as_str() {
                "button" => {
                    if lang::matches_affirmative(&doc.text_content(node)) {
                        affirm_buttons += 1;
                    } else {
                        other_buttons += 1;
                    }
                }
                "input" => match el.attr("type") {
                    Some("range") => sliders += 1,
                    Some("checkbox") => checkboxes += 1,
                    _ => {}
                },
                _ => {}
            }
        }
        let kind = if sliders > 0 || checkboxes > 0 {
            BannerType::Others
        } else if affirm_buttons > 0 && other_buttons > 0 {
            BannerType::Binary
        } else if affirm_buttons > 0 {
            BannerType::Confirmation
        } else {
            BannerType::NoOption
        };
        return Some((kind, text));
    }
    None
}

/// Table 8 column for one country.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BannerBreakdown {
    /// Vantage-point country of the crawl.
    pub country: Country,
    /// Successfully crawled sites (the percentage base).
    pub crawled: usize,
    /// Percentage of crawled sites per banner type.
    pub pct_by_type: BTreeMap<String, f64>,
    /// Share of crawled sites showing any banner.
    pub total_pct: f64,
    /// Of sites with banners, the share offering no choice at all.
    pub no_option_share_pct: f64,
    /// Banners the manual verification rejected (false positives).
    pub rejected: usize,
}

/// Scans one country's crawl. `verify` is the manual screenshot check —
/// candidates it rejects are dropped (and counted).
pub fn breakdown(
    crawl: &CrawlRecord,
    verify: &dyn Fn(&str) -> bool,
) -> (BannerBreakdown, Vec<BannerObservation>) {
    let (observations, rejected) = scan(crawl.full(), verify);
    finalize(crawl.country, crawl.success_count(), observations, rejected)
}

/// The map side: one shard's verified banner observations (in visit order)
/// plus its rejected-candidate count. Merging = concatenating observation
/// vectors in shard order and summing the rejects.
pub fn scan(
    slice: CrawlSlice<'_>,
    verify: &dyn Fn(&str) -> bool,
) -> (Vec<BannerObservation>, usize) {
    let mut observations = Vec::new();
    let mut rejected = 0usize;
    for record in slice.successful() {
        if record.visit.dom_html.is_empty() {
            continue;
        }
        if let Some((kind, text)) = classify_page(&record.visit.dom_html) {
            let site = slice.name(record.domain);
            if verify(site) {
                observations.push(BannerObservation {
                    site: site.to_string(),
                    kind,
                    text,
                });
            } else {
                rejected += 1;
            }
        }
    }
    (observations, rejected)
}

/// The reduce side: derives the Table 8 breakdown from merged observations.
/// `crawled` is the whole crawl's success count (the percentage base).
pub fn finalize(
    country: Country,
    crawled: usize,
    observations: Vec<BannerObservation>,
    rejected: usize,
) -> (BannerBreakdown, Vec<BannerObservation>) {
    let mut counts: BTreeMap<String, usize> = BTreeMap::new();
    for obs in &observations {
        *counts.entry(label(obs.kind).to_string()).or_default() += 1;
    }
    let pct_by_type: BTreeMap<String, f64> = [
        BannerType::NoOption,
        BannerType::Confirmation,
        BannerType::Binary,
        BannerType::Others,
    ]
    .into_iter()
    .map(|k| {
        let n = counts.get(label(k)).copied().unwrap_or(0);
        (label(k).to_string(), pct(n, crawled.max(1)))
    })
    .collect();
    let no_option = counts
        .get(label(BannerType::NoOption))
        .copied()
        .unwrap_or(0);

    (
        BannerBreakdown {
            country,
            crawled,
            total_pct: pct(observations.len(), crawled.max(1)),
            no_option_share_pct: pct(no_option, observations.len().max(1)),
            pct_by_type,
            rejected,
        },
        observations,
    )
}

/// Table 8 row labels.
pub fn label(kind: BannerType) -> &'static str {
    match kind {
        BannerType::NoOption => "No Option",
        BannerType::Confirmation => "Confirmation",
        BannerType::Binary => "Binary",
        BannerType::Others => "Others",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classifies_the_four_types() {
        let no_option = r#"<div style="position:fixed">We use cookies on this site.</div>"#;
        assert_eq!(classify_page(no_option).unwrap().0, BannerType::NoOption);

        let confirmation = r#"<div style="position:fixed">We use cookies.
            <button>Accept</button></div>"#;
        assert_eq!(
            classify_page(confirmation).unwrap().0,
            BannerType::Confirmation
        );

        let binary = r#"<div style="position:fixed">Cookies consent.
            <button>Accept</button><button>No thanks</button></div>"#;
        assert_eq!(classify_page(binary).unwrap().0, BannerType::Binary);

        let others = r#"<div style="position:fixed">Cookie settings
            <input type="checkbox" value="ads"><button>Save</button></div>"#;
        assert_eq!(classify_page(others).unwrap().0, BannerType::Others);
    }

    #[test]
    fn pages_without_banners_are_clean() {
        assert!(classify_page("<html><body><p>Just videos here.</p></body></html>").is_none());
        // Floating element without cookie vocabulary (an age gate).
        let gate = r#"<div style="position:fixed">You must be 18. <button>Enter</button></div>"#;
        assert!(classify_page(gate).is_none());
    }

    #[test]
    fn banner_text_is_extracted() {
        let html = r#"<div style="position:fixed">Wir verwenden Cookies <button>Akzeptieren</button></div>"#;
        let (kind, text) = classify_page(html).unwrap();
        assert_eq!(kind, BannerType::Confirmation);
        assert!(text.contains("Cookies"));
    }
}
