//! Business-model classification (§4.1).
//!
//! Semi-automatic, like the paper: landing pages are scanned for account
//! ("Log In"/"Sign Up") and premium keywords across the eight languages;
//! sites advertising a subscription are then labeled *free* vs *paid* — the
//! keyword pass reads the premium page for paywall markers, and a manual
//! labeling callback can override it (the paper's human inspection).

use serde::{Deserialize, Serialize};

use crate::util::pct;
use redlight_crawler::db::InteractionRecord;

/// Subscription label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Subscription {
    /// Content unlocks after free registration.
    Free,
    /// Content sits behind a paywall.
    Paid,
}

/// Keyword-based paywall heuristic over a premium page.
pub fn paywall_heuristic(premium_page: &str) -> Subscription {
    let lower = premium_page.to_lowercase();
    let paid = premium_page.contains('$')
        || lower.contains("payment required")
        || lower.contains("checkout")
        || lower.contains("per month")
        || lower.contains("/ month");
    if paid {
        Subscription::Paid
    } else {
        Subscription::Free
    }
}

/// §4.1 aggregate.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MonetizationReport {
    /// Sites.
    pub sites: usize,
    /// Sites offering account creation.
    pub with_accounts: usize,
    /// Sites advertising subscriptions.
    pub with_subscription: usize,
    /// With subscription percentage.
    pub with_subscription_pct: f64,
    /// Of the subscription sites, those behind a paywall.
    pub paid: usize,
    /// PaID percentage.
    pub paid_pct: f64,
    /// Heuristic labels the manual pass overrode.
    pub manual_overrides: usize,
}

/// The manual-labeling callback (the paper's human inspection step).
pub type ManualLabel<'a> = &'a dyn Fn(&str) -> Option<Subscription>;

/// Builds the report. `manual_label` plays the paper's human labeling step;
/// pass `None` to rely on the keyword heuristic alone.
pub fn report(
    interactions: &[InteractionRecord],
    manual_label: Option<ManualLabel<'_>>,
) -> MonetizationReport {
    let reachable: Vec<&InteractionRecord> = interactions.iter().filter(|r| r.reachable).collect();
    let with_accounts = reachable.iter().filter(|r| r.login_signal).count();
    let subs: Vec<&&InteractionRecord> = reachable.iter().filter(|r| r.premium_signal).collect();

    let mut paid = 0usize;
    let mut overrides = 0usize;
    for rec in &subs {
        let heuristic = rec
            .premium_page
            .as_deref()
            .map(paywall_heuristic)
            .unwrap_or(Subscription::Free);
        let label = match manual_label.and_then(|f| f(&rec.domain)) {
            Some(manual) => {
                if manual != heuristic {
                    overrides += 1;
                }
                manual
            }
            None => heuristic,
        };
        if label == Subscription::Paid {
            paid += 1;
        }
    }

    MonetizationReport {
        sites: reachable.len(),
        with_accounts,
        with_subscription: subs.len(),
        with_subscription_pct: pct(subs.len(), reachable.len().max(1)),
        paid,
        paid_pct: pct(paid, subs.len().max(1)),
        manual_overrides: overrides,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paywall_markers() {
        assert_eq!(
            paywall_heuristic("Checkout: $29.99 / month"),
            Subscription::Paid
        );
        assert_eq!(
            paywall_heuristic("Free registration unlocks everything"),
            Subscription::Free
        );
    }
}
