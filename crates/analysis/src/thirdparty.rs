//! First- vs third-party classification and per-crawl extraction (§4.2(1)).
//!
//! For each URL observed while crawling a site, the classifier compares the
//! request's FQDN and X.509 certificate against the host website's; when
//! neither establishes a relationship, the Levenshtein similarity of the two
//! FQDNs decides (≥ 0.7 ⇒ same entity). This groups `doublepimp.com` with
//! `doublepimpssl.com` while separating it from `doubleclick.net`.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::{Arc, RwLock};

use redlight_obs::{Counter, Registry};

use redlight_browser::Initiator;
use redlight_net::geoip::Country;
use redlight_net::psl::{CacheStats, HostCache};
use redlight_net::tls::CertSummary;
use redlight_text::levenshtein;
use serde::{Deserialize, Serialize};

use crate::util::reg;
use redlight_crawler::db::{CorpusLabel, CrawlRecord};
use redlight_crawler::store::CrawlSlice;

/// Party classification of one observed FQDN relative to a host site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Party {
    /// Same entity as the visited site.
    First,
    /// A different entity.
    Third,
}

/// Classifies `request_host` relative to `site_host` using the paper's three
/// signals in order: registrable-domain match, certificate identity,
/// Levenshtein similarity ≥ 0.7.
pub fn classify(
    site_host: &str,
    site_cert: Option<&CertSummary>,
    request_host: &str,
    request_cert: Option<&CertSummary>,
) -> Party {
    classify_inner(site_host, site_cert, request_host, request_cert, None)
}

/// [`classify`] with every eTLD+1 resolution answered by a shared
/// [`HostCache`]. Identical verdicts; the cache only memoizes the pure
/// suffix walk.
pub fn classify_cached(
    site_host: &str,
    site_cert: Option<&CertSummary>,
    request_host: &str,
    request_cert: Option<&CertSummary>,
    hosts: &HostCache,
) -> Party {
    classify_inner(
        site_host,
        site_cert,
        request_host,
        request_cert,
        Some(hosts),
    )
}

fn classify_inner(
    site_host: &str,
    site_cert: Option<&CertSummary>,
    request_host: &str,
    request_cert: Option<&CertSummary>,
    hosts: Option<&HostCache>,
) -> Party {
    let (site_reg, request_reg) = match hosts {
        Some(cache) => (
            cache.registrable(site_host),
            cache.registrable(request_host),
        ),
        None => (reg(site_host), reg(request_host)),
    };
    if site_reg == request_reg {
        return Party::First;
    }
    if let (Some(a), Some(b)) = (site_cert, request_cert) {
        if a.same_identity(b) {
            return Party::First;
        }
    }
    if levenshtein::same_entity(site_reg, request_reg) {
        return Party::First;
    }
    Party::Third
}

/// Distinct parties observed on one site.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SiteParties {
    /// First-party FQDNs other than the site's own hostname.
    pub first: BTreeSet<String>,
    /// Third-party FQDNs.
    pub third: BTreeSet<String>,
}

/// Corpus-wide extraction result.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ThirdPartyExtract {
    /// Per crawled site (keyed by corpus domain).
    pub per_site: BTreeMap<String, SiteParties>,
    /// All distinct first-party FQDNs (excluding the sites' own hosts).
    pub first_party_fqdns: BTreeSet<String>,
    /// All distinct third-party FQDNs.
    pub third_party_fqdns: BTreeSet<String>,
    /// All FQDNs contacted (including site hosts).
    pub contacted_fqdns: BTreeSet<String>,
}

impl ThirdPartyExtract {
    /// Sites on which `fqdn` appears as a third party.
    pub fn sites_with(&self, fqdn: &str) -> usize {
        self.per_site
            .values()
            .filter(|p| p.third.contains(fqdn))
            .count()
    }

    /// Sites on which any FQDN of `registrable` appears as a third party.
    pub fn sites_with_registrable(&self, registrable: &str) -> usize {
        self.per_site
            .values()
            .filter(|p| p.third.iter().any(|f| reg(f) == registrable))
            .count()
    }
}

/// Extracts parties from a crawl. `include_chained` keeps requests caused by
/// embedded frames (RTB inclusion chains); Table 7 excludes them, the main
/// §4.2 analysis includes them.
pub fn extract(crawl: &CrawlRecord, include_chained: bool) -> ThirdPartyExtract {
    scan_inner(crawl.full(), include_chained, None)
}

/// [`extract`] with eTLD+1 resolutions memoized in `hosts`. Identical
/// output.
pub fn extract_cached(
    crawl: &CrawlRecord,
    include_chained: bool,
    hosts: &HostCache,
) -> ThirdPartyExtract {
    scan_inner(crawl.full(), include_chained, Some(hosts))
}

/// The map side of the extraction: one shard's partial extract. Merging
/// every shard's partial with [`merge`] reproduces the monolithic
/// [`extract`] exactly (per-site maps and FQDN sets union cleanly).
pub fn scan(slice: CrawlSlice<'_>, include_chained: bool, hosts: &HostCache) -> ThirdPartyExtract {
    scan_inner(slice, include_chained, Some(hosts))
}

/// The reduce side: unions per-shard partials, in shard order.
pub fn merge(parts: impl IntoIterator<Item = ThirdPartyExtract>) -> ThirdPartyExtract {
    let mut out = ThirdPartyExtract::default();
    for part in parts {
        for (site, parties) in part.per_site {
            let entry = out.per_site.entry(site).or_default();
            entry.first.extend(parties.first);
            entry.third.extend(parties.third);
        }
        out.first_party_fqdns.extend(part.first_party_fqdns);
        out.third_party_fqdns.extend(part.third_party_fqdns);
        out.contacted_fqdns.extend(part.contacted_fqdns);
    }
    out
}

fn scan_inner(
    slice: CrawlSlice<'_>,
    include_chained: bool,
    hosts: Option<&HostCache>,
) -> ThirdPartyExtract {
    let mut out = ThirdPartyExtract::default();
    for record in slice.successful() {
        let visit = &record.visit;
        let Some(final_url) = &visit.final_url else {
            continue;
        };
        let site_host = final_url.host().as_str();
        // The document response's certificate is the site's certificate.
        let site_cert = visit
            .requests
            .iter()
            .find(|r| r.kind == redlight_net::http::ResourceKind::Document && r.cert.is_some())
            .and_then(|r| r.cert.clone());

        let parties = out
            .per_site
            .entry(slice.name(record.domain).to_string())
            .or_default();
        for req in &visit.requests {
            if req.status.is_none() {
                continue; // unreachable: nothing was contacted
            }
            if !include_chained {
                if let Initiator::Frame(_) = req.initiator {
                    continue;
                }
            }
            let host = req.url.host().as_str();
            out.contacted_fqdns.insert(host.to_string());
            if host == site_host {
                continue;
            }
            match classify_inner(
                site_host,
                site_cert.as_ref(),
                host,
                req.cert.as_ref(),
                hosts,
            ) {
                Party::First => {
                    parties.first.insert(host.to_string());
                    out.first_party_fqdns.insert(host.to_string());
                }
                Party::Third => {
                    parties.third.insert(host.to_string());
                    out.third_party_fqdns.insert(host.to_string());
                }
            }
        }
    }
    out
}

/// Identity of one extraction: which crawl, whether frame-chained requests
/// were kept, and which visit range was scanned (`0..visits.len()` for the
/// whole crawl; per-shard sub-ranges memoize shard partials).
type ExtractKey = (Country, CorpusLabel, bool, usize, usize);

/// A pipeline-wide memo of third-party extractions.
///
/// Several stages (ats, orgs, sync, geo, monetization) start from "the
/// third parties of crawl X" — before this memo each re-ran [`extract`]
/// over the same records. The memo computes each `(country, corpus,
/// include_chained)` extraction once and hands out `Arc` clones. Concurrent
/// stages may race on a cold key; extraction is deterministic, so both
/// compute the same value and the duplicated work is bounded by one
/// extraction (both count as misses).
pub struct ExtractMemo {
    hosts: Arc<HostCache>,
    map: RwLock<HashMap<ExtractKey, Arc<ThirdPartyExtract>>>,
    hits: Counter,
    misses: Counter,
}

impl ExtractMemo {
    /// Empty memo resolving hosts through `hosts`.
    pub fn new(hosts: Arc<HostCache>) -> Self {
        ExtractMemo {
            hosts,
            map: RwLock::new(HashMap::new()),
            hits: Counter::new(),
            misses: Counter::new(),
        }
    }

    /// [`ExtractMemo::new`] publishing `cache.thirdparty-extracts.hits` /
    /// `.misses` into `registry` ([`ExtractMemo::stats`] reads the same
    /// cells).
    pub fn in_registry(hosts: Arc<HostCache>, registry: &Registry) -> Self {
        ExtractMemo {
            hits: registry.counter("cache.thirdparty-extracts.hits"),
            misses: registry.counter("cache.thirdparty-extracts.misses"),
            ..Self::new(hosts)
        }
    }

    /// The extraction for `crawl`, computed at most once per key.
    pub fn get(&self, crawl: &CrawlRecord, include_chained: bool) -> Arc<ThirdPartyExtract> {
        let key: ExtractKey = (
            crawl.country,
            crawl.corpus,
            include_chained,
            0,
            crawl.visits.len(),
        );
        if let Some(found) = self.map.read().expect("extract memo lock").get(&key) {
            self.hits.inc();
            return Arc::clone(found);
        }
        self.misses.inc();
        let extract = Arc::new(extract_cached(crawl, include_chained, &self.hosts));
        let mut map = self.map.write().expect("extract memo lock");
        Arc::clone(map.entry(key).or_insert(extract))
    }

    /// One shard's partial extraction, memoized under the shard's visit
    /// range.
    pub fn get_shard(
        &self,
        slice: CrawlSlice<'_>,
        include_chained: bool,
    ) -> Arc<ThirdPartyExtract> {
        let key: ExtractKey = (
            slice.country,
            slice.corpus,
            include_chained,
            slice.offset,
            slice.offset + slice.len(),
        );
        if let Some(found) = self.map.read().expect("extract memo lock").get(&key) {
            self.hits.inc();
            return Arc::clone(found);
        }
        self.misses.inc();
        let extract = Arc::new(scan(slice, include_chained, &self.hosts));
        let mut map = self.map.write().expect("extract memo lock");
        Arc::clone(map.entry(key).or_insert(extract))
    }

    /// The extraction for `crawl` assembled shard-by-shard: scans each of
    /// `shards` contiguous visit ranges (memoized individually via
    /// [`get_shard`](Self::get_shard)), merges the partials in shard order,
    /// and caches the merged result under the whole-crawl key — so a later
    /// [`get`](Self::get) for the same crawl is a hit and returns the exact
    /// same value a monolithic extraction would have produced.
    pub fn get_sharded(
        &self,
        crawl: &CrawlRecord,
        include_chained: bool,
        shards: usize,
    ) -> Arc<ThirdPartyExtract> {
        if shards <= 1 {
            return self.get(crawl, include_chained);
        }
        let full: ExtractKey = (
            crawl.country,
            crawl.corpus,
            include_chained,
            0,
            crawl.visits.len(),
        );
        if let Some(found) = self.map.read().expect("extract memo lock").get(&full) {
            self.hits.inc();
            return Arc::clone(found);
        }
        let parts: Vec<ThirdPartyExtract> = crawl
            .shards(shards)
            .into_iter()
            .map(|slice| (*self.get_shard(slice, include_chained)).clone())
            .collect();
        let merged = Arc::new(merge(parts));
        let mut map = self.map.write().expect("extract memo lock");
        Arc::clone(map.entry(full).or_insert(merged))
    }

    /// Hit/miss counters so far.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use redlight_net::tls::Certificate;

    fn cs(cn: &str, org: Option<&str>, serial: u64) -> CertSummary {
        (&Certificate::leaf(cn, org, vec![], serial)).into()
    }

    #[test]
    fn registrable_match_is_first_party() {
        assert_eq!(
            classify("pornhub.com", None, "cdn.pornhub.com", None),
            Party::First
        );
    }

    #[test]
    fn cert_identity_is_first_party() {
        let site = cs("site-a.com", Some("Acme Networks"), 1);
        let cdn = cs("static-acme.net", Some("Acme Networks"), 2);
        assert_eq!(
            classify("site-a.com", Some(&site), "static-acme.net", Some(&cdn)),
            Party::First
        );
    }

    #[test]
    fn levenshtein_groups_paper_example() {
        assert_eq!(
            classify("doublepimp.com", None, "doublepimpssl.com", None),
            Party::First
        );
        assert_eq!(
            classify("doublepimp.com", None, "doubleclick.net", None),
            Party::Third
        );
    }

    #[test]
    fn unrelated_hosts_are_third_party() {
        assert_eq!(
            classify("somesite.com", None, "exoclick.com", None),
            Party::Third
        );
    }
}
